"""Bench SB — radix sort vs key distribution (NAS-IS tie-in)."""

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import fig_sortbench


def test_fig_sortbench(benchmark, save_result):
    rows = run_once(benchmark, fig_sortbench.run)
    by_name = {r[0]: r for r in rows}
    # BSP is blind to the distribution (same prediction for all families);
    # the simulator and (d,x)-BSP resolve them.
    bsps = {r[2] for r in rows}
    assert len(bsps) == 1
    # Skew ordering: uniform < nas-is < ts-and in simulated time.
    assert by_name["uniform"][4] < by_name["nas-is"][4] \
        < by_name["ts-and r=2"][4]
    # (d,x)-BSP tracks simulation for every family.
    for r in rows:
        assert abs(r[3] - r[4]) / r[4] < 0.25, r[0]
    save_result(
        "fig_sortbench",
        format_table(fig_sortbench.HEADERS, rows,
                     title="radix sort vs key distribution"),
    )
