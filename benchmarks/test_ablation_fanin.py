"""Ablation — tournament fan-in for QRQW maximum finding.

The queue rule prices a fan-in-f reduction at f per round for log_f n
rounds; on the (d,x)-BSP the round cost is max(g·ceil(m/p), d·f).  The
sweep exposes the U-shape: tiny fan-in wastes rounds, huge fan-in
serializes at the group cells.
"""

import numpy as np
from conftest import run_once

from repro.algorithms import qrqw_maximum, tournament_rounds
from repro.analysis import compare_program, format_table
from repro.experiments.common import j90
from repro.workloads import TraceRecorder

N = 64 * 1024


def _ablate():
    rows = []
    values = np.arange(N, dtype=np.int64)
    for fan_in in (2, 4, 8, 32, 256, 4096):
        rec = TraceRecorder()
        result = qrqw_maximum(values, fan_in=fan_in, recorder=rec)
        assert result == N - 1
        cmp = compare_program(j90(), rec.program)
        rows.append((
            fan_in,
            tournament_rounds(N, fan_in),
            cmp.contention,
            cmp.simulated_time,
        ))
    return rows


def test_fanin_tradeoff(benchmark, save_result):
    rows = run_once(benchmark, _ablate)
    times = {f: t for f, _, _, t in rows}
    best = min(times.values())
    # U-shape: both extremes are beaten by a moderate fan-in.
    assert times[2] > best
    assert times[4096] > best
    assert min(times[4], times[8], times[32]) == best
    save_result(
        "ablation_fanin",
        format_table(
            ("fan-in", "rounds", "max contention", "simulated"),
            rows, title="ablation: tournament fan-in (QRQW maximum)",
        ),
    )
