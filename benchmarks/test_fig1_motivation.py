"""Bench F1 — regenerate Figure 1 (motivating discrepancy, CC traces)."""

import numpy as np
from conftest import run_once

from repro.experiments import fig1_motivation


def test_fig1_motivation(benchmark, save_result):
    series = run_once(
        benchmark, fig1_motivation.run,
        n_vertices=8192, star_sizes=[4, 64, 1024, 8192],
        n_random_edges=8192,
    )
    sim = series.columns["simulated"]
    bsp = series.columns["bsp"]
    # The paper's point: at high contention the bank-oblivious prediction
    # is off by a large factor while the (d,x)-BSP stays close.
    assert sim[-1] / bsp[-1] > 3
    assert np.allclose(series.columns["dxbsp"], sim, rtol=0.3)
    save_result("fig1_motivation", series.format())
