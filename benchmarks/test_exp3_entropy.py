"""Bench E3 — regenerate Experiment 3 (Thearling–Smith entropy family)."""

import numpy as np
from conftest import run_once

from repro.experiments import exp3_entropy


def test_exp3_entropy(benchmark, save_result):
    series = run_once(benchmark, exp3_entropy.run, n=64 * 1024)
    ent = series.columns["entropy_bits"]
    sim = series.columns["simulated"]
    dx = series.columns["dxbsp"]
    # Entropy decreases monotonically with AND rounds; time rises once the
    # contention overtakes the throughput bound; the model tracks the
    # simulation across the whole continuum of distribution shapes.
    assert (np.diff(ent) <= 0.15).all()
    assert sim[-1] > 2 * sim[0]
    assert np.allclose(dx, sim, rtol=0.35)
    save_result("exp3_entropy", series.format())
