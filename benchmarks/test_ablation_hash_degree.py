"""Ablation — hash family degree vs bank balance.

Does paying for a higher-degree polynomial buy measurably better bank
balance on generic irregular traffic?  (The paper's answer: the linear
family already behaves like a random map on non-adversarial inputs —
degree buys robustness, not average-case balance.)
"""

import numpy as np
from conftest import run_once

from repro.analysis import format_table
from repro.core import max_bank_load
from repro.mapping import RandomMap, cubic_hash, linear_hash, quadratic_hash
from repro.workloads import distinct_random

N = 64 * 1024
BANKS = 512


def _ablate():
    rows = []
    families = [
        ("h1", linear_hash),
        ("h2", quadratic_hash),
        ("h3", cubic_hash),
        ("random", lambda s: RandomMap(s)),
    ]
    addr = distinct_random(N, 1 << 40, seed=7)
    for name, factory in families:
        loads = [
            max_bank_load(addr, BANKS, factory(seed))
            for seed in range(5)
        ]
        rows.append((name, float(np.mean(loads)), int(np.max(loads))))
    return rows


def test_hash_degree_balance(benchmark, save_result):
    rows = run_once(benchmark, _ablate)
    mean_loads = {name: mean for name, mean, _ in rows}
    ideal = N / BANKS
    # All families within a small factor of the balls-in-bins optimum and
    # of each other: degree does not change average-case balance.
    for name, mean in mean_loads.items():
        assert mean < 1.6 * ideal, name
    assert abs(mean_loads["h1"] - mean_loads["random"]) < 0.25 * ideal
    save_result(
        "ablation_hash_degree",
        format_table(("mapping", "mean max bank load", "worst"),
                     rows, title=f"ablation: hash degree (ideal {ideal:.0f})"),
    )
