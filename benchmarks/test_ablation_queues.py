"""Ablation 1 (DESIGN.md) — unbounded vs bounded bank queues.

The (d,x)-BSP (and the fast simulator) assume unbounded queues with no
back-pressure; real machines stall the issue pipeline when queues fill.
This bench quantifies what the abstraction gives away, and benchmarks the
two simulator implementations against each other on identical inputs.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.simulator import simulate_scatter, simulate_scatter_cycle, toy_machine
from repro.workloads import hotspot

MACHINE = toy_machine(p=8, x=8, d=14)
N = 8192


def _ablate():
    rows = []
    for k in [1, 64, 1024, 8192]:
        addr = hotspot(N, k, 1 << 22, seed=k)
        unbounded = simulate_scatter_cycle(MACHINE, addr)
        for cap in (8, 2):
            bounded = simulate_scatter_cycle(
                MACHINE.with_(queue_capacity=cap), addr
            )
            rows.append((
                k, cap, unbounded.time, bounded.time,
                bounded.time / unbounded.time, bounded.stalled_cycles,
            ))
    return rows


def test_bounded_queue_ablation(benchmark, save_result):
    rows = run_once(benchmark, _ablate)
    for _, _, unb, bnd, ratio, _ in rows:
        assert bnd >= unb  # back-pressure can only slow things down
        assert ratio < 3.0  # ...but not catastrophically: the model holds
    save_result(
        "ablation_queues",
        format_table(
            ("contention k", "capacity", "unbounded", "bounded",
             "bounded/unbounded", "stall cycles"),
            rows,
            title="ablation: bank-queue back-pressure",
        ),
    )


def test_perf_vectorized_simulator(benchmark):
    addr = hotspot(1 << 18, 4096, 1 << 24, seed=0)
    res = benchmark(simulate_scatter, MACHINE, addr)
    assert res.n == 1 << 18


def test_perf_cycle_simulator(benchmark):
    # The reference simulator is orders of magnitude slower — that's the
    # cost the segmented-cummax vectorization buys back (pytest-benchmark
    # output shows both for comparison).
    addr = hotspot(2048, 128, 1 << 16, seed=0)
    res = benchmark.pedantic(
        simulate_scatter_cycle, args=(MACHINE, addr),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert res.n == 2048
