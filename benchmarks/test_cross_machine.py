"""Cross-machine checks — "cray C90 results are qualitatively similar".

The paper ran its experiments on the J90 and reports the C90 as
qualitatively similar; here the similarity is quantitative: the same
sweeps on both presets must differ, in the serialized regime, by the
ratio of their bank delays (14/6), and the estimator must recover each
machine's d from its own measured curve.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.analysis import estimate_bank_delay, format_table, measure_contention_curve
from repro.experiments import exp1_hotspot, fig12_spmv
from repro.experiments.common import c90, j90


def _sweep_both():
    n = 32 * 1024
    s_j = exp1_hotspot.run(machine=j90(), n=n,
                           contentions=[1, 256, 4096, 32768])
    s_c = exp1_hotspot.run(machine=c90(), n=n,
                           contentions=[1, 256, 4096, 32768])
    return s_j, s_c


def test_qualitative_similarity(benchmark, save_result):
    s_j, s_c = run_once(benchmark, _sweep_both)
    sim_j = s_j.columns["simulated"]
    sim_c = s_c.columns["simulated"]
    # Serialized regime (k = 32768): ratio = d_J90 / d_C90 = 14/6.
    assert sim_j[-1] / sim_c[-1] == pytest.approx(14 / 6, rel=0.1)
    # Throughput regime (k = 1): ratio = p_C90 / p_J90 = 2 (C90 has 16p).
    assert sim_c[0] / sim_j[0] == pytest.approx(0.5, rel=0.15)
    rows = [
        (int(k), tj, tc, tj / tc)
        for k, tj, tc in zip(s_j.x, sim_j, sim_c)
    ]
    save_result(
        "cross_machine",
        format_table(("contention k", "J90", "C90", "J90/C90"), rows,
                     title="cross-machine: J90 vs C90 hot-spot sweep"),
    )


def test_delay_estimator_separates_machines(benchmark):
    def _estimate():
        out = {}
        for name, m in (("j90", j90()), ("c90", c90())):
            ks, ts = measure_contention_curve(m, n=16 * 1024, seed=7)
            out[name] = estimate_bank_delay(ks, ts).d
        return out

    est = run_once(benchmark, _estimate)
    assert est["j90"] == pytest.approx(14.0, rel=0.08)
    assert est["c90"] == pytest.approx(6.0, rel=0.08)


def test_fig12_shape_on_c90(benchmark, save_result):
    series = run_once(benchmark, fig12_spmv.run, machine=c90(),
                      n_rows=8192, n_cols=8192)
    sim = series.columns["simulated"]
    dx = series.columns["dxbsp"]
    assert sim[-1] > 2 * sim[0]
    assert np.allclose(dx, sim, rtol=0.25)
    save_result("fig12_spmv_c90", series.format())
