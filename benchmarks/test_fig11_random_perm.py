"""Bench F11 — regenerate Figure 11 (random permutation generation)."""

import numpy as np
from conftest import run_once

from repro.experiments import fig11_random_perm


def test_fig11_random_perm(benchmark, save_result):
    series = run_once(benchmark, fig11_random_perm.run)
    q = series.columns["qrqw_simulated"]
    e = series.columns["erew_simulated"]
    # The dart thrower beats the radix-sort-based EREW algorithm across
    # the whole sweep (the paper: "better over a wider range of problem
    # sizes"), and its round count grows only logarithmically.
    assert (q < e).all()
    rounds = series.columns["dart_rounds"]
    assert rounds[-1] <= 2.5 * np.log2(series.x[-1])
    save_result("fig11_random_perm", series.format())
