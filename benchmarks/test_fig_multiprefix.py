"""Bench MP — multiprefix contention study (paper future work)."""

import numpy as np
from conftest import run_once

from repro.experiments import fig_multiprefix


def test_fig_multiprefix(benchmark, save_result):
    series = run_once(benchmark, fig_multiprefix.run, n=32 * 1024)
    direct = series.columns["direct_simulated"]
    sorted_ = series.columns["sorted_simulated"]
    # Direct queued-write multiprefix wins once keys spread (low
    # multiplicity) and loses at extreme concentration — the Figure-11
    # trade replayed.
    assert direct[-1] < sorted_[-1] / 3
    assert direct[0] > sorted_[0]
    save_result("fig_multiprefix", series.format())
