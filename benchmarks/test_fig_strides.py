"""Bench ST — constant-stride bank conflicts and the hashing remedy."""

import numpy as np
from conftest import run_once

from repro.experiments import fig_strides


def test_fig_strides(benchmark, save_result):
    series = run_once(benchmark, fig_strides.run, n=32 * 1024)
    pred = series.columns["predicted"]
    il = series.columns["interleaved_sim"]
    hashed = series.columns["hashed_sim"]
    # The closed form matches the simulator at every stride.
    assert np.allclose(pred, il, rtol=0.05)
    # Interleaving collapses at the largest power-of-two stride; hashing
    # stays flat within a small module-map factor of the unit-stride time.
    assert il[-1] > 20 * il[0]
    assert hashed.max() < 1.5 * hashed.min()
    save_result("fig_strides", series.format())
