"""Bench T3 — regenerate Table 3 (hash evaluation cost per element).

This is the one experiment where wall-clock IS the artifact, so the hash
evaluations themselves are timed by pytest-benchmark (rather than via the
experiment module's perf_counter loop).
"""

import numpy as np
import pytest
from conftest import RESULTS_DIR

from repro.analysis import format_table
from repro.mapping import cubic_hash, hash_flop_count, linear_hash, quadratic_hash
from repro.workloads import uniform_random

N = 1 << 22
KEYS = uniform_random(N, 1 << 40, seed=1995)
FAMILIES = {
    "h1": linear_hash(1995),
    "h2": quadratic_hash(1995),
    "h3": cubic_hash(1995),
}
_timings = {}


def _mean_seconds(benchmark) -> float:
    stats = benchmark.stats
    stats = getattr(stats, "stats", stats)  # Metadata wraps Stats
    return float(stats.mean)


@pytest.mark.parametrize("name", ["h1", "h2", "h3"])
def test_table3_hash_eval(benchmark, name, save_result):
    mapping = FAMILIES[name]
    out = benchmark(mapping, KEYS, 512)
    assert out.min() >= 0 and out.max() < 512
    _timings[name] = _mean_seconds(benchmark) / N * 1e9
    if len(_timings) == 3:  # last family timed: assemble the table
        base = _timings["h1"]
        rows = [
            (fam, i + 1, hash_flop_count(i + 1), _timings[fam],
             _timings[fam] / base)
            for i, fam in enumerate(["h1", "h2", "h3"])
        ]
        # Shape assertion: cost grows with polynomial degree.
        assert _timings["h3"] > _timings["h1"]
        save_result(
            "table3_hashcost",
            format_table(("hash", "degree", "int ops/elem", "ns/elem", "rel."),
                         rows, title="Table 3: hash evaluation cost"),
        )
