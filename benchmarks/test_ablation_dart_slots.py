"""Ablation — dart-throwing destination size (slots factor).

A larger per-round destination region lowers the collision probability
(fewer rounds) at the cost of address space; the paper's algorithm uses
factor 1.  The simulated time is nearly flat: the extra rounds at factor
1 touch geometrically fewer elements.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.algorithms import qrqw_random_permutation
from repro.analysis import compare_program
from repro.experiments.common import j90
from repro.workloads import TraceRecorder

N = 32 * 1024


def _ablate():
    rows = []
    for factor in (1.0, 2.0, 4.0):
        rec = TraceRecorder()
        _, stats = qrqw_random_permutation(
            N, slots_factor=factor, seed=11, recorder=rec
        )
        cmp = compare_program(j90(), rec.program)
        rows.append((factor, stats.rounds, stats.total_darts,
                     cmp.simulated_time))
    return rows


def test_dart_slots_factor(benchmark, save_result):
    rows = run_once(benchmark, _ablate)
    rounds = [r[1] for r in rows]
    times = [r[3] for r in rows]
    assert rounds[0] > rounds[-1]          # bigger regions, fewer rounds
    assert times[-1] < times[0] * 1.3      # ...but time roughly flat
    save_result(
        "ablation_dart_slots",
        format_table(("slots factor", "rounds", "total darts", "simulated"),
                     rows, title="ablation: dart-throw destination size"),
    )
