"""Bench LR — list-ranking contention study (paper future work)."""

import numpy as np
from conftest import run_once

from repro.experiments import fig_listranking


def test_fig_listranking_totals(benchmark, save_result):
    series = run_once(benchmark, fig_listranking.run)
    sim = series.columns["simulated"]
    bsp = series.columns["bsp"]
    dx = series.columns["dxbsp"]
    # The hot tail makes pointer jumping bank-bound: BSP far under,
    # (d,x)-BSP tracks.
    assert (sim > 4 * bsp).all()
    assert np.allclose(dx, sim, rtol=0.25)
    save_result("fig_listranking", series.format())


def test_fig_listranking_rounds(benchmark, save_result):
    series = run_once(benchmark, fig_listranking.run_round_profile,
                      n=32 * 1024)
    cont = series.columns["tail_contention"]
    times = series.columns["round_simulated"]
    # Contention doubles per round; the last round costs ~d*n.
    ratios = cont[1:] / cont[:-1]
    assert (ratios > 1.4).all() and (ratios < 2.6).all()
    assert times[-1] > 20 * times[0]
    save_result("fig_listranking_rounds", series.format())
