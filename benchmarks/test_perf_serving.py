"""Perf — the serving layer on a hot-spot dashboard workload (S1).

Three measurements of the serving tier:

* **Hot-path throughput** — a small set of "dashboard" questions
  (hot-spot predict/compare queries on the J90) asked over and over,
  the workload the two-level cache exists for.  After one warm-up pass
  every answer comes from the in-memory LRU; the service must sustain
  >= 1k requests/second, with p50/p95 latency recorded.
* **Sharded hot path** — the same dashboard workload through a
  :class:`repro.serving.ShardRouter` with a warmed shared hot tier.
  The router answers hot questions from one shared-memory slot lookup
  on the request *digest* — no pattern materialisation, no 8 KB array
  hash per request — and must beat the single-process hot path by
  >= 5x even on a single-core host (the win is per-request work, not
  parallelism).
* **Occupancy vs latency knee** — distinct (uncacheable) requests
  offered at full speed while the latency watermark sweeps from
  sub-millisecond to tens of milliseconds.  Batch occupancy climbs
  with the watermark while p95 latency grows past the knee — the
  serving analogue of the superstep-size trade-off in the (d,x)-BSP
  cost law (docs/serving.md derives the capacity math).

Saves the paper-style table to ``benchmarks/results/perf_serving.txt``
(referenced by the S1 section of EXPERIMENTS.md) and writes
machine-readable numbers to ``BENCH_serving.json`` at the repo root for
``tools/perf_guard.py`` (both ``serving_seconds`` and
``multi_serving_seconds`` are gated).
"""

import json
import pathlib
import time

from conftest import run_once

from repro.serving import PredictionService, ShardRouter, percentile

BENCH_JSON = pathlib.Path(__file__).parents[1] / "BENCH_serving.json"

N = 1024
HOT_QUERIES = 8
HOT_REQUESTS = 4000
WORKERS = 4
MULTI_SPEEDUP_FLOOR = 5.0
KNEE_REQUESTS = 256
KNEE_FLUSH_MS = (0.25, 1.0, 4.0, 16.0)


def _hot_request(i):
    """One of the small rotating set of dashboard questions."""
    return {
        "op": "predict", "machine": "j90",
        "pattern": {"kind": "hotspot", "n": N, "k": 2 ** (i % HOT_QUERIES)},
    }


def _distinct_request(i):
    """A never-repeating request (forces an engine evaluation)."""
    return {
        "op": "predict", "machine": "j90",
        "pattern": {"kind": "hotspot", "n": N, "k": i + 1},
    }


def _serve_hot(service, count):
    responses = service.serve([_hot_request(i) for i in range(count)])
    assert all(r.ok for r in responses)
    return responses


def test_perf_serving(benchmark, save_result):
    # --- hot-path throughput -----------------------------------------
    with PredictionService(batch_size=32, flush_ms=1.0,
                           deadline_ms=None, disk_cache=False) as svc:
        _serve_hot(svc, HOT_QUERIES)               # warm the LRU
        t0 = time.perf_counter()
        responses = _serve_hot(svc, HOT_REQUESTS)
        hot_seconds = time.perf_counter() - t0
        run_once(benchmark, _serve_hot, svc, HOT_QUERIES)
        hot_stats = svc.stats()

    assert all(r.cached for r in responses), "hot path missed the cache"
    rps = HOT_REQUESTS / hot_seconds
    latencies = [r.latency_ms for r in responses]
    p50 = percentile(latencies, 50.0)
    p95 = percentile(latencies, 95.0)
    assert rps >= 1000.0, (
        f"hot-path throughput {rps:.0f} req/s is below the 1k req/s bar "
        f"({hot_seconds:.3f}s for {HOT_REQUESTS} requests)"
    )
    assert hot_stats.evaluations == HOT_QUERIES    # warm-up only

    # --- sharded hot path --------------------------------------------
    with ShardRouter(WORKERS, batch_size=32, flush_ms=1.0,
                     deadline_ms=None, disk_cache=False) as router:
        _serve_hot(router, HOT_QUERIES)            # warm the shared tier
        t0 = time.perf_counter()
        multi_responses = _serve_hot(router, HOT_REQUESTS)
        multi_seconds = time.perf_counter() - t0
        router_stats = router.stats()

    assert all(r.cached for r in multi_responses), \
        "sharded hot path missed the shared tier"
    assert router_stats.hot_hits >= HOT_REQUESTS
    multi_rps = HOT_REQUESTS / multi_seconds
    speedup = multi_rps / rps
    multi_latencies = [r.latency_ms for r in multi_responses]
    multi_p50 = percentile(multi_latencies, 50.0)
    multi_p95 = percentile(multi_latencies, 95.0)
    assert multi_rps >= MULTI_SPEEDUP_FLOOR * rps, (
        f"sharded hot path {multi_rps:.0f} req/s is under "
        f"{MULTI_SPEEDUP_FLOOR}x the single-process {rps:.0f} req/s "
        f"({multi_seconds:.3f}s for {HOT_REQUESTS} requests)"
    )

    # --- occupancy vs latency knee -----------------------------------
    knee_rows = []
    for flush_ms in KNEE_FLUSH_MS:
        with PredictionService(batch_size=64, flush_ms=flush_ms,
                               deadline_ms=None, lru_size=0,
                               disk_cache=False) as svc:
            cold = svc.serve([_distinct_request(i)
                              for i in range(KNEE_REQUESTS)])
            stats = svc.stats()
        assert all(r.ok for r in cold)
        knee_rows.append((
            flush_ms,
            stats.mean_occupancy,
            percentile([r.latency_ms for r in cold], 95.0),
            KNEE_REQUESTS / max(stats.batches, 1),
        ))
    occupancy = max(row[1] for row in knee_rows)
    assert occupancy > 1.0, "batching never grouped a single flush"

    lines = [
        f"serving performance (hot-spot dashboard, Cray J90, n={N})",
        "",
        f"hot path: {HOT_REQUESTS} requests over {HOT_QUERIES} distinct "
        f"questions, LRU warm",
        f"  throughput {rps:>8.0f} req/s   "
        f"p50 {p50:.3f} ms   p95 {p95:.3f} ms",
        "",
        f"sharded hot path: same workload, ShardRouter x{WORKERS}, "
        f"shared tier warm",
        f"  throughput {multi_rps:>8.0f} req/s   "
        f"p50 {multi_p50:.3f} ms   p95 {multi_p95:.3f} ms   "
        f"({speedup:.1f}x single-process)",
        "",
        "occupancy vs latency knee "
        f"({KNEE_REQUESTS} distinct requests, batch_size=64, LRU off)",
        f"{'flush_ms':>9} {'occupancy':>10} {'p95_ms':>9}",
    ]
    for flush_ms, occ, knee_p95, _ in knee_rows:
        lines.append(f"{flush_ms:>9.2f} {occ:>10.1f} {knee_p95:>9.2f}")
    lines += [
        "",
        "reading: past the knee the latency watermark buys occupancy "
        "(amortized per-flush cost) at the price of tail latency — the "
        "superstep trade-off, served online.",
    ]
    save_result("perf_serving", "\n".join(lines))

    BENCH_JSON.write_text(json.dumps({
        "benchmark": "serving",
        "machine": "Cray J90",
        "n": N,
        "telemetry": "off",
        "requests": HOT_REQUESTS,
        "serving_seconds": round(hot_seconds, 6),
        "rps": round(rps, 1),
        "p50_ms": round(p50, 4),
        "p95_ms": round(p95, 4),
        "workers": WORKERS,
        "multi_requests": HOT_REQUESTS,
        "multi_serving_seconds": round(multi_seconds, 6),
        "multi_rps": round(multi_rps, 1),
        "speedup": round(speedup, 2),
        "batch_occupancy": round(occupancy, 2),
    }, indent=2) + "\n")
