"""Ablation — multistage-network effects beyond the section model.

The paper notes that a refined network model [ST91] would be needed for
its version-(c) anomaly; this bench takes the refinement one step
further: an Omega network reproduces the classic *internal-link*
congestion (bit-reversal traffic) that even the section model cannot see
— destination banks perfectly balanced, network saturated anyway.
"""

import numpy as np
from conftest import run_once

from repro.analysis import format_table
from repro.simulator import (
    simulate_scatter,
    simulate_scatter_butterfly,
    toy_machine,
)
from repro.workloads import uniform_random


def bitrev(v, bits):
    out = np.zeros_like(v)
    for i in range(bits):
        out |= ((v >> i) & 1) << (bits - 1 - i)
    return out


def _ablate():
    m = toy_machine(p=64, x=1, d=1)
    n = 64 * 512
    proc_of = np.arange(n) % 64
    patterns = [
        ("identity perm", proc_of.astype(np.int64)),
        ("bit-reversal perm", bitrev(proc_of, 6).astype(np.int64)),
        ("uniform random", uniform_random(n, 1 << 20, seed=0)),
    ]
    rows = []
    for name, addr in patterns:
        bank_only = simulate_scatter(m, addr).time
        butterfly = simulate_scatter_butterfly(m, addr).time
        rows.append((name, bank_only, butterfly, butterfly / bank_only))
    return rows


def test_butterfly_congestion(benchmark, save_result):
    rows = run_once(benchmark, _ablate)
    by = {r[0]: r[3] for r in rows}
    # The bank-only model and the butterfly agree on benign traffic but
    # diverge hugely on the internal-congestion worst case.
    assert by["identity perm"] < 1.5
    assert by["uniform random"] < 2.0
    assert by["bit-reversal perm"] > 5.0
    save_result(
        "ablation_butterfly",
        format_table(
            ("pattern", "bank-only", "butterfly", "ratio"),
            rows, title="ablation: multistage-network internal congestion",
        ),
    )
