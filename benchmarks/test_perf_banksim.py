"""Perf — segmented-cummax FIFO kernel and the closed-form scatter path.

Times the two layers the batch cycle engine is built on:

* ``fifo_service_times`` — the vectorized segmented-cummax kernel that
  resolves FIFO bank start times for a whole superstep at once, on a
  uniform-random workload four times the paper's S = 64K;
* ``simulate_scatter`` — the closed-form (d,x)-BSP scatter built on the
  kernel, on the Experiment-1 hot-spot pattern at S = 64K.

Saves the timing table under ``benchmarks/results/`` and writes
machine-readable numbers to ``BENCH_banksim.json`` at the repo root for
``tools/perf_guard.py`` (which gates both timings against the committed
baseline).
"""

import json
import pathlib
import time

import numpy as np
from conftest import run_once

from repro.experiments.common import DEFAULT_SEED, DEFAULT_SPACE, j90
from repro.simulator import simulate_scatter
from repro.simulator.banksim import fifo_service_times
from repro.workloads import hotspot

BENCH_JSON = pathlib.Path(__file__).parents[1] / "BENCH_banksim.json"

N = 64 * 1024
KERNEL_N = 4 * N
REPEATS = 3


def _best_of(repeats, fn, *args, **kwargs):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_perf_banksim(benchmark, save_result):
    machine = j90()
    rng = np.random.default_rng(DEFAULT_SEED)
    arrivals = np.sort(rng.integers(0, KERNEL_N // 4, KERNEL_N)).astype(
        np.float64
    )
    servers = rng.integers(0, machine.n_banks, KERNEL_N)

    kernel_s, starts = _best_of(REPEATS, fifo_service_times,
                                arrivals, servers, float(machine.d))

    addr = hotspot(N, N, DEFAULT_SPACE, seed=DEFAULT_SEED)
    scatter_s, scatter = _best_of(REPEATS, simulate_scatter, machine, addr)
    run_once(benchmark, simulate_scatter, machine, addr)

    # Sanity, not perf: no start precedes its arrival, and the scatter's
    # timed hot path must not have collected telemetry.
    assert (starts >= arrivals).all()
    assert scatter.telemetry is None
    per_req_us = kernel_s / KERNEL_N * 1e6

    lines = [
        f"banksim kernel performance ({machine.name})",
        "",
        f"{'layer':<18} {'n':>8} {'seconds':>10}",
        f"{'fifo kernel':<18} {KERNEL_N:>8} {kernel_s:>10.4f}",
        f"{'scatter (hotspot)':<18} {N:>8} {scatter_s:>10.4f}",
        "",
        f"kernel cost: {per_req_us:.3f} us/request",
    ]
    save_result("perf_banksim", "\n".join(lines))

    BENCH_JSON.write_text(json.dumps({
        "benchmark": "banksim",
        "machine": machine.name,
        "n": N,
        "kernel_n": KERNEL_N,
        "telemetry": "off",
        "kernel_seconds": round(kernel_s, 6),
        "banksim_seconds": round(scatter_s, 6),
        "sim_cycles": float(scatter.time),
    }, indent=2) + "\n")
