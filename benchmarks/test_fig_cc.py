"""Bench FC — regenerate the connected-components contention study."""

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import fig_connected_components


def test_fig_connected_components(benchmark, save_result):
    rows = run_once(benchmark, fig_connected_components.run, n=16 * 1024)
    by_name = {r.graph: r for r in rows}
    star = by_name["star"]
    grid = by_name["grid"]
    # The star's single hook round concentrates traffic at one vertex;
    # the grid's hooks are spread thin (its cost lives in the many
    # shortcut rounds instead — which also converge onto hot roots, the
    # reason BSP under-predicts every graph here).
    assert star.max_contention > 1000
    assert star.phase_times["hook"] > 5 * grid.phase_times["hook"]
    for r in rows:
        assert r.simulated_time / r.bsp_time > 2, r.graph
        assert abs(r.dxbsp_time - r.simulated_time) / r.simulated_time < 0.3
    parts = [format_table(fig_connected_components.HEADERS,
                          [r.row() for r in rows],
                          title="connected components")]
    for r in rows:
        parts.append(format_table(
            ("phase", "simulated cycles"),
            sorted(r.phase_times.items(), key=lambda kv: -kv[1]),
            title=f"phases: {r.graph}",
        ))
    save_result("fig_connected_components", "\n\n".join(parts))
