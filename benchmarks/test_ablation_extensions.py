"""Ablation — mechanisms beyond the (d,x)-BSP: combining networks [Ran91]
and cached-DRAM banks [HS93].

The paper names both as effects its model deliberately does not capture
(footnote 1; Section 7).  This bench quantifies how much each mechanism
would change the paper's headline hot-spot experiment — i.e. how much
model error a machine WITH these features would exhibit.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core import predict_scatter_dxbsp
from repro.experiments.common import j90
from repro.simulator import simulate_scatter
from repro.workloads import hotspot

N = 64 * 1024


def _ablate():
    base = j90()
    variants = [
        ("baseline", base),
        ("combining", base.with_(combining=True)),
        ("cached d_hit=2", base.with_(cache_hit_delay=2.0)),
    ]
    rows = []
    for k in [64, 4096, 65536]:
        addr = hotspot(N, k, 1 << 24, seed=k)
        pred = predict_scatter_dxbsp(base.params(), addr)
        for name, machine in variants:
            sim = simulate_scatter(machine, addr).time
            rows.append((k, name, pred, sim, sim / pred))
    return rows


def test_extension_ablation(benchmark, save_result):
    rows = run_once(benchmark, _ablate)
    by = {(k, name): ratio for k, name, _, _, ratio in rows}
    # Baseline: the model is accurate.
    for k in (64, 4096, 65536):
        assert 0.9 < by[(k, "baseline")] < 1.1
    # Combining erases hot-spot serialization entirely at high k.
    assert by[(65536, "combining")] < 0.05
    # Bank caching divides the hot-location cost by ~d/d_hit.
    assert by[(65536, "cached d_hit=2")] < 0.25
    save_result(
        "ablation_extensions",
        format_table(
            ("contention k", "machine", "dxbsp pred", "simulated",
             "sim/pred"),
            rows,
            title="ablation: combining networks & cached banks "
                  "(mechanisms outside the (d,x)-BSP)",
        ),
    )
