"""Ablation — replication target in the QRQW binary search.

The replication schedule aims for expected per-copy contention tau; the
sweep shows the trade: tiny tau wastes memory and gather spread, huge tau
recreates the hot root.
"""

from conftest import run_once

from repro.analysis import compare_program, format_table
from repro.algorithms import build_implicit_tree, qrqw_binary_search
from repro.experiments.common import j90
from repro.workloads import TraceRecorder

import numpy as np

M = 16 * 1024
N_QUERIES = 32 * 1024


def _ablate():
    rng = np.random.default_rng(1995)
    keys = np.sort(rng.integers(0, 1 << 30, size=M, dtype=np.int64))
    tree = build_implicit_tree(keys)
    queries = rng.integers(0, 1 << 30, size=N_QUERIES, dtype=np.int64)
    rows = []
    for tau in (2, 8, 64, 1024, N_QUERIES):
        rec = TraceRecorder()
        qrqw_binary_search(tree, queries, target_contention=tau, seed=tau,
                           recorder=rec)
        cmp = compare_program(j90(), rec.program)
        worst = max(
            s.stats().max_location_contention for s in rec.program
        )
        rows.append((tau, worst, cmp.simulated_time))
    return rows


def test_replication_target(benchmark, save_result):
    rows = run_once(benchmark, _ablate)
    times = {tau: t for tau, _, t in rows}
    # No replication (tau = n) leaves the root hot and is far slower than
    # modest replication.
    assert times[N_QUERIES] > 3 * times[8]
    save_result(
        "ablation_replication",
        format_table(("target tau", "worst step contention", "simulated"),
                     rows, title="ablation: search-tree replication"),
    )
