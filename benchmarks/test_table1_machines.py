"""Bench T1 — regenerate Table 1 (machine bank expansion)."""

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import table1_machines


def test_table1_machines(benchmark, save_result):
    rows = run_once(benchmark, table1_machines.run)
    assert len(rows) >= 5
    for _, p, banks, x, d, _ in rows:
        assert x > 1  # every listed machine has more banks than processors
    save_result(
        "table1_machines",
        format_table(table1_machines.HEADERS, rows,
                     title="Table 1: bank expansion in real machines"),
    )
