"""Bench FX — regenerate the expansion figure (more banks than d·p still
helps) for the J90's and C90's bank delays."""

import numpy as np
from conftest import run_once

from repro.experiments import fig_expansion
from repro.experiments.common import j90
from repro.simulator import toy_machine


def test_fig_expansion_j90_delay(benchmark, save_result):
    series = run_once(benchmark, fig_expansion.run, machine=j90(), n=64 * 1024)
    sim = series.columns["simulated"]
    xs = series.x
    d = j90().d
    # Time improves up to x = d ...
    below = np.flatnonzero(xs <= d)
    assert sim[below[-1]] < sim[below[0]]
    # ... and keeps improving beyond x = d (the paper's second result).
    past = np.flatnonzero(xs >= d)
    assert sim[past[-1]] < sim[past[0]]
    # The limit of the remedy: location contention (hot k = 4096) floors
    # the hot pattern at ~d*k regardless of expansion, while the
    # spreadable pattern keeps dropping to the throughput bound.
    hot = series.columns["hotspot_simulated"]
    assert hot[-1] >= d * 4096
    assert hot[-1] > 5 * sim[-1]
    save_result("fig_expansion_j90", series.format())


def test_fig_expansion_c90_delay(benchmark, save_result):
    machine = toy_machine(p=16, x=1, d=6.0)  # C90's d, expansion swept
    series = run_once(benchmark, fig_expansion.run, machine=machine,
                      n=64 * 1024)
    sim = series.columns["simulated"]
    assert sim[-1] < sim[0]
    save_result("fig_expansion_c90", series.format())
