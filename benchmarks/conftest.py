"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see the
per-experiment index in DESIGN.md) and saves the paper-style text output
under ``benchmarks/results/`` so EXPERIMENTS.md can reference concrete
numbers from the last run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Write one experiment's rendered output to benchmarks/results/."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single timed round.

    The experiment functions sweep whole parameter grids (seconds each);
    statistical repetition comes from the sweep itself, so one round per
    benchmark keeps ``pytest benchmarks/`` under a minute while still
    recording wall-clock per experiment.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
