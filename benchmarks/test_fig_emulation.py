"""Bench TH — regenerate the QRQW emulation slowdown curves (Theorems
5.1/5.2)."""

import numpy as np
from conftest import run_once

from repro.experiments import fig_emulation
from repro.experiments.common import j90
from repro.simulator import toy_machine


def test_fig_emulation_j90_delay(benchmark, save_result):
    series = run_once(benchmark, fig_emulation.run, machine=j90(),
                      n_ops=32 * 1024)
    bound = series.columns["overhead_bound"]
    floor = series.columns["inevitable_d_over_gx"]
    measured = series.columns["measured"]
    # Slowdown bound: nonlinear, decreasing in x, always above the
    # inevitable d/(gx) floor; measurement sits below the bound.
    assert (np.diff(bound) <= 1e-9).all()
    assert (bound >= floor - 1e-9).all()
    assert (measured <= bound * 1.1).all()
    # x <= d regime rides the floor: at x=1 the bound is ~d/g-dominated.
    assert bound[0] >= floor[0]
    save_result("fig_emulation_j90", series.format())


def test_fig_emulation_c90_delay(benchmark, save_result):
    machine = toy_machine(p=8, x=1, d=6.0)
    series = run_once(benchmark, fig_emulation.run, machine=machine,
                      n_ops=32 * 1024)
    assert (np.diff(series.columns["overhead_bound"]) <= 1e-9).all()
    save_result("fig_emulation_c90", series.format())
