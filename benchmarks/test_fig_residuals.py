"""Bench RE — model residuals over random patterns from every family."""

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import fig_residuals


def test_fig_residuals(benchmark, save_result):
    rows = run_once(benchmark, fig_residuals.run, n=32 * 1024, trials=6)
    for name, _, dx_mean, dx_worst, bsp_mean, bsp_worst in rows:
        # The headline claim, as a statistic: the (d,x)-BSP accounts for
        # every family within a few percent...
        assert abs(dx_worst) < 0.05, name
    # ...while the bank-oblivious BSP collapses on contended families.
    by = {r[0]: r for r in rows}
    assert by["hotspot"][5] < -0.5
    assert by["ts-and2"][5] < -0.5
    # and is *also* fine on throughput-bound ones (the regime where the
    # two models coincide).
    assert abs(by["uniform"][5]) < 0.05
    save_result(
        "fig_residuals",
        format_table(fig_residuals.HEADERS, rows,
                     title="model residuals over random patterns"),
    )
