"""Perf — streaming simulation of an unbounded trace (S2).

Two measurements of the chunked streaming path:

* **Sustained streaming throughput** — a :class:`repro.simulator.
  stream.StreamSimulator` fed a 5M-address uniform trace on the J90 in
  64K-address chunks, telemetry off.  Chunks are generated on the fly
  (the whole trace never exists in memory), and ``tracemalloc`` tracks
  the allocation peak: the point of streaming is that peak memory is a
  function of the chunk budget, not the trace length, so the peak must
  stay under the kernel's working-set bound (a couple dozen chunk-sized
  temporaries) while the trace is 80x one chunk.
* **Served stream sessions** — a shorter prefix of the same trace
  pushed through a :class:`repro.serving.PredictionService` ``stream``
  session (open / 8 chunks / close), measuring the per-chunk JSON
  round-trip overhead on top of the raw simulator.

Saves the paper-style summary to ``benchmarks/results/perf_stream.txt``
(referenced by EXPERIMENTS.md) and writes machine-readable numbers to
``BENCH_stream.json`` at the repo root for ``tools/perf_guard.py``
(``stream_seconds`` is gated).
"""

import json
import pathlib
import time
import tracemalloc

import numpy as np
from conftest import run_once

from repro.serving import PredictionService
from repro.simulator import CRAY_J90, StreamSimulator

BENCH_JSON = pathlib.Path(__file__).parents[1] / "BENCH_stream.json"

CHUNK = 65536
N_CHUNKS = 80
N_TOTAL = CHUNK * N_CHUNKS
SPACE = 1 << 24

#: Allocation-peak budget: the batch kernel keeps a bounded working set
#: of chunk-sized temporaries (sort, cummax, per-bank folds) — about a
#: dozen arrays of CHUNK int64/float64 — independent of trace length.
PEAK_BUDGET_BYTES = 24 * CHUNK * 8


def _chunks(seed=7):
    rng = np.random.default_rng(seed)
    for _ in range(N_CHUNKS):
        yield rng.integers(0, SPACE, size=CHUNK, dtype=np.int64)


def _stream_trace():
    sim = StreamSimulator(CRAY_J90, max_chunk=CHUNK)
    for block in _chunks():
        update = sim.feed(block)
    return sim, update


def test_perf_stream(benchmark, save_result):
    # --- sustained simulator throughput under tracemalloc ------------
    # One throwaway chunk first so numpy's internal buffers and the
    # import-time allocations stay out of the measured peak.
    warmup = StreamSimulator(CRAY_J90, max_chunk=CHUNK)
    warmup.feed(next(_chunks()))
    tracemalloc.start()
    t0 = time.perf_counter()
    sim, last = _stream_trace()
    stream_seconds = time.perf_counter() - t0
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert last.n == N_TOTAL
    trace_bytes = N_TOTAL * 8
    assert peak < PEAK_BUDGET_BYTES, (
        f"streaming allocation peak {peak} bytes exceeds the chunk "
        f"working-set budget {PEAK_BUDGET_BYTES} (trace: {trace_bytes})"
    )
    assert peak < trace_bytes / 4, (
        f"allocation peak {peak} bytes scales with the {trace_bytes}-byte "
        "trace — the stream is accumulating, not streaming"
    )
    chunks_per_second = N_CHUNKS / stream_seconds
    addresses_per_second = N_TOTAL / stream_seconds

    run_once(benchmark, _stream_trace)

    # --- serving overhead per chunk (a shorter session: the JSON
    # round-trip, not the kernel, is what this measures) ---------------
    n_served = 8
    served_blocks = [
        block for _i, block in zip(range(n_served), _chunks())
    ]
    with PredictionService(flush_ms=1.0, deadline_ms=None,
                           disk_cache=False) as svc:
        assert svc.call({"op": "stream", "action": "open",
                         "stream_id": "bench", "machine": "j90"},
                        timeout=300).ok
        t0 = time.perf_counter()
        for block in served_blocks:
            resp = svc.call({"op": "stream", "action": "chunk",
                             "stream_id": "bench",
                             "addresses": block.tolist()}, timeout=300)
            assert resp.ok
        fin = svc.call({"op": "stream", "action": "close",
                        "stream_id": "bench"}, timeout=300)
        served_seconds = time.perf_counter() - t0
    assert fin.ok and fin.result["n"] == n_served * CHUNK
    reference = StreamSimulator(CRAY_J90, max_chunk=CHUNK)
    for block in served_blocks:
        reference.feed(block)
    assert fin.result["simulated_time"] == float(reference.result().time), \
        "served session diverged from the raw streaming simulator"

    lines = [
        f"streaming performance (uniform trace, Cray J90, "
        f"n={N_TOTAL}, chunk={CHUNK})",
        "",
        f"simulator: {N_CHUNKS} chunks in {stream_seconds:.3f} s  "
        f"({chunks_per_second:.1f} chunks/s, "
        f"{addresses_per_second / 1e6:.2f} M addr/s)",
        f"  allocation peak {peak / 1e6:.2f} MB  "
        f"(budget {PEAK_BUDGET_BYTES / 1e6:.2f} MB, "
        f"trace {trace_bytes / 1e6:.2f} MB — peak is chunk-bound)",
        "",
        f"served session: open + {n_served} chunks + close in "
        f"{served_seconds:.3f} s  "
        f"({served_seconds / n_served * 1000:.1f} ms/chunk round-trip)",
        "",
        "reading: the streamed prefix result is bit-identical to the "
        "one-shot engines at every chunk, while peak memory tracks the "
        "chunk budget, not the trace length.",
    ]
    save_result("perf_stream", "\n".join(lines))

    BENCH_JSON.write_text(json.dumps({
        "benchmark": "stream",
        "machine": "Cray J90",
        "n": N_TOTAL,
        "telemetry": "off",
        "chunk": CHUNK,
        "chunks": N_CHUNKS,
        "stream_seconds": round(stream_seconds, 6),
        "chunks_per_second": round(chunks_per_second, 2),
        "addresses_per_second": round(addresses_per_second, 1),
        "peak_traced_bytes": int(peak),
        "peak_budget_bytes": PEAK_BUDGET_BYTES,
        "served_seconds": round(served_seconds, 6),
    }, indent=2) + "\n")
