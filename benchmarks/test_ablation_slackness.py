"""Ablation — parallel slackness and work preservation (Section 5).

Emulates one QRQW program (written for 64 virtual processors) on
physically smaller machines at fixed (d, x): work preservation predicts
near-constant efficiency once slack amortizes the superstep overhead.
"""

import numpy as np
from conftest import run_once

from repro.analysis import format_table
from repro.emulation import QRQWPram, slackness_sweep
from repro.simulator import toy_machine
from repro.workloads import hotspot

P_VIRTUAL = 64


def _ablate():
    pram = QRQWPram(p=P_VIRTUAL, memory_size=1 << 24)
    for s in range(4):
        addr = hotspot(32 * 1024, 4, 1 << 24, seed=1995 + s)
        pram.write(addr, np.arange(addr.size), label=f"s{s}")
    template = toy_machine(p=P_VIRTUAL, x=16, d=14, L=1000)
    points = slackness_sweep(pram, template, sigmas=[1, 2, 4, 8, 16, 32])
    return [
        (pt.sigma, pt.machine_p, pt.emulated_time, pt.ideal_time,
         pt.efficiency)
        for pt in points
    ]


def test_slackness_work_preservation(benchmark, save_result):
    rows = run_once(benchmark, _ablate)
    effs = [r[4] for r in rows]
    # Efficiency improves with slack and plateaus (work preservation):
    assert effs[-1] > effs[0]
    assert abs(effs[-1] - effs[-2]) < 0.1
    assert effs[-1] > 0.5
    save_result(
        "ablation_slackness",
        format_table(
            ("sigma", "machine p", "emulated", "ideal (g*sigma*t_qrqw)",
             "efficiency"),
            rows, title="ablation: slackness & work preservation",
        ),
    )
