"""Bench FM — regenerate the module-map contention ratio vs expansion."""

import numpy as np
from conftest import run_once

from repro.experiments import fig_modulemap


def test_fig_modulemap(benchmark, save_result):
    series = run_once(benchmark, fig_modulemap.run, n=32 * 1024, trials=3)
    r_h1 = series.columns["ratio_h1"]
    r_rand = series.columns["ratio_random"]
    # Ratios are >= 1 by construction, the hash family behaves like the
    # idealized random map, and at the C90's expansion the overhead of
    # random mapping has decayed to a few percent.
    assert (r_h1 >= 1.0 - 1e-9).all()
    assert np.allclose(r_h1, r_rand, rtol=0.25)
    assert r_h1[-1] < 1.25
    save_result("fig_modulemap", series.format())
