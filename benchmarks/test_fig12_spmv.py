"""Bench F12 — regenerate Figure 12 (SpMV vs dense-column length)."""

import numpy as np
from conftest import run_once

from repro.experiments import fig12_spmv


def test_fig12_spmv(benchmark, save_result):
    series = run_once(benchmark, fig12_spmv.run)
    sim = series.columns["simulated"]
    bsp = series.columns["bsp"]
    dx = series.columns["dxbsp"]
    # Dense column drives measured time up; BSP misses it; the (d,x)-BSP
    # tracks the measurement across the sweep.
    assert sim[-1] > 3 * sim[0]
    assert bsp[-1] < 0.5 * sim[-1]
    assert np.allclose(dx, sim, rtol=0.25)
    save_result("fig12_spmv", series.format())
