"""Bench FN — regenerate the network worst case, versions (a)/(b)/(c)."""

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import fig_network


def test_fig_network_versions(benchmark, save_result):
    rows = run_once(benchmark, fig_network.run, n=64 * 1024)
    ratios = {r[0].split(" ")[0]: r[5] for r in rows}
    # Versions (a) and (b) close to the bank-only prediction; version (c)
    # off by a large factor (the paper observed up to 2.5x) because of the
    # single congested section.
    assert ratios["a"] < 1.3
    assert ratios["c"] >= 2.5
    assert ratios["b"] < ratios["c"]
    save_result(
        "fig_network",
        format_table(fig_network.HEADERS, rows,
                     title="network worst case (a)/(b)/(c)"),
    )
