"""Bench E2 — regenerate Experiment 2 (multiple hot locations)."""

import numpy as np
from conftest import run_once

from repro.experiments import exp2_multihot


def test_exp2_vs_nhot(benchmark, save_result):
    series = run_once(benchmark, exp2_multihot.run_vs_nhot, n=64 * 1024)
    sim = series.columns["simulated"]
    # Spreading the hot traffic over more locations recovers throughput.
    assert sim[0] > sim[-1]
    assert np.allclose(series.columns["dxbsp"], sim, rtol=0.35)
    save_result("exp2_multihot_vs_nhot", series.format())


def test_exp2_vs_fraction(benchmark, save_result):
    series = run_once(benchmark, exp2_multihot.run_vs_fraction, n=64 * 1024)
    sim = series.columns["simulated"]
    assert sim[-1] > sim[0]
    assert np.allclose(series.columns["dxbsp"], sim, rtol=0.35)
    save_result("exp2_multihot_vs_fraction", series.format())
