"""Bench S2 figure — streamed-vs-one-shot parity on the 64K hot spot.

The Experiment-1 trace (64K scatter, k = 4096 requests on one hot
address, J90) replayed as a *stream*: 16 chunks of 4K addresses through
a :class:`repro.simulator.stream.StreamSimulator`.  At every prefix the
streamed result must equal a one-shot event-engine run of the same
addresses **exactly** — that is the parity table — while the rolling
(d,x)-BSP prediction for the prefix tracks the streamed simulation as
the hot spot accumulates past the knee.

A second pass streams the *concentrated* variant — the same 4096 hot
requests packed into the middle of the trace instead of shuffled
through it — where the per-chunk delta-time sparkline shows the
contention wave arriving and passing, the view only a streaming
consumer has.

Writes ``benchmarks/results/fig_stream_parity.txt`` (the table plus a
per-chunk delta-time sparkline), referenced by EXPERIMENTS.md §S2.
"""

import numpy as np
from conftest import run_once

from repro.analysis import Series, series_panel
from repro.core import predict_scatter_dxbsp
from repro.simulator import CRAY_J90, StreamSimulator, simulate_scatter_engine
from repro.workloads import hotspot

N = 64 * 1024
K = 4096
CHUNK = 4096
SPACE = 1 << 20


def _concentrated(trace):
    """The same multiset of addresses with the hot burst mid-trace."""
    hot = trace == np.bincount(trace).argmax()
    background = trace[~hot]
    half = background.size // 2
    return np.concatenate(
        [background[:half], trace[hot], background[half:]])


def _stream(trace):
    """Stream ``trace``; return per-prefix rolling numbers."""
    sim = StreamSimulator(CRAY_J90, max_chunk=CHUNK)
    rows = []
    for lo in range(0, N, CHUNK):
        up = sim.feed(trace[lo:lo + CHUNK])
        rows.append((up.n, up.delta_time, up.result.time,
                     predict_scatter_dxbsp(CRAY_J90.params(), trace[:up.n])))
    return rows


def _stream_prefixes():
    trace = hotspot(N, K, SPACE, seed=1995)
    return trace, _stream(trace)


def test_fig_stream_parity(benchmark, save_result):
    trace, rows = run_once(benchmark, _stream_prefixes)

    # Parity: the streamed prefix equals the one-shot event engine
    # bit for bit, at every one of the 16 prefixes.
    one_shot = []
    for n, _delta, streamed, _dx in rows:
        res = simulate_scatter_engine(CRAY_J90, trace[:n], engine="event")
        assert streamed == res.time, f"prefix n={n} diverged"
        one_shot.append(res.time)

    ns = np.array([r[0] for r in rows], dtype=float)
    streamed = np.array([r[2] for r in rows])
    dx = np.array([r[3] for r in rows])
    # The rolling prediction tracks the streamed simulation through the
    # knee (loose bound; E1 measures the tight one on full scatters).
    assert np.allclose(dx, streamed, rtol=0.3)

    s = Series(name=f"fig_stream_parity (Cray J90, n={N}, k={K}, "
                    f"chunk={CHUNK})",
               x_label="prefix n", x=ns)
    s.add("dxbsp(prefix)", dx)
    s.add("streamed", streamed)
    s.add("one-shot", np.array(one_shot))

    # Concentrated variant: same addresses, hot burst mid-trace.  The
    # end-to-end totals agree with the shuffled run only approximately
    # (arrival order matters inside a superstep), but each prefix is
    # still exactly the one-shot result — spot-check the last one.
    burst_rows = _stream(_concentrated(trace))
    final = simulate_scatter_engine(
        CRAY_J90, _concentrated(trace), engine="event")
    assert burst_rows[-1][2] == final.time

    deltas = Series(name="per-chunk delta_time, hot burst mid-trace "
                         "(the rolling view a stream consumer gets)",
                    x_label="chunk",
                    x=np.arange(len(burst_rows), dtype=float))
    deltas.add("delta", np.array([r[1] for r in burst_rows]))

    save_result("fig_stream_parity",
                s.format() + "\n\n" + series_panel(deltas) + "\n\n"
                "reading: streamed == one-shot at every prefix (exact), "
                "and the rolling (d,x)-BSP prediction rides the same "
                "curve.  With the burst packed mid-trace the per-chunk "
                "deltas surface the contention wave as it arrives — "
                "the one-shot engines only ever see the total.")
