"""Bench F10 — regenerate the QRQW-vs-EREW binary search comparison."""

from conftest import run_once

from repro.experiments import fig10_binary_search


def test_fig10_binary_search(benchmark, save_result):
    series = run_once(benchmark, fig10_binary_search.run, m=64 * 1024)
    q = series.columns["qrqw_simulated"]
    e = series.columns["erew_simulated"]
    # The replicated-tree QRQW search wins over a wide range of n (the
    # sort-based EREW search amortizes only at very large n).
    assert (q[:-1] < e[:-1]).all()
    save_result("fig10_binary_search", series.format())
