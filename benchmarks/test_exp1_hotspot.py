"""Bench E1 — regenerate Experiment 1 (time vs single-location
contention) on both the J90 and C90 presets."""

import numpy as np
from conftest import run_once

from repro.core import crossover_contention
from repro.experiments import exp1_hotspot
from repro.experiments.common import c90, j90


def _check(series, machine, n):
    bsp = series.columns["bsp"]
    dx = series.columns["dxbsp"]
    sim = series.columns["simulated"]
    knee = crossover_contention(machine.params(), n)
    ks = series.x
    # Flat region below the knee, slope-d region above it.
    below = ks < knee / 2
    above = ks > knee * 4
    if below.any():
        assert np.allclose(dx[below], bsp[below])
    if above.any():
        ratio = dx[above][-1] / bsp[above][-1]
        assert ratio > machine.d / machine.g * 0.5
    assert np.allclose(dx, sim, rtol=0.3)


def test_exp1_hotspot_j90(benchmark, save_result):
    n = 64 * 1024
    series = run_once(benchmark, exp1_hotspot.run, machine=j90(), n=n)
    _check(series, j90(), n)
    save_result("exp1_hotspot_j90", series.format())


def test_exp1_hotspot_c90(benchmark, save_result):
    n = 64 * 1024
    series = run_once(benchmark, exp1_hotspot.run, machine=c90(), n=n)
    _check(series, c90(), n)
    save_result("exp1_hotspot_c90", series.format())
