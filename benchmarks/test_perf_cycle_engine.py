"""Perf — the three cycle engines on the Exp-1 hot-spot scatter.

Times the reference tick loop, the event-driven engine and the
vectorized batch engine on the Experiment-1 hot-spot scatter at
S = 64K requests on the J90 (contention k = n: every request targets
the hot location, so the run is maximally contention-dominated — the
regime where the tick loop burns ~d*n nearly idle cycles while the
event engine jumps between the d-spaced serve events and the batch
engine resolves the whole superstep with one kernel call).  Asserts
bit-identical results across all three, a >= 10x event-over-tick
speedup and a >= 10x batch-over-event speedup, saves the paper-style
comparison under ``benchmarks/results/`` and writes machine-readable
numbers to ``BENCH_cycle_engine.json`` at the repo root for
``tools/perf_guard.py``.
"""

import json
import pathlib
import time

import numpy as np
from conftest import run_once

from repro.experiments.common import DEFAULT_SEED, DEFAULT_SPACE, j90
from repro.simulator import simulate_scatter_cycle
from repro.workloads import hotspot

BENCH_JSON = pathlib.Path(__file__).parents[1] / "BENCH_cycle_engine.json"

N = 64 * 1024
K = N
EVENT_REPEATS = 3
BATCH_REPEATS = 5


def _best_of(repeats, fn, *args, **kwargs):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_perf_cycle_engine(benchmark, save_result):
    machine = j90()
    addr = hotspot(N, K, DEFAULT_SPACE, seed=DEFAULT_SEED)

    tick_s, tick = _best_of(1, simulate_scatter_cycle, machine, addr,
                            engine="tick")
    event_s, event = _best_of(EVENT_REPEATS, simulate_scatter_cycle,
                              machine, addr, engine="event")
    batch_s, batch = _best_of(BATCH_REPEATS, simulate_scatter_cycle,
                              machine, addr, engine="batch")
    run_once(benchmark, simulate_scatter_cycle, machine, addr,
             engine="batch")

    # The optimizations are only valid if they change nothing but the
    # clock: every engine must agree bit for bit.
    for fast in (event, batch):
        assert fast.time == tick.time
        assert (fast.bank_loads == tick.bank_loads).all()
        assert fast.stalled_cycles == tick.stalled_cycles
        assert fast.mean_wait == tick.mean_wait
        assert fast.max_wait == tick.max_wait
    # Telemetry is opt-in: the timed hot path must not have collected it.
    assert event.telemetry is None and tick.telemetry is None
    assert batch.telemetry is None

    speedup = tick_s / event_s
    assert speedup >= 10.0, (
        f"event engine only {speedup:.1f}x faster than tick loop "
        f"({event_s:.3f}s vs {tick_s:.3f}s)"
    )
    batch_speedup = event_s / batch_s
    assert batch_speedup >= 10.0, (
        f"batch engine only {batch_speedup:.1f}x faster than event engine "
        f"({batch_s:.4f}s vs {event_s:.3f}s)"
    )

    lines = [
        "cycle engine performance (Exp 1 hot-spot, "
        f"{machine.name}, n={N}, k={K})",
        "",
        f"{'engine':<10} {'seconds':>10} {'sim cycles':>12}",
        f"{'tick':<10} {tick_s:>10.3f} {tick.time:>12.0f}",
        f"{'event':<10} {event_s:>10.3f} {event.time:>12.0f}",
        f"{'batch':<10} {batch_s:>10.4f} {batch.time:>12.0f}",
        "",
        f"event over tick: {speedup:.1f}x, batch over event: "
        f"{batch_speedup:.1f}x (bit-identical results)",
    ]
    save_result("perf_cycle_engine", "\n".join(lines))

    BENCH_JSON.write_text(json.dumps({
        "benchmark": "cycle_engine",
        "machine": machine.name,
        "n": N,
        "k": K,
        "telemetry": "off",
        "tick_seconds": round(tick_s, 6),
        "event_seconds": round(event_s, 6),
        "batch_seconds": round(batch_s, 6),
        "speedup": round(speedup, 2),
        "batch_speedup": round(batch_speedup, 2),
        "sim_cycles": float(event.time),
    }, indent=2) + "\n")


GRID_POINTS = 64
GRID_N = 256
GRID_REPEATS = 3


def test_perf_grid_fusion(benchmark, save_result):
    """Fused whole-grid evaluation vs. per-point pooled dispatch.

    A 64-point same-``n`` sweep (hot-spot scatter, J90, batch engine)
    submitted through :func:`repro.experiments.runner.run_grid` twice:
    once with grid fusion on (one fused :func:`simulate_scatter_grid`
    task, serial, no pool) and once forced down the legacy path
    (``fuse=False``, four pooled workers evaluating points one by one).
    The sweep uses a small per-point ``n``, the regime grid fusion
    targets: per-task dispatch overhead dominates, so collapsing the
    sweep into one kernel pass wins even against a warm pool.  Asserts
    per-point equality of the two result lists and a >= 5x
    points-per-second win for the fused pass, then merges the grid
    timings into ``BENCH_cycle_engine.json`` next to the engine keys so
    ``tools/perf_guard.py`` gates ``grid_fused_seconds``.
    """
    from repro.experiments import runner
    from repro.serving.service import evaluate_point

    machine = j90()
    points = [
        dict(op="simulate", machine=machine,
             addresses=hotspot(GRID_N, GRID_N, DEFAULT_SPACE, seed=s),
             engine="batch", bank_map_kind="interleave", map_seed=0)
        for s in range(GRID_POINTS)
    ]

    runner.reset_grid_stats()
    fused_s, fused = _best_of(GRID_REPEATS, runner.run_grid,
                              evaluate_point, points,
                              parallel=1, cache=False)
    stats = runner.grid_stats()
    # Evidence the fused path actually ran: every point of every repeat
    # went through the fused grid task, none through per-point calls.
    assert stats.fused_points == GRID_REPEATS * GRID_POINTS
    assert stats.fused_seconds > 0.0
    run_once(benchmark, runner.run_grid, evaluate_point, points,
             parallel=1, cache=False)

    pooled_s, pooled = _best_of(GRID_REPEATS, runner.run_grid,
                                evaluate_point, points, parallel=4,
                                cache=False, fuse=False)

    # Fusion is only a performance lever: both passes must agree on
    # every point.
    assert fused == pooled

    fused_pps = GRID_POINTS / fused_s
    pooled_pps = GRID_POINTS / pooled_s
    grid_speedup = pooled_s / fused_s
    assert grid_speedup >= 5.0, (
        f"fused grid pass only {grid_speedup:.1f}x faster than per-point "
        f"pooled dispatch ({fused_s:.3f}s vs {pooled_s:.3f}s for "
        f"{GRID_POINTS} points)"
    )

    lines = [
        "grid fusion performance (hot-spot sweep, "
        f"{machine.name}, {GRID_POINTS} points, n={GRID_N})",
        "",
        f"{'dispatch':<18} {'seconds':>10} {'points/sec':>12}",
        f"{'fused (1 task)':<18} {fused_s:>10.4f} {fused_pps:>12.0f}",
        f"{'pooled (4 procs)':<18} {pooled_s:>10.3f} {pooled_pps:>12.0f}",
        "",
        f"fused over pooled: {grid_speedup:.1f}x "
        "(bit-identical results)",
    ]
    save_result("perf_grid_fusion", "\n".join(lines))

    # Merge with the engine timings written by test_perf_cycle_engine
    # (pytest runs it first within this file); a standalone run of this
    # test still produces a guard-comparable file.
    data = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.is_file() \
        else {"benchmark": "cycle_engine", "machine": machine.name,
              "n": N, "k": K, "telemetry": "off"}
    data.update({
        "grid_points": GRID_POINTS,
        "grid_n": GRID_N,
        "grid_fused_seconds": round(fused_s, 6),
        "grid_pooled_seconds": round(pooled_s, 6),
        "grid_points_per_sec": round(fused_pps, 1),
        "grid_pooled_points_per_sec": round(pooled_pps, 1),
        "grid_fused_speedup": round(grid_speedup, 2),
    })
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")
