"""Perf — the three cycle engines on the Exp-1 hot-spot scatter.

Times the reference tick loop, the event-driven engine and the
vectorized batch engine on the Experiment-1 hot-spot scatter at
S = 64K requests on the J90 (contention k = n: every request targets
the hot location, so the run is maximally contention-dominated — the
regime where the tick loop burns ~d*n nearly idle cycles while the
event engine jumps between the d-spaced serve events and the batch
engine resolves the whole superstep with one kernel call).  Asserts
bit-identical results across all three, a >= 10x event-over-tick
speedup and a >= 10x batch-over-event speedup, saves the paper-style
comparison under ``benchmarks/results/`` and writes machine-readable
numbers to ``BENCH_cycle_engine.json`` at the repo root for
``tools/perf_guard.py``.
"""

import json
import pathlib
import time

import numpy as np
from conftest import run_once

from repro.experiments.common import DEFAULT_SEED, DEFAULT_SPACE, j90
from repro.simulator import simulate_scatter_cycle
from repro.workloads import hotspot

BENCH_JSON = pathlib.Path(__file__).parents[1] / "BENCH_cycle_engine.json"

N = 64 * 1024
K = N
EVENT_REPEATS = 3
BATCH_REPEATS = 5


def _best_of(repeats, fn, *args, **kwargs):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_perf_cycle_engine(benchmark, save_result):
    machine = j90()
    addr = hotspot(N, K, DEFAULT_SPACE, seed=DEFAULT_SEED)

    tick_s, tick = _best_of(1, simulate_scatter_cycle, machine, addr,
                            engine="tick")
    event_s, event = _best_of(EVENT_REPEATS, simulate_scatter_cycle,
                              machine, addr, engine="event")
    batch_s, batch = _best_of(BATCH_REPEATS, simulate_scatter_cycle,
                              machine, addr, engine="batch")
    run_once(benchmark, simulate_scatter_cycle, machine, addr,
             engine="batch")

    # The optimizations are only valid if they change nothing but the
    # clock: every engine must agree bit for bit.
    for fast in (event, batch):
        assert fast.time == tick.time
        assert (fast.bank_loads == tick.bank_loads).all()
        assert fast.stalled_cycles == tick.stalled_cycles
        assert fast.mean_wait == tick.mean_wait
        assert fast.max_wait == tick.max_wait
    # Telemetry is opt-in: the timed hot path must not have collected it.
    assert event.telemetry is None and tick.telemetry is None
    assert batch.telemetry is None

    speedup = tick_s / event_s
    assert speedup >= 10.0, (
        f"event engine only {speedup:.1f}x faster than tick loop "
        f"({event_s:.3f}s vs {tick_s:.3f}s)"
    )
    batch_speedup = event_s / batch_s
    assert batch_speedup >= 10.0, (
        f"batch engine only {batch_speedup:.1f}x faster than event engine "
        f"({batch_s:.4f}s vs {event_s:.3f}s)"
    )

    lines = [
        "cycle engine performance (Exp 1 hot-spot, "
        f"{machine.name}, n={N}, k={K})",
        "",
        f"{'engine':<10} {'seconds':>10} {'sim cycles':>12}",
        f"{'tick':<10} {tick_s:>10.3f} {tick.time:>12.0f}",
        f"{'event':<10} {event_s:>10.3f} {event.time:>12.0f}",
        f"{'batch':<10} {batch_s:>10.4f} {batch.time:>12.0f}",
        "",
        f"event over tick: {speedup:.1f}x, batch over event: "
        f"{batch_speedup:.1f}x (bit-identical results)",
    ]
    save_result("perf_cycle_engine", "\n".join(lines))

    BENCH_JSON.write_text(json.dumps({
        "benchmark": "cycle_engine",
        "machine": machine.name,
        "n": N,
        "k": K,
        "telemetry": "off",
        "tick_seconds": round(tick_s, 6),
        "event_seconds": round(event_s, 6),
        "batch_seconds": round(batch_s, 6),
        "speedup": round(speedup, 2),
        "batch_speedup": round(batch_speedup, 2),
        "sim_cycles": float(event.time),
    }, indent=2) + "\n")
