"""Shim for environments without the `wheel` package (offline editable
installs via `python setup.py develop`); all metadata lives in
pyproject.toml."""
from setuptools import setup

setup()
