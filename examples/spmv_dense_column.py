#!/usr/bin/env python
"""Scenario: why does my sparse solver slow down on THIS matrix?

The paper's Figure-12 situation, played out as a user story: an iterative
solver does SpMV every step; most matrices run at memory bandwidth, but
one matrix with a popular column (think: a ground node in a circuit, a
hub in a graph Laplacian) is mysteriously slow.  The (d,x)-BSP diagnosis:
the input-vector gather reads the popular column's entry once per
containing row, and those reads serialize at one memory bank, d cycles
apiece.

Run:  python examples/spmv_dense_column.py
"""

import numpy as np

from repro.algorithms import dense_column_csr, spmv
from repro.analysis import compare_program
from repro.simulator import CRAY_J90
from repro.workloads import TraceRecorder

N_ROWS = N_COLS = 16 * 1024
NNZ_PER_ROW = 4


def analyze(dense_len: int, seed: int = 0) -> tuple:
    matrix = dense_column_csr(N_ROWS, N_COLS, NNZ_PER_ROW, dense_len,
                              seed=seed)
    x = np.random.default_rng(seed).standard_normal(N_COLS)
    recorder = TraceRecorder()
    y = spmv(matrix, x, recorder=recorder)          # compute + capture trace
    assert np.isfinite(y).all()
    cmp = compare_program(CRAY_J90, recorder.program)
    return matrix, cmp


def main() -> None:
    print(f"SpMV on {N_ROWS}x{N_COLS}, {NNZ_PER_ROW} nnz/row, "
          f"machine: {CRAY_J90.name} (d={CRAY_J90.d:.0f})\n")
    header = (f"{'dense col len':>13}  {'gather k':>8}  {'BSP pred':>10}  "
              f"{'(d,x) pred':>10}  {'simulated':>10}  {'ns/nnz*':>8}")
    print(header)
    print("-" * len(header))
    for dense_len in [0, 512, 2048, 8192, 16384]:
        matrix, cmp = analyze(dense_len)
        per_nnz = cmp.simulated_time / matrix.nnz
        print(f"{dense_len:>13}  {matrix.max_column_count():>8}  "
              f"{cmp.bsp_time:>10.0f}  {cmp.dxbsp_time:>10.0f}  "
              f"{cmp.simulated_time:>10.0f}  {per_nnz:>8.2f}")
    print("\n* cycles per nonzero.  A single dense column drags the whole "
          "kernel to d-cycles-per-row; no bank mapping can fix location "
          "contention — restructure the matrix (split the column) or "
          "replicate the hot vector entry.")


if __name__ == "__main__":
    main()
