#!/usr/bin/env python
"""Scenario: how many banks does a machine need?

A machine designer's question, straight from the paper's Section 3: with
processors this fast and DRAM banks this slow (delay d), is the "natural"
d banks per processor enough?  The sweep below sizes a J90-class memory
system against an irregular workload and shows the paper's answer —
bandwidth parity at x = d/g is NOT the end of the story; random-mapping
imbalance keeps improving past it.

Run:  python examples/size_the_memory_system.py
"""

from repro.core import per_processor_load
from repro.mapping import RandomMap, max_load_whp
from repro.simulator import MachineConfig, simulate_scatter
from repro.workloads import uniform_random

P = 8            # processors
D = 14           # DRAM bank delay, cycles (J90's)
N = 64 * 1024    # requests per superstep
SEED = 1995


def main() -> None:
    addr = uniform_random(N, 1 << 24, seed=SEED)
    # RandomMap works for any bank count (the polynomial hash families
    # need a power of two); the sweep includes x = d = 14 for the parity
    # marker, so use the idealized random mapping throughout.
    mapping = RandomMap(SEED)
    ideal = per_processor_load(N, P)  # g*n/p floor, g=1
    print(f"p={P}, d={D}, irregular scatter of n={N}"
          f"  (pipeline floor: {ideal} cycles)\n")
    header = (f"{'x':>5}  {'banks':>6}  {'whp max load':>12}  "
              f"{'simulated':>10}  {'vs floor':>8}")
    print(header)
    print("-" * len(header))
    for x in [1, 2, 4, 8, 14, 16, 32, 64, 128]:
        banks = x * P
        machine = MachineConfig(name=f"x={x}", p=P, n_banks=banks, d=D)
        sim = simulate_scatter(machine, addr, mapping).time
        whp = max_load_whp(N, banks, failure_prob=1e-3)
        marker = "  <- bandwidth parity (x = d/g)" if x == D else ""
        print(f"{x:>5}  {banks:>6}  {whp:>12}  {sim:>10.0f}  "
              f"{sim / ideal:>7.2f}x{marker}")
    print("\nPast x = d/g the aggregate bandwidth already matches the "
          "processors, yet time keeps dropping: more banks = more bins = "
          "a flatter maximum bank load under random mapping.  That is the "
          "paper's case for the C90's 64 banks per processor.")


if __name__ == "__main__":
    main()
