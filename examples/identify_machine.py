#!/usr/bin/env python
"""Scenario: what machine am I on?  Recovering d from measurements.

The paper validated its model with parameters read off hardware manuals.
This example closes the loop the other way: treat a machine as a black
box, measure a contention sweep, and *estimate* its bank delay and
throughput floor from the curve — then compare against the truth.

Run:  python examples/identify_machine.py
"""

from repro.analysis import estimate_bank_delay, measure_contention_curve
from repro.simulator import CRAY_C90, CRAY_J90, toy_machine

MYSTERY_MACHINES = [
    CRAY_J90,
    CRAY_C90,
    toy_machine(p=8, x=32, d=21).with_(name="mystery DRAM box"),
]


def main() -> None:
    n = 32 * 1024
    print(f"contention sweep of n={n} per machine; estimating d "
          f"from the measured curve\n")
    header = (f"{'machine':<18} {'true d':>7} {'estimated d':>11} "
              f"{'floor':>8} {'knee k*':>8}")
    print(header)
    print("-" * len(header))
    for machine in MYSTERY_MACHINES:
        ks, ts = measure_contention_curve(machine, n=n, seed=42)
        est = estimate_bank_delay(ks, ts)
        print(f"{machine.name:<18} {machine.d:>7.0f} {est.d:>11.2f} "
              f"{est.floor:>8.0f} {est.knee:>8.0f}")
    print("\nThe slope of time-vs-contention above the knee IS the bank "
          "delay: two regimes, two machine parameters, recoverable from "
          "a dozen scatters.  On real hardware, replace "
          "measure_contention_curve with wall-clock timings of the same "
          "hot-spot patterns (repro.workloads.hotspot).")


if __name__ == "__main__":
    main()
