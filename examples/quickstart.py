#!/usr/bin/env python
"""Quickstart: predict and simulate memory bank contention.

Builds the paper's Cray J90 machine, scatters 64K elements with a growing
hot spot, and shows the three numbers the paper is about:

* the BSP prediction (bank-oblivious — flat, wrong at high contention),
* the (d,x)-BSP prediction (tracks reality),
* the simulated "measured" time.

Run:  python examples/quickstart.py
"""

from repro.analysis import Series, compare_scatter
from repro.core import crossover_contention
from repro.simulator import CRAY_J90
from repro.workloads import hotspot

N = 64 * 1024          # elements per scatter (the paper's S)
SPACE = 1 << 24        # address space for the background traffic


def main() -> None:
    machine = CRAY_J90
    params = machine.params()
    print(f"machine: {machine.name}  p={machine.p}  banks={machine.n_banks} "
          f"(x={machine.x:.0f})  bank delay d={machine.d:.0f}")
    knee = crossover_contention(params, N)
    print(f"scatter of n={N}: contention starts to dominate at "
          f"k* = g*n/(p*d) ~ {knee:.0f}\n")

    series = Series(name="quickstart", x_label="contention k", x=[])
    ks = [1, 16, 256, 1024, 4096, 16384, 65536]
    rows = []
    for k in ks:
        addr = hotspot(N, k, SPACE, seed=k)
        cmp = compare_scatter(machine, addr)
        rows.append((k, cmp.bsp_time, cmp.dxbsp_time, cmp.simulated_time,
                     f"{cmp.bsp_underprediction:.1f}x"))
    header = f"{'k':>8}  {'BSP':>10}  {'(d,x)-BSP':>10}  {'simulated':>10}  {'sim/BSP':>8}"
    print(header)
    print("-" * len(header))
    for k, bsp, dx, sim, ratio in rows:
        print(f"{k:>8}  {bsp:>10.0f}  {dx:>10.0f}  {sim:>10.0f}  {ratio:>8}")
    print("\nThe BSP column stays flat while measured time climbs with "
          "slope d — the discrepancy the (d,x)-BSP was built to fix.")


if __name__ == "__main__":
    main()
