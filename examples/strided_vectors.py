#!/usr/bin/env python
"""Scenario: the vector programmer's classic — strides and their cure.

Before worrying about irregular patterns, every vector-machine programmer
met the strided pathology: a power-of-two stride maps onto a handful of
banks under low-order interleaving, serializing at the bank delay.  This
walk-through reproduces the classical curve on the J90 preset, then
applies the paper's Section-4 remedy (a pseudo-random multiplicative-hash
bank map) and shows the trade: strides flatten to uniform speed, at a
small module-map premium on the strides interleaving served perfectly.

Run:  python examples/strided_vectors.py
"""

from repro.analysis import banks_touched, predict_strided_time
from repro.mapping import linear_hash
from repro.simulator import CRAY_J90, simulate_scatter
from repro.workloads import strided

N = 64 * 1024
SEED = 1995


def main() -> None:
    machine = CRAY_J90
    mapping = linear_hash(SEED)
    print(f"stride-s scatter of n={N} on {machine.name} "
          f"({machine.n_banks} banks, d={machine.d:.0f})\n")
    header = (f"{'stride':>7}  {'banks hit':>9}  {'predicted':>10}  "
              f"{'interleaved':>11}  {'hashed':>8}")
    print(header)
    print("-" * len(header))
    for stride in [1, 2, 3, 7, 8, 32, 128, 512, 1000]:
        addr = strided(N, stride)
        pred = predict_strided_time(machine, N, stride)
        t_il = simulate_scatter(machine, addr).time
        t_h = simulate_scatter(machine, addr, mapping).time
        print(f"{stride:>7}  {banks_touched(stride, machine.n_banks):>9}  "
              f"{pred:>10.0f}  {t_il:>11.0f}  {t_h:>8.0f}")
    print("\nOdd strides are free (coprime with the bank count); "
          "power-of-two strides collapse onto few banks and pay "
          "d-per-element.  Hashing the bank map makes every stride run "
          "at (near) unit-stride speed — which is why the paper can then "
          "treat *location* contention as the one remaining enemy.")


if __name__ == "__main__":
    main()
