#!/usr/bin/env python
"""Tutorial: simulate a trace that never fits in memory.

The one-shot engines want the whole address trace as an array; a
production trace is a firehose.  ``StreamSimulator`` consumes the trace
in chunks and carries the exact per-bank state between them, so after
every chunk you hold the *full-prefix* simulation result — bit-identical
to the one-shot engines on that prefix — while memory stays bounded by
the chunk size:

1. feed a phase-changing trace chunk by chunk, watching the rolling
   per-chunk cost as a hot spot develops and cools;
2. verify the streamed total against a one-shot event simulation of the
   same addresses;
3. checkpoint mid-stream and resume in a fresh simulator, as a new
   process would after a restart.

Run:  python examples/stream_trace.py
"""

import numpy as np

from repro.simulator import CRAY_J90, StreamSimulator, simulate_scatter_engine
from repro.workloads import hotspot, uniform_random

CHUNK = 4096
SPACE = 1 << 20


def trace_chunks(n_chunks: int = 16, seed: int = 1995):
    """A synthetic unbounded trace: uniform, then a hot spot flares up.

    Chunks are generated on demand — nothing here retains the trace.
    """
    rng = np.random.default_rng(seed)
    for i in range(n_chunks):
        # Middle chunks concentrate k requests on one hot address.
        flare = max(0, 8 - abs(i - n_chunks // 2)) / 8.0
        k = int(flare * 256)
        if k > 1:
            yield hotspot(CHUNK, k, SPACE, seed=rng,
                          hot_address=0xBEEF)
        else:
            yield uniform_random(CHUNK, SPACE, seed=rng)


def main() -> None:
    machine = CRAY_J90
    sim = StreamSimulator(machine, max_chunk=CHUNK)

    # 1. Stream the trace, printing the rolling cost per chunk.  The
    #    delta columns come straight from each StreamUpdate; `time` is
    #    the exact simulated time of the whole prefix so far.
    print(f"streaming onto {machine.name} "
          f"(chunk={CHUNK}, {machine.n_banks} banks)\n")
    print(f"{'chunk':>5} {'n':>8} {'delta_time':>11} "
          f"{'max_bank_load':>14} {'prefix time':>12}")
    seen = []
    for block in trace_chunks():
        seen.append(block)
        up = sim.feed(block)
        print(f"{up.chunk_index:>5} {up.n:>8} {up.delta_time:>11.0f} "
              f"{up.result.max_bank_load:>14} {up.result.time:>12.0f}")

    # 2. The streamed result is the one-shot result, bit for bit.
    streamed = sim.result()
    one_shot = simulate_scatter_engine(
        machine, np.concatenate(seen), engine="event")
    assert streamed.time == one_shot.time
    assert streamed.max_wait == one_shot.max_wait
    print(f"\nstreamed prefix == one-shot event engine: "
          f"time {streamed.time:.0f}, max wait {streamed.max_wait:.0f}")
    print(f"prefix digest: {sim.prefix_digest[:16]}…  (chunking-invariant)")

    # 3. Checkpoint and resume, as a restarted process would.  The
    #    checkpoint lives in the experiment runner's memo, keyed by the
    #    prefix digest, so only the *same* prefix can resume from it.
    digest, n = sim.prefix_digest, sim.n
    if sim.save_checkpoint() is None:
        print("\nrunner cache disabled; skipping the checkpoint leg")
        return
    resumed = StreamSimulator(machine, max_chunk=CHUNK)
    assert resumed.resume_from_checkpoint(digest, n)
    extra = uniform_random(CHUNK, SPACE, seed=7)
    a, b = sim.feed(extra), resumed.feed(extra)
    assert a.result.time == b.result.time
    print(f"\nresumed from checkpoint at n={n}; next chunk agrees "
          f"(time {b.result.time:.0f})")


if __name__ == "__main__":
    main()
