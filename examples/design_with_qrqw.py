#!/usr/bin/env python
"""Scenario: designing an algorithm with *accounted* contention.

The QRQW lesson of the paper's Section 6: you don't need a contention-free
(EREW) algorithm — you need contention you can afford.  This example walks
the random-permutation case end to end:

1. run both algorithms, capturing their memory traces;
2. cost the traces on the (d,x)-BSP and simulate them;
3. run the same QRQW program through the formal emulation machinery to
   check the Theorem 5.1/5.2 bound covers the measurement.

Run:  python examples/design_with_qrqw.py
"""

import numpy as np

from repro.algorithms import erew_random_permutation, qrqw_random_permutation
from repro.analysis import compare_program
from repro.emulation import QRQWPram, emulate_qrqw, emulation_overhead
from repro.simulator import CRAY_J90
from repro.workloads import TraceRecorder, hotspot

N = 64 * 1024
SEED = 1995


def main() -> None:
    machine = CRAY_J90
    print(f"random permutation of n={N} on {machine.name}\n")

    rec_q = TraceRecorder()
    perm, stats = qrqw_random_permutation(N, seed=SEED, recorder=rec_q)
    assert np.array_equal(np.sort(perm), np.arange(N))
    cmp_q = compare_program(machine, rec_q.program)

    rec_e = TraceRecorder()
    erew_random_permutation(N, seed=SEED, recorder=rec_e)
    cmp_e = compare_program(machine, rec_e.program)

    print(f"QRQW dart throwing : {stats.rounds} rounds, "
          f"{rec_q.program.total_requests} requests, max step contention "
          f"{max(stats.per_round_contention)}")
    print(f"  predicted {cmp_q.dxbsp_time:,.0f} cycles, "
          f"simulated {cmp_q.simulated_time:,.0f}")
    print(f"EREW radix sorting : {rec_e.program.total_requests} requests, "
          f"contention-free by construction")
    print(f"  predicted {cmp_e.dxbsp_time:,.0f} cycles, "
          f"simulated {cmp_e.simulated_time:,.0f}")
    speedup = cmp_e.simulated_time / cmp_q.simulated_time
    print(f"\n-> the contended algorithm wins {speedup:.2f}x: its "
          f"contention is small and the model charges it honestly.\n")

    # The formal view: the same workload as a QRQW PRAM program, emulated
    # onto the (d,x)-BSP with a random hash, against the whp time bound.
    pram = QRQWPram(p=machine.p, memory_size=1 << 24)
    for r in range(3):
        pram.write(hotspot(N // 4, 8, 1 << 24, seed=SEED + r),
                   np.arange(N // 4), label=f"step{r}")
    res = emulate_qrqw(machine, pram, seed=SEED)
    bound = emulation_overhead(machine.params(), N // 4, 8)
    print("QRQW emulation check (Theorems 5.1/5.2):")
    print(f"  measured overhead {res.measured_overhead:.2f}x vs analytic "
          f"bound {bound:.2f}x; simulated/bound = {res.bound_tightness:.2f}"
          f" (<= 1 means the whp bound held)")


if __name__ == "__main__":
    main()
