#!/usr/bin/env python
"""Tutorial: capture a trace once, replay it anywhere.

The library's workflow for studying an algorithm's memory behaviour:

1. run the instrumented algorithm with a TraceRecorder;
2. save the captured Program (it is the expensive artifact);
3. replay it on any machine configuration — different delays, bank
   counts, mappings — and visualize where the banks hurt.

Run:  python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.algorithms import connected_components, star_edges
from repro.analysis import bank_load_strip, compare_program, series_panel, Series
from repro.simulator import CRAY_C90, CRAY_J90, simulate_program, toy_machine
from repro.workloads import TraceRecorder, load_program, save_program


def main() -> None:
    # 1. Capture: connected components on a star graph (the hook-phase
    #    hot spot of the paper's Figure 1).
    n = 8192
    recorder = TraceRecorder()
    labels, stats = connected_components(
        n, star_edges(n, center=n - 1), recorder=recorder
    )
    assert (labels == 0).all()
    program = recorder.program
    print(f"captured {len(program)} supersteps, "
          f"{program.total_requests} requests, "
          f"max contention {program.max_location_contention()}\n")

    # 2. Persist and reload (e.g. to share the trace with colleagues).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cc_star.npz"
        save_program(program, path)
        program = load_program(path)
        print(f"round-tripped through {path.name} "
              f"({path.stat().st_size / 1024:.0f} KiB)\n")

    # 3. Replay across machines.
    rows = []
    for machine in (CRAY_J90, CRAY_C90, toy_machine(p=8, x=2, d=14)):
        cmp = compare_program(machine, program)
        rows.append((machine.name, cmp.bsp_time, cmp.dxbsp_time,
                     cmp.simulated_time))
    print(f"{'machine':<12} {'BSP':>10} {'(d,x)-BSP':>11} {'simulated':>10}")
    for name, bsp, dx, sim in rows:
        print(f"{name:<12} {bsp:>10.0f} {dx:>11.0f} {sim:>10.0f}")

    # 4. Look at the hottest superstep's bank profile.
    hottest = max(program, key=lambda s: s.stats().max_location_contention)
    res = simulate_program(CRAY_J90, program)
    worst = max(res.step_results, key=lambda r: r.time)
    print(f"\nhottest step: '{hottest.label}' "
          f"(k={hottest.stats().max_location_contention})")
    print(f"bank loads of the slowest step: {bank_load_strip(worst)}")

    # 5. A sparkline panel of the per-step times.
    times = np.array([r.time for r in res.step_results])
    s = Series(name="per-superstep simulated time (J90)",
               x_label="step", x=np.arange(times.size, dtype=float))
    s.add("cycles", times)
    print("\n" + series_panel(s))


if __name__ == "__main__":
    main()
