#!/usr/bin/env python
"""Scenario: the model as a service.  Micro-batched what-if queries.

A layout tool, a dashboard and a batch tuner all want the same answers
— "how slow is this scatter on that machine?" — at the same time.
`repro.serving` answers them through one `PredictionService`: requests
that name the same machine/engine/bank-map ride a single batched
evaluation, repeats come straight out of the cache, and every answer is
bit-identical to calling the library yourself (docs/serving.md).

Run:  python examples/serve_predictions.py
"""

from repro.serving import PredictionService

N = 16 * 1024
SEED = 1995


def main() -> None:
    with PredictionService(flush_ms=25.0, disk_cache=False) as svc:
        # A burst of compatible what-ifs: same machine + engine, so the
        # batcher folds them into one evaluation pass.
        tickets = [
            svc.submit({
                "op": "compare", "machine": "j90",
                "pattern": {"kind": "hotspot", "n": N, "k": k,
                            "seed": SEED},
            })
            for k in (1, 64, 1024, N)
        ]
        print(f"{'pattern':<22} {'BSP':>9} {'(d,x)-BSP':>10} "
              f"{'simulated':>10} {'batch':>6}")
        print("-" * 61)
        for k, ticket in zip((1, 64, 1024, N), tickets):
            r = ticket.result()
            print(f"{f'hotspot k={k}':<22} {r.result['bsp_time']:>9,} "
                  f"{r.result['dxbsp_time']:>10,} "
                  f"{r.result['simulated_time']:>10,} {r.batch:>6}")

        # A sweep request: one line of JSON, one batched flush, a row
        # per value — here the dashboard's "which bank map saves me?".
        sweep = svc.call({
            "op": "simulate", "machine": "j90", "engine": "batch",
            "pattern": {"kind": "stride", "n": N, "stride": 512},
            "sweep": {"param": "stride", "values": [1, 8, 64, 512]},
        })
        print("\nstride sweep (simulate, batch engine):")
        for row in sweep.result["rows"]:
            print(f"  stride={row['value']:>4}  "
                  f"simulated_time={row['simulated_time']:,}")

        # Ask the first question again: answered from the LRU, no
        # engine run, batch=0 marks the cache hit.
        again = svc.call({
            "op": "compare", "machine": "j90",
            "pattern": {"kind": "hotspot", "n": N, "k": 1, "seed": SEED},
        })
        print(f"\nrepeat query: cached={again.cached} "
              f"batch={again.batch} (same bits, no evaluation)")

        stats = svc.stats()
        print(f"served={stats.served} evaluations={stats.evaluations} "
              f"lru_hits={stats.lru_hits} "
              f"mean_occupancy={stats.mean_occupancy:.1f}")
    print("\nSame service over stdin/stdout: "
          "`python -m repro.serving --metrics` (docs/serving.md).")


if __name__ == "__main__":
    main()
