#!/usr/bin/env python
"""Tutorial: writing your own program against the VectorMachine API.

`repro.VectorMachine` is the front door for studying *your* algorithm's
bank behaviour: write it as bulk gathers/scatters/scans, get real results
plus a live (d,x)-BSP bill, then simulate the exact trace.

The program below builds a histogram two ways — a direct queued scatter
versus a privatized (per-processor) layout — the core dilemma behind the
paper's radix sort baseline [ZB91].

Run:  python examples/vm_programming.py
"""

import numpy as np

from repro import VectorMachine
from repro.simulator import CRAY_J90
from repro.workloads import zipf_pattern

N = 64 * 1024
BUCKETS = 512


def direct_histogram(vm: VectorMachine, keys: np.ndarray) -> None:
    """Every element updates its bucket — queued writes, contention =
    bucket popularity."""
    hist = vm.empty(BUCKETS, name="hist")
    vm.scatter(hist, keys, np.ones(N, dtype=np.int64), label="hist/update")


def privatized_histogram(
    vm: VectorMachine, keys: np.ndarray, p: int, staggered: bool
) -> None:
    """Each virtual processor owns a private histogram (the [ZB91]
    trick), cutting *location* contention to per-processor counts.

    The memory layout decides whether that helps: row-major
    (``proc*BUCKETS + key``) keeps every copy of a hot bucket at
    addresses congruent mod the power-of-two bucket count — i.e. on ONE
    bank under interleaving, so the bank is exactly as hot as before.
    The staggered layout (``key*p + proc``) spreads the copies over ``p``
    banks, which is the point of privatizing.
    """
    priv = vm.empty(p * BUCKETS, name="private")
    proc = np.arange(N, dtype=np.int64) % p
    idx = keys * p + proc if staggered else proc * BUCKETS + keys
    vm.scatter(priv, idx, np.ones(N, dtype=np.int64),
               label="hist/private-update")
    merged = vm.scan(priv, label="hist/merge")  # the merge pass
    assert merged.size == p * BUCKETS


def main() -> None:
    rng = np.random.default_rng(1995)
    for name, keys in [
        ("uniform keys", rng.integers(0, BUCKETS, size=N).astype(np.int64)),
        ("zipf keys (skewed)", zipf_pattern(N, BUCKETS, alpha=1.3, seed=7)),
    ]:
        print(f"== {name} "
              f"(max bucket {np.bincount(keys, minlength=BUCKETS).max()})")
        vm = VectorMachine(CRAY_J90)
        direct_histogram(vm, keys)
        t_direct = vm.simulate().total_time

        times = {}
        for staggered in (False, True):
            vm = VectorMachine(CRAY_J90)
            privatized_histogram(vm, keys, p=CRAY_J90.p, staggered=staggered)
            times[staggered] = vm.simulate().total_time

        print(f"   direct scatter          : {t_direct:>10,.0f} cycles")
        print(f"   privatized, row-major   : {times[False]:>10,.0f} cycles"
              f"   (hot copies share a bank!)")
        print(f"   privatized, staggered   : {times[True]:>10,.0f} cycles\n")
    print("Uniform keys: contention is tiny and privatization pays its "
          "merge for nothing.  Skewed keys: the hot bucket serializes at "
          "d per update; privatization only helps if the layout actually "
          "spreads the private copies across banks — location contention, "
          "module-map contention and layout interact, and the model+"
          "simulator let you see all three before writing vector code.")


if __name__ == "__main__":
    main()
