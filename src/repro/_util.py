"""Internal helpers shared across :mod:`repro` subpackages."""

from __future__ import annotations

from typing import Any

import numpy as np

from .errors import ParameterError, PatternError

__all__ = [
    "as_rng",
    "as_addresses",
    "check_positive",
    "check_nonnegative",
    "is_power_of_two",
    "next_power_of_two",
]


def as_rng(seed: Any = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), ``None`` (fresh
    nondeterministic generator) or anything acceptable to
    :func:`numpy.random.default_rng`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def as_addresses(addresses: Any, *, allow_empty: bool = True) -> np.ndarray:
    """Validate and coerce an address vector to a 1-D int64 array.

    Addresses are word indices into the simulated shared memory; they must
    be non-negative integers.

    Raises
    ------
    PatternError
        If the input is not integral, not 1-D, contains negative values,
        or is empty while ``allow_empty`` is false.
    """
    arr = np.asarray(addresses)
    if arr.ndim != 1:
        raise PatternError(f"address vector must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        if not allow_empty:
            raise PatternError("address vector must be non-empty")
        return arr.astype(np.int64)
    if not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == np.floor(arr)):
            arr = arr.astype(np.int64)
        else:
            raise PatternError(f"addresses must be integers, got dtype {arr.dtype}")
    arr = arr.astype(np.int64, copy=False)
    if arr.min() < 0:
        raise PatternError("addresses must be non-negative")
    return arr


def check_positive(name: str, value: float) -> None:
    """Raise :class:`ParameterError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ParameterError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise :class:`ParameterError` unless ``value`` is >= 0."""
    if not value >= 0:
        raise ParameterError(f"{name} must be >= 0, got {value!r}")


def is_power_of_two(n: int) -> bool:
    """Return True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= ``n`` (with ``next_power_of_two(0) == 1``)."""
    if n <= 1:
        return 1
    return 1 << (int(n - 1).bit_length())
