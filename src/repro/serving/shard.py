"""Sharded multi-worker serving: router, worker processes, shared hot tier.

One :class:`~repro.serving.PredictionService` is a single dispatcher
thread in a single process — its cached hot path tops out in the low
thousands of requests per second because every request re-resolves its
pattern and re-hashes it into a cache key.  This module scales the
service *out* without changing what it computes:

* **Sharding by request key** — :class:`ShardRouter` spawns N worker
  processes, each hosting an ordinary (unchanged) ``PredictionService``,
  and routes every request by a canonical digest of its
  result-determining fields (:func:`route_digest`, built on the
  experiment runner's own canonical argument encoder — the same
  machinery as :func:`repro.experiments.runner.cache_key`).  Identical
  requests always land on the same shard, so each shard's in-memory LRU
  stays hot and duplicate requests collapse onto one evaluation instead
  of N.
* **A shared hot tier** — :class:`SharedHotTier` is a fixed-size result
  cache in one ``multiprocessing.shared_memory`` segment (named through
  :func:`repro.experiments.runner.shm_segment_name`, so
  ``clear_cache``'s orphan sweep covers it) sitting *over* the runner's
  on-disk memo: a result any shard has served once is readable by every
  process — router included — as one slot lookup plus one small
  unpickle, with no disk probe and no re-deserialization per shard.
  Writers serialize on a cross-process lock; readers are lock-free
  behind a per-slot sequence counter (torn reads are detected and
  treated as misses — it is a cache, a miss is always correct).
* **Fault tolerance** — a worker that dies takes only its in-flight
  requests on a detour: the router re-routes them (and all later
  requests for that shard) to the surviving shards and counts the
  event in :class:`~repro.serving.metrics.RouterStats.rebalanced`.
* **Stream affinity** — ``op == "stream"`` requests route by session
  identity alone (the ``stream_id``), so every chunk of a stream
  reaches the shard holding its
  :class:`~repro.simulator.stream.StreamSimulator` state, and they
  bypass the hot tier on both sides (a chunk's answer is positional,
  never replayable).  A worker death mid-stream drops the session:
  rerouted chunks are answered ``bad-request`` with a reopen hint, the
  router itself stays up (docs/streaming.md).

Responses are **bit-identical** to a single-process service for any
request mix — every evaluation still happens inside a stock
``PredictionService`` via :func:`~repro.serving.service.evaluate_point`,
and the hot tier only replays payloads such a service produced
(property-tested across worker counts in
``tests/serving/test_router.py``).  Serving metadata (``latency_ms``,
``batch``, ``cached``) reflects each deployment's own timing, exactly
as LRU hits already do in one process.

The shard/drain discipline follows the bounded-buffer style of
bulk-synchronous pseudo-streaming (PAPERS.md, arXiv 1608.07200): the
router never buffers unboundedly (each worker's admission queue is the
bound, and shedding happens there), and :meth:`ShardRouter.close`
drains in order — stop admitting, let every shard flush its open
micro-batches, collect the per-shard manifests, then tear the tier
down.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import pickle
import struct
import threading
import time
from collections import deque
from multiprocessing import connection, get_all_start_methods, get_context
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ParameterError
from ..experiments import runner
from ..experiments.common import DEFAULT_SEED
from .metrics import RouterStats, serving_manifest
from .request import STATUS_CODES, ServeRequest, ServeResponse
from .service import PredictionService

__all__ = [
    "SharedHotTier",
    "ShardRouter",
    "RouterTicket",
    "route_digest",
]

#: Latency ring-buffer length (matches the in-process service).
_LATENCY_WINDOW = 4096

#: Requests per pipe message: bulk submissions are forwarded in chunks
#: of this many, so pipe overhead is amortized without head-of-line
#: blocking a whole burst behind one giant pickle.
_SEND_CHUNK = 256

#: The result-determining request fields and their dataclass defaults —
#: everything :func:`route_digest` covers.  ``request_id`` and
#: ``deadline_ms`` are deliberately absent: they change the envelope,
#: never the answer.
_ROUTE_FIELDS: Tuple[Tuple[str, Any], ...] = (
    ("op", "compare"),
    ("machine", "j90"),
    ("pattern", None),
    ("addresses", None),
    ("engine", "banksim"),
    ("bank_map", "interleave"),
    ("map_seed", DEFAULT_SEED),
    ("sweep", None),
)

#: Version tag of the routing/hot-tier key encoding; bump on any change
#: to ``_ROUTE_FIELDS`` or the payload layout.  v2: stream requests
#: route by session identity alone.
_ROUTE_VERSION = 2

#: What routes a stream request: the session, nothing else.  Every
#: ``open``/``chunk``/``close`` of one session must land on the same
#: shard (the session state lives there), and chunks must route
#: identically whatever payload they carry — so ``action``, ``pattern``
#: and ``addresses`` are all deliberately absent.
_STREAM_ROUTE_FIELDS: Tuple[Tuple[str, Any], ...] = (
    ("op", "compare"),
    ("stream_id", None),
)


def _is_stream(request: Union[ServeRequest, Dict[str, Any]]) -> bool:
    """True for a stream-session request (dict or dataclass form)."""
    if isinstance(request, ServeRequest):
        return request.op == "stream"
    return isinstance(request, dict) and request.get("op") == "stream"


def route_digest(request: Union[ServeRequest, Dict[str, Any]]) -> bytes:
    """16-byte canonical digest of a request's result-determining fields.

    Two requests with the same digest ask the same question (same op,
    machine, pattern/addresses, engine, bank map, seed, sweep), so the
    router sends them to the same shard and the hot tier may answer one
    with the other's result.  Envelope fields (``request_id``,
    ``deadline_ms``) are excluded.  Stream requests digest by session
    identity only (:data:`_STREAM_ROUTE_FIELDS`): a session's chunks
    must all reach the shard holding its state, and their answers are
    never hot-tier material — a chunk's result depends on everything
    fed before it, not on the request alone.  Built on the runner's
    canonical argument encoder and stamped with the package code
    version, the same provenance rule as the memo cache — a code change
    can never replay a stale hot-tier entry across process generations.
    """
    spec = _STREAM_ROUTE_FIELDS if _is_stream(request) else _ROUTE_FIELDS
    if isinstance(request, ServeRequest):
        fields = {name: getattr(request, name) for name, _ in spec}
    elif isinstance(request, dict):
        fields = {name: request.get(name, d) for name, d in spec}
    else:
        raise ParameterError(
            f"request must be a dict or ServeRequest, "
            f"got {type(request).__name__}"
        )
    h = hashlib.sha256()
    h.update(f"route{_ROUTE_VERSION}:{runner.code_version()}".encode())
    runner._feed(h, fields)
    return h.digest()[:16]


class SharedHotTier:
    """Cross-process result cache in one shared-memory segment.

    A fixed array of ``slots`` slots, each holding one pickled payload
    of at most ``slot_bytes`` bytes under a 16-byte key (a
    :func:`route_digest`).  Direct-mapped: a key owns exactly one slot
    (``int(key) % slots``) and a colliding insert simply overwrites —
    this is a hot *tier* over the on-disk memo, not a store, so
    eviction-by-collision is free and always correct.

    Concurrency: one cross-process ``Lock`` serializes writers; readers
    take no lock at all.  Each slot carries a sequence counter bumped to
    odd before a write and back to even after it (a seqlock) — a reader
    that sees an odd count or a count change across its copy treats the
    slot as a miss.  Payloads are copied out of the segment *before*
    unpickling, so a torn read can never reach ``pickle``.

    The segment is named by
    :func:`repro.experiments.runner.shm_segment_name`, which keeps it
    inside the package's ``/dev/shm`` namespace: a crashed process tree
    leaves a segment that ``clear_cache`` sweeps like any other orphan.
    """

    #: Per-slot header: sequence counter, payload length, 16-byte key.
    _HDR = struct.Struct("<II16s")

    def __init__(
        self,
        slots: int = 1024,
        slot_bytes: int = 8192,
        *,
        name: Optional[str] = None,
        lock: Optional[Any] = None,
        create: bool = True,
    ) -> None:
        if slots < 1:
            raise ParameterError(f"slots must be >= 1, got {slots}")
        if slot_bytes < 1:
            raise ParameterError(
                f"slot_bytes must be >= 1, got {slot_bytes}"
            )
        from multiprocessing import shared_memory

        self.slots = int(slots)
        self.slot_bytes = int(slot_bytes)
        self._slot_size = self._HDR.size + self.slot_bytes
        self._lock = lock if lock is not None else get_context().Lock()
        if create:
            # Freshly created POSIX shm is zero-filled: every slot reads
            # as (seq=0, length=0) — an empty cache, no init pass needed.
            self._seg = shared_memory.SharedMemory(
                name=name if name is not None
                else runner.shm_segment_name("hot"),
                create=True,
                size=self.slots * self._slot_size,
            )
        else:
            if name is None:
                raise ParameterError("attaching needs the segment name")
            self._seg = shared_memory.SharedMemory(name=name)
        self.name = self._seg.name
        self._owner = bool(create)
        # Per-process observability; aggregated by the router manifest.
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.skipped = 0

    @classmethod
    def attach(cls, name: str, slots: int, slot_bytes: int,
               lock: Any) -> "SharedHotTier":
        """Attach to an existing tier (worker side of the router)."""
        return cls(slots, slot_bytes, name=name, lock=lock, create=False)

    def _offset(self, key: bytes) -> int:
        return (int.from_bytes(key[:8], "big") % self.slots) \
            * self._slot_size

    def get(self, key: bytes) -> Optional[Any]:
        """Payload stored under ``key``, or ``None`` (miss).  Lock-free;
        concurrent writes are detected via the slot seqlock and read as
        misses."""
        off = self._offset(key)
        buf = self._seg.buf
        seq1, length, stored = self._HDR.unpack_from(buf, off)
        if (
            seq1 & 1
            or length == 0
            or length > self.slot_bytes
            or stored != key
        ):
            self.misses += 1
            return None
        start = off + self._HDR.size
        payload = bytes(buf[start:start + length])
        seq2 = struct.unpack_from("<I", buf, off)[0]
        if seq2 != seq1:
            self.misses += 1
            return None
        try:
            value = pickle.loads(payload)
        except Exception:  # reprolint: disable=REPRO111 -- a cache can always answer miss; an undecodable slot must never crash a reader
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: bytes, value: Any) -> bool:
        """Store ``value`` under ``key``; ``False`` when it exceeds the
        slot size (too big to cache — callers fall through to the slower
        tiers, which is always correct)."""
        payload = pickle.dumps(value, protocol=4)
        if len(payload) > self.slot_bytes:
            self.skipped += 1
            return False
        off = self._offset(key)
        buf = self._seg.buf
        with self._lock:
            seq = struct.unpack_from("<I", buf, off)[0]
            begin = ((seq + 1) | 1) & 0xFFFFFFFF   # odd: write in progress
            struct.pack_into("<I", buf, off, begin)
            self._HDR.pack_into(buf, off, begin, len(payload), key)
            start = off + self._HDR.size
            buf[start:start + len(payload)] = payload
            struct.pack_into("<I", buf, off, (begin + 1) & 0xFFFFFFFF)
        self.puts += 1
        return True

    def stats(self) -> Dict[str, int]:
        """This process's tier counters (hits/misses/puts/skipped)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "skipped": self.skipped,
        }

    def close(self) -> None:
        """Detach; the creating side also unlinks the segment.
        Idempotent and best-effort, like every shm teardown here."""
        seg, self._seg = getattr(self, "_seg", None), None
        if seg is None:
            return
        try:
            seg.close()
            if self._owner:
                seg.unlink()
        except (OSError, BufferError):  # reprolint: disable=REPRO112 -- teardown is best-effort; clear_cache sweeps leftovers
            pass


def _request_id_of(request: Union[ServeRequest, Dict[str, Any]]) \
        -> Optional[str]:
    if isinstance(request, ServeRequest):
        return request.request_id
    rid = request.get("request_id")
    return rid if isinstance(rid, str) else None


def _payload_of(response: ServeResponse) -> Dict[str, Any]:
    """The hot-tier payload for one ``ok`` response: the answer fields
    only — envelope fields (request id, latency, batch, cache flag) are
    re-stamped per request at replay time."""
    return {
        "status": response.status,
        "op": response.op,
        "engine": response.engine,
        "machine": response.machine,
        "result": response.result,
    }


def _hot_response(
    payload: Dict[str, Any],
    request: Union[ServeRequest, Dict[str, Any]],
    latency_ms: float,
) -> ServeResponse:
    """Replay a hot-tier payload as a full response for ``request``."""
    return ServeResponse(
        status=payload["status"],
        code=STATUS_CODES[payload["status"]],
        op=payload["op"],
        engine=payload["engine"],
        machine=payload["machine"],
        request_id=_request_id_of(request),
        result=payload["result"],
        cached=True,
        batch=0,
        latency_ms=latency_ms,
    )


def _worker_main(
    conn: "connection.Connection",
    shard: int,
    tier_name: Optional[str],
    tier_slots: int,
    tier_slot_bytes: int,
    tier_lock: Any,
    service_kwargs: Dict[str, Any],
) -> None:
    """One shard worker: a stock :class:`PredictionService` behind a pipe.

    Protocol (parent -> worker): ``("batch", [(seq, digest, request),
    ...])`` messages and one final ``("close",)``.  Worker -> parent:
    ``("done", [(seq, response_dict), ...])`` messages and one final
    ``("bye", manifest)`` carrying the shard's serving manifest plus its
    hot-tier counters.  The worker drains greedily — every message
    already queued on the pipe joins the current round, so compatible
    requests across messages share micro-batches — and answers
    everything it received before honouring ``close``, which is what
    gives the router its in-order drain.
    """
    service = PredictionService(**service_kwargs)
    tier = (
        SharedHotTier.attach(tier_name, tier_slots, tier_slot_bytes,
                             tier_lock)
        if tier_name is not None else None
    )
    closing = False
    try:
        while not closing:
            try:
                msgs = [conn.recv()]
                while conn.poll():
                    msgs.append(conn.recv())
            except (EOFError, OSError):
                break  # parent died; drain what we have and exit
            entries: List[Tuple[int, bytes, Any]] = []
            for msg in msgs:
                if msg[0] == "close":
                    closing = True
                else:
                    entries.extend(msg[1])
            # Hot-tier replays answer immediately; misses are *all*
            # submitted before any is waited on, so they share flushes.
            hot: List[Tuple[int, Dict[str, Any]]] = []
            misses: List[Tuple[int, bytes, Any]] = []
            for seq, digest, request in entries:
                # Stream steps never touch the tier: their digest is the
                # session, not the question, and their answers are
                # positional — replaying one would answer the wrong
                # prefix.
                payload = (
                    tier.get(digest)
                    if tier is not None and not _is_stream(request)
                    else None
                )
                if payload is not None:
                    hot.append(
                        (seq, _hot_response(payload, request, 0.0)
                         .to_dict())
                    )
                else:
                    misses.append((seq, digest, request))
            if hot:
                conn.send(("done", hot))
            if misses:
                tickets = [
                    (seq, digest, service.submit(request))
                    for seq, digest, request in misses
                ]
                done = []
                for seq, digest, ticket in tickets:
                    response = ticket.result()
                    if tier is not None and response.ok \
                            and response.engine != "stream":
                        tier.put(digest, _payload_of(response))
                    done.append((seq, response.to_dict()))
                conn.send(("done", done))
    finally:
        service.close()
        manifest = dict(serving_manifest(service), shard=shard)
        if tier is not None:
            manifest.update(
                hot_hits=tier.hits, hot_puts=tier.puts,
                hot_skipped=tier.skipped,
            )
            tier.close()
        try:
            conn.send(("bye", manifest))
            conn.close()
        except (OSError, BrokenPipeError):  # reprolint: disable=REPRO112 -- parent already gone; nothing left to report to
            pass


class RouterTicket:
    """Handle for one request submitted to a :class:`ShardRouter`;
    ``result()`` blocks for the :class:`ServeResponse` (the router-side
    analogue of :class:`~repro.serving.service.Ticket`)."""

    def __init__(self, request_id: Optional[str]) -> None:
        self.request_id = request_id
        self.t_submit = time.monotonic()
        self.response: Optional[ServeResponse] = None
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._callbacks: List[Callable[["RouterTicket"], None]] = []

    def _resolve(self, response: ServeResponse) -> None:
        with self._lock:
            if self.response is not None:
                return
            self.response = response
            callbacks, self._callbacks = self._callbacks, []
        self._event.set()
        for fn in callbacks:
            fn(self)

    def result(self, timeout: Optional[float] = None) -> ServeResponse:
        """Block until the response is ready (raises ``TimeoutError``
        after ``timeout`` seconds)."""
        if not self._event.wait(timeout):
            raise TimeoutError("request still pending")
        assert self.response is not None
        return self.response

    def add_done_callback(
        self, fn: Callable[["RouterTicket"], None]
    ) -> None:
        """Run ``fn(ticket)`` once the response is ready (immediately if
        it already is); same contract as
        :meth:`repro.serving.service.Ticket.add_done_callback`."""
        with self._lock:
            if self.response is None:
                self._callbacks.append(fn)
                return
        fn(self)


class ShardRouter:
    """Front door of the sharded serving tier.

    Spawns ``workers`` processes, each hosting a stock
    :class:`PredictionService` built from ``**service_kwargs`` (the
    same knobs as the single-process service), and routes every request
    by :func:`route_digest` — identical questions always reach the same
    shard.  A :class:`SharedHotTier` is probed first, router-side, and
    populated by the workers, so a question *any* shard has answered is
    replayed from shared memory without crossing a pipe at all.

    The public surface mirrors :class:`PredictionService` — ``submit``
    / ``call`` / ``serve`` / ``stats`` / ``close``, context-manager
    support — so the CLI and front end drive either interchangeably.

    Parameters
    ----------
    workers:
        Shard count (>= 1).  Each worker is one process with one
        dispatcher thread.
    hot_tier_slots / hot_tier_slot_bytes:
        Shared hot-tier geometry; ``hot_tier_slots=0`` disables the
        tier entirely (every request crosses a pipe).
    router_probe:
        Probe the hot tier in the router before forwarding (default).
        ``False`` restricts tier probes to the workers — useful for
        benchmarking the pure routed path.
    service_kwargs:
        Forwarded verbatim to each worker's ``PredictionService``.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        hot_tier_slots: int = 1024,
        hot_tier_slot_bytes: int = 8192,
        router_probe: bool = True,
        **service_kwargs: Any,
    ) -> None:
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.router_probe = bool(router_probe)
        # Fork keeps worker start-up cheap (no re-import of the
        # package); fall back to the platform default elsewhere.
        ctx = get_context(
            "fork" if "fork" in get_all_start_methods() else None
        )
        self._tier: Optional[SharedHotTier] = None
        tier_name = None
        tier_lock = None
        if hot_tier_slots > 0:
            tier_lock = ctx.Lock()
            self._tier = SharedHotTier(
                hot_tier_slots, hot_tier_slot_bytes, lock=tier_lock
            )
            tier_name = self._tier.name
        self._lock = threading.Lock()
        self._stats = RouterStats()
        self._latencies: "deque[float]" = deque(maxlen=_LATENCY_WINDOW)
        self._seq = itertools.count()
        #: seq -> (ticket, digest, request, shard); the rebalance map.
        self._pending: Dict[
            int, Tuple[RouterTicket, bytes, Any, int]
        ] = {}
        self._live = [True] * self.workers
        self._shard_routed = [0] * self.workers
        self._manifests: List[Optional[Dict[str, Any]]] = \
            [None] * self.workers
        self._closing = False
        self._t_start = time.monotonic()
        self._conns: List[Any] = []
        self._procs: List[Any] = []
        self._send_locks = [threading.Lock() for _ in range(self.workers)]
        for shard in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, shard, tier_name,
                      hot_tier_slots, hot_tier_slot_bytes, tier_lock,
                      dict(service_kwargs)),
                name=f"repro-serving-shard-{shard}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        # Readers start only after every fork: forking a multi-threaded
        # process is where the deadlocks live.
        self._readers = [
            threading.Thread(
                target=self._reader_loop, args=(shard,),
                name=f"repro-serving-router-reader-{shard}", daemon=True,
            )
            for shard in range(self.workers)
        ]
        for reader in self._readers:
            reader.start()

    # ------------------------------------------------------------------
    # public API (mirrors PredictionService)
    # ------------------------------------------------------------------

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def submit(
        self, request: Union[ServeRequest, Dict[str, Any]]
    ) -> RouterTicket:
        """Route one request; returns a :class:`RouterTicket` immediately
        (already resolved on a hot-tier hit)."""
        return self._submit_many([request])[0]

    def call(
        self,
        request: Union[ServeRequest, Dict[str, Any]],
        timeout: Optional[float] = None,
    ) -> ServeResponse:
        """Submit one request and block for its response."""
        return self.submit(request).result(timeout)

    def serve(
        self,
        requests: Sequence[Union[ServeRequest, Dict[str, Any]]],
        timeout: Optional[float] = None,
    ) -> List[ServeResponse]:
        """Submit many requests, then collect responses in submit order.

        Bulk submission is the router's fast path: requests are grouped
        per shard and forwarded in chunked pipe messages, so the pipe
        cost is per chunk, not per request."""
        tickets = self._submit_many(requests)
        return [t.result(timeout) for t in tickets]

    def stats(self) -> RouterStats:
        """Snapshot of the router counters."""
        with self._lock:
            return dataclasses.replace(self._stats)

    def latencies_ms(self) -> List[float]:
        """Snapshot of the recent response latencies (ring buffer)."""
        with self._lock:
            return list(self._latencies)

    def uptime_seconds(self) -> float:
        """Seconds since the router started."""
        return time.monotonic() - self._t_start

    def live_workers(self) -> int:
        """Shards currently believed alive."""
        with self._lock:
            return sum(self._live)

    def shard_routed(self) -> List[int]:
        """Requests forwarded per shard (index-aligned with workers)."""
        with self._lock:
            return list(self._shard_routed)

    def shard_manifests(self) -> List[Dict[str, Any]]:
        """Per-shard serving manifests (reported by workers at drain;
        empty until then)."""
        with self._lock:
            return [m for m in self._manifests if m is not None]

    def hot_puts(self) -> int:
        """Hot-tier inserts across all workers (known after drain)."""
        with self._lock:
            return sum(
                int(m.get("hot_puts", 0))
                for m in self._manifests if m is not None
            )

    def close(self) -> None:
        """Drain every shard in order, then tear the tier down.

        Stop admitting (new submits answer ``closed``/503) -> send each
        live worker the close sentinel (it answers everything already
        on its pipe, drains its service, reports its manifest) -> join
        readers and processes -> unlink the hot tier.  Idempotent."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
        for shard, conn in enumerate(self._conns):
            if not self._live[shard]:
                continue
            with self._send_locks[shard]:
                try:
                    conn.send(("close",))
                except (OSError, BrokenPipeError):  # reprolint: disable=REPRO112 -- worker already gone; its reader handles the fallout
                    pass
        for reader in self._readers:
            reader.join(timeout=60.0)
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # reprolint: disable=REPRO112 -- already closed by the reader's EOF path
                pass
        # Anything still pending lost its worker mid-drain.
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for ticket, _digest, request, _shard in leftovers:
            self._fail(ticket, request, "closed", "router closed")
        if self._tier is not None:
            self._tier.close()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _response_stub(
        self,
        request: Union[ServeRequest, Dict[str, Any]],
        status: str,
        error: str,
    ) -> ServeResponse:
        op = request.op if isinstance(request, ServeRequest) \
            else str(request.get("op", "")) if isinstance(request, dict) \
            else ""
        return ServeResponse(
            status=status, code=STATUS_CODES[status], op=op, engine="",
            machine="", request_id=_request_id_of(request)
            if isinstance(request, (ServeRequest, dict)) else None,
            error=error,
        )

    def _fail(
        self,
        ticket: RouterTicket,
        request: Any,
        status: str,
        error: str,
    ) -> None:
        with self._lock:
            if status == "closed":
                self._stats.closed += 1
            else:
                self._stats.failed += 1
        ticket._resolve(self._response_stub(request, status, error))

    def _shard_of(self, digest: bytes) -> Optional[int]:
        """Home shard for a digest, remapped past dead workers (caller
        holds the lock).  ``None`` when every shard is gone."""
        base = int.from_bytes(digest[:8], "big") % self.workers
        for step in range(self.workers):
            shard = (base + step) % self.workers
            if self._live[shard]:
                if step:
                    self._stats.rebalanced += 1
                return shard
        return None

    def _submit_many(
        self, requests: Sequence[Union[ServeRequest, Dict[str, Any]]]
    ) -> List[RouterTicket]:
        tickets: List[RouterTicket] = []
        forwards: List[Tuple[RouterTicket, bytes, Any]] = []
        for request in requests:
            digest = route_digest(request)
            ticket = RouterTicket(_request_id_of(request))
            tickets.append(ticket)
            with self._lock:
                self._stats.received += 1
                closing = self._closing
            if closing:
                self._fail(ticket, request, "closed", "router closed")
                continue
            if self.router_probe and self._tier is not None \
                    and not _is_stream(request):
                payload = self._tier.get(digest)
                if payload is not None:
                    with self._lock:
                        self._stats.hot_hits += 1
                    latency = (time.monotonic() - ticket.t_submit) * 1000.0
                    with self._lock:
                        self._latencies.append(latency)
                    ticket._resolve(
                        _hot_response(payload, request, latency)
                    )
                    continue
            forwards.append((ticket, digest, request))
        if forwards:
            self._dispatch(forwards)
        return tickets

    def _dispatch(
        self, entries: Sequence[Tuple[RouterTicket, bytes, Any]]
    ) -> None:
        """Forward entries to their shards in chunked pipe messages."""
        by_shard: Dict[int, List[Tuple[int, bytes, Any]]] = {}
        dead: List[Tuple[RouterTicket, Any]] = []
        closed: List[Tuple[RouterTicket, Any]] = []
        with self._lock:
            # Re-check ``_closing`` under the lock: close() may have run
            # to completion (readers joined, leftover sweep done) since
            # the admission check, in which case an entry added to
            # ``_pending`` now would never be resolved — there is no
            # reader left to answer it or notice the dead pipe.  Entries
            # that instead land in ``_pending`` *before* close() sets
            # ``_closing`` are always covered by its leftover sweep.
            if self._closing:
                closed = [(t, req) for t, _digest, req in entries]
            else:
                for ticket, digest, request in entries:
                    shard = self._shard_of(digest)
                    if shard is None:
                        dead.append((ticket, request))
                        continue
                    seq = next(self._seq)
                    self._pending[seq] = (ticket, digest, request, shard)
                    self._stats.routed += 1
                    self._shard_routed[shard] += 1
                    by_shard.setdefault(shard, []).append(
                        (seq, digest, request)
                    )
        for ticket, request in closed:
            self._fail(ticket, request, "closed", "router closed")
        for ticket, request in dead:
            self._fail(ticket, request, "error", "no live shard workers")
        for shard, items in by_shard.items():
            with self._send_locks[shard]:
                for i in range(0, len(items), _SEND_CHUNK):
                    try:
                        self._conns[shard].send(
                            ("batch", items[i:i + _SEND_CHUNK])
                        )
                        with self._lock:
                            self._stats.forwarded += 1
                    except (OSError, BrokenPipeError):
                        # Worker died between routing and sending; its
                        # reader thread notices the EOF and rebalances
                        # everything pending there, including these.
                        break

    # ------------------------------------------------------------------
    # worker responses
    # ------------------------------------------------------------------

    def _reader_loop(self, shard: int) -> None:
        conn = self._conns[shard]
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "done":
                now = time.monotonic()
                for seq, resp_dict in msg[1]:
                    with self._lock:
                        entry = self._pending.pop(seq, None)
                    if entry is None:
                        continue
                    ticket = entry[0]
                    latency = (now - ticket.t_submit) * 1000.0
                    resp_dict = dict(resp_dict, latency_ms=latency)
                    with self._lock:
                        self._latencies.append(latency)
                    ticket._resolve(ServeResponse(**resp_dict))
            elif msg[0] == "bye":
                with self._lock:
                    self._manifests[shard] = msg[1]
        self._on_worker_exit(shard)

    def _on_worker_exit(self, shard: int) -> None:
        """Reader saw EOF: mark the shard dead and, unless this is the
        orderly drain, resubmit its in-flight requests elsewhere."""
        with self._lock:
            self._live[shard] = False
            closing = self._closing
            stranded = [
                (seq, entry) for seq, entry in self._pending.items()
                if entry[3] == shard
            ]
            for seq, _entry in stranded:
                del self._pending[seq]
        if not stranded:
            return
        if closing:
            for _seq, (ticket, _d, request, _s) in stranded:
                self._fail(ticket, request, "closed", "router closed")
            return
        # ``rebalanced`` is counted once per request inside _shard_of
        # (the home shard is dead now, so every resubmission remaps).
        self._dispatch(
            [(ticket, digest, request)
             for _seq, (ticket, digest, request, _s) in stranded]
        )
