"""Request/response model of the prediction service.

A :class:`ServeRequest` names everything needed to answer one question
about one machine — the operation (``predict`` / ``simulate`` /
``compare``, or the session verb ``stream``), the machine (preset name
or parameter overrides), the access pattern (generator spec or explicit
addresses), the simulator engine and the bank mapping — in plain
JSON-able data, so the same request travels unchanged through the
in-process API, the NDJSON CLI and the HTTP endpoint.  ``stream``
requests additionally carry an ``action`` (``open``/``chunk``/``close``)
and a client-chosen ``stream_id``; a session's chunks are answered with
rolling prefix results, bit-identical to one-shot simulation of the
concatenated trace (docs/streaming.md).  The resolvers in this module turn the specs
into the library's own objects (:class:`MachineConfig`, address arrays,
:class:`BankMap` instances); the service then calls the ordinary
library entry points on them, which is what makes serving answers
bit-identical to direct calls.

A :class:`ServeResponse` carries the answer plus the serving metadata
(status, cache provenance, the flush size the request rode in, queueing
latency).  Statuses follow the HTTP idiom: 200 ok, 400 bad request,
429 shed by admission control, 503 shut down mid-request, 504 deadline
exceeded, 500 evaluation failure.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._util import as_addresses
from ..core.contention import BankMap
from ..errors import ParameterError
from ..experiments.common import DEFAULT_SEED
from ..mapping.hashing import HASH_FAMILIES, RandomMap
from ..simulator.dispatch import ENGINES
from ..simulator.machine import (
    CRAY_C90,
    CRAY_J90,
    CRAY_T90,
    NEC_SX4,
    TERA_MTA,
    MachineConfig,
    toy_machine,
)
from ..workloads.patterns import (
    broadcast,
    hotspot,
    multi_hotspot,
    strided,
    uniform_random,
    zipf_pattern,
)

__all__ = [
    "ServeRequest",
    "ServeResponse",
    "MACHINES",
    "BANK_MAPS",
    "OPS",
    "STREAM_ACTIONS",
    "PATTERN_KINDS",
    "STATUS_CODES",
    "request_from_dict",
    "resolve_machine",
    "resolve_pattern",
    "resolve_bank_map",
]

#: Machine presets addressable by name in a request.
MACHINES: Dict[str, MachineConfig] = {
    "j90": CRAY_J90,
    "c90": CRAY_C90,
    "t90": CRAY_T90,
    "tera": TERA_MTA,
    "sx4": NEC_SX4,
    "toy": toy_machine(),
}

#: Bank-mapping kinds addressable by name (``interleave`` is the
#: identity ``addr mod B`` map the simulator applies when no map is
#: given; the rest are the paper's randomized families).
BANK_MAPS = ("interleave", "random", "h1", "h2", "h3")

#: Operations the service answers.  ``stream`` is the session-oriented
#: one: ``action="open"`` creates a named incremental simulation,
#: ``action="chunk"`` feeds it one block of addresses (answered with the
#: rolling prefix result), ``action="close"`` retires it and returns the
#: final result — bit-identical to simulating the concatenated trace in
#: one shot (see docs/streaming.md).
OPS = ("predict", "simulate", "compare", "stream")

#: Stream-session verbs carried by ``ServeRequest.action``.
STREAM_ACTIONS = ("open", "chunk", "close")

#: Pattern-generator kinds and their spec fields (beyond ``kind``).
PATTERN_KINDS: Dict[str, Tuple[str, ...]] = {
    "hotspot": ("n", "k", "space", "seed", "hot_address"),
    "uniform": ("n", "space", "seed"),
    "broadcast": ("n", "address"),
    "stride": ("n", "stride", "base"),
    "multi_hotspot": ("n", "n_hot", "hot_fraction", "space", "seed"),
    "zipf": ("n", "space", "alpha", "seed"),
}

#: status name -> HTTP-style numeric code.  ``overloaded`` (429) is
#: load shedding — retry later and the service will answer; ``closed``
#: (503) is shutdown — the service is going away and a retry must go to
#: another instance.  Conflating them (the pre-fix behaviour) made
#: drain look like overload in every dashboard built on these codes.
STATUS_CODES: Dict[str, int] = {
    "ok": 200,
    "bad-request": 400,
    "overloaded": 429,
    "error": 500,
    "closed": 503,
    "deadline-exceeded": 504,
}

_DEFAULT_SPACE = 1 << 24


@dataclasses.dataclass(frozen=True)
class ServeRequest:
    """One question for the service, in plain JSON-able data.

    Attributes
    ----------
    op:
        ``"predict"`` (analytic BSP + (d,x)-BSP times), ``"simulate"``
        (run the chosen engine) or ``"compare"`` (both, side by side).
    machine:
        Preset name from :data:`MACHINES`, a dict of overrides (optional
        ``"base"`` preset plus :class:`MachineConfig` fields), or an
        actual :class:`MachineConfig` (in-process callers).
    pattern:
        Generator spec, e.g. ``{"kind": "hotspot", "n": 4096,
        "k": 256}`` (fields per :data:`PATTERN_KINDS`; ``seed`` defaults
        to 1995, ``space`` to ``2**24``).  Mutually exclusive with
        ``addresses``.
    addresses:
        Explicit address list, for callers that already hold a pattern.
    engine:
        Simulator engine from :data:`repro.simulator.ENGINES`.
    bank_map:
        Mapping kind from :data:`BANK_MAPS`.
    map_seed:
        Seed for the randomized mapping families.
    sweep:
        ``{"param": <pattern field>, "values": [...]}`` — answer the
        request once per value of that pattern field, batched together.
    deadline_ms:
        Per-request deadline; a request still queued when it lapses is
        answered ``deadline-exceeded`` instead of evaluated.
    request_id:
        Opaque client tag echoed in the response.
    action:
        Stream verb (``op == "stream"`` only): ``"open"`` /
        ``"chunk"`` / ``"close"`` per :data:`STREAM_ACTIONS`.
    stream_id:
        Client-chosen session name (``op == "stream"`` only); every
        request of one session must carry the same id.
    """

    op: str = "compare"
    machine: Union[str, Dict[str, Any], MachineConfig] = "j90"
    pattern: Optional[Dict[str, Any]] = None
    addresses: Optional[Sequence[int]] = None
    engine: str = "banksim"
    bank_map: str = "interleave"
    map_seed: int = DEFAULT_SEED
    sweep: Optional[Dict[str, Any]] = None
    deadline_ms: Optional[float] = None
    request_id: Optional[str] = None
    action: Optional[str] = None
    stream_id: Optional[str] = None

    def validate(self) -> None:
        """Raise :class:`ParameterError` on any out-of-range field."""
        if self.op not in OPS:
            raise ParameterError(
                f"unknown op {self.op!r}; choose one of {OPS}"
            )
        if self.engine not in ENGINES:
            raise ParameterError(
                f"unknown engine {self.engine!r}; choose one of {ENGINES}"
            )
        if self.bank_map not in BANK_MAPS:
            raise ParameterError(
                f"unknown bank_map {self.bank_map!r}; "
                f"choose one of {BANK_MAPS}"
            )
        if self.op == "stream":
            self._validate_stream()
            return
        if self.action is not None or self.stream_id is not None:
            raise ParameterError(
                "action= / stream_id= are stream-session fields; "
                "they need op='stream'"
            )
        if (self.pattern is None) == (self.addresses is None):
            raise ParameterError(
                "exactly one of pattern= / addresses= must be given"
            )
        if self.sweep is not None:
            if self.pattern is None:
                raise ParameterError("sweep= needs a pattern spec to vary")
            if not isinstance(self.sweep, dict) \
                    or "param" not in self.sweep \
                    or "values" not in self.sweep:
                raise ParameterError(
                    "sweep must be {'param': <pattern field>, "
                    "'values': [...]}"
                )
            values = self.sweep["values"]
            if not isinstance(values, (list, tuple)) or not values:
                raise ParameterError("sweep values must be a nonempty list")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ParameterError(
                f"deadline_ms must be > 0, got {self.deadline_ms}"
            )

    def _validate_stream(self) -> None:
        """Stream-op branch of :meth:`validate`: every action needs a
        session id; ``chunk`` carries exactly one address payload, the
        control verbs carry none; sweeps and deadlines are refused
        (a session is ordered state, not a batchable question)."""
        if self.action not in STREAM_ACTIONS:
            raise ParameterError(
                f"stream action must be one of {STREAM_ACTIONS}, "
                f"got {self.action!r}"
            )
        if not isinstance(self.stream_id, str) or not self.stream_id:
            raise ParameterError(
                "stream requests need a nonempty string stream_id"
            )
        if self.sweep is not None:
            raise ParameterError("stream requests do not take sweep=")
        if self.deadline_ms is not None:
            raise ParameterError(
                "stream requests do not take deadline_ms= (chunks are "
                "ordered session state; expiring one would desync the "
                "stream)"
            )
        if self.action == "chunk":
            if (self.pattern is None) == (self.addresses is None):
                raise ParameterError(
                    "a stream chunk carries exactly one of pattern= / "
                    "addresses="
                )
        elif self.pattern is not None or self.addresses is not None:
            raise ParameterError(
                f"stream {self.action!r} takes neither pattern= nor "
                "addresses="
            )


def request_from_dict(data: Dict[str, Any]) -> ServeRequest:
    """Build and validate a :class:`ServeRequest` from decoded JSON;
    unknown fields raise :class:`ParameterError` (a typoed field must
    not silently fall back to a default)."""
    if not isinstance(data, dict):
        raise ParameterError(
            f"request must be a JSON object, got {type(data).__name__}"
        )
    known = {f.name for f in dataclasses.fields(ServeRequest)}
    unknown = [k for k in sorted(data) if k not in known]
    if unknown:
        raise ParameterError(f"unknown request field(s): {unknown}")
    req = ServeRequest(**data)
    req.validate()
    return req


def resolve_machine(
    spec: Union[str, Dict[str, Any], MachineConfig]
) -> MachineConfig:
    """Turn a request's machine spec into a :class:`MachineConfig`."""
    if isinstance(spec, MachineConfig):
        return spec
    if isinstance(spec, str):
        try:
            return MACHINES[spec]
        except KeyError:
            raise ParameterError(
                f"unknown machine {spec!r}; choose one of "
                f"{tuple(sorted(MACHINES))}"
            ) from None
    if isinstance(spec, dict):
        overrides = dict(spec)
        base = resolve_machine(overrides.pop("base", "j90"))
        if not overrides:
            return base
        try:
            return base.with_(**overrides)
        except TypeError as exc:
            raise ParameterError(f"bad machine override: {exc}") from None
    raise ParameterError(
        f"machine must be a preset name, override dict or MachineConfig, "
        f"got {type(spec).__name__}"
    )


def resolve_pattern(
    pattern: Optional[Dict[str, Any]],
    addresses: Optional[Sequence[int]],
) -> np.ndarray:
    """Materialize a request's access pattern as an int64 address array."""
    if addresses is not None:
        return as_addresses(np.asarray(addresses, dtype=np.int64))
    if not isinstance(pattern, dict) or "kind" not in pattern:
        raise ParameterError("pattern must be a dict with a 'kind' field")
    spec = dict(pattern)
    kind = spec.pop("kind")
    if kind not in PATTERN_KINDS:
        raise ParameterError(
            f"unknown pattern kind {kind!r}; choose one of "
            f"{tuple(sorted(PATTERN_KINDS))}"
        )
    unknown = [k for k in sorted(spec) if k not in PATTERN_KINDS[kind]]
    if unknown:
        raise ParameterError(
            f"pattern kind {kind!r} does not take field(s) {unknown}"
        )
    if "n" not in spec:
        raise ParameterError(f"pattern kind {kind!r} needs 'n'")
    if "seed" in PATTERN_KINDS[kind]:
        spec.setdefault("seed", DEFAULT_SEED)
    if "space" in PATTERN_KINDS[kind]:
        spec.setdefault("space", _DEFAULT_SPACE)
    try:
        if kind == "hotspot":
            return hotspot(**spec)
        if kind == "uniform":
            return uniform_random(**spec)
        if kind == "broadcast":
            return broadcast(**spec)
        if kind == "stride":
            return strided(**spec)
        if kind == "multi_hotspot":
            return multi_hotspot(**spec)
        return zipf_pattern(**spec)
    except TypeError as exc:
        raise ParameterError(f"bad pattern spec for {kind!r}: {exc}") from None


def resolve_bank_map(kind: str, seed: int) -> Optional[BankMap]:
    """Turn a mapping kind + seed into a :class:`BankMap` (or ``None``
    for the default interleaved map)."""
    if kind == "interleave":
        return None
    if kind == "random":
        return RandomMap(seed)
    try:
        return HASH_FAMILIES[kind](seed)
    except KeyError:
        raise ParameterError(
            f"unknown bank_map {kind!r}; choose one of {BANK_MAPS}"
        ) from None


@dataclasses.dataclass(frozen=True)
class ServeResponse:
    """The service's answer to one :class:`ServeRequest`.

    Attributes
    ----------
    status / code:
        Outcome name and its HTTP-style code (:data:`STATUS_CODES`).
    result:
        For ``status == "ok"``: the evaluation's scalar fields (exactly
        the values the underlying library call returned).  Swept
        requests get ``{"param": ..., "rows": [{"value": v, ...}]}``.
    cached:
        True when every value was served from a cache (in-memory LRU or
        the on-disk memo) without touching an engine.
    batch:
        Largest micro-batch flush this request rode in (0 when served
        entirely from cache at admission).
    latency_ms:
        Submit-to-response wall-clock.
    """

    status: str
    code: int
    op: str
    engine: str
    machine: str
    request_id: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    cached: bool = False
    batch: int = 0
    latency_ms: float = 0.0
    error: str = ""

    @property
    def ok(self) -> bool:
        """True for a successfully evaluated request."""
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict view (JSON payload of the CLI/HTTP front ends)."""
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        """One-line JSON rendering (the NDJSON output format)."""
        return json.dumps(self.to_dict(), sort_keys=True)


def _sweep_points(req: ServeRequest) -> List[Tuple[Any, Dict[str, Any]]]:
    """Expand a swept request into ``(value, pattern spec)`` pairs."""
    assert req.sweep is not None and req.pattern is not None
    param = req.sweep["param"]
    kind = req.pattern.get("kind")
    allowed = PATTERN_KINDS.get(kind, ())
    if param not in allowed:
        raise ParameterError(
            f"sweep param {param!r} is not a field of pattern kind "
            f"{kind!r} (fields: {allowed})"
        )
    out = []
    for value in req.sweep["values"]:
        spec = dict(req.pattern)
        spec[param] = value
        out.append((value, spec))
    return out
