"""Micro-batching: group compatible work items, flush on watermarks.

Two requests are *compatible* — answerable by one batched evaluation
pass — when they agree on everything but the access pattern: same
resolved :class:`MachineConfig`, same engine, same bank mapping.  The
batcher holds one open bucket per such group and decides when a bucket
is due:

* **size watermark** — the bucket reached ``batch_size`` items, or
* **latency watermark** — its oldest item has waited ``flush_interval``
  seconds.

Under load, buckets fill to the size watermark and a single flush
answers many requests (high occupancy, maximum throughput); under
trickle traffic the latency watermark bounds how long any request can
sit waiting for company.  This is the classic service trade-off, and —
not coincidentally — the same shape as the (d,x)-BSP superstep law the
service computes: batching amortizes a fixed per-flush cost exactly the
way a superstep amortizes ``L`` (see docs/serving.md for the capacity
math).

The batcher is pure bookkeeping: no threads, no clocks of its own
(callers pass ``now``), which keeps it deterministic and directly
unit-testable.  The service's dispatcher thread drives it.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Per-group buckets of work items with size/latency flush rules.

    Parameters
    ----------
    batch_size:
        Size watermark: a bucket with this many items is due immediately.
    flush_interval:
        Latency watermark, seconds: a bucket whose oldest item is this
        old is due regardless of size.
    """

    def __init__(self, batch_size: int = 32,
                 flush_interval: float = 0.002) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if flush_interval < 0:
            raise ValueError(
                f"flush_interval must be >= 0, got {flush_interval}"
            )
        self.batch_size = int(batch_size)
        self.flush_interval = float(flush_interval)
        self._buckets: Dict[Hashable, List] = {}
        self._opened: Dict[Hashable, float] = {}

    @property
    def pending(self) -> int:
        """Items currently held across all buckets."""
        return sum(len(items) for items in self._buckets.values())

    def add(self, group: Hashable, item: object, now: float) -> None:
        """File ``item`` under ``group``; ``now`` stamps the bucket's
        age if this opens it."""
        bucket = self._buckets.get(group)
        if bucket is None:
            self._buckets[group] = [item]
            self._opened[group] = now
        else:
            bucket.append(item)

    def seconds_until_due(self, now: float) -> Optional[float]:
        """Time until the next latency-watermark flush (0.0 when a
        bucket is already due, ``None`` when everything is empty).  The
        dispatcher uses this as its queue-poll timeout so idle waiting
        never delays a due bucket."""
        if not self._buckets:
            return None
        if any(len(items) >= self.batch_size
               for items in self._buckets.values()):
            return 0.0
        next_deadline = min(
            opened + self.flush_interval for opened in self._opened.values()
        )
        return max(0.0, next_deadline - now)

    def take_due(self, now: float) -> List[Sequence]:
        """Remove and return every bucket past a watermark (insertion
        order preserved within and across buckets)."""
        due = [
            group for group, items in self._buckets.items()
            if len(items) >= self.batch_size
            or now - self._opened[group] >= self.flush_interval
        ]
        return [self._take(group) for group in due]

    def take_all(self) -> List[Sequence]:
        """Remove and return every bucket (service shutdown drain)."""
        return [self._take(group) for group in list(self._buckets)]

    def _take(self, group: Hashable) -> Sequence:
        self._opened.pop(group, None)
        return self._buckets.pop(group)
