"""Serving metrics: counters, latency percentiles, manifest export.

The service keeps the same discipline as the experiment runner: every
operational question ("how many requests were shed?", "what did
batching buy?", "is the cache carrying the load?") is answered by a
counter in :class:`ServingStats`, and a whole service run exports a
flat, schema-checked manifest — the serving analogue of
:mod:`repro.experiments.manifest`, validated by the same
:func:`~repro.experiments.manifest.validate_manifest` checker against
:data:`SERVING_MANIFEST_SCHEMA`.  :func:`metrics_table` renders the
human view through :func:`repro.analysis.format_table`, the same
machinery the telemetry reports use.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from ..analysis.report import format_table
from ..experiments.manifest import validate_manifest
from ..experiments.runner import code_version

__all__ = [
    "ServingStats",
    "RouterStats",
    "SERVING_MANIFEST_SCHEMA",
    "SERVING_SCHEMA_VERSION",
    "ROUTER_MANIFEST_SCHEMA",
    "ROUTER_SCHEMA_VERSION",
    "percentile",
    "serving_manifest",
    "write_serving_manifest",
    "metrics_table",
    "router_manifest",
    "router_metrics_table",
]

#: Serving manifest format version; bump on incompatible field changes.
#: v2: ``closed`` (shutdown-time 503s) counted separately from ``shed``
#: (load-shedding 429s).  v3: stream-session counters
#: (``streams_opened`` / ``stream_chunks`` / ``streams_closed``) and the
#: session limits (``max_streams`` / ``stream_window``).
SERVING_SCHEMA_VERSION = 3


@dataclasses.dataclass
class ServingStats:
    """Counters accumulated by one :class:`~repro.serving.PredictionService`.

    Attributes
    ----------
    received:
        Requests submitted (every outcome counts here).
    served:
        Requests answered ``ok``.
    shed:
        Requests rejected by admission control (bounded queue full —
        the 429 path).  Shutdown rejections are *not* counted here;
        they are ``closed``.
    closed:
        Requests caught by service shutdown (the 503 path) — submitted
        while or after :meth:`~repro.serving.PredictionService.close`
        drained the queue.  Separate from ``shed`` so a drain never
        reads as load shedding.
    expired:
        Requests whose deadline lapsed while queued (the 504 path).
    failed:
        Requests lost to an evaluation error (the 500 path).
    invalid:
        Requests rejected at parse/validation (the 400 path).
    lru_hits / disk_hits:
        Work items answered from the in-memory LRU / the on-disk memo
        cache at admission, without occupying a queue slot.
    evaluations:
        Unique work items actually run through an engine (after batch
        deduplication).
    batches:
        Micro-batch flushes executed.
    batched_requests:
        Work items answered by flushes (``batched_requests / batches``
        is the mean batch occupancy; duplicates collapse onto one
        evaluation, so this can exceed ``evaluations``).
    max_batch:
        Largest single flush.
    queue_high_water:
        Deepest the admission queue ever got.
    streams_opened / stream_chunks / streams_closed:
        Stream sessions opened, chunks fed into them, and sessions
        retired by an explicit ``close`` (a session dropped by service
        shutdown or a stream error is opened-but-not-closed).  Shed
        chunks (session window full) and refused opens (``max_streams``
        reached) count under ``shed``.
    """

    received: int = 0
    served: int = 0
    shed: int = 0
    closed: int = 0
    expired: int = 0
    failed: int = 0
    invalid: int = 0
    lru_hits: int = 0
    disk_hits: int = 0
    evaluations: int = 0
    batches: int = 0
    batched_requests: int = 0
    max_batch: int = 0
    queue_high_water: int = 0
    streams_opened: int = 0
    stream_chunks: int = 0
    streams_closed: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (manifest/JSON export)."""
        return dataclasses.asdict(self)

    @property
    def mean_occupancy(self) -> float:
        """Mean work items answered per flush (0.0 before any flush)."""
        return self.batched_requests / self.batches if self.batches else 0.0

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of cache-probed work items answered by a cache."""
        probes = self.lru_hits + self.disk_hits + self.batched_requests
        return (self.lru_hits + self.disk_hits) / probes if probes else 0.0


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of ``values`` (q in [0, 100]);
    0.0 for an empty sequence.  Matches ``numpy.percentile``'s default
    method, kept dependency-light so the metrics path never imports
    numpy for a handful of latencies."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


#: Required fields and types of a serving manifest (flat, like
#: :data:`repro.experiments.manifest.MANIFEST_SCHEMA`).
SERVING_MANIFEST_SCHEMA: Dict[str, type] = {
    "schema_version": int,
    "service": str,
    "code_version": str,
    "max_queue": int,
    "batch_size": int,
    "flush_ms": float,
    "deadline_ms": float,
    "lru_size": int,
    "parallel": int,
    "received": int,
    "served": int,
    "shed": int,
    "closed": int,
    "expired": int,
    "failed": int,
    "invalid": int,
    "lru_hits": int,
    "disk_hits": int,
    "evaluations": int,
    "batches": int,
    "batched_requests": int,
    "max_batch": int,
    "queue_high_water": int,
    "streams_opened": int,
    "stream_chunks": int,
    "streams_closed": int,
    "max_streams": int,
    "stream_window": int,
    "mean_occupancy": float,
    "cache_hit_ratio": float,
    "p50_ms": float,
    "p95_ms": float,
    "uptime_seconds": float,
    "created_unix": float,
}


def serving_manifest(service: Any) -> Dict[str, Any]:
    """Flat, schema-checked metrics manifest for one service run.

    ``service`` is a :class:`~repro.serving.PredictionService`; the
    manifest merges its configuration, its :class:`ServingStats`
    counters and the derived latency/occupancy figures, stamped with
    the package code version (same provenance rule as experiment run
    manifests).
    """
    stats = service.stats()
    latencies = service.latencies_ms()
    data: Dict[str, Any] = {
        "schema_version": SERVING_SCHEMA_VERSION,
        "service": "repro.serving.PredictionService",
        "code_version": code_version(),
        "max_queue": int(service.max_queue),
        "batch_size": int(service.batch_size),
        "flush_ms": float(service.flush_ms),
        "deadline_ms": float(service.deadline_ms or 0.0),
        "lru_size": int(service.lru_size),
        "parallel": int(service.parallel),
        "max_streams": int(service.max_streams),
        "stream_window": int(service.stream_window),
        "mean_occupancy": float(stats.mean_occupancy),
        "cache_hit_ratio": float(stats.cache_hit_ratio),
        "p50_ms": percentile(latencies, 50.0),
        "p95_ms": percentile(latencies, 95.0),
        "uptime_seconds": float(service.uptime_seconds()),
        # Provenance timestamp of the manifest itself — never part of a
        # result or a cache key.
        "created_unix": time.time(),
    }
    data.update(stats.as_dict())
    validate_manifest(
        data,
        schema=SERVING_MANIFEST_SCHEMA,
        expected_version=SERVING_SCHEMA_VERSION,
    )
    return data


def write_serving_manifest(
    service: Any, path: Union[str, Path]
) -> Path:
    """Write the schema-checked serving manifest to ``path`` as JSON."""
    data = serving_manifest(service)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n"
    )
    return path


def metrics_table(service: Any, title: str = "serving metrics") -> str:
    """Aligned plain-text metrics report (one ``metric  value`` row per
    counter plus the derived figures) via the shared table renderer."""
    data = serving_manifest(service)
    rows: List[Any] = [
        (key, data[key]) for key in sorted(data)
        if key not in ("schema_version", "service", "code_version",
                       "created_unix")
    ]
    return format_table(("metric", "value"), rows, title=title)


# ----------------------------------------------------------------------
# router (sharded multi-worker tier)
# ----------------------------------------------------------------------

#: Router manifest format version; bump on incompatible field changes.
ROUTER_SCHEMA_VERSION = 1


@dataclasses.dataclass
class RouterStats:
    """Counters accumulated by one :class:`~repro.serving.ShardRouter`.

    Attributes
    ----------
    received:
        Requests submitted to the router (every outcome counts here).
    hot_hits:
        Requests the router answered straight from the shared hot tier
        without forwarding to any shard.
    routed:
        Requests forwarded to a shard worker (``shard_routed`` in the
        manifest breaks this down per shard).
    forwarded:
        Pipe messages sent to workers — ``routed / forwarded`` is the
        mean requests-per-message batching the router achieved.
    rebalanced:
        Requests re-routed to a surviving shard after their home
        shard's worker died (in-flight requests are resubmitted, later
        requests remapped).
    closed:
        Requests answered ``closed`` (503) because they arrived during
        or after :meth:`~repro.serving.ShardRouter.close`.
    failed:
        Requests the router itself had to fail (every live shard gone).
    """

    received: int = 0
    hot_hits: int = 0
    routed: int = 0
    forwarded: int = 0
    rebalanced: int = 0
    closed: int = 0
    failed: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (manifest/JSON export)."""
        return dataclasses.asdict(self)


#: Required fields and types of a router manifest.  Flat router-level
#: counters plus two structured fields: ``shard_routed`` (requests per
#: shard, index-aligned with the workers) and ``shards`` (each worker's
#: own schema-checked serving manifest, collected at drain).
ROUTER_MANIFEST_SCHEMA: Dict[str, type] = {
    "schema_version": int,
    "service": str,
    "code_version": str,
    "workers": int,
    "received": int,
    "hot_hits": int,
    "routed": int,
    "forwarded": int,
    "rebalanced": int,
    "closed": int,
    "failed": int,
    "hot_puts": int,
    "shard_routed": list,
    "shards": list,
    "p50_ms": float,
    "p95_ms": float,
    "uptime_seconds": float,
    "created_unix": float,
}


def router_manifest(router: Any) -> Dict[str, Any]:
    """Flat, schema-checked metrics manifest for one router run.

    ``router`` is a :class:`~repro.serving.ShardRouter`.  Worker-side
    serving manifests appear under ``"shards"`` only once the router
    has drained (workers report them as they exit); a live router
    exports its own counters with an empty ``shards`` list.
    """
    stats = router.stats()
    latencies = router.latencies_ms()
    data: Dict[str, Any] = {
        "schema_version": ROUTER_SCHEMA_VERSION,
        "service": "repro.serving.ShardRouter",
        "code_version": code_version(),
        "workers": int(router.workers),
        "hot_puts": int(router.hot_puts()),
        "shard_routed": list(router.shard_routed()),
        "shards": list(router.shard_manifests()),
        "p50_ms": percentile(latencies, 50.0),
        "p95_ms": percentile(latencies, 95.0),
        "uptime_seconds": float(router.uptime_seconds()),
        # Provenance timestamp of the manifest itself — never part of a
        # result or a cache key.
        "created_unix": time.time(),
    }
    data.update(stats.as_dict())
    validate_manifest(
        data,
        schema=ROUTER_MANIFEST_SCHEMA,
        expected_version=ROUTER_SCHEMA_VERSION,
    )
    return data


def router_metrics_table(router: Any, title: str = "router metrics") -> str:
    """Aligned plain-text router report: router counters first, then one
    ``shard[i].metric`` row per collected worker counter."""
    data = router_manifest(router)
    rows: List[Any] = [
        (key, data[key]) for key in sorted(data)
        if key not in ("schema_version", "service", "code_version",
                       "created_unix", "shards", "shard_routed")
    ]
    rows.extend(
        (f"routed[{i}]", n) for i, n in enumerate(data["shard_routed"])
    )
    for i, shard in enumerate(data["shards"]):
        rows.extend(
            (f"shard[{i}].{key}", shard[key])
            for key in ("received", "served", "lru_hits", "evaluations",
                        "batches")
            if key in shard
        )
    return format_table(("metric", "value"), rows, title=title)
