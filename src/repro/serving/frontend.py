"""Selector-based network front end for the serving tier.

One thread, one ``selectors.DefaultSelector``, any number of
connections: :class:`ServingFrontend` replaces the previous
thread-per-connection ``ThreadingHTTPServer`` with a readiness loop
that never blocks on a socket.  Request evaluation stays fully
asynchronous — each accepted request is ``submit()``-ed to the backend
(a :class:`~repro.serving.PredictionService` or a
:class:`~repro.serving.ShardRouter`; both expose the same surface) and
its completion callback hands the encoded response back to the event
loop through a self-pipe, so a slow evaluation never stalls another
connection's reads or writes.

Both wire protocols of ``python -m repro.serving`` are spoken on the
same port, distinguished by the first line a connection sends:

* **HTTP** (first line starts with a method token): ``POST /`` with a
  request object or a list of them, ``GET /metrics`` for the
  schema-checked manifest, ``GET /healthz`` for liveness.  One request
  per connection (``Connection: close``), matching the one-shot
  what-if usage the CLI documents.
* **NDJSON** (anything else): one request object per line, one
  response object per line, *in submit order per connection* — the
  same contract as the stdio filter, now multiplexed across clients.
  A peer may half-close after its last line; buffered lines are still
  answered before the connection closes.

Shutdown is ordered, fixing the old front end's drop-on-exit: stop
accepting, take one final read pass over every connection (lines
already buffered are submitted, not lost), drain the backend
(``backend.close()`` answers every in-flight ticket), flush what the
drain produced, then close.  The close-during-flush race is
property-tested in ``tests/serving/test_frontend.py``.
"""

from __future__ import annotations

import json
import selectors
import socket
import threading
from collections import deque
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import ParameterError
from .metrics import router_manifest, serving_manifest
from .request import STATUS_CODES, ServeResponse

__all__ = ["ServingFrontend"]

#: First-line prefixes that mark a connection as HTTP, not NDJSON.
_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ",
                 b"OPTIONS ", b"PATCH ")

#: Per-read chunk size.
_RECV_BYTES = 65536

#: Hard cap on a connection's input buffer; a peer that exceeds it is
#: dropped (backpressure for the single-threaded loop).
_MAX_BUFFER = 16 * 1024 * 1024

#: Per-connection read gate: once this many responses are owed, the
#: loop stops reading the connection until the backend catches up, so a
#: fast writer's bytes back up in the kernel socket buffer (and block
#: the client) instead of accumulating on this process's heap.  This is
#: what lets a multi-gigabyte streamed NDJSON trace pass through the
#: frontend under a bounded memory footprint — see docs/streaming.md.
_MAX_INFLIGHT = 256


class _Conn:
    """Per-connection state: buffers, protocol mode, in-order pending."""

    __slots__ = ("sock", "inbuf", "outbuf", "mode", "pending",
                 "http_head", "closing", "inflight")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        #: ``None`` until the first line arrives, then "http"/"ndjson".
        self.mode: Optional[str] = None
        #: NDJSON tickets in submit order (head answered first).
        self.pending: "deque[Any]" = deque()
        #: Parsed HTTP request line + headers, once complete.
        self.http_head: Optional[Tuple[str, str, Dict[str, str]]] = None
        #: No more reads; close once ``outbuf`` and ``inflight`` drain.
        self.closing = False
        #: Responses promised but not yet queued for writing — the
        #: connection may not close while this is non-zero.
        self.inflight = 0


class _FailedTicket:
    """Pre-resolved ticket for a submission the backend refused by
    raising instead of answering.  Same surface as a real ticket
    (``response`` plus ``add_done_callback``), so the response paths
    need no special case."""

    __slots__ = ("response",)

    def __init__(self, response: ServeResponse) -> None:
        self.response = response

    def add_done_callback(
        self, fn: Callable[["_FailedTicket"], None]
    ) -> None:
        fn(self)


def _default_metrics(backend: Any) -> Callable[[], Dict[str, Any]]:
    """Pick the manifest exporter matching the backend's type — the
    router variant when the backend routes, the serving variant when it
    evaluates in-process."""
    if hasattr(backend, "shard_manifests"):
        return lambda: router_manifest(backend)
    return lambda: serving_manifest(backend)


class ServingFrontend:
    """Single-threaded NDJSON/HTTP network front end.

    Parameters
    ----------
    backend:
        A :class:`~repro.serving.PredictionService` or
        :class:`~repro.serving.ShardRouter` (anything with ``submit`` /
        ``close`` and ticket ``add_done_callback``).  The frontend's
        shutdown *drains* the backend (``backend.close()``) but does
        not own it — callers can still read its metrics afterwards.
    host / port:
        Bind address; ``port=0`` picks a free port, discoverable via
        :attr:`address` before the loop starts (used by the tests).
    metrics:
        Zero-arg callable for ``GET /metrics``; defaults to the
        manifest exporter matching the backend's type.
    """

    def __init__(
        self,
        backend: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        metrics: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        self.backend = backend
        self._metrics = metrics if metrics is not None \
            else _default_metrics(backend)
        self._listener = socket.create_server(
            (host, port), reuse_port=False
        )
        self._listener.setblocking(False)
        self.address: Tuple[str, int] = \
            self._listener.getsockname()[:2]
        self._selector = selectors.DefaultSelector()
        self._selector.register(
            self._listener, selectors.EVENT_READ, "listener"
        )
        # Self-pipe: completion callbacks (arbitrary threads) and
        # shutdown() wake the selector loop with one byte.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(
            self._wake_r, selectors.EVENT_READ, "wake"
        )
        self._conns: Dict[socket.socket, _Conn] = {}
        #: (conn, payload) pairs queued by completion callbacks.
        self._completed: "deque[Tuple[_Conn, bytes]]" = deque()
        self._lock = threading.Lock()
        self._shutdown = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the readiness loop until :meth:`shutdown` (any thread)
        or ``KeyboardInterrupt``; both take the orderly-drain exit."""
        try:
            while True:
                with self._lock:
                    if self._shutdown:
                        break
                for key, events in self._selector.select(timeout=1.0):
                    if key.data == "listener":
                        self._accept()
                    elif key.data == "wake":
                        self._drain_wake()
                    else:
                        conn = self._conns.get(key.fileobj)  # type: ignore[call-overload]
                        if conn is None:
                            continue
                        try:
                            if events & selectors.EVENT_READ:
                                self._on_readable(conn)
                            if events & selectors.EVENT_WRITE:
                                self._on_writable(conn)
                        except Exception:  # reprolint: disable=REPRO111 -- a protocol bug on one connection must not take the shared loop (and every other connection) down
                            self._close_conn(conn)
                self._flush_completed()
        except KeyboardInterrupt:  # reprolint: disable=REPRO112 -- Ctrl-C is the documented stop; the drain below answers everything in flight
            pass
        finally:
            self._drain_and_close()

    def shutdown(self) -> None:
        """Request an orderly drain-and-exit; safe from any thread.
        Returns immediately — :meth:`serve_forever` unwinds."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        self._wake()

    def _drain_and_close(self) -> None:
        """The ordered shutdown: stop accepting -> final read pass ->
        drain the backend -> flush -> close."""
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):  # reprolint: disable=REPRO112 -- already unregistered; shutdown is idempotent
            pass
        self._listener.close()
        # Final read pass: lines a client wrote before we stopped are
        # part of this serve, not casualties of it.
        for conn in list(self._conns.values()):
            self._on_readable(conn, final=True)
        # Drain: backend.close() blocks until every queued work item
        # has an answer; completion callbacks fire into _completed.
        self.backend.close()
        self._flush_completed()
        # Flush: blocking writes now — the loop is over, and every
        # buffered byte is an answered request.
        for conn in list(self._conns.values()):
            try:
                conn.sock.setblocking(True)
                if conn.outbuf:
                    conn.sock.sendall(bytes(conn.outbuf))
                    conn.outbuf.clear()
            except OSError:  # reprolint: disable=REPRO112 -- peer gone mid-drain; its responses have nowhere to go
                pass
            self._close_conn(conn, unregister=False)
        self._selector.close()
        self._wake_r.close()
        self._wake_w.close()

    # ------------------------------------------------------------------
    # selector plumbing
    # ------------------------------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"x")
        except (BlockingIOError, OSError):  # reprolint: disable=REPRO112 -- pipe full means a wake-up is already pending; closed means the loop already exited
            pass

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):  # reprolint: disable=REPRO112 -- drained, or already closed by shutdown
            pass

    def _accept(self) -> None:
        try:
            sock, _addr = self._listener.accept()
        except OSError:
            return
        sock.setblocking(False)
        conn = _Conn(sock)
        self._conns[sock] = conn
        self._selector.register(sock, selectors.EVENT_READ, "conn")

    def _interest(self, conn: _Conn) -> None:
        """(Loop thread.)  Point the selector at what the connection
        needs now; close it once nothing remains — no reads coming, no
        bytes to write, no responses still owed.  Reads pause while the
        connection is owed ``_MAX_INFLIGHT`` responses (backpressure);
        the completion wake-up re-arms them through
        :meth:`_flush_completed`."""
        if conn.sock not in self._conns:
            return
        with self._lock:
            gated = conn.inflight >= _MAX_INFLIGHT
        events = 0
        if not conn.closing and not gated:
            events |= selectors.EVENT_READ
        if conn.outbuf:
            events |= selectors.EVENT_WRITE
        if not events:
            with self._lock:
                owed = conn.inflight
                if owed == 0 and self._completed:
                    # A completion callback may have queued this
                    # connection's last payload between our caller and
                    # here; claim it now or closing would drop it.
                    kept: "deque[Tuple[_Conn, bytes]]" = deque()
                    for other, payload in self._completed:
                        if other is conn:
                            conn.outbuf += payload
                        else:
                            kept.append((other, payload))
                    self._completed = kept
            if conn.outbuf:
                self._interest(conn)
                return
            if owed == 0:
                self._close_conn(conn)
            else:
                # Waiting purely on backend completions: drop selector
                # interest entirely (a half-closed socket would spin
                # the loop otherwise); the completion wake re-arms us.
                try:
                    self._selector.unregister(conn.sock)
                except (KeyError, ValueError):  # reprolint: disable=REPRO112 -- already unregistered
                    pass
            return
        try:
            self._selector.modify(conn.sock, events, "conn")
        except (KeyError, ValueError):  # reprolint: disable=REPRO112 -- interest was dropped while waiting; re-arm
            try:
                self._selector.register(conn.sock, events, "conn")
            except (KeyError, ValueError):  # reprolint: disable=REPRO112 -- selector already closed (drain path)
                pass

    def _close_conn(self, conn: _Conn, unregister: bool = True) -> None:
        self._conns.pop(conn.sock, None)
        if unregister:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError):  # reprolint: disable=REPRO112 -- never registered or already gone
                pass
        try:
            conn.sock.close()
        except OSError:  # reprolint: disable=REPRO112 -- close is best-effort
            pass

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def _on_readable(self, conn: _Conn, final: bool = False) -> None:
        while True:
            try:
                chunk = conn.sock.recv(_RECV_BYTES)
            except BlockingIOError:
                break
            except OSError:
                self._close_conn(conn)
                return
            if not chunk:
                # Peer half-closed: finish what's buffered, answer
                # what's owed, then close.
                conn.closing = True
                break
            conn.inbuf.extend(chunk)
            if len(conn.inbuf) > _MAX_BUFFER:
                self._close_conn(conn)
                return
            if final:
                break  # one pass; the loop is exiting
        self._parse(conn)
        if not final:
            self._interest(conn)

    def _parse(self, conn: _Conn) -> None:
        if conn.mode is None and (b"\n" in conn.inbuf or conn.closing):
            first = bytes(conn.inbuf.split(b"\n", 1)[0])
            conn.mode = (
                "http"
                if first.startswith(_HTTP_METHODS) else "ndjson"
            )
        if conn.mode == "http":
            self._parse_http(conn)
        elif conn.mode == "ndjson":
            self._parse_ndjson(conn)

    # -- submission ----------------------------------------------------

    def _safe_submit(self, data: Any) -> Any:
        """``backend.submit`` that cannot raise.  The backend's contract
        is to *answer* a bad request with a 400 ticket, but a request
        engineered to blow up inside it (e.g. a numeric the key hasher
        chokes on) must cost only that request a 400/500 — never unwind
        the shared event loop and drop every connection, the containment
        the old thread-per-connection server gave for free."""
        try:
            return self.backend.submit(data)
        except ParameterError as exc:
            status, error = "bad-request", str(exc)
        except Exception as exc:  # reprolint: disable=REPRO111 -- any submit-time exception must be contained to this request
            status, error = "error", f"{type(exc).__name__}: {exc}"
        op = str(data.get("op", "")) if isinstance(data, dict) else ""
        rid = data.get("request_id") if isinstance(data, dict) else None
        return _FailedTicket(ServeResponse(
            status=status, code=STATUS_CODES[status], op=op, engine="",
            machine="", request_id=rid if isinstance(rid, str) else None,
            error=error,
        ))

    # -- NDJSON --------------------------------------------------------

    def _submit_ndjson(self, conn: _Conn, raw: bytes) -> None:
        try:
            data = json.loads(raw)
            if not isinstance(data, dict):
                data = {"op": f"<unparsable: not an object: "
                        f"{type(data).__name__}>"}
        except json.JSONDecodeError as exc:
            # Same contract as the stdio filter: an unparsable line
            # still gets a (400) response line, in order.
            data = {"op": f"<unparsable: {exc}>"}
        with self._lock:
            conn.inflight += 1
        ticket = self._safe_submit(data)
        conn.pending.append(ticket)
        ticket.add_done_callback(lambda _t, c=conn: self._ndjson_done(c))

    def _parse_ndjson(self, conn: _Conn) -> None:
        # One split per read pass: a burst of N buffered lines costs
        # O(buffer), not the O(buffer * N) of re-copying per line.
        if b"\n" in conn.inbuf:
            *lines, tail = bytes(conn.inbuf).split(b"\n")
            conn.inbuf = bytearray(tail)
            for line in lines:
                if line.strip():
                    self._submit_ndjson(conn, line.strip())
        # EOF with a trailing unterminated line: treat it as a line.
        if conn.closing and conn.inbuf.strip():
            leftover = bytes(conn.inbuf).strip()
            conn.inbuf = bytearray()
            self._submit_ndjson(conn, leftover)

    def _ndjson_done(self, conn: _Conn) -> None:
        """Completion callback (any thread): queue writable head
        responses for the loop and wake it.  Responses leave in submit
        order — only the head of the pending deque may be written."""
        payload = bytearray()
        with self._lock:
            while conn.pending and conn.pending[0].response is not None:
                ticket = conn.pending.popleft()
                conn.inflight -= 1
                payload += json.dumps(
                    ticket.response.to_dict(), sort_keys=True
                ).encode() + b"\n"
            if payload:
                self._completed.append((conn, bytes(payload)))
        if payload:
            self._wake()

    # -- HTTP ----------------------------------------------------------

    def _parse_http(self, conn: _Conn) -> None:
        if conn.http_head is None:
            if b"\r\n\r\n" in conn.inbuf:
                head, _, rest = bytes(conn.inbuf).partition(b"\r\n\r\n")
            elif b"\n\n" in conn.inbuf:
                head, _, rest = bytes(conn.inbuf).partition(b"\n\n")
            else:
                return  # headers not complete yet
            conn.inbuf = bytearray(rest)
            lines = head.decode("latin-1").splitlines()
            parts = lines[0].split()
            if len(parts) < 2:
                self._http_reply(conn, 400,
                                 {"error": "malformed request line"})
                return
            headers = {}
            for line in lines[1:]:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
            conn.http_head = (parts[0], parts[1], headers)
        method, path, headers = conn.http_head
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            self._http_reply(conn, 400, {"error": "bad Content-Length"})
            return
        if len(conn.inbuf) < length:
            return  # body not complete yet
        body = bytes(conn.inbuf[:length])
        conn.inbuf = bytearray(conn.inbuf[length:])
        self._http_dispatch(conn, method, path, body)

    def _http_dispatch(self, conn: _Conn, method: str, path: str,
                       body: bytes) -> None:
        if method == "GET":
            if path == "/healthz":
                self._http_reply(conn, 200, {"status": "ok"})
            elif path == "/metrics":
                self._http_reply(conn, 200, self._metrics())
            else:
                self._http_reply(
                    conn, 404, {"error": f"unknown path {path!r}"}
                )
            return
        if method != "POST":
            self._http_reply(
                conn, 405, {"error": f"method {method} not allowed"}
            )
            return
        try:
            data = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            self._http_reply(conn, 400,
                             {"error": f"bad JSON body: {exc}"})
            return
        if isinstance(data, list):
            if not data:
                self._http_reply(conn, 200, [])
                return
            with self._lock:
                conn.inflight += 1
            tickets = [self._safe_submit(
                item if isinstance(item, dict) else {"op": str(item)}
            ) for item in data]
            state = {"left": len(tickets)}

            def _one_done(_t: Any) -> None:
                with self._lock:
                    state["left"] -= 1
                    done = state["left"] == 0
                if done:
                    responses = [t.response for t in tickets]
                    worst = max((r.code for r in responses), default=200)
                    self._http_complete(
                        conn, worst, [r.to_dict() for r in responses]
                    )

            for ticket in tickets:
                ticket.add_done_callback(_one_done)
        else:
            request = data if isinstance(data, dict) \
                else {"op": str(data)}
            with self._lock:
                conn.inflight += 1
            ticket = self._safe_submit(request)
            ticket.add_done_callback(
                lambda t, c=conn: self._http_complete(
                    c, t.response.code, t.response.to_dict()
                )
            )

    def _http_encode(self, code: int, payload: Any) -> bytes:
        body = json.dumps(payload, sort_keys=True).encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 429: "Too Many Requests",
                  500: "Internal Server Error",
                  503: "Service Unavailable",
                  504: "Gateway Timeout"}.get(code, "Status")
        head = (
            f"HTTP/1.1 {code} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        return head + body

    def _http_reply(self, conn: _Conn, code: int, payload: Any) -> None:
        """Immediate (loop-thread) HTTP response."""
        conn.outbuf += self._http_encode(code, payload)
        conn.closing = True
        self._interest(conn)

    def _http_complete(self, conn: _Conn, code: int,
                       payload: Any) -> None:
        """Completion callback (any thread): queue the full HTTP
        response for the loop and wake it."""
        conn.closing = True
        with self._lock:
            conn.inflight -= 1
            self._completed.append(
                (conn, self._http_encode(code, payload))
            )
        self._wake()

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def _flush_completed(self) -> None:
        """Move callback-queued payloads into their connections'
        output buffers (loop thread only)."""
        while True:
            with self._lock:
                if not self._completed:
                    return
                conn, payload = self._completed.popleft()
            if conn.sock not in self._conns:
                continue  # connection died before its answer arrived
            conn.outbuf += payload
            self._on_writable(conn)

    def _on_writable(self, conn: _Conn) -> None:
        while conn.outbuf:
            try:
                sent = conn.sock.send(bytes(conn.outbuf))
            except BlockingIOError:
                break
            except OSError:
                self._close_conn(conn)
                return
            if sent <= 0:
                break
            del conn.outbuf[:sent]
        self._interest(conn)
