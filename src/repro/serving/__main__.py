"""Command-line front end for the prediction service.

Line-delimited JSON (the default): one request object per stdin line,
one response object per stdout line, in submit order::

    echo '{"op": "compare", "machine": "j90", \
           "pattern": {"kind": "hotspot", "n": 65536, "k": 4096}}' \
        | python -m repro.serving

HTTP mode (stdlib ``http.server``; one-shot what-ifs, not a hardened
frontend)::

    python -m repro.serving --http 8123
    # POST /            a request object (or a list of them) as JSON
    # GET  /metrics     the schema-checked serving metrics manifest
    # GET  /healthz     liveness probe

Service knobs (``--batch-size``, ``--flush-ms``, ``--max-queue``,
``--deadline-ms``, ``--lru``, ``--parallel``, ``--no-disk-cache``)
map one-to-one onto :class:`repro.serving.PredictionService`;
``--metrics`` prints the metrics table to stderr on exit and
``--manifest PATH`` writes the JSON manifest.
"""

from __future__ import annotations

import argparse
import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Sequence

from .metrics import metrics_table, serving_manifest, write_serving_manifest
from .service import PredictionService


def _build_service(args: argparse.Namespace) -> PredictionService:
    return PredictionService(
        max_queue=args.max_queue,
        batch_size=args.batch_size,
        flush_ms=args.flush_ms,
        deadline_ms=args.deadline_ms,
        lru_size=args.lru,
        disk_cache=False if args.no_disk_cache else None,
        parallel=args.parallel,
    )


def _run_ndjson(service: PredictionService, stream_in: Any,
                stream_out: Any) -> int:
    """Serve line-delimited JSON: responses stream out in submit order."""
    tickets = []
    for line in stream_in:
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            data = {"op": f"<unparsable: {exc}>"}
        tickets.append(service.submit(data))
    for ticket in tickets:
        print(ticket.result().to_json(), file=stream_out)
    return 0


class _Handler(BaseHTTPRequestHandler):
    """Request handler bridging HTTP to the in-process service."""

    service: PredictionService  # set by _run_http

    def log_message(self, fmt: str, *args: Any) -> None:
        """Silence the default per-request stderr chatter."""

    def _send(self, code: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Answer the metrics and liveness endpoints."""
        if self.path == "/healthz":
            self._send(200, {"status": "ok"})
        elif self.path == "/metrics":
            self._send(200, serving_manifest(self.service))
        else:
            self._send(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Answer one request object, or a list of them, posted as JSON."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
            data = json.loads(self.rfile.read(length) or b"null")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send(400, {"error": f"bad JSON body: {exc}"})
            return
        if isinstance(data, list):
            responses = self.service.serve(data)
            worst = max((r.code for r in responses), default=200)
            self._send(worst, [r.to_dict() for r in responses])
        else:
            response = self.service.call(data if isinstance(data, dict)
                                         else {"op": str(data)})
            self._send(response.code, response.to_dict())


def _run_http(service: PredictionService, port: int) -> int:
    """Serve HTTP until interrupted."""
    handler = type("_BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer(("127.0.0.1", port), handler)
    host, bound_port = server.server_address[:2]
    print(f"serving on http://{host}:{bound_port} "
          "(POST / | GET /metrics | GET /healthz; Ctrl-C stops)",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # reprolint: disable=REPRO112 -- Ctrl-C is the documented stop; there is nothing to record
        pass
    finally:
        server.server_close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Micro-batching prediction/simulation service: "
        "line-delimited JSON on stdin/stdout, or an HTTP endpoint.",
    )
    parser.add_argument("--http", type=int, default=None, metavar="PORT",
                        help="serve HTTP on 127.0.0.1:PORT instead of "
                        "NDJSON on stdio (0 picks a free port)")
    parser.add_argument("--max-queue", type=int, default=1024,
                        help="admission queue capacity (work items)")
    parser.add_argument("--batch-size", type=int, default=32,
                        help="micro-batch size watermark")
    parser.add_argument("--flush-ms", type=float, default=2.0,
                        help="micro-batch latency watermark (ms)")
    parser.add_argument("--deadline-ms", type=float, default=1000.0,
                        help="default per-request deadline (ms)")
    parser.add_argument("--lru", type=int, default=4096,
                        help="in-memory result cache entries (0 disables)")
    parser.add_argument("--parallel", type=int, default=1,
                        help="worker processes per flush (run_grid pool)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="skip the on-disk memo cache")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics table to stderr on exit")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="write the serving metrics manifest JSON")
    args = parser.parse_args(argv)

    service = _build_service(args)
    try:
        if args.http is not None:
            status = _run_http(service, args.http)
        else:
            status = _run_ndjson(service, sys.stdin, sys.stdout)
    finally:
        service.close()
        if args.metrics:
            print(metrics_table(service), file=sys.stderr)
        if args.manifest:
            write_serving_manifest(service, args.manifest)
    return status


if __name__ == "__main__":
    sys.exit(main())
