"""Command-line front end for the prediction serving tier.

Line-delimited JSON (the default): one request object per stdin line,
one response object per stdout line, in submit order::

    echo '{"op": "compare", "machine": "j90", \
           "pattern": {"kind": "hotspot", "n": 65536, "k": 4096}}' \
        | python -m repro.serving

Streaming a trace too large to send at once (``op": "stream"``; see
docs/streaming.md): ``action": "open"`` names a session, each
``"chunk"`` line feeds it one block of addresses and is answered with
the rolling prefix result, ``"close"`` returns the final result —
bit-identical to simulating the concatenated trace in one shot.

Network mode (a single-threaded ``selectors`` loop speaking HTTP *and*
NDJSON on the same port, per connection)::

    python -m repro.serving --http 8123 --host 0.0.0.0
    # POST /            a request object (or a list of them) as JSON
    # GET  /metrics     the schema-checked metrics manifest
    # GET  /healthz     liveness probe
    # ...or just pipe NDJSON lines over the socket.

``--workers N`` (N > 1) puts a :class:`repro.serving.ShardRouter` in
front: N worker processes each hosting a
:class:`~repro.serving.PredictionService`, sharded by request key over
a shared-memory hot tier — same responses, multiplied hot-path
throughput.  Service knobs (``--batch-size``, ``--flush-ms``,
``--max-queue``, ``--deadline-ms``, ``--lru``, ``--parallel``,
``--no-disk-cache``) map one-to-one onto the per-worker services;
``--metrics`` prints the metrics table to stderr on exit and
``--manifest PATH`` writes the JSON manifest (the router variant when
``--workers`` > 1).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional, Sequence, Union

from .frontend import ServingFrontend
from .metrics import (
    metrics_table,
    router_manifest,
    router_metrics_table,
    write_serving_manifest,
)
from .service import PredictionService
from .shard import ShardRouter

#: Either backend drives the CLI identically (same submit/serve/close).
Backend = Union[PredictionService, ShardRouter]


def _build_backend(args: argparse.Namespace) -> Backend:
    service_kwargs = dict(
        max_queue=args.max_queue,
        batch_size=args.batch_size,
        flush_ms=args.flush_ms,
        deadline_ms=args.deadline_ms,
        lru_size=args.lru,
        disk_cache=False if args.no_disk_cache else None,
        parallel=args.parallel,
        max_streams=args.max_streams,
        stream_window=args.stream_window,
    )
    if args.workers > 1:
        return ShardRouter(args.workers, **service_kwargs)
    return PredictionService(**service_kwargs)


def _run_ndjson(service: Backend, stream_in: Any,
                stream_out: Any) -> int:
    """Serve line-delimited JSON: responses stream out in submit order."""
    tickets = []
    for line in stream_in:
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            data = {"op": f"<unparsable: {exc}>"}
        tickets.append(service.submit(data))
    for ticket in tickets:
        print(ticket.result().to_json(), file=stream_out)
    return 0


def _run_frontend(backend: Backend, host: str, port: int) -> int:
    """Serve HTTP+NDJSON on a socket until interrupted; the frontend's
    shutdown drains the backend before the last byte is written."""
    frontend = ServingFrontend(backend, host=host, port=port)
    bound_host, bound_port = frontend.address
    print(f"serving on http://{bound_host}:{bound_port} "
          "(POST / | GET /metrics | GET /healthz | raw NDJSON lines; "
          "Ctrl-C stops)",
          file=sys.stderr)
    frontend.serve_forever()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Micro-batching prediction/simulation service: "
        "line-delimited JSON on stdin/stdout, or an HTTP+NDJSON "
        "socket endpoint, optionally sharded across worker processes.",
    )
    parser.add_argument("--http", type=int, default=None, metavar="PORT",
                        help="serve HTTP+NDJSON on HOST:PORT instead of "
                        "NDJSON on stdio (0 picks a free port)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address for --http "
                        "(default 127.0.0.1; 0.0.0.0 for all interfaces)")
    parser.add_argument("--workers", type=int, default=1,
                        help="shard the service across N worker "
                        "processes (1 = in-process service)")
    parser.add_argument("--max-queue", type=int, default=1024,
                        help="admission queue capacity (work items)")
    parser.add_argument("--batch-size", type=int, default=32,
                        help="micro-batch size watermark")
    parser.add_argument("--flush-ms", type=float, default=2.0,
                        help="micro-batch latency watermark (ms)")
    parser.add_argument("--deadline-ms", type=float, default=1000.0,
                        help="default per-request deadline (ms)")
    parser.add_argument("--lru", type=int, default=4096,
                        help="in-memory result cache entries (0 disables)")
    parser.add_argument("--parallel", type=int, default=1,
                        help="worker processes per flush (run_grid pool)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="skip the on-disk memo cache")
    parser.add_argument("--max-streams", type=int, default=8,
                        help="open stream sessions allowed at once "
                        "(op='stream'; 0 disables streaming)")
    parser.add_argument("--stream-window", type=int, default=8,
                        help="in-flight chunks allowed per stream "
                        "session before shedding (429)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics table to stderr on exit")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="write the metrics manifest JSON")
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")

    backend = _build_backend(args)
    sharded = isinstance(backend, ShardRouter)
    try:
        if args.http is not None:
            status = _run_frontend(backend, args.host, args.http)
        else:
            status = _run_ndjson(backend, sys.stdin, sys.stdout)
    finally:
        backend.close()
        if args.metrics:
            table = router_metrics_table(backend) if sharded \
                else metrics_table(backend)
            print(table, file=sys.stderr)
        if args.manifest:
            if sharded:
                from pathlib import Path

                data = router_manifest(backend)
                path = Path(args.manifest)
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(
                    json.dumps(data, indent=2, sort_keys=True) + "\n"
                )
            else:
                write_serving_manifest(backend, args.manifest)
    return status


if __name__ == "__main__":
    sys.exit(main())
