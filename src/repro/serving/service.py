"""The prediction service: admission control, micro-batching, caching.

:class:`PredictionService` answers :class:`~repro.serving.request.ServeRequest`
questions with the library's own entry points — the response's numbers
are *bit-identical* to calling :func:`repro.simulator.simulate_scatter`
(or the chosen cycle engine) and
:func:`repro.core.cost.predict_scatter_dxbsp` directly, because that is
literally what :func:`evaluate_point` does.  What the service adds is
the traffic engineering around those calls:

* **Admission control** — a bounded request queue; a request arriving
  when it is full is shed immediately with a 429-style ``overloaded``
  response instead of growing an unbounded backlog.  Per-request
  deadlines turn stale queued work into ``deadline-exceeded`` answers
  rather than wasted evaluations.
* **Micro-batching** — queued work items are grouped by compatibility
  (machine + engine + bank mapping) and flushed together when a group
  hits the size or latency watermark
  (:class:`~repro.serving.batcher.MicroBatcher`).  Within a flush,
  *identical* work items are deduplicated: one engine evaluation
  answers every duplicate request (the hot-spot dashboard poll case),
  and the distinct remainder is evaluated through a single
  :func:`~repro.experiments.runner.run_grid` call — one batched pass
  that inherits the runner's on-disk memo, fault tolerance and
  (optionally) its process pool.  Compatible cycle-engine sweep points
  within that call additionally *fuse*: the runner dispatches them as
  one vectorized :func:`~repro.simulator.cycle_grid.
  simulate_scatter_grid` pass (bit-identical per point) instead of N
  separate engine invocations.
* **Two-level memoization** — an in-memory LRU in front of the
  experiment runner's on-disk memo cache.  Both are probed at
  admission, so a repeated question is answered without ever occupying
  a queue slot; keys are the runner's own
  :func:`~repro.experiments.runner.cache_key` over the fully-resolved
  work item, which makes cached and freshly-evaluated answers
  interchangeable by construction.

* **Stream sessions** — the ``stream`` op opens a named
  :class:`~repro.simulator.stream.StreamSimulator` session, feeds it
  address chunks in order and retires it with a final result that is
  bit-identical to simulating the whole concatenated trace at once.
  Chunks ride the same FIFO queue as batched work (one dispatcher
  thread keeps a session's chunks ordered for free) but bypass the
  batcher and both caches — a chunk answer depends on everything fed
  before it, so it is never a cacheable question.  Backpressure is
  per-session: at most ``stream_window`` chunks may be in flight per
  stream (the queued-memory bound is ``stream_window`` × chunk bytes),
  and at most ``max_streams`` sessions may be open; either limit
  overrunning sheds with ``overloaded`` (429).  See docs/streaming.md.

One dispatcher thread drives the batcher; evaluation happens in that
thread (or in the runner's process pool when ``parallel > 1``).  All
public methods are thread-safe.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._util import as_addresses
from ..core.contention import max_location_contention
from ..core.cost import predict_scatter_bsp, predict_scatter_dxbsp
from ..errors import ParameterError
from ..experiments import runner
from ..simulator.dispatch import simulate_scatter_engine
from ..simulator.machine import MachineConfig
from ..simulator.stream import StreamSimulator
from .metrics import ServingStats
from .batcher import MicroBatcher
from .request import (
    STATUS_CODES,
    ServeRequest,
    ServeResponse,
    _sweep_points,
    request_from_dict,
    resolve_bank_map,
    resolve_machine,
    resolve_pattern,
)

__all__ = ["PredictionService", "Ticket", "evaluate_point"]

#: Admission-queue poll period while the batcher is idle, seconds.
_IDLE_POLL_S = 0.05

#: Latency ring-buffer length (enough for stable p95 on any bench run
#: without unbounded growth on a long-lived service).
_LATENCY_WINDOW = 4096


def evaluate_point(
    op: str,
    machine: MachineConfig,
    addresses: np.ndarray,
    engine: str,
    bank_map_kind: str,
    map_seed: int,
) -> Dict[str, Any]:
    """Evaluate one fully-resolved work item with the plain library calls.

    This is the *entire* computation behind a served answer — the
    service layers (queueing, batching, caching) only decide when and
    how often it runs, never what it computes, which is what makes
    service responses bit-identical to direct library calls.  Returns a
    flat dict of scalars (JSON-able, picklable, cheap to memoize).

    Module-level on purpose: it is the point function handed to
    :func:`repro.experiments.runner.run_grid`, so it must be picklable
    by reference, and its identity + kwargs are the shared cache key of
    the LRU and the on-disk memo.
    """
    mapping = resolve_bank_map(bank_map_kind, map_seed)
    addr = as_addresses(addresses)
    out: Dict[str, Any] = {"n": int(addr.size)}
    if op in ("predict", "compare"):
        params = machine.params()
        out["contention"] = int(max_location_contention(addr))
        out["bsp_time"] = float(predict_scatter_bsp(params, addr))
        out["dxbsp_time"] = float(
            predict_scatter_dxbsp(params, addr, mapping)
        )
    if op in ("simulate", "compare"):
        res = simulate_scatter_engine(
            machine, addr, mapping, engine=engine
        )
        out["simulated_time"] = float(res.time)
        out["max_bank_load"] = int(res.max_bank_load)
        out["max_wait"] = float(res.max_wait)
        out["mean_wait"] = float(res.mean_wait)
        out["stalled_cycles"] = float(res.stalled_cycles)
    return out


#: Engines whose per-point results the grid-fused pass reproduces
#: bit-identically.  ``banksim`` is deliberately absent: it only agrees
#: with the cycle engines under unbounded queues and no sections, so
#: fusing it would change answers on exactly the machines where the
#: engines differ.
_FUSABLE_ENGINES = frozenset({"tick", "event", "batch"})


class _EvaluatePointFuser:
    """Grid-fusion adapter for :func:`evaluate_point` (the ``grid_fuse``
    protocol of :func:`repro.experiments.runner.run_grid`).

    ``key`` marks the sweep points whose simulations may share one
    fused pass — cycle-engine evaluations of same-size patterns (the
    micro-batcher's bread-and-butter flush: one pattern family swept
    over seeds/machines/mappings).  ``run`` evaluates such a group with
    a single :func:`~repro.simulator.cycle_grid.simulate_scatter_grid`
    call and rebuilds each point's result dict exactly as
    :func:`evaluate_point` would — same fields, same insertion order,
    same float values (the grid pass is bit-identical per point) — so
    cached and fused answers stay interchangeable.
    """

    @staticmethod
    def key(point: Dict[str, Any]) -> Optional[Tuple[Any, ...]]:
        """Compatibility key, or ``None`` to keep the point unfused."""
        if point.get("op") not in ("simulate", "compare"):
            return None
        if point.get("engine") not in _FUSABLE_ENGINES:
            return None
        addr = point.get("addresses")
        if not isinstance(addr, np.ndarray):
            return None
        return (point["op"], point["engine"], int(addr.size))

    @staticmethod
    def run(points: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Evaluate one compatible group through the fused grid pass."""
        from ..simulator.cycle_grid import simulate_scatter_grid

        addrs = [as_addresses(p["addresses"]) for p in points]
        mappings = [
            resolve_bank_map(p["bank_map_kind"], p["map_seed"])
            for p in points
        ]
        sims = simulate_scatter_grid(
            [p["machine"] for p in points], addrs, bank_map=mappings
        )
        results: List[Dict[str, Any]] = []
        for p, addr, mapping, res in zip(points, addrs, mappings, sims):
            out: Dict[str, Any] = {"n": int(addr.size)}
            if p["op"] == "compare":
                params = p["machine"].params()
                out["contention"] = int(max_location_contention(addr))
                out["bsp_time"] = float(predict_scatter_bsp(params, addr))
                out["dxbsp_time"] = float(
                    predict_scatter_dxbsp(params, addr, mapping)
                )
            out["simulated_time"] = float(res.time)
            out["max_bank_load"] = int(res.max_bank_load)
            out["max_wait"] = float(res.max_wait)
            out["mean_wait"] = float(res.mean_wait)
            out["stalled_cycles"] = float(res.stalled_cycles)
            results.append(out)
        return results


#: The runner discovers the adapter on the point function itself, so
#: every run_grid(evaluate_point, ...) caller — the service flush, the
#: experiment sweeps, ad-hoc scripts — gets fusion without plumbing.
evaluate_point.grid_fuse = _EvaluatePointFuser()  # type: ignore[attr-defined]


@dataclasses.dataclass
class _WorkItem:
    """One queued unit of evaluation, bound to its ticket slot."""

    ticket: "Ticket"
    slot: int
    key: str
    group: Tuple[Any, ...]
    point: Dict[str, Any]
    deadline: Optional[float]  # absolute monotonic instant, or None


@dataclasses.dataclass
class _StreamSession:
    """One open stream: its incremental simulator plus the session-local
    admission state.  ``window`` counts chunks admitted but not yet
    answered (the per-stream backpressure bound); ``closing`` flips at
    ``close`` admission so chunks racing a queued close are refused
    up front instead of arriving at a retired session."""

    sim: StreamSimulator
    machine_name: str
    window: int = 0
    closing: bool = False


@dataclasses.dataclass
class _StreamItem:
    """One queued stream step (``chunk`` or ``close``).  Rides the same
    FIFO queue as :class:`_WorkItem` — the single dispatcher thread is
    what keeps a session's steps ordered — but is evaluated immediately
    instead of entering the batcher, and never counts against the
    ``max_queue`` admission bound (its bound is the session window)."""

    ticket: "Ticket"
    stream_id: str
    action: str
    addresses: Optional[np.ndarray]


class Ticket:
    """Handle for one submitted request; ``result()`` blocks for the
    :class:`~repro.serving.request.ServeResponse`."""

    def __init__(self, service: "PredictionService", request: ServeRequest,
                 n_slots: int, sweep_param: Optional[str],
                 sweep_values: Sequence[Any]) -> None:
        self._service = service
        self.request = request
        self.t_submit = time.monotonic()
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._values: List[Optional[Dict[str, Any]]] = [None] * n_slots
        self._pending = n_slots
        self._status = "ok"
        self._error = ""
        self._all_cached = True
        self._batch = 0
        self._sweep_param = sweep_param
        self._sweep_values = list(sweep_values)
        self._callbacks: List[Any] = []
        #: Set by stream admission: the session's machine name (chunk
        #: and close requests do not carry a machine field themselves).
        self.machine_name: Optional[str] = None
        self.response: Optional[ServeResponse] = None

    @property
    def dead(self) -> bool:
        """True once the ticket resolved to a non-ok status (queued
        work items for it are dropped unevaluated at flush time)."""
        return self._status != "ok"

    def _complete(self, slot: int, value: Dict[str, Any],
                  cached: bool, batch: int) -> None:
        finished = False
        with self._lock:
            if self._values[slot] is None and self._pending > 0:
                self._values[slot] = value
                self._pending -= 1
                self._all_cached = self._all_cached and cached
                self._batch = max(self._batch, batch)
                finished = self._pending == 0
        if finished:
            self._service._finalize(self)

    def _fail(self, status: str, error: str) -> None:
        with self._lock:
            if self._status != "ok":
                return
            self._status = status
            self._error = error
            self._pending = 0
        self._service._finalize(self)

    def _build_response(self, latency_ms: float) -> ServeResponse:
        req = self.request
        machine_name = self.machine_name
        if machine_name is None:
            try:
                machine_name = resolve_machine(req.machine).name
            except ParameterError:
                machine_name = str(req.machine)
        result: Optional[Dict[str, Any]] = None
        if self._status == "ok":
            if self._sweep_param is None:
                result = self._values[0]
            else:
                result = {
                    "param": self._sweep_param,
                    "rows": [
                        dict(value=v, **(r or {}))
                        for v, r in zip(self._sweep_values, self._values)
                    ],
                }
        return ServeResponse(
            status=self._status,
            code=STATUS_CODES[self._status],
            op=req.op,
            # A stream session is answered by the incremental simulator,
            # whatever engine= the request carried.
            engine="stream" if req.op == "stream" else req.engine,
            machine=machine_name,
            request_id=req.request_id,
            result=result,
            cached=self._status == "ok" and self._all_cached,
            batch=self._batch,
            latency_ms=latency_ms,
            error=self._error,
        )

    def result(self, timeout: Optional[float] = None) -> ServeResponse:
        """Block until the response is ready (raises ``TimeoutError``
        after ``timeout`` seconds)."""
        if not self._event.wait(timeout):
            raise TimeoutError("request still pending")
        assert self.response is not None
        return self.response

    def add_done_callback(self, fn: Any) -> None:
        """Run ``fn(ticket)`` once the response is ready.

        Fires immediately when the ticket already resolved; otherwise
        from whichever thread finalizes it (the dispatcher, or a
        submitter on the cache-hit path) — callbacks must be cheap and
        must not block.  The non-blocking front end
        (:mod:`repro.serving.frontend`) uses this to pump responses
        back into its event loop without parking a thread per request.
        """
        with self._lock:
            if self.response is None:
                self._callbacks.append(fn)
                return
        fn(self)


class _LRU:
    """Tiny ordered-dict LRU (caller provides locking)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._data: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: str, value: Dict[str, Any]) -> None:
        if self.capacity <= 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)


class PredictionService:
    """Micro-batching, cache-backed front end over the simulator stack.

    Parameters
    ----------
    max_queue:
        Admission-queue capacity (work items); a submit that finds it
        full is answered ``overloaded`` (429) immediately —
        backpressure by shedding, never by unbounded buffering.
    batch_size:
        Micro-batch size watermark (flush a group at this many items).
    flush_ms:
        Micro-batch latency watermark, milliseconds (flush a group
        whose oldest item has waited this long).
    deadline_ms:
        Default per-request deadline (overridable per request);
        ``None`` disables deadlines.
    lru_size:
        In-memory result-cache entries (0 disables the LRU).
    disk_cache:
        Probe/populate the experiment runner's on-disk memo; ``None``
        follows the runner's own configuration (``REPRO_CACHE``).
    parallel:
        Worker processes for flush evaluation (forwarded to
        :func:`~repro.experiments.runner.run_grid`; 1 = evaluate in the
        dispatcher thread).
    fuse:
        Forwarded to :func:`~repro.experiments.runner.run_grid`:
        ``None`` (default) routes compatible sweep flushes through the
        fused grid pass (one vectorized evaluation per group of
        same-size cycle-engine points — bit-identical per point);
        ``False`` forces per-point evaluation.
    max_streams:
        Open stream sessions allowed at once; an ``open`` past the
        limit is shed (429).
    stream_window:
        Chunks one stream may have in flight (admitted, not yet
        answered); a chunk past the window is shed (429).  This is the
        streaming memory bound: the service never holds more than
        ``stream_window`` unprocessed chunks per session.

    Use as a context manager (``with PredictionService() as svc:``) or
    call :meth:`close` to drain and stop the dispatcher.
    """

    def __init__(
        self,
        max_queue: int = 1024,
        batch_size: int = 32,
        flush_ms: float = 2.0,
        deadline_ms: Optional[float] = 1000.0,
        lru_size: int = 4096,
        disk_cache: Optional[bool] = None,
        parallel: int = 1,
        fuse: Optional[bool] = None,
        max_streams: int = 8,
        stream_window: int = 8,
    ) -> None:
        if max_queue < 1:
            raise ParameterError(f"max_queue must be >= 1, got {max_queue}")
        if max_streams < 0:
            raise ParameterError(
                f"max_streams must be >= 0, got {max_streams}"
            )
        if stream_window < 1:
            raise ParameterError(
                f"stream_window must be >= 1, got {stream_window}"
            )
        self.max_queue = int(max_queue)
        self.batch_size = int(batch_size)
        self.flush_ms = float(flush_ms)
        self.deadline_ms = deadline_ms
        self.lru_size = int(lru_size)
        self.disk_cache = disk_cache
        self.parallel = int(parallel)
        self.fuse = fuse
        self.max_streams = int(max_streams)
        self.stream_window = int(stream_window)
        self._streams: Dict[str, _StreamSession] = {}
        # The queue itself is unbounded; admission is bounded by the
        # in-flight counter below, which covers items waiting in open
        # micro-batch buckets too — capacity is only released when an
        # item is actually resolved, so backpressure cannot leak into
        # the batcher.
        self._queue: "queue.Queue[Union[_WorkItem, _StreamItem]]" = \
            queue.Queue()
        self._in_flight = 0
        self._batcher = MicroBatcher(
            batch_size=self.batch_size,
            flush_interval=self.flush_ms / 1000.0,
        )
        self._lock = threading.Lock()
        self._stats = ServingStats()
        self._latencies: "deque[float]" = deque(maxlen=_LATENCY_WINDOW)
        self._lru = _LRU(self.lru_size)
        self._closing = threading.Event()
        self._t_start = time.monotonic()
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-serving-dispatch",
            daemon=True,
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Drain queued work, flush every open batch, stop the
        dispatcher.  Idempotent; pending tickets resolve before this
        returns."""
        if self._closing.is_set():
            return
        self._closing.set()
        self._thread.join()
        # A submit racing the shutdown check may have queued after the
        # dispatcher's final drain; resolve those as closed (503), never
        # hang — and never as "overloaded": shutdown is not load
        # shedding, and a client seeing 429 would retry against a
        # service that is going away.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            with self._lock:
                self._stats.closed += 1
                if not isinstance(item, _StreamItem):
                    self._in_flight -= 1
            item.ticket._fail("closed", "service closed")
        # Sessions still open lost their service; drop them (their
        # admitted chunks all resolved above or in the drain).
        with self._lock:
            self._streams.clear()

    def submit(
        self, request: Union[ServeRequest, Dict[str, Any]]
    ) -> Ticket:
        """Admit one request; returns a :class:`Ticket` immediately.

        A dict is parsed/validated first (invalid → ``bad-request``).
        Cache hits resolve the ticket before this returns; everything
        else resolves once its micro-batch flushes (or sheds/expires).
        """
        with self._lock:
            self._stats.received += 1
        try:
            if isinstance(request, dict):
                request = request_from_dict(request)
            else:
                request.validate()
            return self._admit(request)
        except ParameterError as exc:
            req = request if isinstance(request, ServeRequest) \
                else ServeRequest(request_id=self._request_id_of(request))
            ticket = Ticket(self, req, 1, None, ())
            with self._lock:
                self._stats.invalid += 1
            ticket._fail("bad-request", str(exc))
            return ticket

    def call(
        self,
        request: Union[ServeRequest, Dict[str, Any]],
        timeout: Optional[float] = None,
    ) -> ServeResponse:
        """Submit one request and block for its response."""
        return self.submit(request).result(timeout)

    def serve(
        self,
        requests: Sequence[Union[ServeRequest, Dict[str, Any]]],
        timeout: Optional[float] = None,
    ) -> List[ServeResponse]:
        """Submit many requests, then collect responses in submit order
        (submitting everything before waiting is what lets compatible
        requests share micro-batches)."""
        tickets = [self.submit(r) for r in requests]
        return [t.result(timeout) for t in tickets]

    def stats(self) -> ServingStats:
        """Snapshot of the service counters."""
        with self._lock:
            return dataclasses.replace(self._stats)

    def latencies_ms(self) -> List[float]:
        """Snapshot of the recent response latencies (ring buffer)."""
        with self._lock:
            return list(self._latencies)

    def uptime_seconds(self) -> float:
        """Seconds since the service started."""
        return time.monotonic() - self._t_start

    def queue_depth(self) -> int:
        """Current admission-queue depth (approximate by nature)."""
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    @staticmethod
    def _request_id_of(data: Any) -> Optional[str]:
        if isinstance(data, dict):
            rid = data.get("request_id")
            return rid if isinstance(rid, str) else None
        return None

    def _admit(self, req: ServeRequest) -> Ticket:
        if req.op == "stream":
            return self._admit_stream(req)
        machine = resolve_machine(req.machine)
        if req.sweep is not None:
            pairs = _sweep_points(req)
            sweep_param: Optional[str] = req.sweep["param"]
            sweep_values = [v for v, _spec in pairs]
            patterns = [
                resolve_pattern(spec, None) for _v, spec in pairs
            ]
        else:
            sweep_param = None
            sweep_values = []
            patterns = [resolve_pattern(req.pattern, req.addresses)]
        # Resolving the bank map here validates kind+seed up front; the
        # map itself is rebuilt inside evaluate_point from the canonical
        # (kind, seed) pair so every cache key stays canonical types.
        resolve_bank_map(req.bank_map, req.map_seed)

        ticket = Ticket(self, req, len(patterns), sweep_param, sweep_values)
        deadline_ms = req.deadline_ms if req.deadline_ms is not None \
            else self.deadline_ms
        deadline = None if deadline_ms is None \
            else ticket.t_submit + deadline_ms / 1000.0
        group = (machine, req.engine, req.bank_map, req.map_seed, req.op)
        for slot, addr in enumerate(patterns):
            point = {
                "op": req.op,
                "machine": machine,
                "addresses": addr,
                "engine": req.engine,
                "bank_map_kind": req.bank_map,
                "map_seed": req.map_seed,
            }
            key = runner.cache_key(evaluate_point, point)
            with self._lock:
                hit = self._lru.get(key)
                if hit is not None:
                    self._stats.lru_hits += 1
            if hit is not None:
                ticket._complete(slot, hit, cached=True, batch=0)
                continue
            if self.disk_cache is not False:
                found, value = runner.cache_fetch(evaluate_point, point)
                if found:
                    with self._lock:
                        self._stats.disk_hits += 1
                        self._lru.put(key, value)
                    ticket._complete(slot, value, cached=True, batch=0)
                    continue
            if self._closing.is_set():
                with self._lock:
                    self._stats.closed += 1
                ticket._fail("closed", "service is shutting down")
                break
            item = _WorkItem(ticket, slot, key, group, point, deadline)
            with self._lock:
                if self._in_flight >= self.max_queue:
                    self._stats.shed += 1
                    admitted = False
                else:
                    self._in_flight += 1
                    self._stats.queue_high_water = max(
                        self._stats.queue_high_water, self._in_flight
                    )
                    admitted = True
            if not admitted:
                ticket._fail(
                    "overloaded",
                    f"admission queue full ({self.max_queue} items)",
                )
                break
            self._queue.put_nowait(item)
        return ticket

    # ------------------------------------------------------------------
    # stream sessions
    # ------------------------------------------------------------------

    def _admit_stream(self, req: ServeRequest) -> Ticket:
        """Admit one stream request.  ``open`` is synchronous — the
        session must exist before the caller's next chunk is admitted —
        while ``chunk``/``close`` ride the FIFO queue, so the single
        dispatcher thread applies them in submit order.  A
        :class:`ParameterError` raised here (bad machine/pattern, a
        machine the streaming simulator refuses) is answered 400 by
        :meth:`submit`."""
        assert req.stream_id is not None
        sid = req.stream_id
        ticket = Ticket(self, req, 1, None, ())
        if self._closing.is_set():
            with self._lock:
                self._stats.closed += 1
            ticket._fail("closed", "service is shutting down")
            return ticket
        if req.action == "open":
            machine = resolve_machine(req.machine)
            mapping = resolve_bank_map(req.bank_map, req.map_seed)
            # The streaming simulator refuses what it cannot chunk
            # exactly (combining, block assignment, sections) — that
            # refusal propagates as this request's 400.
            sim = StreamSimulator(machine, bank_map=mapping)
            session = _StreamSession(sim=sim, machine_name=machine.name)
            with self._lock:
                if sid in self._streams:
                    state = "dup"
                elif len(self._streams) >= self.max_streams:
                    self._stats.shed += 1
                    state = "full"
                else:
                    self._streams[sid] = session
                    self._stats.streams_opened += 1
                    state = "ok"
            if state == "dup":
                ticket._fail(
                    "bad-request", f"stream {sid!r} is already open"
                )
            elif state == "full":
                ticket._fail(
                    "overloaded",
                    f"open stream limit reached ({self.max_streams}); "
                    "close a session or retry later",
                )
            else:
                ticket._complete(0, {
                    "stream_id": sid,
                    "machine": session.machine_name,
                    "n": 0,
                    "stream_window": self.stream_window,
                }, cached=False, batch=0)
            return ticket
        if req.action == "chunk":
            addr = resolve_pattern(req.pattern, req.addresses)
            with self._lock:
                session = self._streams.get(sid)
                unknown = session is None or session.closing
                full = (
                    not unknown
                    and session.window >= self.stream_window  # type: ignore[union-attr]
                )
                if full:
                    self._stats.shed += 1
                if not unknown and not full:
                    assert session is not None
                    session.window += 1
                    self._stats.stream_chunks += 1
                    ticket.machine_name = session.machine_name
            if unknown:
                ticket._fail(
                    "bad-request",
                    f"unknown stream {sid!r} (not open on this worker — "
                    "a restart drops sessions; reopen and refeed)",
                )
            elif full:
                ticket._fail(
                    "overloaded",
                    f"stream {sid!r} window full ({self.stream_window} "
                    "chunks in flight); wait for outstanding chunk "
                    "responses before feeding more",
                )
            else:
                self._queue.put_nowait(
                    _StreamItem(ticket, sid, "chunk", addr)
                )
            return ticket
        # close
        with self._lock:
            session = self._streams.get(sid)
            unknown = session is None or session.closing
            if not unknown:
                assert session is not None
                session.closing = True
                ticket.machine_name = session.machine_name
        if unknown:
            ticket._fail(
                "bad-request",
                f"unknown stream {sid!r} (not open on this worker — "
                "a restart drops sessions; reopen and refeed)",
            )
        else:
            self._queue.put_nowait(_StreamItem(ticket, sid, "close", None))
        return ticket

    def _stream_step(self, item: _StreamItem) -> None:
        """(Dispatcher thread.)  Apply one queued stream step: a chunk
        feeds the session's simulator and answers with the rolling
        prefix result; a close answers with the final result (saving a
        resume checkpoint into the runner memo when the disk cache is
        on) and retires the session.  A step that raises kills its
        session — the carry state is unknown after a failed feed, and a
        desynced stream must refuse further chunks rather than answer
        them wrongly."""
        with self._lock:
            session = self._streams.get(item.stream_id)
        if session is None:
            # The session died (an earlier step failed) after this one
            # was admitted.
            item.ticket._fail(
                "bad-request",
                f"stream {item.stream_id!r} is gone; reopen and refeed",
            )
            return
        try:
            if item.action == "chunk":
                assert item.addresses is not None
                update = session.sim.feed(item.addresses)
                res = update.result
                out = {
                    "stream_id": item.stream_id,
                    "chunk_index": int(update.chunk_index),
                    "chunk_n": int(update.chunk_n),
                    "n": int(update.n),
                    "simulated_time": float(res.time),
                    "delta_time": float(update.delta_time),
                    "max_bank_load": int(res.max_bank_load),
                    "max_wait": float(res.max_wait),
                    "mean_wait": float(res.mean_wait),
                    "stalled_cycles": float(res.stalled_cycles),
                    "prefix_digest": session.sim.prefix_digest,
                }
            else:
                res = session.sim.result()
                checkpoint = None
                if self.disk_cache is not False:
                    checkpoint = session.sim.save_checkpoint()
                out = {
                    "stream_id": item.stream_id,
                    "n": int(session.sim.n),
                    "simulated_time": float(res.time),
                    "max_bank_load": int(res.max_bank_load),
                    "max_wait": float(res.max_wait),
                    "mean_wait": float(res.mean_wait),
                    "stalled_cycles": float(res.stalled_cycles),
                    "prefix_digest": session.sim.prefix_digest,
                    "checkpoint": checkpoint is not None,
                }
                with self._lock:
                    self._streams.pop(item.stream_id, None)
                    self._stats.streams_closed += 1
        except Exception as exc:  # reprolint: disable=REPRO111 -- a failed step must answer 500 and kill only its session, never the shared dispatcher
            with self._lock:
                self._streams.pop(item.stream_id, None)
                self._stats.failed += 1
            item.ticket._fail("error", f"stream step failed: {exc}")
            return
        if item.action == "chunk":
            with self._lock:
                session.window -= 1
        item.ticket._complete(0, out, cached=False, batch=0)

    # ------------------------------------------------------------------
    # dispatch + flush
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            now = time.monotonic()
            wait = self._batcher.seconds_until_due(now)
            if wait is None:
                wait = _IDLE_POLL_S
            try:
                item: Optional[Union[_WorkItem, _StreamItem]] = \
                    self._queue.get(timeout=max(wait, 0.0005))
            except queue.Empty:
                item = None
            if item is not None:
                now = time.monotonic()
                if isinstance(item, _StreamItem):
                    self._stream_step(item)
                else:
                    self._batcher.add(item.group, item, now)
                # Opportunistic drain: everything already queued joins
                # this batching round without another poll cycle (stream
                # steps are applied in place, keeping session order).
                while True:
                    try:
                        nxt = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if isinstance(nxt, _StreamItem):
                        self._stream_step(nxt)
                    else:
                        self._batcher.add(nxt.group, nxt, now)
            for items in self._batcher.take_due(time.monotonic()):
                self._flush(items)
            if self._closing.is_set() and self._queue.empty():
                # Shutdown drain: flush every open bucket regardless of
                # watermarks, then re-check for submits that raced in.
                for items in self._batcher.take_all():
                    self._flush(items)
                if self._queue.empty() and self._batcher.pending == 0:
                    return

    def _flush(self, items: Sequence[_WorkItem]) -> None:
        now = time.monotonic()
        with self._lock:
            # Every item in this flush resolves below, one way or
            # another — its admission capacity is released up front.
            self._in_flight -= len(items)
        live: List[_WorkItem] = []
        for it in items:
            if it.deadline is not None and now > it.deadline:
                with self._lock:
                    self._stats.expired += 1
                it.ticket._fail(
                    "deadline-exceeded",
                    "deadline lapsed before evaluation",
                )
            elif not it.ticket.dead:
                live.append(it)
        if not live:
            return
        # Deduplicate identical work items: one evaluation answers every
        # duplicate in the flush (first-seen order kept for determinism).
        takers: "OrderedDict[str, List[_WorkItem]]" = OrderedDict()
        for it in live:
            takers.setdefault(it.key, []).append(it)
        unique = [group[0].point for group in takers.values()]
        try:
            # One batched call evaluates the whole flush: run_grid
            # re-checks the on-disk memo, runs the distinct points
            # (pooled when parallel > 1) and stores the results.
            results = runner.run_grid(
                evaluate_point, unique,
                parallel=self.parallel, cache=self.disk_cache,
                fuse=self.fuse,
            )
        except Exception as exc:  # reprolint: disable=REPRO111 -- the service must answer 500 and stay up, whatever the evaluation raised
            with self._lock:
                self._stats.failed += len(live)
            for it in live:
                it.ticket._fail("error", f"evaluation failed: {exc}")
            return
        with self._lock:
            self._stats.batches += 1
            self._stats.batched_requests += len(live)
            self._stats.evaluations += len(unique)
            self._stats.max_batch = max(self._stats.max_batch, len(live))
            for key, value in zip(takers, results):
                self._lru.put(key, value)
        for (key, waiting), value in zip(takers.items(), results):
            for it in waiting:
                it.ticket._complete(
                    it.slot, value, cached=False, batch=len(live)
                )

    def _finalize(self, ticket: Ticket) -> None:
        latency_ms = (time.monotonic() - ticket.t_submit) * 1000.0
        response = ticket._build_response(latency_ms)
        with self._lock:
            if response.ok:
                self._stats.served += 1
            self._latencies.append(latency_ms)
        with ticket._lock:
            ticket.response = response
            callbacks, ticket._callbacks = ticket._callbacks, []
        ticket._event.set()
        for fn in callbacks:
            fn(ticket)
