"""Request serving: a micro-batching prediction/simulation service.

The paper's argument is that ``max(L, g·h_p, d·h_b)`` is cheap enough
to consult *online*; this package is the online front end.  A
:class:`PredictionService` answers "predict this scatter on this
machine", "simulate it with engine X" and "sweep k over these values"
questions — bit-identically to calling the library directly — while
adding the traffic engineering a shared endpoint needs: a bounded
admission queue with deadline/shed backpressure, micro-batching of
compatible requests (grouped by machine + engine + bank mapping,
flushed on size/latency watermarks, duplicates collapsed onto single
engine evaluations), an in-memory LRU in front of the experiment
runner's on-disk memo, and a schema-checked metrics manifest.  The
``stream`` op opens named :class:`~repro.simulator.stream.
StreamSimulator` sessions and feeds them chunk by chunk — unbounded
traces served under a bounded memory footprint, with per-session
windowed backpressure (docs/streaming.md).

Scaling out, :class:`ShardRouter` shards the same service across N
worker processes by canonical request key — shard-local LRU affinity,
duplicate collapse, and a :class:`SharedHotTier` result cache in shared
memory probed by every process — with responses bit-identical to one
in-process service.  :class:`ServingFrontend` is the network front end
for either backend: one ``selectors`` loop speaking HTTP and NDJSON on
the same port.

``python -m repro.serving`` exposes all of it: a line-delimited-JSON
stdio filter by default, ``--http PORT --host ADDR`` for the socket
endpoint, ``--workers N`` for the sharded tier; see docs/serving.md
for the architecture and the capacity math.
"""

from .batcher import MicroBatcher
from .frontend import ServingFrontend
from .metrics import (
    ROUTER_MANIFEST_SCHEMA,
    ROUTER_SCHEMA_VERSION,
    SERVING_MANIFEST_SCHEMA,
    SERVING_SCHEMA_VERSION,
    RouterStats,
    ServingStats,
    metrics_table,
    percentile,
    router_manifest,
    router_metrics_table,
    serving_manifest,
    write_serving_manifest,
)
from .request import (
    BANK_MAPS,
    MACHINES,
    OPS,
    PATTERN_KINDS,
    STATUS_CODES,
    STREAM_ACTIONS,
    ServeRequest,
    ServeResponse,
    request_from_dict,
    resolve_bank_map,
    resolve_machine,
    resolve_pattern,
)
from .service import PredictionService, Ticket, evaluate_point
from .shard import RouterTicket, ShardRouter, SharedHotTier, route_digest

__all__ = [
    "PredictionService",
    "Ticket",
    "evaluate_point",
    "ShardRouter",
    "RouterTicket",
    "SharedHotTier",
    "route_digest",
    "ServingFrontend",
    "ServeRequest",
    "ServeResponse",
    "request_from_dict",
    "resolve_machine",
    "resolve_pattern",
    "resolve_bank_map",
    "MACHINES",
    "BANK_MAPS",
    "OPS",
    "STREAM_ACTIONS",
    "PATTERN_KINDS",
    "STATUS_CODES",
    "MicroBatcher",
    "ServingStats",
    "RouterStats",
    "SERVING_MANIFEST_SCHEMA",
    "SERVING_SCHEMA_VERSION",
    "ROUTER_MANIFEST_SCHEMA",
    "ROUTER_SCHEMA_VERSION",
    "percentile",
    "serving_manifest",
    "write_serving_manifest",
    "metrics_table",
    "router_manifest",
    "router_metrics_table",
]
