"""Request serving: a micro-batching prediction/simulation service.

The paper's argument is that ``max(L, g·h_p, d·h_b)`` is cheap enough
to consult *online*; this package is the online front end.  A
:class:`PredictionService` answers "predict this scatter on this
machine", "simulate it with engine X" and "sweep k over these values"
questions — bit-identically to calling the library directly — while
adding the traffic engineering a shared endpoint needs: a bounded
admission queue with deadline/shed backpressure, micro-batching of
compatible requests (grouped by machine + engine + bank mapping,
flushed on size/latency watermarks, duplicates collapsed onto single
engine evaluations), an in-memory LRU in front of the experiment
runner's on-disk memo, and a schema-checked metrics manifest.

``python -m repro.serving`` exposes the same service as a
line-delimited-JSON filter and an optional ``http.server`` endpoint;
see docs/serving.md for the architecture and the capacity math.
"""

from .batcher import MicroBatcher
from .metrics import (
    SERVING_MANIFEST_SCHEMA,
    SERVING_SCHEMA_VERSION,
    ServingStats,
    metrics_table,
    percentile,
    serving_manifest,
    write_serving_manifest,
)
from .request import (
    BANK_MAPS,
    MACHINES,
    OPS,
    PATTERN_KINDS,
    STATUS_CODES,
    ServeRequest,
    ServeResponse,
    request_from_dict,
    resolve_bank_map,
    resolve_machine,
    resolve_pattern,
)
from .service import PredictionService, Ticket, evaluate_point

__all__ = [
    "PredictionService",
    "Ticket",
    "evaluate_point",
    "ServeRequest",
    "ServeResponse",
    "request_from_dict",
    "resolve_machine",
    "resolve_pattern",
    "resolve_bank_map",
    "MACHINES",
    "BANK_MAPS",
    "OPS",
    "PATTERN_KINDS",
    "STATUS_CODES",
    "MicroBatcher",
    "ServingStats",
    "SERVING_MANIFEST_SCHEMA",
    "SERVING_SCHEMA_VERSION",
    "percentile",
    "serving_manifest",
    "write_serving_manifest",
    "metrics_table",
]
