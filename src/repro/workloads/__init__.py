"""Access-pattern generators (hot spots, entropy families, section-confined
worst cases) and trace capture for instrumented algorithms."""

from .entropy import (
    anded_keys,
    bit_probability,
    entropy_family,
    theoretical_entropy_bits,
)
from .io import load_program, save_program
from .nas import nas_is_keys, nas_is_peak_density
from .patterns import (
    broadcast,
    distinct_random,
    hotspot,
    multi_hotspot,
    section_confined,
    strided,
    uniform_random,
    zipf_pattern,
)
from .traces import TraceRecorder, maybe_record

__all__ = [
    "uniform_random",
    "distinct_random",
    "hotspot",
    "multi_hotspot",
    "broadcast",
    "strided",
    "section_confined",
    "zipf_pattern",
    "anded_keys",
    "entropy_family",
    "bit_probability",
    "theoretical_entropy_bits",
    "nas_is_keys",
    "nas_is_peak_density",
    "save_program",
    "load_program",
    "TraceRecorder",
    "maybe_record",
]
