"""Synthetic access-pattern generators for the paper's experiments.

All generators return int64 address vectors suitable for the cost
predictors and simulators.  Addresses live in a caller-chosen space
``[0, space)``; under the default interleaved bank map, ``space`` should
comfortably exceed the bank count so the background traffic spreads.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng
from ..errors import ParameterError
from ..simulator.machine import MachineConfig

__all__ = [
    "uniform_random",
    "distinct_random",
    "hotspot",
    "multi_hotspot",
    "broadcast",
    "strided",
    "section_confined",
    "zipf_pattern",
]


def uniform_random(n: int, space: int, seed=None) -> np.ndarray:
    """``n`` addresses drawn uniformly (with replacement) from
    ``[0, space)`` — the generic irregular scatter."""
    if n < 0 or space < 1:
        raise ParameterError(f"need n >= 0 and space >= 1, got n={n}, space={space}")
    rng = as_rng(seed)
    return rng.integers(0, space, size=n, dtype=np.int64)


def distinct_random(n: int, space: int, seed=None) -> np.ndarray:
    """``n`` *distinct* addresses from ``[0, space)`` in random order —
    location contention exactly 1 (permutation-like traffic)."""
    if n < 0 or space < n:
        raise ParameterError(f"need space >= n >= 0, got n={n}, space={space}")
    rng = as_rng(seed)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if space <= 4 * n:
        return rng.permutation(space).astype(np.int64)[:n]
    # Sparse space: oversample and deduplicate, then top up deterministically.
    draw = np.unique(rng.integers(0, space, size=2 * n + 16, dtype=np.int64))
    if draw.size < n:  # astronomically unlikely; fall back to dense prefix
        extra = np.setdiff1d(np.arange(n, dtype=np.int64), draw, assume_unique=False)
        draw = np.concatenate([draw, extra])
    out = draw[:n]
    rng.shuffle(out)
    return out


def hotspot(n: int, k: int, space: int, seed=None, hot_address: int = 0) -> np.ndarray:
    """Experiment-1 family: exactly ``k`` requests to one hot location,
    the other ``n - k`` requests to distinct background locations.

    The pattern's location contention is exactly ``k`` (for ``k >= 1``),
    making it the natural sweep variable for the Figure-1 knee.
    """
    if not (0 <= k <= n):
        raise ParameterError(f"need 0 <= k <= n, got k={k}, n={n}")
    if space < n + 1:
        raise ParameterError(f"space must exceed n, got space={space}, n={n}")
    if hot_address < 0 or hot_address >= space:
        raise ParameterError("hot_address outside [0, space)")
    rng = as_rng(seed)
    background = distinct_random(n - k, space - 1, rng)
    # Shift background off the hot address without changing distinctness.
    background = np.where(background >= hot_address, background + 1, background)
    out = np.concatenate(
        [np.full(k, hot_address, dtype=np.int64), background]
    )
    rng.shuffle(out)
    return out


def multi_hotspot(
    n: int,
    n_hot: int,
    hot_fraction: float,
    space: int,
    seed=None,
) -> np.ndarray:
    """Experiment-2 family: ``n_hot`` hot locations jointly receive a
    fraction ``hot_fraction`` of the ``n`` requests (uniformly among the
    hot set); the rest of the traffic is uniform background."""
    if n_hot < 0 or n_hot > space:
        raise ParameterError(f"need 0 <= n_hot <= space, got {n_hot}")
    if not (0.0 <= hot_fraction <= 1.0):
        raise ParameterError(f"hot_fraction must be in [0,1], got {hot_fraction}")
    if n_hot == 0 and hot_fraction > 0:
        raise ParameterError("hot_fraction > 0 requires n_hot >= 1")
    rng = as_rng(seed)
    n_hot_reqs = int(round(n * hot_fraction))
    hot_locs = distinct_random(n_hot, space, rng) if n_hot else np.zeros(0, np.int64)
    hot_part = (
        hot_locs[rng.integers(0, n_hot, size=n_hot_reqs)]
        if n_hot_reqs
        else np.zeros(0, np.int64)
    )
    cold_part = uniform_random(n - n_hot_reqs, space, rng)
    out = np.concatenate([hot_part, cold_part])
    rng.shuffle(out)
    return out


def broadcast(n: int, address: int = 0) -> np.ndarray:
    """All ``n`` requests to one location — maximum contention ``k = n``."""
    if n < 0 or address < 0:
        raise ParameterError("need n >= 0 and address >= 0")
    return np.full(n, address, dtype=np.int64)


def strided(n: int, stride: int, base: int = 0) -> np.ndarray:
    """Constant-stride pattern ``base + i * stride`` — the classical
    vector-machine access shape (power-of-two strides collide under
    interleaving)."""
    if n < 0 or stride < 1 or base < 0:
        raise ParameterError("need n >= 0, stride >= 1, base >= 0")
    return base + stride * np.arange(n, dtype=np.int64)


def zipf_pattern(n: int, space: int, alpha: float = 1.2, seed=None) -> np.ndarray:
    """Zipf-skewed addresses: rank-``r`` location drawn with probability
    proportional to ``r^-alpha``, randomly assigned to locations in
    ``[0, space)``.

    Pointer-based and graph workloads (the paper's "irregular
    applications") commonly exhibit this popularity skew — a contention
    profile between uniform scatter and a hot spot, with a heavy tail of
    moderately popular locations rather than one dominant address.
    """
    if n < 0 or space < 1:
        raise ParameterError(f"need n >= 0 and space >= 1, got n={n}, space={space}")
    if alpha <= 1.0:
        raise ParameterError(f"alpha must be > 1, got {alpha}")
    rng = as_rng(seed)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    ranks = rng.zipf(alpha, size=n).astype(np.int64)
    ranks = np.minimum(ranks - 1, space - 1)  # ranks start at 1; clip tail
    # Scramble rank -> location so the hot ranks don't sit at address 0;
    # the affine map must be bijective, so pick a stride coprime to space.
    import math

    offset = int(rng.integers(0, space))
    stride = 2 * int(rng.integers(0, space // 2 + 1)) + 1
    while math.gcd(stride, space) != 1:
        stride += 2
    return (offset + ranks * stride) % space


def section_confined(
    machine: MachineConfig, n: int, section: int, seed=None, rows: int = 1 << 16
) -> np.ndarray:
    """Addresses whose banks (under low-order interleaving) all live in
    one network ``section`` of ``machine`` — the paper's version-(c)
    worst case.  Banks within the section are chosen uniformly, so the
    pattern is bank-balanced *within* the section yet saturates that
    section's link."""
    if not (0 <= section < machine.n_sections):
        raise ParameterError(
            f"section must be in [0, {machine.n_sections}), got {section}"
        )
    if n < 0 or rows < 1:
        raise ParameterError("need n >= 0 and rows >= 1")
    rng = as_rng(seed)
    bps = machine.banks_per_section
    banks = section * bps + rng.integers(0, bps, size=n, dtype=np.int64)
    row = rng.integers(0, rows, size=n, dtype=np.int64)
    return banks + machine.n_banks * row
