"""Saving and loading programs (trace serialization).

Captured traces are expensive to regenerate (they may come from hours of
algorithm execution); this module round-trips a
:class:`repro.core.model.Program` through a single ``.npz`` file so
traces can be archived, diffed and replayed on other machine
configurations.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

import numpy as np

from ..core.model import Program, Superstep
from ..errors import PatternError

__all__ = ["save_program", "load_program"]

_FORMAT_VERSION = 1


def save_program(program: Program, path: Union[str, pathlib.Path]) -> None:
    """Write ``program`` to ``path`` as a compressed ``.npz``.

    Layout: one address array per superstep (``step_<i>``) plus a JSON
    metadata blob with kinds, labels and local work.
    """
    path = pathlib.Path(path)
    meta = {
        "version": _FORMAT_VERSION,
        "steps": [
            {"kind": s.kind, "label": s.label, "local_work": s.local_work}
            for s in program
        ],
    }
    arrays = {
        f"step_{i}": s.addresses for i, s in enumerate(program)
    }
    arrays["_meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_program(path: Union[str, pathlib.Path]) -> Program:
    """Read a program previously written by :func:`save_program`."""
    path = pathlib.Path(path)
    with np.load(path) as data:
        if "_meta" not in data:
            raise PatternError(f"{path} is not a saved program (no _meta)")
        meta = json.loads(bytes(data["_meta"]).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise PatternError(
                f"unsupported trace format version {meta.get('version')!r}"
            )
        steps = []
        for i, info in enumerate(meta["steps"]):
            key = f"step_{i}"
            if key not in data:
                raise PatternError(f"{path} is missing {key}")
            steps.append(
                Superstep(
                    addresses=data[key],
                    kind=info["kind"],
                    label=info["label"],
                    local_work=float(info["local_work"]),
                )
            )
    return Program(steps)
