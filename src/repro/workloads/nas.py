"""NAS Integer Sort (IS) style key distributions.

The radix sort the paper uses as its EREW baseline is "currently the
fastest implementation of the NAS sorting benchmark" [ZB91, BBDS94]; the
NAS IS benchmark draws its keys from an approximately *binomial*
distribution — each key is the average of four uniform randoms — giving a
bell-shaped histogram whose center buckets are far more popular than the
tails.  That popularity skew is a contention profile between the uniform
(round-0 Thearling–Smith) and hot-spot extremes, so it rounds out the
workload families.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng
from ..errors import ParameterError

__all__ = ["nas_is_keys", "nas_is_peak_density"]


def nas_is_keys(n: int, bits: int = 19, seed=None) -> np.ndarray:
    """``n`` keys in ``[0, 2^bits)``, each the average of four uniform
    draws (the NAS IS recipe), as int64.

    The resulting distribution is Irwin–Hall-shaped (approximately
    normal) around ``2^(bits-1)``.
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if not (2 <= bits <= 60):
        raise ParameterError(f"bits must be in [2, 60], got {bits}")
    rng = as_rng(seed)
    span = np.int64(1) << bits
    draws = rng.integers(0, span, size=(4, n), dtype=np.int64)
    return (draws.sum(axis=0) // 4).astype(np.int64)


def nas_is_peak_density(bits: int = 19) -> float:
    """Idealized probability of the single most popular key value.

    The normalized 4-draw sum follows Irwin–Hall(4), whose density peaks
    at ``2/3``; a key value collects a width-4 slice of the sum's
    ``4·2^bits``-point support, so the modal key of ``2^bits`` values has
    probability about ``(8/3) / 2^bits`` — useful for predicting the
    expected maximum multiplicity ``~ n * peak`` of a NAS key set.
    """
    if not (2 <= bits <= 60):
        raise ParameterError(f"bits must be in [2, 60], got {bits}")
    return (8.0 / 3.0) / float(1 << bits)
