"""Thearling–Smith entropy-graded key distributions (Experiment 3).

Thearling and Smith [TS92] grade sorting benchmarks by the entropy of the
key distribution: start from uniformly random ``bits``-bit keys and
repeatedly AND each key with another key chosen at random.  Each round
halves the probability that any bit is set, concentrating the distribution
toward zero: round 0 is uniform scatter, and after enough rounds every key
is 0 (contention ``n``).  The paper uses this family to verify that the
(d,x)-BSP predicts scatter time across a *continuum* of contention shapes,
not just single hot spots.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from .._util import as_rng
from ..errors import ParameterError

__all__ = [
    "anded_keys",
    "entropy_family",
    "bit_probability",
    "theoretical_entropy_bits",
]


def anded_keys(n: int, bits: int, rounds: int, seed=None) -> np.ndarray:
    """``n`` keys of ``bits`` bits after ``rounds`` iterations of
    AND-with-a-random-partner.

    Returns int64 (so ``bits <= 62`` to stay non-negative).
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if not (1 <= bits <= 62):
        raise ParameterError(f"bits must be in [1, 62], got {bits}")
    if rounds < 0:
        raise ParameterError(f"rounds must be >= 0, got {rounds}")
    rng = as_rng(seed)
    keys = rng.integers(0, np.int64(1) << bits, size=n, dtype=np.int64)
    for _ in range(rounds):
        partners = keys[rng.integers(0, n, size=n)] if n else keys
        keys = keys & partners
    return keys


def entropy_family(
    n: int, bits: int, max_rounds: int, seed=None
) -> List[np.ndarray]:
    """The full family for rounds ``0 .. max_rounds`` (one shared starting
    key set, successively ANDed, as in the benchmark's construction)."""
    if max_rounds < 0:
        raise ParameterError(f"max_rounds must be >= 0, got {max_rounds}")
    rng = as_rng(seed)
    keys = anded_keys(n, bits, 0, rng)
    family = [keys.copy()]
    for _ in range(max_rounds):
        partners = keys[rng.integers(0, n, size=n)] if n else keys
        keys = keys & partners
        family.append(keys.copy())
    return family


def bit_probability(rounds: int) -> float:
    """Probability that any given bit is 1 after ``rounds`` AND rounds.

    Partners are drawn from the *current* (already ANDed) pool, so the
    density squares each round: ``p_r = p_{r-1}^2`` with ``p_0 = 1/2``,
    i.e. ``p_r = 2^-(2^r)``.  (Correlations between keys make this the
    idealized value; it matches the empirical mean bit density closely
    for large ``n``.)
    """
    if rounds < 0:
        raise ParameterError(f"rounds must be >= 0, got {rounds}")
    if rounds > 10:  # 2^-(2^r) underflows long before this
        return 0.0
    return 2.0 ** -(2 ** rounds)


def theoretical_entropy_bits(bits: int, rounds: int) -> float:
    """Idealized per-key entropy: ``bits * H(2^-(rounds+1))`` where ``H``
    is the binary entropy function.  Decreasing in ``rounds`` — the knob
    Experiment 3 sweeps."""
    p = bit_probability(rounds)
    if p in (0.0, 1.0):
        return 0.0
    h = -p * math.log2(p) - (1 - p) * math.log2(1 - p)
    return bits * h
