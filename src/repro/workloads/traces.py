"""Trace capture for instrumented algorithms.

Algorithms in :mod:`repro.algorithms` accept an optional
:class:`TraceRecorder`; when given one, every bulk memory operation they
perform (gathers, scatters, scans) is recorded as a
:class:`repro.core.model.Superstep`, producing a
:class:`repro.core.model.Program` that can be costed analytically or run
through the simulator.  When no recorder is supplied the algorithms simply
compute their result with zero instrumentation overhead paths.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np

from ..core.model import Program, Superstep

__all__ = ["TraceRecorder", "maybe_record"]


class TraceRecorder:
    """Accumulates the supersteps an instrumented algorithm performs.

    A current *phase* label (settable via :meth:`phase`) is attached to
    each recorded step, enabling per-phase accounting like the paper's
    connected-components breakdown (hook / shortcut / contract / expand).
    """

    def __init__(self) -> None:
        self._program = Program()
        self._phase = ""

    @property
    def program(self) -> Program:
        """The program recorded so far."""
        return self._program

    @property
    def current_phase(self) -> str:
        """The label attached to steps recorded now."""
        return self._phase

    @contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Context manager scoping a phase label; phases nest with ``/``
        separators (``"contract/scan"``)."""
        previous = self._phase
        self._phase = f"{previous}/{label}" if previous else label
        try:
            yield
        finally:
            self._phase = previous

    def record(
        self,
        addresses,
        kind: str = "mixed",
        label: str = "",
        local_work: float = 0.0,
    ) -> None:
        """Record one superstep touching ``addresses``.

        ``label`` defaults to the current phase; an explicit label is
        appended to the phase with a ``/``.
        """
        full_label = self._phase
        if label:
            full_label = f"{full_label}/{label}" if full_label else label
        self._program.append(
            Superstep(
                addresses=np.asarray(addresses),
                kind=kind,
                label=full_label,
                local_work=local_work,
            )
        )


def maybe_record(
    recorder: Optional[TraceRecorder],
    addresses,
    kind: str = "mixed",
    label: str = "",
    local_work: float = 0.0,
) -> None:
    """Record a superstep iff a recorder was supplied (no-op otherwise).

    This keeps instrumentation out of the algorithms' hot paths when the
    caller only wants the computational result.
    """
    if recorder is not None:
        recorder.record(addresses, kind=kind, label=label, local_work=local_work)
