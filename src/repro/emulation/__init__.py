"""PRAM models (EREW / CRCW / QRQW) and the QRQW → (d,x)-BSP emulation of
the paper's Section 5."""

from .emulate import (
    EmulationResult,
    delta_for_whp,
    emulate_qrqw,
    emulation_overhead,
    erew_emulation_overhead,
    erew_step_time_bound,
    inevitable_overhead,
    step_time_bound,
)
from .erew import CRCWPram, EREWPram
from .pram import SharedMemory, StepLog, StepRecord
from .qrqw import QRQWPram
from .scheduler import SlackPoint, slackness_sweep

__all__ = [
    "SharedMemory",
    "StepRecord",
    "StepLog",
    "QRQWPram",
    "EREWPram",
    "CRCWPram",
    "inevitable_overhead",
    "delta_for_whp",
    "step_time_bound",
    "emulation_overhead",
    "erew_step_time_bound",
    "erew_emulation_overhead",
    "EmulationResult",
    "emulate_qrqw",
    "SlackPoint",
    "slackness_sweep",
]
