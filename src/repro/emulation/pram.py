"""Shared PRAM machinery: memory, step records and cost accounting.

The PRAM variants differ only in their *contention rule* — what a step may
do to one shared-memory location and what it costs:

* **EREW** — exclusive read, exclusive write: contention > 1 is an error.
* **CRCW** — concurrent reads/writes cost 1 (arbitrary-winner writes).
* **QRQW** [GMR94b] — queued reads/writes: a step with maximum location
  contention ``k`` costs ``max(1, k)`` time; any contention is *allowed*
  but *paid for*.

Programs are expressed data-parallel style: each step is a bulk vector of
reads and/or writes.  The machinery here executes the memory semantics and
records, per step, the statistics every cost rule needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .._util import as_addresses
from ..core.contention import max_location_contention
from ..errors import ParameterError, PatternError

__all__ = ["SharedMemory", "StepRecord", "StepLog"]


class SharedMemory:
    """A flat word-addressed shared memory backed by an int64 array.

    Writes within one step are *queued*: when several writes target one
    location, they are serviced serially and the last one in request order
    wins (a deterministic stand-in for the QRQW's arbitrary queue order —
    NumPy fancy assignment has the same last-wins semantics, which keeps
    the vectorized implementation honest).
    """

    def __init__(self, size: int, fill: int = 0) -> None:
        if size < 0:
            raise ParameterError(f"size must be >= 0, got {size}")
        self._cells = np.full(int(size), fill, dtype=np.int64)

    @property
    def size(self) -> int:
        """Number of addressable words."""
        return int(self._cells.size)

    def _check(self, addr: np.ndarray) -> np.ndarray:
        addr = as_addresses(addr)
        if addr.size and addr.max() >= self.size:
            raise PatternError(
                f"address {int(addr.max())} outside memory of size {self.size}"
            )
        return addr

    def read(self, addresses) -> np.ndarray:
        """Gather the values at ``addresses`` (concurrent reads see the
        same value)."""
        addr = self._check(addresses)
        return self._cells[addr].copy()

    def write(self, addresses, values) -> None:
        """Scatter ``values`` to ``addresses``; colliding writes resolve
        last-in-order-wins."""
        addr = self._check(addresses)
        vals = np.asarray(values, dtype=np.int64)
        if vals.ndim == 0:
            vals = np.full(addr.shape, int(vals), dtype=np.int64)
        if vals.shape != addr.shape:
            raise PatternError("values must match addresses in shape")
        self._cells[addr] = vals

    def snapshot(self) -> np.ndarray:
        """A copy of the full memory contents."""
        return self._cells.copy()


@dataclass(frozen=True)
class StepRecord:
    """Statistics of one PRAM step.

    Attributes
    ----------
    n_reads / n_writes:
        Operation counts.
    read_contention / write_contention:
        Maximum location contention among the step's reads / writes.
    addresses:
        The combined address vector (reads then writes) — what an
        emulation must route to memory banks.
    label:
        Free-form tag.
    """

    n_reads: int
    n_writes: int
    read_contention: int
    write_contention: int
    addresses: np.ndarray
    label: str = ""

    @property
    def n_ops(self) -> int:
        """Total memory operations in the step."""
        return self.n_reads + self.n_writes

    @property
    def max_contention(self) -> int:
        """The step's ``k``: max location contention over reads and writes
        separately (reads and writes are distinct request classes)."""
        return max(self.read_contention, self.write_contention)


class StepLog:
    """Ordered log of :class:`StepRecord` entries for one program run."""

    def __init__(self) -> None:
        self._records: List[StepRecord] = []

    def log(
        self,
        reads: Optional[np.ndarray] = None,
        writes: Optional[np.ndarray] = None,
        label: str = "",
    ) -> StepRecord:
        """Append a step touching the given read/write address vectors."""
        r = as_addresses(reads if reads is not None else np.zeros(0, np.int64))
        w = as_addresses(writes if writes is not None else np.zeros(0, np.int64))
        rec = StepRecord(
            n_reads=int(r.size),
            n_writes=int(w.size),
            read_contention=max_location_contention(r),
            write_contention=max_location_contention(w),
            addresses=np.concatenate([r, w]) if (r.size or w.size) else r,
            label=label,
        )
        self._records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __getitem__(self, i) -> StepRecord:
        return self._records[i]

    @property
    def records(self) -> List[StepRecord]:
        """The recorded steps, in program order."""
        return list(self._records)
