"""Emulating the QRQW PRAM on the (d,x)-BSP (paper Section 5).

The emulation routes every QRQW step's memory requests through a random
hash onto the machine's ``B = x·p`` banks.  For a step with ``n``
operations and maximum location contention ``k``:

* Each processor handles ``ceil(n/p)`` requests — pipeline term
  ``g·ceil(n/p)``.
* The hottest location serializes at its bank — unavoidable term ``d·k``.
* Module-map contention: a bank's load is a weighted sum of Bernoulli
  trials (weights = location multiplicities / k, mean ``μ = n/(kB)``).
  By the Raghavan–Spencer bound [Rag88],
  ``P(load > (1+δ)·n/B) < B·(e^δ/(1+δ)^{1+δ})^{n/(kB)}``,
  giving a with-high-probability bank term ``d·(1+δ*)·n/B`` where ``δ*``
  is the smallest δ meeting a target failure probability.

Hence the whp step-time bound::

    T(n, k) = max(L, g·ceil(n/p), d·(1+δ*)·n/(x·p), d·k)

**Theorem 5.1 regime (x ≤ d).**  The work overhead ``d/x`` is inevitable
(memory bandwidth ``x·p/d`` below processor bandwidth ``p/g``) and the
bound above matches it: with slack ``n/p ≥ x·k`` the ``d·k`` term is
dominated and ``T ≈ (d/x)·(n/p)·(1+δ*)`` — work-preserving with overhead
``Θ(d/x)``.

**Theorem 5.2 regime (x ≥ d).**  High bandwidth (small g) and expansion
beyond ``d`` partially compensate the bank delay: ``δ*`` shrinks as ``B``
grows relative to the per-bank mean, so the slowdown is a *nonlinear*
decreasing function of ``x`` at fixed ``d`` — the shape reproduced by
experiment ``TH`` in DESIGN.md.

Besides the analytic bounds, :func:`emulate_qrqw` *executes* a recorded
QRQW program on the simulator, giving measured emulation times to set
against the bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.contention import BankMap
from ..core.cost import per_processor_load
from ..core.params import DXBSPParams
from ..errors import ParameterError
from ..mapping.hashing import linear_hash
from ..mapping.theory import raghavan_spencer_tail
from ..simulator.banksim import simulate_scatter
from ..simulator.machine import MachineConfig
from .qrqw import QRQWPram

__all__ = [
    "inevitable_overhead",
    "delta_for_whp",
    "step_time_bound",
    "emulation_overhead",
    "erew_step_time_bound",
    "erew_emulation_overhead",
    "EmulationResult",
    "emulate_qrqw",
]


def inevitable_overhead(params: DXBSPParams) -> float:
    """The bandwidth-imbalance work overhead ``max(1, d·g⁻¹/x)``: with
    fewer than ``d/g`` banks per processor, the memory system simply cannot
    keep up with the processors, and every emulation pays this factor."""
    return max(1.0, params.d / (params.g * params.x))


def delta_for_whp(
    n_ops: int, k: int, n_banks: int, fail_prob: float = 1e-6
) -> float:
    """Smallest ``δ`` such that the Raghavan–Spencer union bound puts all
    bank loads below ``(1+δ)·n/B`` except with probability ``fail_prob``.

    ``k`` is the maximum location contention; contended locations enter
    the weighted sum with weight ``multiplicity/k ≤ 1`` and the per-bank
    mean is ``μ = n/(k·B)``.  Solved by bisection on the monotone tail.
    """
    if n_ops < 1:
        raise ParameterError(f"n_ops must be >= 1, got {n_ops}")
    if not (1 <= k <= n_ops):
        raise ParameterError(f"need 1 <= k <= n_ops, got k={k}")
    if n_banks < 1:
        raise ParameterError(f"n_banks must be >= 1, got {n_banks}")
    if not (0 < fail_prob < 1):
        raise ParameterError(f"fail_prob must be in (0,1), got {fail_prob}")
    mu = n_ops / (k * n_banks)
    target = fail_prob / n_banks

    def tail(delta: float) -> float:
        return raghavan_spencer_tail(mu, delta)

    lo, hi = 1e-9, 2.0
    while tail(hi) > target:
        hi *= 2.0
        if hi > 1e9:  # pathological; bound is vacuous long before this
            return hi
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if tail(mid) > target:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12 * max(1.0, hi):
            break
    return hi


def step_time_bound(
    params: DXBSPParams, n_ops: int, k: int, fail_prob: float = 1e-6
) -> float:
    """Whp (d,x)-BSP time bound for emulating one QRQW step::

        max(L, g·ceil(n/p), d·(1+δ*)·n/(x·p), d·k)
    """
    if n_ops == 0:
        return float(params.L)
    delta = delta_for_whp(n_ops, k, params.n_banks, fail_prob)
    h_p = per_processor_load(n_ops, params.p)
    bank_term = params.d * (1.0 + delta) * n_ops / params.n_banks
    return float(
        max(params.L, params.g * h_p, bank_term, params.d * k)
    )


def emulation_overhead(
    params: DXBSPParams, n_ops: int, k: int, fail_prob: float = 1e-6
) -> float:
    """Per-step emulation overhead: bound time divided by the QRQW cost
    charged at the machine's gap, ``g·max(ceil(n/p), k)``.

    This is the quantity whose behaviour the paper characterizes: for
    ``x ≤ d`` it approaches the inevitable ``d/(g·x)``; for ``x ≥ d`` it
    decreases nonlinearly toward 1 as expansion grows (Theorem 5.2).
    """
    if n_ops == 0:
        return 1.0
    qrqw_cost = params.g * max(per_processor_load(n_ops, params.p), k)
    return step_time_bound(params, n_ops, k, fail_prob) / qrqw_cost


def erew_step_time_bound(
    params: DXBSPParams, n_ops: int, fail_prob: float = 1e-6
) -> float:
    """Whp time bound for emulating an **EREW** PRAM step (the paper's
    other high-level-model mapping scenario): the contention-1 special
    case of :func:`step_time_bound` — only hashing imbalance and raw
    bandwidth remain."""
    if n_ops == 0:
        return float(params.L)
    return step_time_bound(params, n_ops, 1, fail_prob)


def erew_emulation_overhead(
    params: DXBSPParams, n_ops: int, fail_prob: float = 1e-6
) -> float:
    """Per-step overhead of the EREW emulation relative to ``g·ceil(n/p)``.

    With ``x >= d/g`` and enough slack this approaches 1: the EREW PRAM
    maps onto high-bandwidth machines essentially for free — the
    contrast that motivates accepting (and charging for) QRQW contention
    rather than engineering it away.
    """
    return emulation_overhead(params, n_ops, 1, fail_prob)


@dataclass(frozen=True)
class EmulationResult:
    """Outcome of executing a QRQW program on a simulated (d,x)-BSP.

    Attributes
    ----------
    simulated_time:
        Total simulated cycles over all steps (including per-step ``L``).
    bound_time:
        Sum of per-step whp bounds from :func:`step_time_bound`.
    qrqw_time:
        The program's QRQW model time (unit steps).
    qrqw_time_scaled:
        ``g * qrqw_time`` — QRQW time expressed in machine cycles.
    n_steps / n_ops:
        Program size.
    """

    simulated_time: float
    bound_time: float
    qrqw_time: int
    qrqw_time_scaled: float
    n_steps: int
    n_ops: int

    @property
    def measured_overhead(self) -> float:
        """Simulated time over scaled QRQW time."""
        if self.qrqw_time_scaled <= 0:
            return 1.0
        return self.simulated_time / self.qrqw_time_scaled

    @property
    def bound_tightness(self) -> float:
        """Simulated over bound (≤ ~1 means the whp bound held)."""
        if self.bound_time <= 0:
            return 1.0
        return self.simulated_time / self.bound_time


def emulate_qrqw(
    machine: MachineConfig,
    pram: QRQWPram,
    bank_map: Optional[BankMap] = None,
    seed: int = 0,
    fail_prob: float = 1e-6,
) -> EmulationResult:
    """Execute a recorded QRQW program on ``machine`` via random hashing.

    One hash function is drawn up front (as a real system would configure
    its memory map once) and every step's combined read+write address
    vector is scattered through it on the simulator.  Returns measured
    time next to the analytic bound and the QRQW model time.
    """
    mapping = bank_map if bank_map is not None else linear_hash(seed)
    params = machine.params()
    sim_total = 0.0
    bound_total = 0.0
    n_ops = 0
    for rec in pram.log:
        if rec.n_ops == 0:
            sim_total += machine.L
            bound_total += machine.L
            continue
        res = simulate_scatter(machine, rec.addresses, mapping)
        sim_total += res.time
        bound_total += step_time_bound(
            params, rec.n_ops, max(1, rec.max_contention), fail_prob
        )
        n_ops += rec.n_ops
    return EmulationResult(
        simulated_time=sim_total,
        bound_time=bound_total,
        qrqw_time=pram.time,
        qrqw_time_scaled=float(machine.g * pram.time),
        n_steps=len(pram.log),
        n_ops=n_ops,
    )
