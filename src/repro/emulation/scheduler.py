"""Work-preserving emulation with explicit parallel slackness.

Section 5's emulations are *work-preserving*: a QRQW PRAM algorithm
written for ``p' = σ·p`` virtual processors runs on a ``p``-processor
(d,x)-BSP in time ``O(σ · t_qrqw · overhead)`` with overhead ``O(1)``
(for ``x ≥ d/g``) — i.e. at constant efficiency, provided the slackness
``σ`` is large enough to amortize per-superstep costs and smooth the
random-mapping imbalance.

:func:`slackness_sweep` makes that statement executable: it takes a QRQW
program (written for ``pram.p`` virtual processors) and emulates it on a
family of physically smaller machines (``p = pram.p / σ``, bank count
scaled to keep the expansion ``x`` fixed), reporting the measured
efficiency at each slackness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.contention import BankMap
from ..errors import ParameterError
from ..mapping.hashing import linear_hash
from ..simulator.banksim import simulate_scatter
from ..simulator.machine import MachineConfig
from .qrqw import QRQWPram

__all__ = ["SlackPoint", "slackness_sweep"]


@dataclass(frozen=True)
class SlackPoint:
    """One slackness setting's outcome.

    Attributes
    ----------
    sigma:
        Virtual processors per physical processor.
    machine_p:
        Physical processors used (``pram.p / sigma``).
    emulated_time:
        Simulated cycles to run the whole program.
    ideal_time:
        ``g · σ · t_qrqw`` — the perfectly work-preserving target (every
        physical processor does σ virtual processors' work with zero
        overhead).
    """

    sigma: int
    machine_p: int
    emulated_time: float
    ideal_time: float

    @property
    def efficiency(self) -> float:
        """``ideal / emulated`` — 1.0 is perfect work preservation."""
        if self.emulated_time <= 0:
            return 1.0
        return self.ideal_time / self.emulated_time


def slackness_sweep(
    pram: QRQWPram,
    template: MachineConfig,
    sigmas: Sequence[int],
    bank_map: Optional[BankMap] = None,
    seed: int = 0,
) -> List[SlackPoint]:
    """Emulate ``pram`` at each slackness in ``sigmas``.

    Parameters
    ----------
    pram:
        A QRQW program whose ``pram.p`` is the *virtual* processor count;
        every σ must divide it.
    template:
        Machine whose ``d``, ``g``, ``L`` and expansion ``x`` are held
        fixed while ``p`` (and hence the bank count) shrinks with σ.
    sigmas:
        Slackness values to test (σ = 1 means no slack: one virtual
        processor per physical one).
    bank_map:
        Bank mapping for the emulation (a fresh linear hash by default).
    """
    if not sigmas:
        raise ParameterError("sigmas must be non-empty")
    mapping = bank_map if bank_map is not None else linear_hash(seed)
    x = template.x
    points: List[SlackPoint] = []
    for sigma in sigmas:
        if sigma < 1 or pram.p % sigma:
            raise ParameterError(
                f"sigma {sigma} must be >= 1 and divide pram.p = {pram.p}"
            )
        p = pram.p // sigma
        machine = template.with_(
            p=p, n_banks=max(1, int(round(x * p)))
        )
        total = 0.0
        for rec in pram.log:
            if rec.n_ops == 0:
                total += machine.L
                continue
            total += simulate_scatter(machine, rec.addresses, mapping).time
        ideal = template.g * sigma * pram.time
        points.append(SlackPoint(
            sigma=int(sigma), machine_p=p,
            emulated_time=total, ideal_time=float(ideal),
        ))
    return points
