"""The QRQW PRAM: queued reads and writes, contention paid at cost ``k``.

Gibbons, Matias and Ramachandran [GMR94b] argue that neither exclusive
(EREW) nor unit-cost concurrent (CRCW) access rules reflect real machines;
the *queue* rule — a step costs its maximum location contention — matches
hardware in which requests to one location serialize at its memory bank.
The (d,x)-BSP realizes exactly that serialization at rate ``d``, which is
why the paper's Section 5 emulates the QRQW PRAM onto it.

This module provides an executable QRQW PRAM with the [GMR94b] cost
metric; :mod:`repro.emulation.erew` provides the EREW/CRCW rules for
comparison, and :mod:`repro.emulation.emulate` maps recorded QRQW programs
onto a (d,x)-BSP machine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ParameterError
from .pram import SharedMemory, StepLog, StepRecord

__all__ = ["QRQWPram"]


class QRQWPram:
    """An executable QRQW PRAM with ``p`` (virtual) processors.

    Data-parallel usage: each call to :meth:`read` / :meth:`write` /
    :meth:`step` is one PRAM step in which every listed operation happens
    concurrently.  The time charged for a step is::

        t_step = max(1, ceil(n_ops / p), k)

    — every processor performs at most ``ceil(n_ops / p)`` operations and
    the hottest location queues ``k`` of them.  Total ``time`` is the sum
    over steps and ``work = p * time`` (the quantity the emulation must
    preserve).
    """

    def __init__(self, p: int, memory_size: int) -> None:
        if p < 1:
            raise ParameterError(f"p must be >= 1, got {p}")
        self.p = int(p)
        self.memory = SharedMemory(memory_size)
        self.log = StepLog()

    # -- step primitives -------------------------------------------------
    def read(self, addresses, label: str = "") -> np.ndarray:
        """One step of concurrent (queued) reads; returns the values."""
        values = self.memory.read(addresses)
        self.log.log(reads=np.asarray(addresses), label=label)
        return values

    def write(self, addresses, values, label: str = "") -> None:
        """One step of concurrent (queued) writes (last-in-order wins)."""
        self.memory.write(addresses, values)
        self.log.log(writes=np.asarray(addresses), label=label)

    def step(self, reads=None, read_out=None, writes=None, values=None,
             label: str = "") -> Optional[np.ndarray]:
        """A combined step: optional bulk read and bulk write occurring in
        the same PRAM step (reads see the pre-step memory).  Returns the
        read values if reads were requested."""
        result = None
        if reads is not None:
            result = self.memory.read(reads)
        if writes is not None:
            self.memory.write(writes, values if values is not None else 0)
        self.log.log(
            reads=np.asarray(reads) if reads is not None else None,
            writes=np.asarray(writes) if writes is not None else None,
            label=label,
        )
        return result

    # -- cost accounting --------------------------------------------------
    def _step_time(self, rec: StepRecord) -> int:
        per_proc = -(-rec.n_ops // self.p) if rec.n_ops else 0
        return max(1, per_proc, rec.max_contention)

    @property
    def time(self) -> int:
        """QRQW time: sum over steps of ``max(1, ceil(n/p), k)``."""
        return sum(self._step_time(rec) for rec in self.log)

    @property
    def work(self) -> int:
        """QRQW work: ``p * time``."""
        return self.p * self.time

    @property
    def max_contention(self) -> int:
        """The largest per-step contention the program exhibited."""
        return max((rec.max_contention for rec in self.log), default=0)

    def step_times(self) -> np.ndarray:
        """Per-step QRQW times, aligned with ``log.records``."""
        return np.array([self._step_time(r) for r in self.log], dtype=np.int64)
