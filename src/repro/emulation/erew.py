"""EREW and CRCW PRAM rules, for contrast with the QRQW.

The EREW PRAM *forbids* concurrent access: executing a step with location
contention above 1 raises :class:`repro.errors.ContentionRuleError`.  It is
the model the paper's baseline algorithms (sorting-based permutation,
padded binary search) are designed for.  The CRCW PRAM charges unit time
regardless of contention — the rule the paper argues is *too* optimistic
for bank-based machines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ContentionRuleError, ParameterError
from .pram import SharedMemory, StepLog, StepRecord

__all__ = ["EREWPram", "CRCWPram"]


class _BasePram:
    def __init__(self, p: int, memory_size: int) -> None:
        if p < 1:
            raise ParameterError(f"p must be >= 1, got {p}")
        self.p = int(p)
        self.memory = SharedMemory(memory_size)
        self.log = StepLog()

    def _validate(self, rec: StepRecord) -> None:  # overridden by EREW
        pass

    def read(self, addresses, label: str = "") -> np.ndarray:
        values = self.memory.read(addresses)
        rec = self.log.log(reads=np.asarray(addresses), label=label)
        self._validate(rec)
        return values

    def write(self, addresses, values, label: str = "") -> None:
        rec_addr = np.asarray(addresses)
        # Validate *before* mutating memory so an illegal step is atomic.
        rec = self.log.log(writes=rec_addr, label=label)
        self._validate(rec)
        self.memory.write(addresses, values)

    @property
    def max_contention(self) -> int:
        """Largest per-step contention observed."""
        return max((rec.max_contention for rec in self.log), default=0)

    def _step_time(self, rec: StepRecord) -> int:
        return max(1, -(-rec.n_ops // self.p) if rec.n_ops else 0)

    @property
    def time(self) -> int:
        """Model time: sum of ``max(1, ceil(n/p))`` — contention never
        costs extra under these rules (EREW because it is banned, CRCW
        because it is free)."""
        return sum(self._step_time(rec) for rec in self.log)

    @property
    def work(self) -> int:
        """``p * time``."""
        return self.p * self.time


class EREWPram(_BasePram):
    """Exclusive-read exclusive-write PRAM: a step with contention > 1 is
    a programming error and raises :class:`ContentionRuleError`."""

    def _validate(self, rec: StepRecord) -> None:
        if rec.max_contention > 1:
            raise ContentionRuleError(
                f"EREW violation in step {len(self.log) - 1}"
                f"{' (' + rec.label + ')' if rec.label else ''}: "
                f"location contention {rec.max_contention} > 1"
            )


class CRCWPram(_BasePram):
    """Concurrent-read concurrent-write PRAM (arbitrary-winner writes):
    any contention is free — the over-optimistic rule the paper contrasts
    with the queue rule."""
