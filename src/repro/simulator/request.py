"""Request batches: the unit of work fed to the simulators.

A :class:`RequestBatch` pins down, for one superstep, which processor
issues each request and at which cycle — the two things the cost model
abstracts as ``h_p`` and the simulators resolve exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np
from numpy.typing import ArrayLike

from .._util import as_addresses
from ..errors import ParameterError, PatternError
from .machine import MachineConfig

__all__ = ["RequestBatch", "Assignment"]

Assignment = Literal["round_robin", "block"]


@dataclass(frozen=True)
class RequestBatch:
    """A batch of memory requests with processor assignment and issue times.

    Attributes
    ----------
    addresses:
        int64 locations, in global issue order.
    proc:
        int32 processor id issuing each request.
    issue:
        float64 cycle at which each request is issued, assuming no
        back-pressure (the processor's ``j``-th request goes out at
        ``j * g``).
    """

    addresses: np.ndarray
    proc: np.ndarray
    issue: np.ndarray

    def __post_init__(self) -> None:
        if not (self.addresses.shape == self.proc.shape == self.issue.shape):
            raise PatternError("addresses/proc/issue must have matching shapes")

    @property
    def n(self) -> int:
        """Number of requests."""
        return int(self.addresses.size)

    @staticmethod
    def from_addresses(
        addresses: ArrayLike,
        machine: MachineConfig,
        assignment: Assignment = "round_robin",
    ) -> "RequestBatch":
        """Deal an address vector over the machine's processors.

        ``round_robin`` deals request ``i`` to processor ``i mod p`` (the
        Cray's element-per-pipe dealing); ``block`` gives each processor a
        contiguous chunk (message-passing style).  In both cases processor
        ``q``'s ``j``-th request issues at cycle ``j * g``.
        """
        addr = as_addresses(addresses)
        n, p, g = addr.size, machine.p, machine.g
        idx = np.arange(n, dtype=np.int64)
        if assignment == "round_robin":
            proc = (idx % p).astype(np.int32)
            rank = idx // p
        elif assignment == "block":
            chunk = -(-n // p) if n else 1
            proc = (idx // chunk).astype(np.int32)
            rank = idx % chunk
        else:
            raise ParameterError(f"unknown assignment {assignment!r}")
        issue = rank.astype(np.float64) * g
        return RequestBatch(addresses=addr, proc=proc, issue=issue)

    def per_processor_counts(self, p: int) -> np.ndarray:
        """Requests issued by each of ``p`` processors."""
        if self.n == 0:
            return np.zeros(p, dtype=np.int64)
        return np.bincount(self.proc, minlength=p).astype(np.int64)
