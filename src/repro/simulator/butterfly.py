"""Multistage (Omega/butterfly) network model — the [ST91]-style
refinement.

The paper's section-link model explains its version-(c) anomaly, but a
real vector-supercomputer network is multistage, and multistage networks
have a subtler failure mode: *internal* link congestion on patterns whose
destinations are perfectly spread (the classic bit-reversal worst case).
This module simulates destination-tag routing through ``lg B`` stages of
2x2 switches in front of the banks, so that effect is reproducible too.

Routing: an Omega network on ``N = n_banks`` ports shuffles between
stages; a request entering at port ``i`` for bank ``b`` occupies, after
stage ``s``, the port whose high bits are ``i``'s remaining low bits and
whose low bits are ``b``'s top ``s+1`` bits::

    port_s(i, b) = ((i << (s+1)) & (N-1)) | (b >> (S-1-s))

Each stage output port is a FIFO link accepting one request per
``link_gap`` cycles; after the last stage the request queues at its bank
as usual.  Every stage reuses the vectorized FIFO solver, so the whole
network is still loop-free Python.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from numpy.typing import ArrayLike

from .._util import is_power_of_two
from ..core.contention import BankMap
from ..errors import ParameterError, PatternError
from .banksim import fifo_service_times
from .machine import MachineConfig
from .request import Assignment, RequestBatch
from .stats import SimResult

__all__ = ["omega_ports", "simulate_scatter_butterfly"]


def omega_ports(sources: np.ndarray, banks: np.ndarray, n_banks: int,
                stage: int) -> np.ndarray:
    """Output port occupied after ``stage`` by requests routed
    ``sources -> banks`` under destination-tag routing."""
    if not is_power_of_two(n_banks):
        raise ParameterError(
            f"butterfly needs a power-of-two bank count, got {n_banks}"
        )
    n_stages = int(n_banks).bit_length() - 1
    if not (0 <= stage < max(n_stages, 1)):
        raise ParameterError(f"stage must be in [0, {n_stages}), got {stage}")
    mask = n_banks - 1
    return (((sources << (stage + 1)) & mask)
            | (banks >> (n_stages - 1 - stage)))


def simulate_scatter_butterfly(
    machine: MachineConfig,
    addresses: ArrayLike,
    bank_map: Optional[BankMap] = None,
    assignment: Assignment = "round_robin",
    link_gap: Optional[float] = None,
    switch_latency: float = 1.0,
) -> SimResult:
    """Simulate a scatter through an Omega network and the banks.

    Parameters
    ----------
    machine:
        ``n_banks`` must be a power of two; processors attach to evenly
        spaced network input ports.
    link_gap:
        Cycles per request on each switch output link (defaults to the
        machine's ``g`` — link bandwidth matching processor issue).
    switch_latency:
        Transit cycles added per stage (shifts completion; does not
        change throughput).

    Notes
    -----
    With ``link_gap = 0`` the network is transparent and the result
    matches :func:`~repro.simulator.banksim.simulate_scatter` exactly
    (up to the fixed pipeline latency) — property-tested.
    """
    n_banks = machine.n_banks
    if not is_power_of_two(n_banks):
        raise ParameterError(
            f"butterfly needs a power-of-two bank count, got {n_banks}"
        )
    if machine.p > n_banks:
        raise ParameterError("butterfly assumes p <= n_banks input ports")
    gap = machine.g if link_gap is None else float(link_gap)
    if gap < 0 or switch_latency < 0:
        raise ParameterError("link_gap and switch_latency must be >= 0")

    batch = RequestBatch.from_addresses(addresses, machine, assignment)
    if batch.n == 0:
        return SimResult(
            time=float(machine.L), n=0,
            bank_loads=np.zeros(n_banks, dtype=np.int64),
            machine_name=machine.name,
        )
    if bank_map is None:
        banks = (batch.addresses % n_banks).astype(np.int64)
    else:
        banks = np.asarray(bank_map(batch.addresses, n_banks)).astype(np.int64)
        if banks.min() < 0 or banks.max() >= n_banks:
            raise PatternError("bank ids outside [0, n_banks)")

    # Processors on evenly spaced input ports.
    sources = (batch.proc.astype(np.int64) * (n_banks // machine.p))
    arrival = batch.issue + machine.latency
    n_stages = int(n_banks).bit_length() - 1
    for stage in range(n_stages):
        ports = omega_ports(sources, banks, n_banks, stage)
        if gap > 0:
            start = fifo_service_times(arrival, ports, gap)
            arrival = start + gap + switch_latency
        else:
            arrival = arrival + switch_latency

    start = fifo_service_times(arrival, banks, machine.d)
    finish = start + machine.d
    waits = start - arrival
    return SimResult(
        time=float(finish.max() + machine.L),
        n=batch.n,
        bank_loads=np.bincount(banks, minlength=n_banks).astype(np.int64),
        max_wait=float(waits.max()),
        mean_wait=float(waits.mean()),
        stalled_cycles=0.0,
        machine_name=machine.name,
    )
