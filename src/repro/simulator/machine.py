"""Machine configurations for the memory-bank simulator.

A :class:`MachineConfig` describes the simulated hardware: ``p`` processors
issuing one memory request every ``g`` cycles each (vector pipelines with
latency hiding), ``n_banks`` memory banks each able to start one request
every ``d`` cycles, an optional network organized in sections with a
bandwidth limit per section, and a superstep overhead ``L``.

Presets mirror the machines of the paper's Table 1.  The bank delays of the
Cray C90 (6 cycles, SRAM) and Cray J90 (14 cycles, DRAM) are stated
explicitly in the paper; the remaining presets are representative
reconstructions (marked in their notes) since the supplied source text does
not include the body of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

import numpy as np

from .._util import check_nonnegative, check_positive
from ..core.params import DXBSPParams
from ..errors import ParameterError

__all__ = [
    "MachineConfig",
    "CRAY_C90",
    "CRAY_J90",
    "CRAY_T90",
    "TERA_MTA",
    "NEC_SX4",
    "TABLE1_MACHINES",
    "toy_machine",
]


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of a simulated high-bandwidth shared-memory machine.

    Attributes
    ----------
    name:
        Display name.
    p:
        Number of processors.
    n_banks:
        Number of memory banks.
    d:
        Bank delay in cycles: a bank can *start* servicing a new request
        only every ``d`` cycles.
    g:
        Issue gap in cycles: each processor issues at most one request per
        ``g`` cycles (1 on the Crays: one element per clock per pipe).
    L:
        Fixed overhead per superstep (synchronization/startup), added to
        every simulated superstep time.
    latency:
        One-way network transit time added between issue and bank arrival.
        It shifts completion times but does not change throughput; the
        paper folds it into ``L`` ("for all experiments ... L is
        negligible").
    n_sections:
        Number of network sections.  Banks are divided contiguously into
        sections; each section's link can accept one request every
        ``section_gap`` cycles.  ``n_sections = 1`` with ``section_gap = 0``
        disables the network model.
    section_gap:
        Cycles per request through one section link (0 = unlimited).
    queue_capacity:
        Per-bank queue capacity for the cycle-accurate simulator
        (:mod:`repro.simulator.cycle`); ``None`` means unbounded.
    clock_mhz:
        Processor clock, for converting cycles to wall-clock seconds via
        :meth:`seconds` (``None`` = unitless cycles).
    combining:
        Extension (cf. Ranade [Ran91], the paper's footnote 1): when
        true, concurrent requests to the *same location* are combined in
        the network and only one reaches the bank — location contention
        becomes free, CRCW-style.  Off on the Crays and by default.
    cache_hit_delay:
        Extension (cached DRAM, Hsu & Smith [HS93], named by the paper as
        an effect the (d,x)-BSP does not capture): when set, a bank
        servicing the *same location* as its immediately previous request
        recovers in ``cache_hit_delay`` cycles instead of ``d`` (row-
        buffer hit).  ``None`` disables the bank cache.
    note:
        Provenance note (e.g. ``[reconstructed]`` for Table-1 entries not
        present in the supplied text).
    """

    name: str
    p: int
    n_banks: int
    d: float
    g: float = 1.0
    L: float = 0.0
    latency: float = 0.0
    n_sections: int = 1
    section_gap: float = 0.0
    queue_capacity: Optional[int] = None
    clock_mhz: Optional[float] = None
    combining: bool = False
    cache_hit_delay: Optional[float] = None
    note: str = ""

    def __post_init__(self) -> None:
        if int(self.p) != self.p or self.p < 1:
            raise ParameterError(f"p must be a positive integer, got {self.p!r}")
        if int(self.n_banks) != self.n_banks or self.n_banks < 1:
            raise ParameterError(
                f"n_banks must be a positive integer, got {self.n_banks!r}"
            )
        object.__setattr__(self, "p", int(self.p))
        object.__setattr__(self, "n_banks", int(self.n_banks))
        check_positive("d", self.d)
        check_positive("g", self.g)
        check_nonnegative("L", self.L)
        check_nonnegative("latency", self.latency)
        if int(self.n_sections) != self.n_sections or self.n_sections < 1:
            raise ParameterError(
                f"n_sections must be a positive integer, got {self.n_sections!r}"
            )
        object.__setattr__(self, "n_sections", int(self.n_sections))
        if self.n_sections > self.n_banks:
            raise ParameterError("cannot have more sections than banks")
        check_nonnegative("section_gap", self.section_gap)
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ParameterError("queue_capacity must be >= 1 or None")
        if self.cache_hit_delay is not None:
            check_positive("cache_hit_delay", self.cache_hit_delay)
            if self.cache_hit_delay > self.d:
                raise ParameterError(
                    "cache_hit_delay must not exceed the bank delay d"
                )
        if self.clock_mhz is not None:
            check_positive("clock_mhz", self.clock_mhz)

    @property
    def x(self) -> float:
        """Expansion factor: banks per processor."""
        return self.n_banks / self.p

    @property
    def banks_per_section(self) -> int:
        """Banks in each network section (``n_banks / n_sections``,
        requiring divisibility)."""
        if self.n_banks % self.n_sections:
            raise ParameterError(
                f"n_banks={self.n_banks} not divisible by n_sections={self.n_sections}"
            )
        return self.n_banks // self.n_sections

    def seconds(self, cycles: float) -> float:
        """Convert simulated cycles to wall-clock seconds using
        ``clock_mhz`` (requires the clock to be set)."""
        if self.clock_mhz is None:
            raise ParameterError(
                f"machine {self.name!r} has no clock_mhz configured"
            )
        if cycles < 0:
            raise ParameterError(f"cycles must be >= 0, got {cycles}")
        return cycles / (self.clock_mhz * 1e6)

    def params(self) -> DXBSPParams:
        """The (d,x)-BSP parameter set this machine realizes."""
        return DXBSPParams(p=self.p, g=self.g, L=self.L, d=self.d, x=self.x)

    @staticmethod
    def from_params(
        params: DXBSPParams, name: str = "custom", **overrides: Any
    ) -> "MachineConfig":
        """Build a machine realizing a (d,x)-BSP parameter set."""
        cfg = MachineConfig(
            name=name,
            p=params.p,
            n_banks=params.n_banks,
            d=params.d,
            g=params.g,
            L=params.L,
        )
        return replace(cfg, **overrides) if overrides else cfg

    def with_(self, **kwargs: Any) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Cray C90: 16 processors, 1024 SRAM banks, bank delay 6 cycles (paper §1).
def require_machine(machine: object, where: str) -> None:
    """Raise a clear ``TypeError`` unless ``machine`` is a
    :class:`MachineConfig`.

    Guards the simulator entry points against their most common misuse —
    calling ``simulate_*(addresses, machine)`` with the arguments swapped,
    which previously surfaced as a confusing ``PatternError`` about the
    address vector's shape.
    """
    if not isinstance(machine, MachineConfig):
        hint = (
            " (the arguments look swapped)"
            if isinstance(machine, (np.ndarray, list, tuple, range))
            else ""
        )
        raise TypeError(
            f"{where} expects a MachineConfig as its first argument; the "
            f"signature is {where}(machine, addresses, ...), got "
            f"{type(machine).__name__}{hint}"
        )


CRAY_C90 = MachineConfig(
    name="Cray C90", p=16, n_banks=1024, d=6.0, clock_mhz=240.0,
    note="bank delay 6 cycles (SRAM), stated in the paper",
)

#: Cray J90, as used in the paper's experiments: dedicated 8-processor
#: system, DRAM banks with delay 14 cycles; 4 network sections.
CRAY_J90 = MachineConfig(
    name="Cray J90", p=8, n_banks=512, d=14.0, n_sections=4,
    clock_mhz=100.0,
    note="bank delay 14 cycles (DRAM), stated in the paper; 8-proc system",
)

#: Cray T90 [reconstructed]: SRAM successor of the C90.
CRAY_T90 = MachineConfig(
    name="Cray T90", p=32, n_banks=1024, d=4.0, clock_mhz=450.0,
    note="[reconstructed] representative SRAM successor entry",
)

#: Tera MTA [reconstructed]: multithreaded machine, modest expansion.
TERA_MTA = MachineConfig(
    name="Tera MTA", p=256, n_banks=512, d=3.0, clock_mhz=260.0,
    note="[reconstructed] representative entry; latency hidden by threads",
)

#: NEC SX-4 [reconstructed]: very high bank expansion vector machine.
NEC_SX4 = MachineConfig(
    name="NEC SX-4", p=32, n_banks=16384, d=8.0, clock_mhz=125.0,
    note="[reconstructed] representative high-expansion entry",
)

#: The machines regenerated as Table 1 (see experiments.table1_machines).
TABLE1_MACHINES = (CRAY_C90, CRAY_J90, CRAY_T90, TERA_MTA, NEC_SX4)


def toy_machine(
    p: int = 4, x: float = 4.0, d: float = 6.0, g: float = 1.0, L: float = 0.0,
    **overrides: Any,
) -> MachineConfig:
    """A small machine for tests and examples (defaults: 4 processors,
    16 banks, d=6)."""
    cfg = MachineConfig(
        name="toy", p=p, n_banks=max(1, int(round(x * p))), d=d, g=g, L=L
    )
    return cfg.with_(**overrides) if overrides else cfg
