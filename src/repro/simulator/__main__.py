"""Command-line front end for the bank simulator.

Usage::

    python -m repro.simulator --machine j90 --pattern hotspot --n 65536 --k 4096
    python -m repro.simulator --machine c90 --pattern uniform --n 65536 --hash h2
    python -m repro.simulator --machine toy --pattern stride --n 4096 --stride 16
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from ..analysis.predict import compare_scatter
from ..analysis.visualize import bank_load_strip
from ..core.contention import BankMap
from ..core.cost import crossover_contention
from ..mapping.hashing import HASH_FAMILIES, InterleavedMap, RandomMap
from ..workloads.patterns import broadcast, hotspot, strided, uniform_random
from .banksim import simulate_scatter
from .machine import CRAY_C90, CRAY_J90, MachineConfig, toy_machine

MACHINES = {
    "j90": CRAY_J90,
    "c90": CRAY_C90,
    "toy": toy_machine(),
}


def _build_pattern(args: argparse.Namespace) -> np.ndarray:
    space = max(args.space, args.n + 1)
    if args.pattern == "hotspot":
        return hotspot(args.n, min(args.k, args.n), space, seed=args.seed)
    if args.pattern == "uniform":
        return uniform_random(args.n, space, seed=args.seed)
    if args.pattern == "broadcast":
        return broadcast(args.n)
    if args.pattern == "stride":
        return strided(args.n, args.stride)
    raise AssertionError(args.pattern)


def _build_mapping(name: str, seed: int) -> Optional[BankMap]:
    if name == "interleave":
        return None
    if name == "random":
        return RandomMap(seed)
    return HASH_FAMILIES[name](seed)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.simulator",
        description="Scatter a synthetic pattern through the memory-bank "
        "simulator and compare against the BSP and (d,x)-BSP predictions.",
    )
    parser.add_argument("--machine", choices=sorted(MACHINES), default="j90")
    parser.add_argument("--pattern",
                        choices=["hotspot", "uniform", "broadcast", "stride"],
                        default="hotspot")
    parser.add_argument("--n", type=int, default=64 * 1024,
                        help="requests in the scatter")
    parser.add_argument("--k", type=int, default=4096,
                        help="hot-location contention (hotspot pattern)")
    parser.add_argument("--stride", type=int, default=16,
                        help="stride (stride pattern)")
    parser.add_argument("--space", type=int, default=1 << 24,
                        help="address space for background traffic")
    parser.add_argument("--hash",
                        choices=["interleave", "random", "h1", "h2", "h3"],
                        default="interleave", dest="bank_map",
                        help="memory-to-bank mapping")
    parser.add_argument("--d", type=float, default=None,
                        help="override the machine's bank delay")
    parser.add_argument("--banks", type=int, default=None,
                        help="override the machine's bank count")
    parser.add_argument("--seed", type=int, default=1995)
    args = parser.parse_args(argv)

    machine: MachineConfig = MACHINES[args.machine]
    if args.d is not None:
        machine = machine.with_(d=args.d)
    if args.banks is not None:
        machine = machine.with_(n_banks=args.banks)

    addr = _build_pattern(args)
    mapping = _build_mapping(args.bank_map, args.seed)
    cmp = compare_scatter(machine, addr, bank_map=mapping)
    res = simulate_scatter(machine, addr, mapping)

    print(f"machine   {machine.name}: p={machine.p} banks={machine.n_banks} "
          f"(x={machine.x:.1f}) d={machine.d:g} g={machine.g:g}")
    print(f"pattern   {args.pattern}: n={cmp.n} contention k={cmp.contention} "
          f"(knee k*~{crossover_contention(machine.params(), cmp.n):.0f})")
    print(f"mapping   {args.bank_map}")
    print(f"bsp       {cmp.bsp_time:,.0f} cycles")
    print(f"dxbsp     {cmp.dxbsp_time:,.0f} cycles")
    print(f"simulated {cmp.simulated_time:,.0f} cycles "
          f"(throughput {res.throughput:.3f} elem/cycle)")
    print(f"banks     {bank_load_strip(res)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
