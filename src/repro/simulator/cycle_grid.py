"""Grid-fused cycle simulation: many scatters, one vectorized pass.

The batch engine (:mod:`repro.simulator.cycle_batch`) vectorizes *one*
simulation; a parameter sweep still pays one engine invocation — one
kernel call, one Python prologue/epilogue — per grid point.  This module
amortizes that across the whole sweep: compatible points are stacked
into 2-D ``(rows, n)`` arrays and pushed through a *single* call to the
batched segmented-cummax kernels of :mod:`repro.simulator.banksim`
(rows are lifted into disjoint server-id ranges, so one lexsort + one
``np.maximum.accumulate`` solves every point at once).

Exactness is certified exactly like the batch engine, but **scoped per
point**:

1. **Project.** Every row's unbounded start times come from one fused
   kernel call over the stacked grid (per-row ``d`` / ``cache_hit_delay``
   ride along as per-row cost vectors, so the grid may mix machines).
2. **Certify.** Rows on unbounded-queue machines are exact outright.
   For a row with a finite ``queue_capacity`` the batch engine's
   queue-depth stall certificate (:func:`repro.simulator.cycle_batch.
   _first_stall`) runs on that row's slice: if no projected issue sees
   a full queue, the projection *is* that row's bounded run.
3. **Fall back per point.** A row whose certificate fails is re-run
   through ``engine="event"`` on its own — the grid never degrades
   wholesale because one point stalls, and the fallback is the exact
   engine, so every returned result is bit-identical to evaluating its
   point alone with ``engine="batch"`` / ``"event"`` / ``"tick"``
   (property-tested, telemetry included).

Certified rows are committed through the batch engine's own
``_Acc``/``_commit``/``_finish`` machinery, so aggregation, runaway
diagnostics and sanitizer coverage are shared verbatim rather than
re-implemented.  A row that exceeds its ``max_cycles`` raises the same
:class:`~repro.errors.SimulationError` the scalar engines would (and
aborts the grid call, as each per-point call would abort its caller).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.contention import BankMap
from ..errors import ParameterError
from .banksim import fifo_service_times, fifo_service_times_cached
from .cycle import _finish, _prepare, _Setup, simulate_scatter_cycle
from .cycle_batch import _Acc, _commit, _first_stall
from .machine import MachineConfig, require_machine
from .request import Assignment
from .sanitize import sanitize_enabled
from .stats import SimResult

__all__ = ["simulate_scatter_grid"]


def _spread(value: Any, rows: int, name: str) -> List[Any]:
    """Normalize a per-grid parameter: one value broadcasts to every
    row, a list/tuple supplies one value per row."""
    if isinstance(value, (list, tuple)):
        if len(value) != rows:
            raise ParameterError(
                f"{name} must be a single value or one per grid row; "
                f"got {len(value)} values for {rows} rows"
            )
        return list(value)
    return [value] * rows


def _row_fallback(
    machine: MachineConfig,
    addresses: Any,
    bank_map: Optional[BankMap],
    assignment: Assignment,
    max_cycles: Optional[int],
    telemetry: bool,
    sanitize: bool,
) -> SimResult:
    """Evaluate one row alone through the exact event engine (used for
    empty rows and rows whose stall certificate fails)."""
    return simulate_scatter_cycle(
        machine, addresses, bank_map, assignment,
        max_cycles=max_cycles, engine="event",
        telemetry=telemetry, sanitize=sanitize,
    )


def simulate_scatter_grid(
    machine: Union[MachineConfig, Sequence[MachineConfig]],
    addresses: Any,
    bank_map: Union[Optional[BankMap], Sequence[Optional[BankMap]]] = None,
    assignment: Union[Assignment, Sequence[Assignment]] = "round_robin",
    max_cycles: Union[Optional[int], Sequence[Optional[int]]] = None,
    telemetry: bool = False,
    sanitize: Optional[bool] = None,
) -> List[SimResult]:
    """Cycle-accurate simulation of a whole grid of scatters in one
    fused vectorized pass.

    Parameters
    ----------
    machine:
        One :class:`MachineConfig` for every row, or a sequence with
        one machine per row (the grid may mix machines freely — per-row
        ``d``, ``cache_hit_delay``, ``queue_capacity``, ... all ride
        along as per-row kernel costs).
    addresses:
        The grid: a 2-D int array (one pattern per row) or a sequence
        of 1-D address patterns (rows may differ in length).
    bank_map / assignment / max_cycles:
        Single value broadcast to every row, or one value per row.
    telemetry / sanitize:
        As in :func:`~repro.simulator.cycle.simulate_scatter_cycle`;
        applied to every row.

    Returns a list of :class:`SimResult`, one per row in input order,
    each **bit-identical** to simulating that row alone with
    ``engine="batch"`` (equivalently ``"event"`` / ``"tick"``): rows
    whose queue-depth stall certificate holds are committed from the
    fused projection, rows where bounded-queue back-pressure binds fall
    back *individually* to the event engine, and empty rows take the
    engines' shared zero-request path.
    """
    if isinstance(addresses, np.ndarray):
        if addresses.ndim != 2:
            raise ParameterError(
                "simulate_scatter_grid expects a 2-D address grid or a "
                f"sequence of patterns, got a {addresses.ndim}-D array"
            )
        addr_rows: List[Any] = list(addresses)
    elif isinstance(addresses, (list, tuple)):
        addr_rows = list(addresses)
    else:
        raise ParameterError(
            "simulate_scatter_grid expects a 2-D address grid or a "
            f"sequence of patterns, got {type(addresses).__name__}"
        )
    rows = len(addr_rows)
    machines = _spread(machine, rows, "machine")
    maps = _spread(bank_map, rows, "bank_map")
    assigns = _spread(assignment, rows, "assignment")
    budgets = _spread(max_cycles, rows, "max_cycles")
    if rows == 0:
        return []
    do_sanitize = sanitize_enabled(sanitize)

    results: List[Optional[SimResult]] = [None] * rows
    setups: List[Optional[_Setup]] = [None] * rows
    proj: Dict[int, tuple] = {}  # row -> (issue, bank, addr, absorbed)
    groups: Dict[int, List[int]] = {}  # survivor count -> rows
    for r in range(rows):
        require_machine(machines[r], "simulate_scatter_grid")
        s = _prepare(
            machines[r], addr_rows[r], maps[r], assigns[r], budgets[r],
            telemetry, do_sanitize, build_queues=False,
        )
        if s.n == 0:
            results[r] = _row_fallback(
                machines[r], addr_rows[r], maps[r], assigns[r],
                budgets[r], telemetry, do_sanitize,
            )
            continue
        setups[r] = s
        assert s.batch is not None and s.banks is not None \
            and s.survives is not None
        alive = s.survives
        if alive.all():
            issue, bank, addr = s.batch.issue, s.banks, s.batch.addresses
            absorbed = np.zeros(0, dtype=np.float64)
        else:
            issue = s.batch.issue[alive]
            bank = s.banks[alive]
            addr = s.batch.addresses[alive]
            absorbed = s.batch.issue[~alive]
        proj[r] = (issue, bank, addr, absorbed)
        # Rectangular fusion groups: rows whose survivor counts match
        # stack into one (rows, m) kernel call.  Combining absorption
        # and ragged grids fall out naturally — equal-m rows fuse, the
        # rest form their own (possibly singleton) groups.
        groups.setdefault(int(issue.size), []).append(r)

    for members in groups.values():
        arr2 = np.stack(
            [proj[r][0] + setups[r].latency for r in members]  # type: ignore[union-attr]
        )
        srv2 = np.stack([proj[r][1] for r in members])
        d_row = np.asarray(
            [float(setups[r].d) for r in members],  # type: ignore[union-attr]
            dtype=np.float64,
        )
        cost2: Optional[np.ndarray]
        if any(setups[r].hit_delay is not None for r in members):  # type: ignore[union-attr]
            # Mixed grids run the cached kernel with hit == miss == d
            # for uncached rows: every cost equals d there, so the
            # prefix-sum recurrence reduces to the plain rank*d one and
            # stays bit-identical to the uncached kernel.
            hit_row = np.asarray(
                [
                    float(
                        setups[r].d if setups[r].hit_delay is None  # type: ignore[union-attr]
                        else setups[r].hit_delay  # type: ignore[union-attr]
                    )
                    for r in members
                ],
                dtype=np.float64,
            )
            addr2 = np.stack([proj[r][2] for r in members])
            start2, cost2 = fifo_service_times_cached(
                arr2, srv2, addr2, d_row, hit_row
            )
        else:
            start2 = fifo_service_times(arr2, srv2, d_row)
            cost2 = None

        for i, r in enumerate(members):
            s = setups[r]
            assert s is not None
            issue, bank, _addr, absorbed = proj[r]
            arrival = arr2[i]
            start = start2[i]
            if s.capacity is not None:
                t_stall = _first_stall(
                    s.capacity, s.n_banks, issue, arrival, start, bank
                )
                if t_stall is not None:
                    # Back-pressure binds for this row only: the
                    # certificate's earliest offender is a real stall,
                    # so this point (and no other) leaves the fused
                    # projection for the exact scalar engine.
                    results[r] = _row_fallback(
                        machines[r], addr_rows[r], maps[r], assigns[r],
                        budgets[r], telemetry, do_sanitize,
                    )
                    continue
            acc = _Acc(s)
            _commit(
                s, acc,
                (arrival, start,
                 None if cost2 is None else cost2[i], bank, absorbed),
            )
            results[r] = _finish(
                machines[r], s, "grid", acc.bank_served, acc.total_wait,
                acc.max_wait, acc.stalled, acc.last_finish, acc.tele,
            )
    return results  # type: ignore[return-value]
