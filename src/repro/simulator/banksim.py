"""Fast vectorized memory-bank simulator (the "measured" side of the
paper's predicted-vs-measured plots).

Mechanism simulated
-------------------
Each of the ``p`` processors issues its requests at a fixed rate (one per
``g`` cycles — vector pipelining hides latency, so issue never waits for
completions).  A request to bank ``b`` arrives ``latency`` cycles later and
joins ``b``'s FIFO queue.  A bank *starts* at most one request every ``d``
cycles (the bank delay).  With unbounded queues the start times within one
bank obey the recurrence::

    start[i] = max(arrival[i], start[i-1] + d)

which this module solves for *all* banks at once with a segmented
cumulative-maximum: within one bank's arrival-ordered segment,

    start[i] = i*d + max_{j <= i} (arrival[j] - j*d)

so a single ``np.maximum.accumulate`` over per-segment-offset values gives
every start time with no Python-level loop (see the HPC guides:
vectorize the recurrence, don't iterate it).

An optional network stage (machine ``n_sections`` / ``section_gap``) puts a
rate-limited link in front of each contiguous group of banks; requests
queue at the link first, then at the bank.  This reproduces the paper's
network worst case (versions (a)/(b)/(c)) where a pattern confined to one
section runs up to ~2.5x over the bank-only prediction.

The bounded-queue, stalling variant lives in :mod:`repro.simulator.cycle`
and is validated to agree with this module when queues are unbounded.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np
from numpy.typing import ArrayLike

from ..core.contention import BankMap
from ..errors import PatternError, SimulationError
from .machine import MachineConfig, require_machine
from .request import Assignment, RequestBatch
from .sanitize import check_superstep, sanitize_enabled
from .stats import SimResult, SimTelemetry

__all__ = [
    "fifo_service_times",
    "fifo_service_times_cached",
    "simulate_batch",
    "simulate_scatter",
    "simulate_gather",
    "simulate_scatter_blocked",
]


def _rows_flatten(
    arrivals: np.ndarray,
    servers: np.ndarray,
    init_free: Optional[np.ndarray],
    what: str,
) -> tuple:
    """Validate one batched (rows, n) call and flatten it to a single
    1-D problem by lifting each row's server ids into a disjoint range.

    Returns ``(rows, n, flat_servers, flat_floors, n_srv)``.  Segments
    of different rows can never share a lifted server id, so the 1-D
    segmented-cummax kernel solves every row at once and each row's
    answer is bit-identical to its own per-row call (the lexsort ties
    break by flattened position, i.e. row-major input position, which
    preserves each row's internal order).
    """
    if servers.ndim != 2 or arrivals.shape != servers.shape:
        raise PatternError(
            f"batched {what} requires matching 2-D (rows, n) "
            "arrivals and servers"
        )
    rows, n = arrivals.shape
    if n == 0:
        return rows, n, None, None, 0
    if servers.min() < 0:
        raise PatternError("server ids must be >= 0")
    if init_free is not None:
        floors = np.asarray(init_free, dtype=np.float64)
        if floors.ndim != 2 or floors.shape[0] != rows:
            raise PatternError(
                f"batched {what} requires init seeds of shape "
                "(rows, n_servers)"
            )
        n_srv = floors.shape[1]
        if int(servers.max()) >= n_srv:
            raise PatternError("server ids outside the init seed width")
        flat_floors = floors.ravel()
    else:
        n_srv = int(servers.max()) + 1
        flat_floors = None
    row_lift = np.arange(rows, dtype=np.int64)[:, None] * n_srv
    flat_srv = (np.asarray(servers, dtype=np.int64) + row_lift).ravel()
    return rows, n, flat_srv, flat_floors, n_srv


def _per_request(value: Any, rows: int, n: int, name: str) -> Any:
    """Broadcast a scalar / per-row (rows,) cost to the flattened grid.

    Scalars pass through untouched (the 1-D kernel keeps its scalar
    fast path); a per-row vector expands to one entry per request.
    """
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        return value
    if arr.shape != (rows,):
        raise SimulationError(
            f"per-row {name} must have shape ({rows},), got {arr.shape}"
        )
    return np.broadcast_to(arr[:, None], (rows, n)).ravel()


def fifo_service_times(
    arrivals: np.ndarray, servers: np.ndarray, gap: float,
    init_free: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Start times for FIFO service with one start per ``gap`` cycles per
    server.

    Parameters
    ----------
    arrivals:
        float64 arrival time of each request.  May be a batched 2-D
        ``(rows, n)`` array: each row is an independent grid point
        (its own servers, its own seeds) and the whole grid is solved
        in one vectorized pass, bit-identical per row to ``rows``
        separate 1-D calls.
    servers:
        Integer server (bank or section link) id of each request
        (same shape as ``arrivals``).
    gap:
        Minimum spacing between consecutive service starts at one server.
        ``gap = 0`` means an unlimited server: start == arrival.  In
        batched mode, also accepts a per-row ``(rows,)`` vector; a
        per-request array is honoured as long as the gap is constant
        within each server's segment (which per-row broadcasting
        guarantees).
    init_free:
        Optional per-server floor on the first start (indexed by server
        id): the cycle at which a previously busy server becomes free
        again.  Lets the batch cycle engine re-enter the recurrence from
        a mid-run machine state.  ``None`` means every server starts
        free.  In batched mode: shape ``(rows, n_servers)``, one seed
        row per grid row.

    Returns
    -------
    float64 start times, aligned with the input order (and shape).  Ties
    in arrival time are broken by input position (the global issue
    order), matching the cycle-accurate reference simulator.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    servers = np.asarray(servers)
    if arrivals.ndim == 2:
        rows, n, flat_srv, flat_floors, _ = _rows_flatten(
            arrivals, servers, init_free, "fifo_service_times"
        )
        if rows == 0 or n == 0:
            return np.zeros((rows, n), dtype=np.float64)
        flat = fifo_service_times(
            arrivals.ravel(), flat_srv,
            _per_request(gap, rows, n, "gap"),
            init_free=flat_floors,
        )
        return flat.reshape(rows, n)
    if arrivals.shape != servers.shape or arrivals.ndim != 1:
        raise PatternError("arrivals and servers must be matching 1-D arrays")
    n = arrivals.size
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    gaps = None  # per-request gaps (batched rows); scalar path stays scalar
    if np.ndim(gap) > 0:
        gaps = np.asarray(gap, dtype=np.float64)
        if gaps.shape != arrivals.shape:
            raise SimulationError(
                "per-request gap must align with arrivals"
            )
        gap_max = float(gaps.max())
        if float(gaps.min()) < 0:
            raise SimulationError("service gap must be >= 0")
    else:
        gap_max = float(gap)
        if gap < 0:
            raise SimulationError(f"service gap must be >= 0, got {gap}")
    if gap_max == 0:
        # All gaps zero: unlimited servers, start == max(arrival, floor).
        if init_free is not None:
            return np.maximum(
                arrivals, np.asarray(init_free, dtype=np.float64)[servers]
            )
        return arrivals.copy()

    idx = np.arange(n)
    order = np.lexsort((idx, arrivals, servers))
    s_arr = arrivals[order]
    s_srv = servers[order]

    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    np.not_equal(s_srv[1:], s_srv[:-1], out=seg_start[1:])
    seg_id = np.cumsum(seg_start) - 1
    first_of_seg = np.flatnonzero(seg_start)
    rank = idx - first_of_seg[seg_id]

    # With per-request gaps the lift term becomes rank * (own segment's
    # gap); constant within a segment, so the recurrence still telescopes
    # to one cummax (and equals the scalar expression when all gaps agree,
    # keeping the two paths bit-identical).
    step = gap if gaps is None else gaps[order]
    adjusted = s_arr - rank * step
    if init_free is not None:
        # Seed each segment head with its server's external floor: the
        # first start becomes max(arrival, floor) (rank 0, so adjusted
        # is the start itself) and the cummax propagates the constraint
        # to the rest of the segment.
        floors = np.asarray(init_free, dtype=np.float64)
        adjusted[first_of_seg] = np.maximum(
            adjusted[first_of_seg], floors[s_srv[first_of_seg]]
        )
    # Segmented cumulative max via per-segment offsets: each segment is
    # lifted above the previous one's value range, so the running max never
    # leaks across segments.  Exact for integer-valued times (span and
    # offsets stay far below 2^53).
    span = float(adjusted.max() - adjusted.min()) + gap_max + 1.0
    lifted = adjusted + seg_id * span
    running = np.maximum.accumulate(lifted) - seg_id * span
    start_sorted = running + rank * step

    start = np.empty(n, dtype=np.float64)
    start[order] = start_sorted
    return start


def fifo_service_times_cached(
    arrivals: np.ndarray,
    servers: np.ndarray,
    addresses: np.ndarray,
    miss_cost: float,
    hit_cost: float,
    init_free: Optional[np.ndarray] = None,
    init_addr: Optional[np.ndarray] = None,
) -> tuple:
    """FIFO service with a one-entry bank cache (cached-DRAM extension,
    Hsu & Smith [HS93]).

    A request whose address equals the *immediately previous* request
    serviced by the same server is a row-buffer hit and occupies the
    server for ``hit_cost`` cycles; otherwise ``miss_cost``.  Solved
    vectorized like :func:`fifo_service_times`, with the per-segment gap
    prefix sums replacing ``rank * gap``.

    ``init_free`` floors each server's first start as in
    :func:`fifo_service_times`; ``init_addr`` seeds each server's row
    buffer with the address it last serviced (``-1`` = cold buffer;
    addresses are non-negative), so a mid-run re-entry preserves hits
    across the seam.

    Batched mode mirrors :func:`fifo_service_times`: 2-D ``(rows, n)``
    arrivals/servers/addresses solve one independent grid point per
    row (bit-identical per row to per-row calls), with ``miss_cost`` /
    ``hit_cost`` optionally per-row ``(rows,)`` vectors and the init
    seeds shaped ``(rows, n_servers)``.

    Returns ``(start, cost)`` aligned with the input order (and shape).
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    servers = np.asarray(servers)
    addresses = np.asarray(addresses)
    if arrivals.ndim == 2:
        if addresses.shape != arrivals.shape:
            raise PatternError(
                "batched fifo_service_times_cached requires matching "
                "2-D (rows, n) addresses"
            )
        rows, n, flat_srv, flat_floors, n_srv = _rows_flatten(
            arrivals, servers, init_free, "fifo_service_times_cached"
        )
        if rows == 0 or n == 0:
            empty = np.zeros((rows, n), dtype=np.float64)
            return empty, empty.copy()
        flat_seeds = None
        if init_addr is not None:
            seeds = np.asarray(init_addr)
            if seeds.shape != (rows, n_srv):
                raise PatternError(
                    "batched init_addr must be shaped (rows, n_servers)"
                )
            flat_seeds = seeds.ravel()
        start, cost = fifo_service_times_cached(
            arrivals.ravel(), flat_srv, addresses.ravel(),
            _per_request(miss_cost, rows, n, "miss_cost"),
            _per_request(hit_cost, rows, n, "hit_cost"),
            init_free=flat_floors, init_addr=flat_seeds,
        )
        return start.reshape(rows, n), cost.reshape(rows, n)
    if not (arrivals.shape == servers.shape == addresses.shape) \
            or arrivals.ndim != 1:
        raise PatternError(
            "arrivals, servers and addresses must be matching 1-D arrays"
        )
    per_req = None  # (hit, miss) per-request costs (batched rows)
    if np.ndim(hit_cost) > 0 or np.ndim(miss_cost) > 0:
        hit_req = np.broadcast_to(
            np.asarray(hit_cost, dtype=np.float64), arrivals.shape
        )
        miss_req = np.broadcast_to(
            np.asarray(miss_cost, dtype=np.float64), arrivals.shape
        )
        if arrivals.size and (
            float(hit_req.min()) <= 0 or float(miss_req.min()) <= 0
            or bool(np.any(hit_req > miss_req))
        ):
            raise SimulationError(
                "need 0 < hit_cost <= miss_cost for every request"
            )
        per_req = (hit_req, miss_req)
        miss_max = float(miss_req.max()) if arrivals.size else 0.0
    else:
        if hit_cost <= 0 or miss_cost <= 0 or hit_cost > miss_cost:
            raise SimulationError(
                f"need 0 < hit_cost <= miss_cost, got {hit_cost}, {miss_cost}"
            )
        miss_max = miss_cost
    n = arrivals.size
    if n == 0:
        empty = np.zeros(0, dtype=np.float64)
        return empty, empty.copy()

    idx = np.arange(n)
    order = np.lexsort((idx, arrivals, servers))
    s_arr = arrivals[order]
    s_srv = servers[order]
    s_addr = addresses[order]

    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    np.not_equal(s_srv[1:], s_srv[:-1], out=seg_start[1:])
    seg_id = np.cumsum(seg_start) - 1
    first_of_seg = np.flatnonzero(seg_start)

    # Hit = same address as the previous request in this server's FIFO.
    hit = np.zeros(n, dtype=bool)
    np.equal(s_addr[1:], s_addr[:-1], out=hit[1:])
    hit &= ~seg_start
    if init_addr is not None:
        # Segment heads hit iff they match the seeded row buffer.
        seeds = np.asarray(init_addr)[s_srv[first_of_seg]]
        hit[first_of_seg] = s_addr[first_of_seg] == seeds
    if per_req is None:
        cost = np.where(hit, hit_cost, miss_cost)
    else:
        cost = np.where(hit, per_req[0][order], per_req[1][order])

    # Segment-local prefix sums of the costs of *earlier* requests.
    csum = np.cumsum(cost)
    csum_prev = np.empty(n)
    csum_prev[0] = 0.0
    csum_prev[1:] = csum[:-1]
    base = csum_prev[first_of_seg][seg_id]
    gap_prefix = csum_prev - base

    adjusted = s_arr - gap_prefix
    if init_free is not None:
        floors = np.asarray(init_free, dtype=np.float64)
        adjusted[first_of_seg] = np.maximum(
            adjusted[first_of_seg], floors[s_srv[first_of_seg]]
        )
    span = float(adjusted.max() - adjusted.min()) + miss_max + 1.0
    lifted = adjusted + seg_id * span
    running = np.maximum.accumulate(lifted) - seg_id * span
    start_sorted = running + gap_prefix

    start = np.empty(n, dtype=np.float64)
    start[order] = start_sorted
    cost_out = np.empty(n, dtype=np.float64)
    cost_out[order] = cost
    return start, cost_out


def _empty_telemetry(machine: MachineConfig) -> SimTelemetry:
    """Telemetry for a zero-request batch (all counters zero)."""
    return SimTelemetry(
        bank_busy=np.zeros(machine.n_banks, dtype=np.float64),
        queue_high_water=np.zeros(machine.n_banks, dtype=np.int64),
        stall_breakdown={
            "bank_wait": 0.0, "link_wait": 0.0, "issue_backpressure": 0.0,
        },
        proc_stalls=None,
        makespan=0.0,
    )


def _queue_high_water(
    arrival: np.ndarray,
    start: np.ndarray,
    banks: np.ndarray,
    n_banks: int,
) -> np.ndarray:
    """Per-bank maximum simultaneous queue depth.

    Each request occupies its bank's queue over ``[arrival, start)``.
    Depth is sampled just after arrivals (arrivals sort before departures
    at equal times), matching where the cycle engines measure their
    high-water mark — a request that starts the cycle it arrives counts.
    """
    n = arrival.size
    times = np.concatenate([arrival, start])
    delta = np.concatenate([
        np.ones(n, dtype=np.int64), -np.ones(n, dtype=np.int64)
    ])
    bankv = np.concatenate([banks, banks])
    order = np.lexsort((-delta, times, bankv))
    s_bank = bankv[order]
    # Each bank's deltas sum to zero, so a single global cumsum restarts
    # at zero at every bank boundary — no per-segment offsets needed.
    depth = np.cumsum(delta[order])
    seg_first = np.flatnonzero(
        np.r_[True, s_bank[1:] != s_bank[:-1]]
    )
    high = np.zeros(n_banks, dtype=np.int64)
    high[s_bank[seg_first]] = np.maximum.reduceat(depth, seg_first)
    return high


def simulate_batch(
    machine: MachineConfig,
    batch: RequestBatch,
    banks: np.ndarray,
    telemetry: bool = False,
    sanitize: Optional[bool] = None,
) -> SimResult:
    """Simulate one batch of requests whose bank assignment is already
    resolved.

    Applies (in order): combining (if the machine combines same-location
    requests in the network), the optional section-link stage, the bank
    stage (with the bank-cache extension when configured), and folds the
    machine's ``L`` into the completion time.

    With ``telemetry=True`` the result carries a :class:`SimTelemetry`
    (per-bank busy cycles, queue high-water marks, stall breakdown);
    under combining the counters cover the requests that survive to the
    memory side.

    With ``sanitize=True`` (``None`` defers to :func:`repro.simulator.
    sanitize.sanitize_enabled`) the conservation invariants of
    :func:`~repro.simulator.sanitize.check_superstep` are asserted on
    the result; the check only reads, so the returned result is
    bit-identical either way.
    """
    require_machine(machine, "simulate_batch")
    do_sanitize = sanitize_enabled(sanitize)
    n = batch.n
    if n == 0:
        result = SimResult(
            time=float(machine.L),
            n=0,
            bank_loads=np.zeros(machine.n_banks, dtype=np.int64),
            machine_name=machine.name,
            telemetry=_empty_telemetry(machine) if telemetry else None,
        )
        if do_sanitize:
            check_superstep(
                machine, result, engine="banksim", h_p=0, n_survivors=0,
            )
        return result
    banks = np.asarray(banks)
    if banks.shape != batch.addresses.shape:
        raise PatternError("banks must align with batch addresses")
    if banks.min() < 0 or banks.max() >= machine.n_banks:
        raise PatternError("bank ids outside [0, n_banks)")

    arrival = batch.issue + machine.latency
    addresses = batch.addresses
    issue_floor = float(arrival.max())  # every request must at least issue

    if machine.combining:
        # Combining networks [Ran91]: one request per distinct location
        # survives to the memory side (the first in request order); the
        # rest complete when their representative's response fans back.
        _, keep = np.unique(addresses, return_index=True)
        keep.sort()
        arrival = arrival[keep]
        banks = banks[keep]
        addresses = addresses[keep]

    link_wait = 0.0
    if machine.n_sections > 1 and machine.section_gap > 0:
        sections = banks // machine.banks_per_section
        link_start = fifo_service_times(arrival, sections, machine.section_gap)
        if telemetry:
            link_wait = float((link_start - arrival).sum())
        arrival = link_start + machine.section_gap

    if machine.cache_hit_delay is not None:
        start, cost = fifo_service_times_cached(
            arrival, banks, addresses, machine.d, machine.cache_hit_delay
        )
        finish = start + cost
    else:
        start = fifo_service_times(arrival, banks, machine.d)
        cost = None  # uniform machine.d; materialized only for telemetry
        finish = start + machine.d
    waits = start - arrival

    makespan = float(max(finish.max(), issue_floor))
    tel = None
    bank_busy = None
    queue_high_water = None
    if telemetry or do_sanitize:
        # Observer counters; under sanitize-only they are checked and
        # dropped, so the returned result stays bit-identical.
        per_req_cost = (
            cost if cost is not None
            else np.full(arrival.size, float(machine.d))
        )
        bank_busy = np.bincount(
            banks, weights=per_req_cost, minlength=machine.n_banks
        )
        queue_high_water = _queue_high_water(
            arrival, start, banks, machine.n_banks
        )
    if telemetry:
        tel = SimTelemetry(
            bank_busy=bank_busy,
            queue_high_water=queue_high_water,
            stall_breakdown={
                "bank_wait": float(waits.sum()),
                "link_wait": link_wait,
                "issue_backpressure": 0.0,
            },
            proc_stalls=None,
            makespan=makespan,
        )

    result = SimResult(
        time=float(makespan + machine.L),
        n=n,
        bank_loads=np.bincount(banks, minlength=machine.n_banks).astype(np.int64),
        max_wait=float(waits.max()),
        mean_wait=float(waits.mean()),
        stalled_cycles=0.0,
        machine_name=machine.name,
        telemetry=tel,
    )
    if do_sanitize:
        check_superstep(
            machine, result,
            engine="banksim",
            h_p=int(batch.per_processor_counts(machine.p).max()),
            n_survivors=int(arrival.size),
            bank_busy=bank_busy,
            queue_high_water=queue_high_water,
        )
    return result


def simulate_scatter(
    machine: MachineConfig,
    addresses: ArrayLike,
    bank_map: Optional[BankMap] = None,
    assignment: Assignment = "round_robin",
    telemetry: bool = False,
    sanitize: Optional[bool] = None,
) -> SimResult:
    """Simulate one scatter (or gather — the model costs them identically)
    of ``addresses`` on ``machine``.

    Parameters
    ----------
    machine:
        Hardware description (see :class:`MachineConfig`).
    addresses:
        int64 memory locations, one per element scattered.
    bank_map:
        Memory-to-bank mapping; defaults to the Cray's low-order
        interleaving ``addr mod n_banks``.
    assignment:
        How elements are dealt over processors (``"round_robin"`` default).
    telemetry:
        Collect :class:`SimTelemetry` counters (off by default; the hot
        path pays nothing for the option).
    sanitize:
        Assert the per-superstep conservation invariants (see
        :mod:`repro.simulator.sanitize`); ``None`` defers to the
        process-wide default / ``REPRO_SANITIZE``.  Read-only: results
        are bit-identical with it on or off.
    """
    require_machine(machine, "simulate_scatter")
    batch = RequestBatch.from_addresses(addresses, machine, assignment)
    if bank_map is None:
        banks = batch.addresses % machine.n_banks
    else:
        banks = np.asarray(bank_map(batch.addresses, machine.n_banks))
    return simulate_batch(machine, batch, banks, telemetry=telemetry,
                          sanitize=sanitize)


def simulate_gather(
    machine: MachineConfig,
    addresses: ArrayLike,
    bank_map: Optional[BankMap] = None,
    assignment: Assignment = "round_robin",
    telemetry: bool = False,
    sanitize: Optional[bool] = None,
) -> SimResult:
    """Simulate one gather of ``addresses``.

    The bank mechanism is direction-symmetric — a read request occupies
    its bank for ``d`` cycles exactly like a write — and the paper
    confirms this empirically ("experiments with the gather operation
    give almost identical results"), so this is :func:`simulate_scatter`
    under the read-side name.
    """
    require_machine(machine, "simulate_gather")
    return simulate_scatter(machine, addresses, bank_map, assignment,
                            telemetry=telemetry, sanitize=sanitize)


def simulate_scatter_blocked(
    machine: MachineConfig,
    addresses: ArrayLike,
    superstep_size: int,
    bank_map: Optional[BankMap] = None,
    assignment: Assignment = "round_robin",
    telemetry: bool = False,
    sanitize: Optional[bool] = None,
) -> SimResult:
    """Simulate a long scatter executed in supersteps of at most
    ``superstep_size`` elements, with a barrier (and the machine's ``L``)
    between them — the paper's experimental regime (S = 64K per
    superstep, L negligible).

    Returns one aggregate :class:`SimResult` whose ``time`` is the sum of
    the superstep times and whose per-bank loads cover the whole scatter.
    """
    from .._util import as_addresses
    from ..errors import ParameterError

    require_machine(machine, "simulate_scatter_blocked")
    if superstep_size < 1:
        raise ParameterError(
            f"superstep_size must be >= 1, got {superstep_size}"
        )
    addr = as_addresses(addresses)
    if addr.size == 0:
        return simulate_scatter(machine, addr, bank_map, assignment,
                                telemetry=telemetry, sanitize=sanitize)
    total_time = 0.0
    loads = np.zeros(machine.n_banks, dtype=np.int64)
    max_wait = 0.0
    wait_weighted = 0.0
    tel = _empty_telemetry(machine) if telemetry else None
    for lo in range(0, addr.size, superstep_size):
        chunk = addr[lo:lo + superstep_size]
        # Sanitize applies per superstep: each chunk is one superstep,
        # so the invariants are checked where they are defined.
        res = simulate_scatter(machine, chunk, bank_map, assignment,
                               telemetry=telemetry, sanitize=sanitize)
        total_time += res.time
        loads += res.bank_loads
        max_wait = max(max_wait, res.max_wait)
        wait_weighted += res.mean_wait * res.n
        if tel is not None:
            # Busy cycles and waits add across supersteps; the high-water
            # mark is a max (queues drain at each barrier).
            step = res.telemetry
            tel = SimTelemetry(
                bank_busy=tel.bank_busy + step.bank_busy,
                queue_high_water=np.maximum(
                    tel.queue_high_water, step.queue_high_water
                ),
                stall_breakdown={
                    k: tel.stall_breakdown[k] + v
                    for k, v in step.stall_breakdown.items()
                },
                proc_stalls=None,
                makespan=tel.makespan + step.makespan,
            )
    return SimResult(
        time=total_time,
        n=int(addr.size),
        bank_loads=loads,
        max_wait=max_wait,
        mean_wait=wait_weighted / addr.size,
        stalled_cycles=0.0,
        machine_name=machine.name,
        telemetry=tel,
    )
