"""Simulation results and derived statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = ["SimResult", "SimTelemetry"]


@dataclass(frozen=True)
class SimTelemetry:
    """Opt-in per-bank counters explaining *where* a pattern's time went.

    Collected only when a simulator entry point is called with
    ``telemetry=True`` (the default leaves :attr:`SimResult.telemetry`
    as ``None`` and costs nothing on the hot path).  Both cycle engines
    and the vectorized bank simulator produce identical telemetry for
    the same unbounded-queue workload.

    Attributes
    ----------
    bank_busy:
        float64 array: cycles each bank spent servicing requests
        (``d`` per request, or the hit cost under the bank-cache
        extension).
    queue_high_water:
        int64 array: maximum number of requests simultaneously waiting
        in each bank's queue, measured just after arrivals are enqueued
        (a request that starts service the cycle it arrives counts).
    stall_breakdown:
        Cycles lost per cause: ``bank_wait`` (total request-cycles spent
        queued at banks), ``link_wait`` (queued at section links; only
        nonzero on sectioned machines) and ``issue_backpressure``
        (processor issue stalls; only nonzero under bounded queues).
    proc_stalls:
        int64 array: issue stalls accrued by each processor (all zeros
        for the unbounded model), or ``None`` when the engine does not
        track processors (the vectorized simulator's issue never stalls).
    makespan:
        Cycle at which the last request finished service (excludes the
        superstep overhead ``L``); the denominator for utilization.
    """

    bank_busy: np.ndarray
    queue_high_water: np.ndarray
    stall_breakdown: Dict[str, float]
    proc_stalls: Optional[np.ndarray] = None
    makespan: float = 0.0

    @property
    def bank_utilization(self) -> np.ndarray:
        """Fraction of the makespan each bank spent busy."""
        if self.makespan <= 0:
            return np.zeros_like(self.bank_busy)
        return self.bank_busy / self.makespan

    @property
    def max_queue_depth(self) -> int:
        """Deepest any bank queue ever got."""
        if self.queue_high_water.size == 0:
            return 0
        return int(self.queue_high_water.max())

    @property
    def total_stalled(self) -> float:
        """Sum of all stall-breakdown buckets."""
        return float(sum(self.stall_breakdown.values()))


@dataclass(frozen=True)
class SimResult:
    """Outcome of simulating one superstep of memory requests.

    Attributes
    ----------
    time:
        Completion time in cycles: the cycle at which the last request
        finishes service, plus the machine's superstep overhead ``L``.
    n:
        Number of requests simulated.
    bank_loads:
        int64 array: requests serviced by each bank.
    max_wait:
        Longest time any request spent queued (start - arrival), cycles.
    mean_wait:
        Mean queueing time over all requests, cycles.
    stalled_cycles:
        Total processor stall cycles (only nonzero for the bounded-queue
        cycle simulator; the unbounded model never stalls issue).
    machine_name:
        Name of the machine config that produced this result.
    telemetry:
        Detailed :class:`SimTelemetry` counters, present only when the
        simulation was run with ``telemetry=True``.
    """

    time: float
    n: int
    bank_loads: np.ndarray
    max_wait: float = 0.0
    mean_wait: float = 0.0
    stalled_cycles: float = 0.0
    machine_name: str = ""
    telemetry: Optional[SimTelemetry] = None

    @property
    def max_bank_load(self) -> int:
        """``h_b`` realized by the simulated pattern."""
        return int(self.bank_loads.max()) if self.bank_loads.size else 0

    @property
    def throughput(self) -> float:
        """Requests completed per cycle (0 for an empty batch)."""
        return self.n / self.time if self.time > 0 else 0.0

    @property
    def bank_utilization(self) -> float:
        """Mean fraction of banks' time spent busy, assuming each request
        occupies its bank for the machine's ``d`` cycles is not known here;
        this reports load balance instead: mean load / max load (1.0 =
        perfectly balanced, -> 0 = one bank hot)."""
        if self.bank_loads.size == 0 or self.max_bank_load == 0:
            return 1.0
        return float(self.bank_loads.mean() / self.max_bank_load)

    def slowdown_vs(self, predicted: float) -> float:
        """Measured / predicted time ratio (1.0 = model exact)."""
        if predicted <= 0:
            return float("inf") if self.time > 0 else 1.0
        return self.time / predicted
