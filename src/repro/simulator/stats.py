"""Simulation results and derived statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["SimResult"]


@dataclass(frozen=True)
class SimResult:
    """Outcome of simulating one superstep of memory requests.

    Attributes
    ----------
    time:
        Completion time in cycles: the cycle at which the last request
        finishes service, plus the machine's superstep overhead ``L``.
    n:
        Number of requests simulated.
    bank_loads:
        int64 array: requests serviced by each bank.
    max_wait:
        Longest time any request spent queued (start - arrival), cycles.
    mean_wait:
        Mean queueing time over all requests, cycles.
    stalled_cycles:
        Total processor stall cycles (only nonzero for the bounded-queue
        cycle simulator; the unbounded model never stalls issue).
    machine_name:
        Name of the machine config that produced this result.
    """

    time: float
    n: int
    bank_loads: np.ndarray
    max_wait: float = 0.0
    mean_wait: float = 0.0
    stalled_cycles: float = 0.0
    machine_name: str = ""

    @property
    def max_bank_load(self) -> int:
        """``h_b`` realized by the simulated pattern."""
        return int(self.bank_loads.max()) if self.bank_loads.size else 0

    @property
    def throughput(self) -> float:
        """Requests completed per cycle (0 for an empty batch)."""
        return self.n / self.time if self.time > 0 else 0.0

    @property
    def bank_utilization(self) -> float:
        """Mean fraction of banks' time spent busy, assuming each request
        occupies its bank for the machine's ``d`` cycles is not known here;
        this reports load balance instead: mean load / max load (1.0 =
        perfectly balanced, -> 0 = one bank hot)."""
        if self.bank_loads.size == 0 or self.max_bank_load == 0:
            return 1.0
        return float(self.bank_loads.mean() / self.max_bank_load)

    def slowdown_vs(self, predicted: float) -> float:
        """Measured / predicted time ratio (1.0 = model exact)."""
        if predicted <= 0:
            return float("inf") if self.time > 0 else 1.0
        return self.time / predicted
