"""One entry point over every scatter engine, selected by name.

The repository grew four bit-identical ways to simulate the same
superstep: the vectorized unbounded-queue engine (``banksim``) and the
cycle simulator's ``tick``, ``event`` and ``batch`` engines.  Callers
that take the engine as *data* — the prediction service
(:mod:`repro.serving`), the analysis comparisons, parametrized tests —
resolve it here instead of each re-implementing the name → function
mapping.  :data:`ENGINES` is the authoritative list of valid names.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.contention import BankMap
from ..errors import ParameterError
from .banksim import simulate_scatter
from .cycle import simulate_scatter_cycle
from .machine import MachineConfig
from .stats import SimResult

__all__ = ["ENGINES", "simulate_scatter_engine"]

#: Every engine name accepted by :func:`simulate_scatter_engine`, in the
#: order they were introduced.  All four are property-tested to produce
#: bit-identical results under unbounded queues.
ENGINES = ("banksim", "tick", "event", "batch")


def simulate_scatter_engine(
    machine: MachineConfig,
    addresses: Union[np.ndarray, "list[int]"],
    bank_map: Optional[BankMap] = None,
    assignment: str = "round_robin",
    telemetry: bool = False,
    sanitize: Optional[bool] = None,
    engine: str = "banksim",
) -> SimResult:
    """Simulate one scatter with the engine named by ``engine``.

    ``"banksim"`` routes to :func:`~repro.simulator.banksim.simulate_scatter`
    (vectorized, unbounded queues); ``"tick"``/``"event"``/``"batch"``
    route to :func:`~repro.simulator.cycle.simulate_scatter_cycle`,
    which additionally honours bounded queues
    (``machine.queue_capacity``).  The result is exactly what the named
    engine returns — this wrapper adds dispatch, never arithmetic — so
    it is bit-identical to calling the engine directly.

    ``"stream"`` consumes the addresses in bounded-memory chunks
    through :func:`~repro.simulator.stream.simulate_scatter_stream`
    and returns the final prefix result — bit-identical to the other
    engines, but subject to the streaming restrictions (no combining,
    no ``block`` assignment).  It is deliberately not in
    :data:`ENGINES`: it is a mode over the engines, not a fifth
    arithmetic.
    """
    if engine == "banksim":
        return simulate_scatter(
            machine, addresses, bank_map, assignment=assignment,
            telemetry=telemetry, sanitize=sanitize,
        )
    if engine == "stream":
        from .stream import simulate_scatter_stream
        update = None
        for update in simulate_scatter_stream(
            machine, addresses, bank_map, assignment=assignment,
            telemetry=telemetry, sanitize=sanitize,
        ):
            pass
        assert update is not None  # the generator always yields
        return update.result
    if engine in ENGINES:
        return simulate_scatter_cycle(
            machine, addresses, bank_map, assignment=assignment,
            engine=engine, telemetry=telemetry, sanitize=sanitize,
        )
    raise ParameterError(
        f"unknown engine {engine!r}; choose one of {ENGINES} "
        "(or 'stream' for the chunked bounded-memory mode)"
    )
