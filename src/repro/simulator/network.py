"""Network-section modelling (the paper's versions (a)/(b)/(c) experiment).

The Cray J90's processors reach the banks through a small number of
network *sections*; each section link has finite aggregate bandwidth.  A
pattern whose banks all live in one section is limited by that link, and
the paper observed version (c) of its worst-case experiment running up to
2.5x over the bank-only prediction for exactly this reason (a refined
model in the spirit of [ST91] is needed).

:mod:`repro.simulator.banksim` simulates the section links mechanically;
this module provides the section-aware *analytic* prediction so that the
experiment can show all three curves: bank-only prediction, section-aware
prediction and simulation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from numpy.typing import ArrayLike

from .._util import as_addresses
from ..core.contention import BankMap
from ..core.cost import per_processor_load
from ..errors import ParameterError
from .machine import MachineConfig

__all__ = [
    "section_of_banks",
    "section_loads",
    "predict_scatter_sections",
]


def section_of_banks(machine: MachineConfig, banks: ArrayLike) -> np.ndarray:
    """Map bank ids to section ids (contiguous grouping)."""
    banks = np.asarray(banks)
    bps = machine.banks_per_section
    if banks.size and (banks.min() < 0 or banks.max() >= machine.n_banks):
        raise ParameterError("bank ids outside [0, n_banks)")
    return banks // bps


def section_loads(machine: MachineConfig, banks: ArrayLike) -> np.ndarray:
    """Requests crossing each section link."""
    sections = section_of_banks(machine, banks)
    return np.bincount(sections, minlength=machine.n_sections).astype(np.int64)


def predict_scatter_sections(
    machine: MachineConfig,
    addresses: ArrayLike,
    bank_map: Optional[BankMap] = None,
) -> float:
    """Section-aware (d,x)-BSP prediction:

    ``max(L, g*h_p, d*h_b, section_gap*h_s)``

    where ``h_s`` is the maximum number of requests through one section
    link.  With ``n_sections = 1`` or ``section_gap = 0`` this degrades to
    the plain (d,x)-BSP prediction.
    """
    addr = as_addresses(addresses)
    if addr.size == 0:
        return float(machine.L)
    if bank_map is None:
        banks = addr % machine.n_banks
    else:
        banks = np.asarray(bank_map(addr, machine.n_banks))
    h_p = per_processor_load(addr.size, machine.p)
    h_b = int(np.bincount(banks, minlength=machine.n_banks).max())
    terms = [machine.L, machine.g * h_p, machine.d * h_b]
    if machine.n_sections > 1 and machine.section_gap > 0:
        h_s = int(section_loads(machine, banks).max())
        terms.append(machine.section_gap * h_s)
    return float(max(terms))
