"""Vectorized "batch" engine for the bounded-queue cycle simulator.

The scalar engines in :mod:`repro.simulator.cycle` touch every request
(event) or every cycle (tick) in Python.  This engine instead advances
the machine in *spans* and solves each span with numpy array stepping:

1. **Project.** Ignoring queue bounds, every remaining request's service
   start follows from the segmented cumulative-maximum kernel of
   :mod:`repro.simulator.banksim` (``start[i] = max(arrival[i],
   start[i-1] + d)`` per bank, solved for all banks at once).  The
   kernels accept per-bank seeds (``init_free`` floors, ``init_addr``
   row buffers) so a projection can start from a mid-run machine state.
2. **Certify.** The bounded machine evolves identically to the
   unbounded projection up to the first cycle at which an issuing
   processor finds its target queue full.  The queue depth seen by the
   issue at cycle ``q`` is ``#{arrivals <= q-1} - #{starts <= q-1}``
   over same-bank survivors (issue precedes delivery and service inside
   a cycle), which one lifted ``searchsorted`` evaluates for every
   request at once.  If no projected issue sees depth >= capacity, the
   projection *is* the bounded run — commit it wholesale.  Otherwise
   the earliest offender ``t_stall`` is exact: the first real stall.
3. **Fall back, then re-enter.** When back-pressure binds, an exact
   resumable port of the event engine steps from the current state
   until either completion or a *quiescent* cycle ``t >= t_stall``
   (all queues empty, nothing in flight, nobody blocked).  At
   quiescence every pending processor's next issue lies strictly in
   the future, so the remaining requests re-project from the seeded
   kernels and the loop repeats.  Each scalar chunk strictly passes at
   least one real stall burst, so the alternation terminates; in the
   worst case (back-pressure never quiesces) the engine degrades to a
   single scalar run — i.e. to the event engine.

Every committed span is exact and the scalar chunks reuse the event
engine's cycle body verbatim, so the engine is **bit-identical** to
``engine="event"``/``"tick"`` — property-tested, including telemetry.
Stall-free workloads (the paper's unbounded-queue machines) never leave
step 1 and run at vectorized-``banksim`` speed.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import List, Optional, Tuple

import numpy as np
from numpy.typing import ArrayLike

from ..core.contention import BankMap
from ..errors import SimulationError
from .banksim import (
    _queue_high_water,
    fifo_service_times,
    fifo_service_times_cached,
)
from .cycle import _finish, _runaway, _Setup, simulate_scatter_cycle
from .machine import MachineConfig
from .request import Assignment
from .stats import SimResult

__all__ = ["simulate_scatter_batch"]


class _Work:
    """Remaining requests, in engine issue order (issue cycle, then
    processor id — the order the scalar engines would issue them)."""

    __slots__ = ("issue", "proc", "bank", "addr", "alive")

    def __init__(
        self,
        issue: np.ndarray,
        proc: np.ndarray,
        bank: np.ndarray,
        addr: np.ndarray,
        alive: np.ndarray,
    ) -> None:
        self.issue = issue
        self.proc = proc
        self.bank = bank
        self.addr = addr
        self.alive = alive


class _BatchCounters:
    """Array-backed telemetry accumulators, duck-typed like
    :class:`repro.simulator.cycle._Counters` (consumed by ``_finish``)."""

    __slots__ = ("busy", "q_high", "proc_stalls")

    def __init__(self, s: _Setup) -> None:
        self.busy = np.zeros(s.n_banks, dtype=np.float64)
        self.q_high = np.zeros(s.n_banks, dtype=np.int64)
        self.proc_stalls = np.zeros(s.p, dtype=np.int64)


class _Acc:
    """Result aggregates folded across vectorized spans and scalar
    chunks (sums for loads/waits/busy/stalls, maxes for the rest)."""

    __slots__ = ("bank_served", "total_wait", "max_wait", "stalled",
                 "last_finish", "completed", "tele")

    def __init__(self, s: _Setup) -> None:
        self.bank_served = np.zeros(s.n_banks, dtype=np.int64)
        self.total_wait = 0
        self.max_wait = 0
        self.stalled = 0
        self.last_finish = 0
        self.completed = 0
        self.tele = (
            _BatchCounters(s) if (s.telemetry or s.sanitize) else None
        )


def _first_stall(
    capacity: int,
    n_banks: int,
    issue: np.ndarray,
    arrival: np.ndarray,
    start: np.ndarray,
    banks: np.ndarray,
) -> Optional[int]:
    """Earliest projected issue cycle whose target queue is full, or
    ``None`` if the projection is stall-free (and therefore exact).

    The depth seen by an issue at cycle ``q`` counts same-bank requests
    delivered by ``q-1`` minus those started by ``q-1``: inside a cycle
    processors issue before arrivals are delivered and banks serve, so
    only strictly earlier deliveries/starts occupy the queue.
    """
    n = arrival.size
    order = np.lexsort((arrival, banks))
    s_bank = banks[order]
    s_arr = arrival[order]
    # FIFO start order equals arrival order within a bank, so the same
    # permutation leaves starts nondecreasing per segment.
    s_start = start[order]

    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    np.not_equal(s_bank[1:], s_bank[:-1], out=seg_start[1:])
    seg_id = np.cumsum(seg_start) - 1
    first_of_seg = np.flatnonzero(seg_start)
    seg_of_bank = np.full(n_banks, -1, dtype=np.int64)
    seg_of_bank[s_bank[first_of_seg]] = np.arange(
        first_of_seg.size, dtype=np.int64
    )

    # One global searchsorted answers every per-bank rank query: lift
    # each segment above the previous one's value range (start >= the
    # times queried, so one span covers both sorted arrays).
    span = float(s_start.max()) + 2.0
    lift = seg_id * span
    qseg = seg_of_bank[banks]
    query = (issue - 1.0) + qseg * span
    base = first_of_seg[qseg]
    delivered = np.searchsorted(s_arr + lift, query, side="right") - base
    started = np.searchsorted(s_start + lift, query, side="right") - base
    stalls = delivered - started >= capacity
    if not stalls.any():
        return None
    return int(issue[stalls].min())


def _project(
    s: _Setup,
    work: _Work,
    floors: Optional[np.ndarray],
    last_addr: Optional[np.ndarray],
) -> Tuple[Optional[int], Optional[tuple]]:
    """Solve the unbounded recurrence for the remaining requests.

    Returns ``(t_stall, payload)``: ``t_stall is None`` means the
    stall-free certificate holds (vacuously, for unbounded machines)
    and ``payload = (arrival, start, cost, banks, absorbed_issue)`` is
    exact for the bounded machine; otherwise ``t_stall`` is the first
    real stall cycle and ``payload`` is ``None``.
    """
    alive = work.alive
    if alive.all():
        a_issue, a_bank, a_addr = work.issue, work.bank, work.addr
        absorbed = np.zeros(0, dtype=np.float64)
    else:
        a_issue = work.issue[alive]
        a_bank = work.bank[alive]
        a_addr = work.addr[alive]
        absorbed = work.issue[~alive]
    if a_issue.size == 0:
        empty = np.zeros(0, dtype=np.float64)
        return None, (empty, empty, None, np.zeros(0, dtype=np.int64),
                      absorbed)
    arrival = a_issue + s.latency
    if s.hit_delay is not None:
        start, cost = fifo_service_times_cached(
            arrival, a_bank, a_addr, float(s.d), float(s.hit_delay),
            init_free=floors, init_addr=last_addr,
        )
    else:
        start = fifo_service_times(arrival, a_bank, float(s.d),
                                   init_free=floors)
        cost = None
    if s.capacity is not None:
        t_stall = _first_stall(s.capacity, s.n_banks, a_issue, arrival,
                               start, a_bank)
        if t_stall is not None:
            return t_stall, None
    return None, (arrival, start, cost, a_bank, absorbed)


def _commit(s: _Setup, acc: _Acc, payload: tuple) -> None:
    """Fold a certified projection into the accumulators (raising the
    same runaway diagnostic the scalar engines would)."""
    arrival, start, cost, a_bank, absorbed = payload

    # Runaway parity: the scalar engines raise iff they would process a
    # cycle beyond max_cycles, and their last processed cycle is the
    # last service start (survivors) or issue (absorbed requests).
    last_event = int(start.max()) if start.size else 0
    if absorbed.size:
        last_event = max(last_event, int(absorbed.max()))
    if last_event > s.max_cycles:
        done = acc.completed
        if start.size:
            done += int((start <= s.max_cycles).sum())
        if absorbed.size:
            done += int((absorbed <= s.max_cycles).sum())
        raise _runaway(s, done, acc.stalled)

    if start.size:
        waits = start - arrival
        acc.total_wait += int(waits.sum())
        w = int(waits.max())
        if w > acc.max_wait:
            acc.max_wait = w
        finish = start + (cost if cost is not None else float(s.d))
        f = int(finish.max())
        if f > acc.last_finish:
            acc.last_finish = f
        acc.bank_served += np.bincount(a_bank, minlength=s.n_banks)
        acc.completed += int(start.size)
        if acc.tele is not None:
            per_cost = (
                cost if cost is not None
                else np.full(start.size, float(s.d))
            )
            acc.tele.busy += np.bincount(
                a_bank, weights=per_cost, minlength=s.n_banks
            )
            np.maximum(
                acc.tele.q_high,
                _queue_high_water(arrival, start, a_bank, s.n_banks),
                out=acc.tele.q_high,
            )
    if absorbed.size:
        # Combined-away requests complete when their representative's
        # response fans back: issue + latency.
        f = int(absorbed.max()) + s.latency
        if f > acc.last_finish:
            acc.last_finish = f
        acc.completed += int(absorbed.size)


class _Scalar:
    """Resumable port of :func:`repro.simulator.cycle._run_event`.

    The cycle body is kept verbatim (that is what makes the fallback
    bit-identical); the differences are that counters accumulate into
    the shared :class:`_Acc` and that the loop can *pause* at a
    quiescent cycle and later resume, with the machine state held on
    the instance between chunks.
    """

    def __init__(self, s: _Setup) -> None:
        # The batch path skipped _prepare's deque construction; pay the
        # O(n) Python loop only here, on the back-pressure fallback.
        proc_reqs: List[deque] = [deque() for _ in range(s.p)]
        banks, addrs = s.banks, s.batch.addresses
        procs, survives = s.batch.proc, s.survives
        for i in range(s.n):
            proc_reqs[procs[i]].append(
                (int(banks[i]), int(addrs[i]), bool(survives[i]))
            )
        self.proc_reqs = proc_reqs
        self.queues: List[deque] = [deque() for _ in range(s.n_banks)]
        self.bank_free_at = [0] * s.n_banks
        self.bank_last_addr: List[Optional[int]] = [None] * s.n_banks
        self.next_issue = [0] * s.p
        self.in_flight: list = []
        self.issue_heap: list = [
            (0, q) for q in range(s.p) if proc_reqs[q]
        ]
        self.bank_heap: list = []
        self.blocked: List[int] = []
        self.seq = 0
        self.queued = 0  # requests sitting in bank queues (O(1) quiescence)
        self.t = 0

    def run(self, s: _Setup, acc: _Acc, t_stall: int) -> bool:
        """Step until completion (``True``) or until the machine goes
        quiescent at a cycle ``>= t_stall`` (``False``), i.e. safely
        past the span where the projection's certificate failed."""
        heappush, heappop = heapq.heappush, heapq.heappop
        n = s.n
        capacity = s.capacity
        proc_reqs = self.proc_reqs
        queues = self.queues
        bank_free_at = self.bank_free_at
        bank_last_addr = self.bank_last_addr
        next_issue = self.next_issue
        in_flight = self.in_flight
        issue_heap = self.issue_heap
        bank_heap = self.bank_heap
        blocked = self.blocked
        tele = acc.tele
        t = self.t
        while True:
            if t > s.max_cycles:
                raise _runaway(s, acc.completed, acc.stalled)

            # 1. Processors issue, in processor-id order.
            ready: List[int] = []
            while issue_heap and issue_heap[0][0] <= t:
                ready.append(heappop(issue_heap)[1])
            if blocked:
                ready.extend(blocked)
                blocked = []
            ready.sort()
            for q in ready:
                bank, req_addr, alive = proc_reqs[q][0]
                if alive and capacity is not None \
                        and len(queues[bank]) >= capacity:
                    acc.stalled += 1
                    if tele is not None:
                        tele.proc_stalls[q] += 1
                    blocked.append(q)
                    continue  # retry next cycle; next_issue unchanged
                proc_reqs[q].popleft()
                if alive:
                    heappush(
                        in_flight, (t + s.latency, self.seq, bank, req_addr)
                    )
                else:
                    if t + s.latency > acc.last_finish:
                        acc.last_finish = t + s.latency
                    acc.completed += 1
                self.seq += 1
                next_issue[q] = t + s.g
                if proc_reqs[q]:
                    heappush(issue_heap, (t + s.g, q))

            # 2. Deliver arrivals due this cycle.
            while in_flight and in_flight[0][0] <= t:
                arr, _, bank, req_addr = heappop(in_flight)
                queues[bank].append((arr, req_addr))
                self.queued += 1
                if tele is not None and len(queues[bank]) > tele.q_high[bank]:
                    tele.q_high[bank] = len(queues[bank])
                if len(queues[bank]) == 1:
                    heappush(bank_heap, (max(bank_free_at[bank], t), bank))

            # 3. Banks start service.
            served_any = False
            while bank_heap and bank_heap[0][0] <= t:
                _, bank = heappop(bank_heap)
                if not queues[bank]:
                    continue  # stale entry; rescheduled on next arrival
                if bank_free_at[bank] > t:
                    heappush(bank_heap, (bank_free_at[bank], bank))
                    continue
                arr, req_addr = queues[bank].popleft()
                self.queued -= 1
                wait = t - arr
                acc.total_wait += wait
                if wait > acc.max_wait:
                    acc.max_wait = wait
                cost = s.d
                if s.hit_delay is not None and bank_last_addr[bank] == req_addr:
                    cost = s.hit_delay
                bank_last_addr[bank] = req_addr
                bank_free_at[bank] = t + cost
                acc.bank_served[bank] += 1
                if tele is not None:
                    tele.busy[bank] += cost
                if t + cost > acc.last_finish:
                    acc.last_finish = t + cost
                acc.completed += 1
                served_any = True
                if queues[bank]:
                    heappush(bank_heap, (t + cost, bank))

            if acc.completed >= n:
                self.t = t
                self.blocked = blocked
                return True
            if self.queued == 0 and not in_flight and not blocked \
                    and t >= t_stall:
                # Quiescent past the binding span: every pending
                # processor's next issue is strictly in the future, so
                # the remaining requests can re-project vectorized.
                self.t = t
                self.blocked = blocked
                return False

            # Jump to the next cycle where anything can change.
            t_next = s.max_cycles + 1
            if issue_heap and issue_heap[0][0] < t_next:
                t_next = issue_heap[0][0]
            if in_flight and in_flight[0][0] < t_next:
                t_next = in_flight[0][0]
            if bank_heap and bank_heap[0][0] < t_next:
                t_next = bank_heap[0][0]
            if blocked and served_any and t + 1 < t_next:
                t_next = t + 1  # freed queue space: blocked issues may go
            if t_next <= t:
                raise SimulationError(
                    "batch engine's scalar stepper scheduled a "
                    f"non-advancing event (t={t}, t_next={t_next}); "
                    "this is a bug"
                )
            if blocked:
                acc.stalled += len(blocked) * (t_next - t - 1)
                if tele is not None:
                    for q in blocked:
                        tele.proc_stalls[q] += t_next - t - 1
            t = t_next

    def export(
        self, s: _Setup
    ) -> Tuple[_Work, np.ndarray, Optional[np.ndarray]]:
        """Remaining requests as projection inputs.

        Processor ``q``'s ``j``-th pending request issues at
        ``next_issue[q] + j*g`` (exact: at quiescence nobody is blocked,
        so the issue pipeline runs at full rate until the next stall —
        which the next certificate will find if it exists).  Banks carry
        their free-at floors and row-buffer seeds across the seam.
        """
        issue_l: List[int] = []
        proc_l: List[int] = []
        bank_l: List[int] = []
        addr_l: List[int] = []
        alive_l: List[bool] = []
        g = s.g
        for q in range(s.p):
            dq = self.proc_reqs[q]
            if not dq:
                continue
            t0 = self.next_issue[q]
            for j, (bank, addr, alive) in enumerate(dq):
                issue_l.append(t0 + j * g)
                proc_l.append(q)
                bank_l.append(bank)
                addr_l.append(addr)
                alive_l.append(alive)
        issue = np.asarray(issue_l, dtype=np.float64)
        proc = np.asarray(proc_l, dtype=np.int64)
        order = np.lexsort((proc, issue))
        work = _Work(
            issue=issue[order],
            proc=proc[order],
            bank=np.asarray(bank_l, dtype=np.int64)[order],
            addr=np.asarray(addr_l, dtype=np.int64)[order],
            alive=np.asarray(alive_l, dtype=bool)[order],
        )
        floors = np.asarray(self.bank_free_at, dtype=np.float64)
        last_addr = None
        if s.hit_delay is not None:
            last_addr = np.asarray(
                [-1 if a is None else a for a in self.bank_last_addr],
                dtype=np.int64,
            )
        return work, floors, last_addr


def run_batch(machine: MachineConfig, s: _Setup) -> SimResult:
    """Engine body invoked by :func:`~repro.simulator.cycle.
    simulate_scatter_cycle` with ``engine="batch"``."""
    acc = _Acc(s)
    assert s.batch is not None and s.banks is not None \
        and s.survives is not None
    work = _Work(
        issue=s.batch.issue,
        proc=s.batch.proc,
        bank=s.banks,
        addr=s.batch.addresses,
        alive=s.survives,
    )
    floors: Optional[np.ndarray] = None
    last_addr: Optional[np.ndarray] = None
    scalar: Optional[_Scalar] = None
    while True:
        t_stall, payload = _project(s, work, floors, last_addr)
        if t_stall is None:
            assert payload is not None
            _commit(s, acc, payload)
            break
        if scalar is None:
            scalar = _Scalar(s)
        if scalar.run(s, acc, t_stall):
            break
        work, floors, last_addr = scalar.export(s)
    return _finish(machine, s, "batch", acc.bank_served, acc.total_wait,
                   acc.max_wait, acc.stalled, acc.last_finish, acc.tele)


def simulate_scatter_batch(
    machine: MachineConfig,
    addresses: ArrayLike,
    bank_map: Optional[BankMap] = None,
    assignment: Assignment = "round_robin",
    max_cycles: Optional[int] = None,
    telemetry: bool = False,
    sanitize: Optional[bool] = None,
) -> SimResult:
    """Cycle-accurate simulation of one scatter via the vectorized
    batch engine.

    Sugar for :func:`~repro.simulator.cycle.simulate_scatter_cycle`
    with ``engine="batch"``: honors ``machine.queue_capacity`` (issue
    back-pressure, stall accounting) exactly like the event/tick
    engines — the results are bit-identical by construction and by
    property test — while stall-free spans run vectorized at
    :mod:`~repro.simulator.banksim` speed.  See the module docstring
    for the span/certificate algorithm.
    """
    return simulate_scatter_cycle(
        machine, addresses, bank_map, assignment,
        max_cycles=max_cycles, engine="batch",
        telemetry=telemetry, sanitize=sanitize,
    )
