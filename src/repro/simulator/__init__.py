"""Cycle-level memory-bank simulator: the substitute for the paper's Cray
C90/J90 testbed (see DESIGN.md, Substitutions)."""

from .banksim import (
    fifo_service_times,
    fifo_service_times_cached,
    simulate_batch,
    simulate_gather,
    simulate_scatter,
    simulate_scatter_blocked,
)
from .butterfly import omega_ports, simulate_scatter_butterfly
from .cycle import simulate_scatter_cycle
from .cycle_batch import simulate_scatter_batch
from .cycle_grid import simulate_scatter_grid
from .dispatch import ENGINES, simulate_scatter_engine
from .machine import (
    CRAY_C90,
    CRAY_J90,
    CRAY_T90,
    NEC_SX4,
    TABLE1_MACHINES,
    TERA_MTA,
    MachineConfig,
    toy_machine,
)
from .network import predict_scatter_sections, section_loads, section_of_banks
from .request import RequestBatch
from .sanitize import (
    SanitizerError,
    check_superstep,
    sanitize_enabled,
    set_sanitize,
)
from .stats import SimResult, SimTelemetry
from .stream import (
    DEFAULT_CHUNK,
    StreamSimulator,
    StreamUpdate,
    simulate_scatter_stream,
    stream_checkpoint,
)
from .trace import ProgramSimResult, simulate_program

__all__ = [
    "MachineConfig",
    "toy_machine",
    "CRAY_C90",
    "CRAY_J90",
    "CRAY_T90",
    "TERA_MTA",
    "NEC_SX4",
    "TABLE1_MACHINES",
    "RequestBatch",
    "SimResult",
    "SimTelemetry",
    "fifo_service_times",
    "fifo_service_times_cached",
    "simulate_batch",
    "simulate_scatter",
    "simulate_gather",
    "simulate_scatter_blocked",
    "simulate_scatter_cycle",
    "simulate_scatter_batch",
    "simulate_scatter_grid",
    "DEFAULT_CHUNK",
    "StreamSimulator",
    "StreamUpdate",
    "simulate_scatter_stream",
    "stream_checkpoint",
    "ENGINES",
    "simulate_scatter_engine",
    "SanitizerError",
    "sanitize_enabled",
    "set_sanitize",
    "check_superstep",
    "omega_ports",
    "simulate_scatter_butterfly",
    "section_of_banks",
    "section_loads",
    "predict_scatter_sections",
    "ProgramSimResult",
    "simulate_program",
]
