"""Opt-in runtime sanitizer: conservation invariants checked every
superstep, in every engine.

The paper's prediction ``T = max(L, g*h_p, d*h_b)`` is a *lower bound*
argument: a superstep cannot finish before its slowest processor has
issued (``g*h_p``), its hottest bank has drained (``d*h_b``), or the
barrier overhead has elapsed (``L``).  The simulators are only evidence
for the model while they respect the same conservation laws, so with
``sanitize=True`` every engine (vectorized banksim, cycle tick, cycle
event) re-checks after each simulated superstep:

1. **Request conservation** — every issued request is serviced exactly
   once: ``sum(bank_loads)`` equals the number of requests that survive
   to the memory side (all of them, or one per distinct location under
   a combining network).
2. **Bank work accounting** — per-bank busy cycles never exceed
   ``d * load_b`` (each request occupies its bank for at most ``d``
   cycles) and hence never exceed ``d * h_b``; with the bank-cache
   extension they are also at least ``hit_delay * load_b``.
3. **(d,x)-BSP lower bound** — the simulated completion time is at
   least ``max(L, g*h_p, d*h_b)`` (checked in the exact simulator form
   that also accounts for ``latency`` and the cache extension's reduced
   per-hit cost; the paper's plain form is asserted whenever it applies
   verbatim: no combining, no bank cache, ``d >= g``).
4. **Stall accounting** — the telemetry counters are conserved: issue
   back-pressure equals ``SimResult.stalled_cycles``, total bank wait
   equals ``mean_wait`` times the engine's averaging population, and a
   bank has a nonzero queue high-water mark iff it serviced a request.

The sanitizer only *reads* — results with ``sanitize=True`` are
bit-identical to ``sanitize=False`` (property-tested).  A violation
raises :class:`SanitizerError` naming the invariant and the numbers.

Enabling
--------
Per call: ``simulate_scatter(machine, addr, sanitize=True)``.  Process
wide: :func:`set_sanitize` or the ``REPRO_SANITIZE=1`` environment
variable (inherited by the experiment runner's pool workers, so a whole
``--all`` sweep can run sanitized).
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from ..errors import SimulationError
from .machine import MachineConfig
from .stats import SimResult

__all__ = [
    "SanitizerError",
    "sanitize_enabled",
    "set_sanitize",
    "check_superstep",
]

#: Absolute slack for comparisons between exactly-representable cycle
#: counts (all quantities here are integer-valued float64s well inside
#: 2**53, so this only guards against float noise in derived means).
_TOL = 1e-6


class SanitizerError(SimulationError):
    """A simulator engine violated a conservation invariant."""


_default: Optional[bool] = None


def set_sanitize(enabled: Optional[bool]) -> None:
    """Set the process-wide sanitizer default.

    ``True``/``False`` forces it for every simulate call that does not
    pass an explicit ``sanitize=``; ``None`` restores the environment
    fallback (``REPRO_SANITIZE``).
    """
    global _default
    _default = enabled if enabled is None else bool(enabled)


def sanitize_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the effective sanitize flag for one simulate call."""
    if override is not None:
        return bool(override)
    if _default is not None:
        return _default
    return os.environ.get("REPRO_SANITIZE", "0").lower() not in (
        "", "0", "false", "off",
    )


def _fail(engine: str, invariant: str, detail: str) -> None:
    raise SanitizerError(
        f"sanitize[{engine}]: invariant '{invariant}' violated — {detail}"
    )


def check_superstep(
    machine: MachineConfig,
    result: SimResult,
    *,
    engine: str,
    h_p: int,
    n_survivors: int,
    bank_busy: Optional[np.ndarray] = None,
    queue_high_water: Optional[np.ndarray] = None,
) -> None:
    """Check one superstep's :class:`SimResult` against the conservation
    invariants.

    Parameters
    ----------
    engine:
        ``"banksim"``, ``"tick"`` or ``"event"`` — names the engine in
        errors and selects the engine's ``mean_wait`` population
        (banksim averages over the requests surviving combining, the
        cycle engines over all issued requests).
    h_p:
        Maximum requests issued by any one processor this superstep.
    n_survivors:
        Requests that survive to the memory side (equals ``result.n``
        except under a combining network).
    bank_busy / queue_high_water:
        Per-bank counters.  The engines collect these whenever the
        sanitizer is on (even with telemetry off — the counters are
        read-only observers, so results stay bit-identical).
    """
    loads = result.bank_loads
    n_banks = machine.n_banks
    d = float(machine.d)
    c_min = float(
        machine.cache_hit_delay if machine.cache_hit_delay is not None
        else machine.d
    )

    # 1. Request conservation: serviced exactly once.
    if loads.shape != (n_banks,):
        _fail(engine, "conservation",
              f"bank_loads shape {loads.shape} != ({n_banks},)")
    if loads.size and int(loads.min()) < 0:
        _fail(engine, "conservation", "negative bank load")
    served = int(loads.sum())
    if served != int(n_survivors):
        _fail(
            engine, "conservation",
            f"{served} requests serviced but {n_survivors} reached the "
            f"memory side (of {result.n} issued) — requests were lost "
            "or double-serviced",
        )

    h_b = int(loads.max()) if loads.size else 0

    # 2. Bank work accounting: busy_b in [c_min, d] cycles per request.
    if bank_busy is not None:
        busy = np.asarray(bank_busy, dtype=np.float64)
        over = busy - d * loads
        if over.size and float(over.max()) > _TOL:
            b = int(np.argmax(over))
            _fail(
                engine, "bank-busy",
                f"bank {b} busy {busy[b]:.0f} cycles > d*load = "
                f"{d * loads[b]:.0f} (d={d:g}, load={int(loads[b])}) — "
                f"and the global bound d*h_b is {d * h_b:.0f}",
            )
        under = c_min * loads - busy
        if under.size and float(under.max()) > _TOL:
            b = int(np.argmax(under))
            _fail(
                engine, "bank-busy",
                f"bank {b} busy {busy[b]:.0f} cycles < minimum "
                f"{c_min * loads[b]:.0f} for {int(loads[b])} requests at "
                f">= {c_min:g} cycles each",
            )

    # 3. (d,x)-BSP lower bound on the superstep time.
    L = float(machine.L)
    g = float(machine.g)
    lat = float(machine.latency)
    time = float(result.time)
    if time < L - _TOL:
        _fail(engine, "lower-bound",
              f"time {time:g} < superstep overhead L={L:g}")
    if result.n > 0:
        issue_bound = L + (h_p - 1) * g + lat
        if time < issue_bound - _TOL:
            _fail(
                engine, "lower-bound",
                f"time {time:g} < issue-side bound L + (h_p-1)*g + "
                f"latency = {issue_bound:g} (h_p={h_p})",
            )
    if h_b > 0:
        bank_bound = L + lat + h_b * c_min
        if time < bank_bound - _TOL:
            _fail(
                engine, "lower-bound",
                f"time {time:g} < bank-side bound L + latency + "
                f"h_b*{c_min:g} = {bank_bound:g} (h_b={h_b})",
            )
    if not machine.combining and machine.cache_hit_delay is None \
            and d >= g:
        paper = max(L, g * h_p, d * h_b)
        if time < paper - _TOL:
            _fail(
                engine, "lower-bound",
                f"time {time:g} < paper bound max(L, g*h_p, d*h_b) = "
                f"{paper:g} (L={L:g}, g*h_p={g * h_p:g}, "
                f"d*h_b={d * h_b:g})",
            )

    # 4. Stall accounting conservation.
    tel = result.telemetry
    if tel is not None:
        back = tel.stall_breakdown.get("issue_backpressure", 0.0)
        if abs(back - result.stalled_cycles) > _TOL:
            _fail(
                engine, "stall-accounting",
                f"issue_backpressure {back:g} != stalled_cycles "
                f"{result.stalled_cycles:g}",
            )
        wait_pop = n_survivors if engine == "banksim" else result.n
        bank_wait = tel.stall_breakdown.get("bank_wait", 0.0)
        expected_wait = result.mean_wait * wait_pop
        slack = _TOL * max(1.0, abs(bank_wait))
        if abs(bank_wait - expected_wait) > slack:
            _fail(
                engine, "stall-accounting",
                f"bank_wait {bank_wait:g} != mean_wait * {wait_pop} = "
                f"{expected_wait:g}",
            )
        total = tel.total_stalled
        parts = sum(tel.stall_breakdown.values())
        if abs(total - parts) > _TOL:
            _fail(engine, "stall-accounting",
                  f"total_stalled {total:g} != sum of breakdown {parts:g}")
        if abs((tel.makespan + L) - time) > _TOL:
            _fail(
                engine, "stall-accounting",
                f"telemetry makespan {tel.makespan:g} + L {L:g} != "
                f"superstep time {time:g}",
            )
    if queue_high_water is not None:
        qhw = np.asarray(queue_high_water)
        mismatch = (qhw >= 1) != (loads >= 1)
        if mismatch.size and bool(mismatch.any()):
            b = int(np.argmax(mismatch))
            _fail(
                engine, "stall-accounting",
                f"bank {b}: queue high-water {int(qhw[b])} inconsistent "
                f"with {int(loads[b])} requests serviced (a serviced "
                "request must have been queued; an unserviced bank "
                "cannot have queued one)",
            )
