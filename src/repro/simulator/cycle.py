"""Cycle-accurate simulator with bounded queues and back-pressure.

Three engines compute the same machine, cycle for cycle:

1. **event** (default) — a discrete-event engine that jumps between the
   cycles where something can actually happen (an issue, an arrival, a
   bank becoming free) instead of ticking through idle cycles.  Work is
   O(events log events) — independent of how many cycles the machine
   idles and of ``n_banks`` — which makes 64K-request sweeps cheap.
2. **tick** — the original explicit per-cycle loop, advancing one cycle
   at a time and scanning every bank each cycle.  It is kept as the
   obviously-correct reference: the other engines are property-tested to
   produce bit-identical :class:`~repro.simulator.stats.SimResult`\\ s
   against it across every mode (unbounded queues, bounded queues with
   stall accounting, combining, and the bank-cache extension).
3. **batch** (:mod:`repro.simulator.cycle_batch`) — numpy array stepping:
   it solves whole stall-free spans with the segmented-cummax kernel of
   :mod:`repro.simulator.banksim` and falls back to exact event-style
   scalar stepping only across spans where queue-full back-pressure
   actually binds (a sound stall certificate decides which, so the
   results stay bit-identical, not approximately close).

Both serve two purposes in the repo:

* **Oracle** — with unbounded queues they must produce *exactly* the same
  completion time as the vectorized simulator (property-tested), which
  validates the segmented-cummax vectorization.
* **Back-pressure ablation** — with a finite per-bank queue capacity a
  processor stalls when its target queue is full, which the (d,x)-BSP
  deliberately does not model.  Comparing the two quantifies how much the
  unbounded-queue abstraction gives away (DESIGN.md ablation 1).

All machine times (``g``, ``d``, ``latency``, ``L``) must be non-negative
integers here; the simulated machine advances in whole cycles.

Per-cycle sub-step order (identical in both engines): processors issue
(in processor-id order), in-flight requests arrive at queues, banks start
service.  With ``latency = 0`` a request can therefore be issued and
start service in the same cycle iff its bank is free — matching the
vectorized model's ``start = max(arrival, prev_start + d)``.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from numpy.typing import ArrayLike

from ..core.contention import BankMap
from ..errors import ParameterError, SimulationError
from .machine import MachineConfig, require_machine
from .request import Assignment, RequestBatch
from .sanitize import check_superstep, sanitize_enabled
from .stats import SimResult, SimTelemetry

__all__ = ["simulate_scatter_cycle"]


def _require_int(name: str, value: float) -> int:
    if value != int(value):
        raise ParameterError(
            f"cycle simulator requires integer {name}, got {value!r}"
        )
    return int(value)


@dataclass
class _Setup:
    """Validated integer machine parameters plus the per-processor
    request streams, shared by all engines."""

    p: int
    n_banks: int
    g: int
    d: int
    latency: int
    L: int
    hit_delay: Optional[int]
    capacity: Optional[int]
    n: int
    proc_reqs: List[deque]  # per processor: (bank, addr, alive) in order
    max_cycles: int
    telemetry: bool = False
    sanitize: bool = False
    h_p: int = 0  # max requests issued by one processor
    n_survivors: int = 0  # requests surviving combining to the banks
    # Vectorized request arrays for the batch engine (which skips the
    # per-request deque construction above; see _prepare(build_queues=)).
    batch: Optional[RequestBatch] = None
    banks: Optional[np.ndarray] = None
    survives: Optional[np.ndarray] = None


class _Counters:
    """Per-run telemetry accumulators shared by both engines.

    Instantiated only when telemetry is requested; every engine touch
    point is guarded so the counters cost nothing when off (the perf
    gate in ``tools/perf_guard.py`` holds the hot path to that)."""

    __slots__ = ("busy", "q_high", "proc_stalls")

    def __init__(self, s: "_Setup") -> None:
        self.busy = [0.0] * s.n_banks
        self.q_high = [0] * s.n_banks
        self.proc_stalls = [0] * s.p


def _make_telemetry(
    c: _Counters, total_wait: int, stalled: int, last_finish: int
) -> SimTelemetry:
    return SimTelemetry(
        bank_busy=np.asarray(c.busy, dtype=np.float64),
        queue_high_water=np.asarray(c.q_high, dtype=np.int64),
        stall_breakdown={
            "bank_wait": float(total_wait),
            "link_wait": 0.0,
            "issue_backpressure": float(stalled),
        },
        proc_stalls=np.asarray(c.proc_stalls, dtype=np.int64),
        makespan=float(last_finish),
    )


def _finish(
    machine: MachineConfig,
    s: _Setup,
    engine: str,
    bank_served: List[int],
    total_wait: int,
    max_wait: int,
    stalled: int,
    last_finish: int,
    tele: Optional[_Counters],
) -> SimResult:
    """Build the engine's :class:`SimResult` and, when sanitizing, check
    the conservation invariants.  Shared verbatim by all engines so the
    bit-identity property covers the epilogue by construction."""
    result = SimResult(
        time=float(last_finish + s.L),
        n=s.n,
        bank_loads=np.asarray(bank_served, dtype=np.int64),
        max_wait=float(max_wait),
        mean_wait=float(total_wait / s.n),
        stalled_cycles=float(stalled),
        machine_name=machine.name,
        telemetry=(
            _make_telemetry(tele, total_wait, stalled, last_finish)
            if (tele is not None and s.telemetry) else None
        ),
    )
    if s.sanitize and tele is not None:
        check_superstep(
            machine, result,
            engine=engine,
            h_p=s.h_p,
            n_survivors=s.n_survivors,
            bank_busy=np.asarray(tele.busy, dtype=np.float64),
            queue_high_water=np.asarray(tele.q_high, dtype=np.int64),
        )
    return result


def _prepare(
    machine: MachineConfig,
    addresses: ArrayLike,
    bank_map: Optional[BankMap],
    assignment: Assignment,
    max_cycles: Optional[int],
    telemetry: bool = False,
    sanitize: bool = False,
    build_queues: bool = True,
) -> _Setup:
    if machine.n_sections > 1 and machine.section_gap > 0:
        raise ParameterError(
            "the cycle simulator does not model network sections; use "
            "simulate_scatter (or disable section_gap) for sectioned machines"
        )
    g = _require_int("g", machine.g)
    d = _require_int("d", machine.d)
    latency = _require_int("latency", machine.latency)
    L = _require_int("L", machine.L)
    hit_delay = (
        _require_int("cache_hit_delay", machine.cache_hit_delay)
        if machine.cache_hit_delay is not None
        else None
    )
    if d < 1 or g < 1 or (hit_delay is not None and hit_delay < 1):
        raise ParameterError(
            "cycle simulator requires integer g, d, cache_hit_delay >= 1"
        )

    batch = RequestBatch.from_addresses(addresses, machine, assignment)
    n = batch.n
    n_banks = machine.n_banks
    if n == 0:
        return _Setup(
            p=machine.p, n_banks=n_banks, g=g, d=d, latency=latency, L=L,
            hit_delay=hit_delay, capacity=machine.queue_capacity, n=0,
            proc_reqs=[], max_cycles=0, telemetry=telemetry,
            sanitize=sanitize,
        )
    if bank_map is None:
        banks = (batch.addresses % n_banks).astype(np.int64)
    else:
        banks = np.asarray(bank_map(batch.addresses, n_banks)).astype(np.int64)

    # Combining (when enabled): only the first request per distinct
    # location (in request order) reaches the memory side; the rest are
    # absorbed in the network and complete at issue + latency.
    survives = np.ones(n, dtype=bool)
    if machine.combining:
        _, keep = np.unique(batch.addresses, return_index=True)
        survives[:] = False
        survives[keep] = True

    # Per-processor request streams, in issue order.  The batch engine
    # works on the arrays directly (build_queues=False): this O(n)
    # Python loop would otherwise dominate its runtime, so it is paid
    # only by the scalar engines (and lazily by the batch engine's
    # back-pressure fallback).
    proc_reqs: List[deque] = []
    if build_queues:
        proc_reqs = [deque() for _ in range(machine.p)]
        for i in range(n):
            proc_reqs[batch.proc[i]].append(
                (int(banks[i]), int(batch.addresses[i]), bool(survives[i]))
            )

    capacity = machine.queue_capacity  # None = unbounded
    if max_cycles is None:
        # Serialization ceiling: every request behind one bank (n*d) and
        # behind one issue pipe (n*g), plus transit.  Bounded queues add
        # dead time on top: whenever the hot queue drains below capacity
        # the next retry still needs an issue attempt plus the network
        # transit to land, so charge one (latency + g + 2)-cycle bubble
        # per `capacity` requests served.
        bound = n * d + n * g + latency + 1000
        if capacity is not None:
            bound += (n // capacity + 1) * (latency + g + 2)
        max_cycles = int(bound)

    return _Setup(
        p=machine.p, n_banks=n_banks, g=g, d=d, latency=latency, L=L,
        hit_delay=hit_delay, capacity=capacity, n=n, proc_reqs=proc_reqs,
        max_cycles=max_cycles, telemetry=telemetry, sanitize=sanitize,
        h_p=int(batch.per_processor_counts(machine.p).max()),
        n_survivors=int(survives.sum()),
        batch=batch, banks=banks, survives=survives,
    )


def _runaway(s: _Setup, completed: int, stalled: int) -> SimulationError:
    return SimulationError(
        f"cycle simulator exceeded {s.max_cycles} cycles with "
        f"{s.n - completed} requests outstanding and {stalled} issue "
        f"stalls accrued (deadlock or runaway; queue_capacity="
        f"{s.capacity})"
    )


def _run_tick(machine: MachineConfig, s: _Setup) -> SimResult:
    """Reference engine: advance one cycle at a time, scanning all banks
    every cycle.  Slow but obviously correct."""
    n = s.n
    capacity = s.capacity
    queues: List[deque] = [deque() for _ in range(s.n_banks)]
    bank_free_at = [0] * s.n_banks  # earliest cycle bank may start a request
    bank_last_addr = [None] * s.n_banks  # row buffer (cache extension)
    bank_served = [0] * s.n_banks
    next_issue = [0] * s.p
    in_flight: list = []  # heap of (arrival_cycle, seq, bank, addr)
    seq = 0
    completed = 0
    last_finish = 0
    total_wait = 0
    max_wait = 0
    stalled = 0
    tele = _Counters(s) if (s.telemetry or s.sanitize) else None

    t = 0
    while completed < n:
        if t > s.max_cycles:
            raise _runaway(s, completed, stalled)
        # 1. Processors issue, in processor-id order.
        for q in range(s.p):
            if s.proc_reqs[q] and next_issue[q] <= t:
                bank, req_addr, alive = s.proc_reqs[q][0]
                if alive and capacity is not None \
                        and len(queues[bank]) >= capacity:
                    stalled += 1
                    if tele is not None:
                        tele.proc_stalls[q] += 1
                    continue  # retry next cycle; next_issue unchanged
                s.proc_reqs[q].popleft()
                if alive:
                    heapq.heappush(
                        in_flight, (t + s.latency, seq, bank, req_addr)
                    )
                else:
                    # Absorbed by the combining network: done on arrival.
                    last_finish = max(last_finish, t + s.latency)
                    completed += 1
                seq += 1
                next_issue[q] = t + s.g
        # 2. Deliver arrivals due this cycle (FIFO by arrival, then issue seq).
        while in_flight and in_flight[0][0] <= t:
            arr, _, bank, req_addr = heapq.heappop(in_flight)
            queues[bank].append((arr, req_addr))
            if tele is not None and len(queues[bank]) > tele.q_high[bank]:
                tele.q_high[bank] = len(queues[bank])
        # 3. Banks start service.
        for bank in range(s.n_banks):
            if queues[bank] and bank_free_at[bank] <= t:
                arr, req_addr = queues[bank].popleft()
                wait = t - arr
                total_wait += wait
                max_wait = max(max_wait, wait)
                cost = s.d
                if s.hit_delay is not None and bank_last_addr[bank] == req_addr:
                    cost = s.hit_delay
                bank_last_addr[bank] = req_addr
                bank_free_at[bank] = t + cost
                bank_served[bank] += 1
                if tele is not None:
                    tele.busy[bank] += cost
                finish = t + cost
                last_finish = max(last_finish, finish)
                completed += 1
        t += 1

    return _finish(machine, s, "tick", bank_served, total_wait, max_wait,
                   stalled, last_finish, tele)


def _run_event(machine: MachineConfig, s: _Setup) -> SimResult:
    """Event-driven engine: process only the cycles where state can
    change, jumping over idle spans.

    Event sources and their heaps:

    * ``issue_heap`` — ``(next_issue, q)`` for every processor with
      pending requests that is not currently back-pressure blocked;
    * ``in_flight`` — ``(arrival, seq, bank, addr)`` network transits;
    * ``bank_heap`` — ``(ready_cycle, bank)`` service opportunities,
      pushed lazily whenever a bank is touched (arrival or service) and
      validated on pop, so stale duplicates are harmless.

    Blocked processors schedule no events of their own: their queue can
    only gain space at a service event, so they retry at ``t + 1`` after
    any cycle that served a request, and the stalls they would have
    accrued over a jumped span are added in closed form
    (``len(blocked) * span``).  Every processed cycle runs the exact
    per-cycle body of the tick engine, which is what makes the two
    engines bit-identical rather than merely close.
    """
    n = s.n
    capacity = s.capacity
    queues: List[deque] = [deque() for _ in range(s.n_banks)]
    bank_free_at = [0] * s.n_banks
    bank_last_addr = [None] * s.n_banks
    bank_served = [0] * s.n_banks
    next_issue = [0] * s.p
    in_flight: list = []
    issue_heap: list = [(0, q) for q in range(s.p) if s.proc_reqs[q]]
    bank_heap: list = []  # (ready_cycle, bank), lazily validated
    blocked: List[int] = []  # processors stalled on a full queue
    seq = 0
    completed = 0
    last_finish = 0
    total_wait = 0
    max_wait = 0
    stalled = 0
    tele = _Counters(s) if (s.telemetry or s.sanitize) else None

    heappush, heappop = heapq.heappush, heapq.heappop
    t = 0
    while completed < n:
        if t > s.max_cycles:
            raise _runaway(s, completed, stalled)

        # 1. Processors issue, in processor-id order: everyone whose
        # issue event is due plus everyone blocked (their retry is due
        # every cycle by construction).
        ready: List[int] = []
        while issue_heap and issue_heap[0][0] <= t:
            ready.append(heappop(issue_heap)[1])
        if blocked:
            ready.extend(blocked)
            blocked = []
        ready.sort()
        for q in ready:
            bank, req_addr, alive = s.proc_reqs[q][0]
            if alive and capacity is not None \
                    and len(queues[bank]) >= capacity:
                stalled += 1
                if tele is not None:
                    tele.proc_stalls[q] += 1
                blocked.append(q)
                continue  # retry next cycle; next_issue unchanged
            s.proc_reqs[q].popleft()
            if alive:
                heappush(in_flight, (t + s.latency, seq, bank, req_addr))
            else:
                last_finish = max(last_finish, t + s.latency)
                completed += 1
            seq += 1
            next_issue[q] = t + s.g
            if s.proc_reqs[q]:
                heappush(issue_heap, (t + s.g, q))

        # 2. Deliver arrivals due this cycle.  Schedule the bank only on
        # an empty -> nonempty transition: a nonempty queue always has
        # exactly one live entry in bank_heap (kept alive by the serve
        # loop below), so further arrivals must not add duplicates —
        # they would each be re-pushed at every serve event, degrading a
        # hot bank to O(n^2) heap traffic.
        while in_flight and in_flight[0][0] <= t:
            arr, _, bank, req_addr = heappop(in_flight)
            queues[bank].append((arr, req_addr))
            if tele is not None and len(queues[bank]) > tele.q_high[bank]:
                tele.q_high[bank] = len(queues[bank])
            if len(queues[bank]) == 1:
                heappush(bank_heap, (max(bank_free_at[bank], t), bank))

        # 3. Banks start service (order across banks is immaterial: the
        # aggregates are sums and maxes and each bank owns its queue).
        served_any = False
        while bank_heap and bank_heap[0][0] <= t:
            _, bank = heappop(bank_heap)
            if not queues[bank]:
                continue  # stale entry; rescheduled on next arrival
            if bank_free_at[bank] > t:
                heappush(bank_heap, (bank_free_at[bank], bank))
                continue
            arr, req_addr = queues[bank].popleft()
            wait = t - arr
            total_wait += wait
            if wait > max_wait:
                max_wait = wait
            cost = s.d
            if s.hit_delay is not None and bank_last_addr[bank] == req_addr:
                cost = s.hit_delay
            bank_last_addr[bank] = req_addr
            bank_free_at[bank] = t + cost
            bank_served[bank] += 1
            if tele is not None:
                tele.busy[bank] += cost
            if t + cost > last_finish:
                last_finish = t + cost
            completed += 1
            served_any = True
            if queues[bank]:
                heappush(bank_heap, (t + cost, bank))

        if completed >= n:
            break

        # Jump to the next cycle where anything can change.
        t_next = s.max_cycles + 1
        if issue_heap and issue_heap[0][0] < t_next:
            t_next = issue_heap[0][0]
        if in_flight and in_flight[0][0] < t_next:
            t_next = in_flight[0][0]
        if bank_heap and bank_heap[0][0] < t_next:
            t_next = bank_heap[0][0]
        if blocked and served_any and t + 1 < t_next:
            t_next = t + 1  # freed queue space: blocked issues may go
        if t_next <= t:
            raise SimulationError(
                "event engine scheduled a non-advancing event "
                f"(t={t}, t_next={t_next}); this is a bug"
            )
        if blocked:
            # Stalls the tick engine would have counted on the skipped
            # cycles (state cannot change between events, so every
            # blocked processor stays blocked across the whole span).
            stalled += len(blocked) * (t_next - t - 1)
            if tele is not None:
                for q in blocked:
                    tele.proc_stalls[q] += t_next - t - 1
        t = t_next

    return _finish(machine, s, "event", bank_served, total_wait, max_wait,
                   stalled, last_finish, tele)


def _run_batch(machine: MachineConfig, s: _Setup) -> SimResult:
    """Dispatch to the vectorized batch engine (imported lazily: the
    batch module imports this one for the shared setup/epilogue)."""
    from .cycle_batch import run_batch
    return run_batch(machine, s)


_ENGINES = {"event": _run_event, "tick": _run_tick, "batch": _run_batch}


def simulate_scatter_cycle(
    machine: MachineConfig,
    addresses: ArrayLike,
    bank_map: Optional[BankMap] = None,
    assignment: Assignment = "round_robin",
    max_cycles: Optional[int] = None,
    engine: str = "event",
    telemetry: bool = False,
    sanitize: Optional[bool] = None,
) -> SimResult:
    """Cycle-accurate simulation of one scatter on ``machine``.

    Honors ``machine.queue_capacity``: when a target bank's queue holds
    that many waiting requests, the issuing processor stalls (retries next
    cycle) and the stall is accounted in ``SimResult.stalled_cycles``.
    ``queue_capacity=None`` reproduces the unbounded model exactly.

    Parameters
    ----------
    engine:
        ``"event"`` (default) uses the event-driven engine that skips
        idle cycles; ``"tick"`` uses the retained per-cycle reference
        loop; ``"batch"`` uses the vectorized array-stepping engine of
        :mod:`repro.simulator.cycle_batch`.  All three produce
        bit-identical results (property-tested).
    max_cycles:
        Runaway guard; defaults to a serialization bound that scales
        with the queue capacity (a bounded hot queue legitimately adds
        issue-retry dead time on top of pure service serialization).
    telemetry:
        Collect :class:`SimTelemetry` counters (per-bank busy cycles,
        queue high-water marks, per-processor stall counts).  Off by
        default; all engines produce identical telemetry.
    sanitize:
        Assert the per-superstep conservation invariants of
        :mod:`repro.simulator.sanitize` on the result (``None`` defers
        to the process-wide default / ``REPRO_SANITIZE``).  The checks
        only read engine state, so results are bit-identical either way.
    """
    require_machine(machine, "simulate_scatter_cycle")
    try:
        run = _ENGINES[engine]
    except KeyError:
        raise ParameterError(
            f"unknown cycle engine {engine!r}; expected one of "
            f"{sorted(_ENGINES)}"
        ) from None
    s = _prepare(machine, addresses, bank_map, assignment, max_cycles,
                 telemetry, sanitize=sanitize_enabled(sanitize),
                 build_queues=(engine != "batch"))
    if s.n == 0:
        result = SimResult(
            time=float(s.L), n=0,
            bank_loads=np.zeros(s.n_banks, dtype=np.int64),
            machine_name=machine.name,
            telemetry=(
                _make_telemetry(_Counters(s), 0, 0, 0)
                if telemetry else None
            ),
        )
        if s.sanitize:
            check_superstep(
                machine, result, engine=engine, h_p=0, n_survivors=0,
            )
        return result
    return run(machine, s)
