"""Reference cycle-accurate simulator with bounded queues and back-pressure.

This is the slow, obviously-correct twin of :mod:`repro.simulator.banksim`:
an explicit per-cycle event loop in plain Python.  It serves two purposes:

1. **Oracle** — with unbounded queues it must produce *exactly* the same
   completion time as the vectorized simulator (property-tested), which
   validates the segmented-cummax vectorization.
2. **Back-pressure ablation** — with a finite per-bank queue capacity a
   processor stalls when its target queue is full, which the (d,x)-BSP
   deliberately does not model.  Comparing the two quantifies how much the
   unbounded-queue abstraction gives away (DESIGN.md ablation 1).

All machine times (``g``, ``d``, ``latency``, ``L``) must be non-negative
integers here; the simulator advances one cycle at a time.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional

import numpy as np

from ..core.contention import BankMap
from ..errors import ParameterError, SimulationError
from .machine import MachineConfig
from .request import Assignment, RequestBatch
from .stats import SimResult

__all__ = ["simulate_scatter_cycle"]


def _require_int(name: str, value: float) -> int:
    if value != int(value):
        raise ParameterError(
            f"cycle simulator requires integer {name}, got {value!r}"
        )
    return int(value)


def simulate_scatter_cycle(
    machine: MachineConfig,
    addresses,
    bank_map: Optional[BankMap] = None,
    assignment: Assignment = "round_robin",
    max_cycles: Optional[int] = None,
) -> SimResult:
    """Cycle-accurate simulation of one scatter on ``machine``.

    Honors ``machine.queue_capacity``: when a target bank's queue holds
    that many waiting requests, the issuing processor stalls (retries next
    cycle) and the stall is accounted in ``SimResult.stalled_cycles``.
    ``queue_capacity=None`` reproduces the unbounded model exactly.

    Notes
    -----
    The per-cycle order of sub-steps is: processors issue (in processor-id
    order), in-flight requests arrive at queues, banks start service.  With
    ``latency = 0`` a request can therefore be issued and start service in
    the same cycle iff its bank is free — matching the vectorized model's
    ``start = max(arrival, prev_start + d)``.
    """
    if machine.n_sections > 1 and machine.section_gap > 0:
        raise ParameterError(
            "the cycle simulator does not model network sections; use "
            "simulate_scatter (or disable section_gap) for sectioned machines"
        )
    g = _require_int("g", machine.g)
    d = _require_int("d", machine.d)
    latency = _require_int("latency", machine.latency)
    L = _require_int("L", machine.L)
    hit_delay = (
        _require_int("cache_hit_delay", machine.cache_hit_delay)
        if machine.cache_hit_delay is not None
        else None
    )
    if d < 1 or g < 1 or (hit_delay is not None and hit_delay < 1):
        raise ParameterError(
            "cycle simulator requires integer g, d, cache_hit_delay >= 1"
        )

    batch = RequestBatch.from_addresses(addresses, machine, assignment)
    n = batch.n
    n_banks = machine.n_banks
    if n == 0:
        return SimResult(
            time=float(L), n=0,
            bank_loads=np.zeros(n_banks, dtype=np.int64),
            machine_name=machine.name,
        )
    if bank_map is None:
        banks = (batch.addresses % n_banks).astype(np.int64)
    else:
        banks = np.asarray(bank_map(batch.addresses, n_banks)).astype(np.int64)

    # Combining (when enabled): only the first request per distinct
    # location (in request order) reaches the memory side; the rest are
    # absorbed in the network and complete at issue + latency.
    survives = np.ones(n, dtype=bool)
    if machine.combining:
        _, keep = np.unique(batch.addresses, return_index=True)
        survives[:] = False
        survives[keep] = True

    # Per-processor request streams, in issue order.
    proc_reqs: list[deque] = [deque() for _ in range(machine.p)]
    for i in range(n):
        proc_reqs[batch.proc[i]].append(
            (int(banks[i]), int(batch.addresses[i]), bool(survives[i]))
        )

    capacity = machine.queue_capacity  # None = unbounded
    queues: list[deque] = [deque() for _ in range(n_banks)]
    bank_free_at = [0] * n_banks  # earliest cycle bank may start a request
    bank_last_addr = [None] * n_banks  # row buffer (cache extension)
    bank_served = [0] * n_banks
    next_issue = [0] * machine.p
    in_flight: list = []  # heap of (arrival_cycle, seq, bank, addr)
    seq = 0
    completed = 0
    last_finish = 0
    total_wait = 0
    max_wait = 0
    stalled = 0

    if max_cycles is None:
        max_cycles = int(n * d + n * g + latency + 1000)

    t = 0
    while completed < n:
        if t > max_cycles:
            raise SimulationError(
                f"cycle simulator exceeded {max_cycles} cycles with "
                f"{n - completed} requests outstanding (deadlock or runaway)"
            )
        # 1. Processors issue, in processor-id order.
        for q in range(machine.p):
            if proc_reqs[q] and next_issue[q] <= t:
                bank, req_addr, alive = proc_reqs[q][0]
                if alive and capacity is not None \
                        and len(queues[bank]) >= capacity:
                    stalled += 1
                    continue  # retry next cycle; next_issue unchanged
                proc_reqs[q].popleft()
                if alive:
                    heapq.heappush(
                        in_flight, (t + latency, seq, bank, req_addr)
                    )
                else:
                    # Absorbed by the combining network: done on arrival.
                    last_finish = max(last_finish, t + latency)
                    completed += 1
                seq += 1
                next_issue[q] = t + g
        # 2. Deliver arrivals due this cycle (FIFO by arrival, then issue seq).
        while in_flight and in_flight[0][0] <= t:
            arr, _, bank, req_addr = heapq.heappop(in_flight)
            queues[bank].append((arr, req_addr))
        # 3. Banks start service.
        for bank in range(n_banks):
            if queues[bank] and bank_free_at[bank] <= t:
                arr, req_addr = queues[bank].popleft()
                wait = t - arr
                total_wait += wait
                max_wait = max(max_wait, wait)
                cost = d
                if hit_delay is not None and bank_last_addr[bank] == req_addr:
                    cost = hit_delay
                bank_last_addr[bank] = req_addr
                bank_free_at[bank] = t + cost
                bank_served[bank] += 1
                finish = t + cost
                last_finish = max(last_finish, finish)
                completed += 1
        t += 1

    return SimResult(
        time=float(last_finish + L),
        n=n,
        bank_loads=np.asarray(bank_served, dtype=np.int64),
        max_wait=float(max_wait),
        mean_wait=float(total_wait / n),
        stalled_cycles=float(stalled),
        machine_name=machine.name,
    )
