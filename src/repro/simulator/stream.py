"""Streaming simulation of unbounded address traces.

Every other entry point in :mod:`repro.simulator` needs the whole
address vector in memory at once.  This module simulates the same
machine over a *stream* of address blocks under a hard memory bound,
bit-identical on every prefix to the one-shot engines — the
bulk-synchronous *pseudo-streaming* recipe of arXiv 1608.07200 applied
to the (d,x)-BSP bank model.

How a chunk resumes where the last one stopped
----------------------------------------------

Round-robin dealing gives request ``i`` to processor ``i % p`` with
scheduled issue cycle ``(i // p) * g``, so arrivals are nondecreasing in
global order and each bank serves its requests in exactly that order.
All the state one chunk hands the next is therefore tiny and per-bank:

* ``init_free`` — the cycle each bank becomes free (the FIFO floor the
  segmented-cummax kernel seeds its recurrence with), and
* ``init_addr`` — each bank's row-buffer address under the bank-cache
  extension (``-1`` = cold).

Unbounded machines project every chunk straight through the batch
kernels of :mod:`repro.simulator.banksim` carrying those seeds: the
stall certificate of the batch engine holds *vacuously* when
``queue_capacity is None``, so the projection is the exact bounded run.
Bounded machines are the certificate-miss case by construction — a
contiguous stream essentially never settles before the horizon — so
their chunks run through :class:`_StreamWorld`, a pausable port of the
event engine that stops at the *horizon* ``(n_fed // p) * g`` (the
scheduled issue cycle of the first request not yet fed; any cycle
before it can only involve fed requests, so processing it early is
safe and exact).  Prefix results for a paused world come from draining
a clone, never the live world.

Memory bound
------------

With telemetry off on an unbounded machine the simulator holds O(chunk
+ n_banks) memory regardless of trace length: the per-bank seeds, the
rolling accumulators, and one chunk of addresses.  Telemetry adds the
pending-event set for the queue high-water sweep and bounded queues add
the event world's outstanding requests — both grow only with genuine
backlog (never beyond what the one-shot engine would hold).

Restrictions
------------

Streaming refuses what cannot be chunked exactly: combining (duplicate
groups would split across chunk boundaries), ``block`` assignment (it
needs the total trace length up front), sectioned machines and
non-integer machine times (both inherited from the cycle simulator).
"""

from __future__ import annotations

import hashlib
import heapq
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

import numpy as np
from numpy.typing import ArrayLike

from .._util import as_addresses
from ..core.contention import BankMap
from ..errors import ParameterError, PatternError, SimulationError
from .banksim import (
    _queue_high_water,
    fifo_service_times,
    fifo_service_times_cached,
)
from .cycle import _require_int
from .machine import MachineConfig, require_machine
from .request import Assignment
from .sanitize import check_superstep, sanitize_enabled
from .stats import SimResult, SimTelemetry

__all__ = [
    "DEFAULT_CHUNK",
    "StreamUpdate",
    "StreamSimulator",
    "simulate_scatter_stream",
    "stream_checkpoint",
]

#: Default number of addresses consumed per internal chunk (the memory
#: budget knob: peak working-set scales with this, not the trace).
DEFAULT_CHUNK = 65536

#: The rolling prefix digest hashes fixed-size address blocks so it is
#: invariant to how the trace was chunked (8192 int64 addresses).
_DIGEST_BLOCK_BYTES = 8192 * 8

_DIGEST_SEED = hashlib.sha256(b"repro-stream-prefix-v1").digest()


@dataclass(frozen=True)
class StreamUpdate:
    """Incremental result yielded after each fed block.

    Attributes
    ----------
    chunk_index:
        0-based index of the block that produced this update.
    chunk_n:
        Addresses in that block (0 for an empty feed).
    n:
        Total addresses consumed so far.
    result:
        Full :class:`~repro.simulator.stats.SimResult` for the prefix —
        bit-identical to running a one-shot engine on the first ``n``
        addresses.
    delta_time:
        Rolling completion-time increase contributed by this block.
    delta_wait:
        Bank-wait cycles added by this block (exact integer, not the
        rounded ``mean_wait * n`` difference).
    conserved:
        ``True``: the per-prefix conservation invariant (every consumed
        request served by exactly one bank) was checked and held.  A
        violation raises instead of yielding.
    """

    chunk_index: int
    chunk_n: int
    n: int
    result: SimResult
    delta_time: float
    delta_wait: int
    conserved: bool


class _StreamAcc:
    """Rolling result aggregates, shared by both chunk paths.

    The array-backed telemetry counters are allocated only when
    telemetry or sanitize asked for them, mirroring the one-shot
    engines' opt-in accounting."""

    __slots__ = ("bank_served", "total_wait", "max_wait", "stalled",
                 "last_finish", "completed", "busy", "q_high",
                 "proc_stalls")

    def __init__(self, n_banks: int, p: int, counters: bool) -> None:
        self.bank_served = np.zeros(n_banks, dtype=np.int64)
        self.total_wait = 0
        self.max_wait = 0
        self.stalled = 0
        self.last_finish = 0
        self.completed = 0
        self.busy: Optional[np.ndarray] = (
            np.zeros(n_banks, dtype=np.float64) if counters else None
        )
        self.q_high: Optional[np.ndarray] = (
            np.zeros(n_banks, dtype=np.int64) if counters else None
        )
        self.proc_stalls: Optional[np.ndarray] = (
            np.zeros(p, dtype=np.int64) if counters else None
        )

    def clone(self) -> "_StreamAcc":
        c = _StreamAcc.__new__(_StreamAcc)
        c.bank_served = self.bank_served.copy()
        c.total_wait = self.total_wait
        c.max_wait = self.max_wait
        c.stalled = self.stalled
        c.last_finish = self.last_finish
        c.completed = self.completed
        c.busy = None if self.busy is None else self.busy.copy()
        c.q_high = None if self.q_high is None else self.q_high.copy()
        c.proc_stalls = (
            None if self.proc_stalls is None else self.proc_stalls.copy()
        )
        return c


class _StreamWorld:
    """Pausable port of the event engine for bounded-queue streams.

    The cycle body is kept verbatim from
    :class:`repro.simulator.cycle_batch._Scalar` (that is what makes
    the stream bit-identical); the differences are that requests are
    *fed* incrementally and that :meth:`run` pauses at an exclusive
    horizon ``t_limit`` — the scheduled issue cycle of the first
    request not yet fed — instead of always draining.  ``self.t`` is
    always the next unprocessed cycle.
    """

    __slots__ = ("p", "n_banks", "g", "d", "latency", "hit_delay",
                 "capacity", "proc_reqs", "queues", "bank_free_at",
                 "bank_last_addr", "next_issue", "in_flight",
                 "issue_heap", "bank_heap", "blocked", "seq", "queued",
                 "t")

    def __init__(self, p: int, n_banks: int, g: int, d: int, latency: int,
                 hit_delay: Optional[int], capacity: Optional[int]) -> None:
        self.p = p
        self.n_banks = n_banks
        self.g = g
        self.d = d
        self.latency = latency
        self.hit_delay = hit_delay
        self.capacity = capacity
        self.proc_reqs: List[Deque[Tuple[int, int]]] = [
            deque() for _ in range(p)
        ]
        self.queues: List[Deque[Tuple[int, int]]] = [
            deque() for _ in range(n_banks)
        ]
        self.bank_free_at: List[int] = [0] * n_banks
        self.bank_last_addr: List[Optional[int]] = [None] * n_banks
        self.next_issue: List[int] = [0] * p
        self.in_flight: List[Tuple[int, int, int, int]] = []
        self.issue_heap: List[Tuple[int, int]] = []
        self.bank_heap: List[Tuple[int, int]] = []
        self.blocked: List[int] = []
        self.seq = 0
        self.queued = 0
        self.t = 0

    def feed(self, proc: np.ndarray, banks: np.ndarray,
             addresses: np.ndarray) -> None:
        """Append one chunk of requests to the per-processor streams.

        An issue event is (re)scheduled only on an empty -> nonempty
        deque transition; ``next_issue[q]`` is then never in the past
        (it is >= the new head's scheduled issue, which is >= every
        horizon this world has paused at)."""
        heappush = heapq.heappush
        proc_reqs = self.proc_reqs
        for i in range(proc.size):
            q = int(proc[i])
            dq = proc_reqs[q]
            if not dq:
                heappush(self.issue_heap, (self.next_issue[q], q))
            dq.append((int(banks[i]), int(addresses[i])))

    def run(self, acc: _StreamAcc, n_target: int, t_limit: Optional[int],
            max_cycles: int) -> bool:
        """Step until ``n_target`` requests completed (``True``) or the
        horizon ``t_limit`` is reached (``False``; ``None`` = drain).

        Jumps are clamped to the horizon so the closed-form blocked
        stall accrual telescopes exactly across pauses."""
        heappush, heappop = heapq.heappush, heapq.heappop
        capacity = self.capacity
        proc_reqs = self.proc_reqs
        queues = self.queues
        bank_free_at = self.bank_free_at
        bank_last_addr = self.bank_last_addr
        next_issue = self.next_issue
        in_flight = self.in_flight
        issue_heap = self.issue_heap
        bank_heap = self.bank_heap
        blocked = self.blocked
        busy = acc.busy
        q_high = acc.q_high
        proc_stalls = acc.proc_stalls
        t = self.t
        while True:
            if acc.completed >= n_target:
                self.t = t
                self.blocked = blocked
                return True
            if t_limit is not None and t >= t_limit:
                self.t = t
                self.blocked = blocked
                return False
            if t > max_cycles:
                raise SimulationError(
                    f"cycle simulator exceeded {max_cycles} cycles with "
                    f"{n_target - acc.completed} requests outstanding "
                    f"and {acc.stalled} issue stalls accrued (deadlock "
                    f"or runaway; queue_capacity={capacity})"
                )

            # 1. Processors issue, in processor-id order.
            ready: List[int] = []
            while issue_heap and issue_heap[0][0] <= t:
                ready.append(heappop(issue_heap)[1])
            if blocked:
                ready.extend(blocked)
                blocked = []
            ready.sort()
            for q in ready:
                bank, req_addr = proc_reqs[q][0]
                if capacity is not None and len(queues[bank]) >= capacity:
                    acc.stalled += 1
                    if proc_stalls is not None:
                        proc_stalls[q] += 1
                    blocked.append(q)
                    continue  # retry next cycle; next_issue unchanged
                proc_reqs[q].popleft()
                heappush(
                    in_flight, (t + self.latency, self.seq, bank, req_addr)
                )
                self.seq += 1
                next_issue[q] = t + self.g
                if proc_reqs[q]:
                    heappush(issue_heap, (t + self.g, q))

            # 2. Deliver arrivals due this cycle.
            while in_flight and in_flight[0][0] <= t:
                arr, _, bank, req_addr = heappop(in_flight)
                queues[bank].append((arr, req_addr))
                self.queued += 1
                if q_high is not None and len(queues[bank]) > q_high[bank]:
                    q_high[bank] = len(queues[bank])
                if len(queues[bank]) == 1:
                    heappush(bank_heap, (max(bank_free_at[bank], t), bank))

            # 3. Banks start service.
            served_any = False
            while bank_heap and bank_heap[0][0] <= t:
                _, bank = heappop(bank_heap)
                if not queues[bank]:
                    continue  # stale entry; rescheduled on next arrival
                if bank_free_at[bank] > t:
                    heappush(bank_heap, (bank_free_at[bank], bank))
                    continue
                arr, req_addr = queues[bank].popleft()
                self.queued -= 1
                wait = t - arr
                acc.total_wait += wait
                if wait > acc.max_wait:
                    acc.max_wait = wait
                cost = self.d
                if self.hit_delay is not None \
                        and bank_last_addr[bank] == req_addr:
                    cost = self.hit_delay
                bank_last_addr[bank] = req_addr
                bank_free_at[bank] = t + cost
                acc.bank_served[bank] += 1
                if busy is not None:
                    busy[bank] += cost
                if t + cost > acc.last_finish:
                    acc.last_finish = t + cost
                acc.completed += 1
                served_any = True
                if queues[bank]:
                    heappush(bank_heap, (t + cost, bank))

            if acc.completed >= n_target:
                # The serving cycle t mutated nothing beyond the served
                # requests; t + 1 is the next unprocessed cycle, and
                # every future feed schedules at >= the horizon > t.
                self.t = t + 1
                self.blocked = blocked
                return True

            # Jump to the next cycle where anything can change.
            t_next = max_cycles + 1
            if issue_heap and issue_heap[0][0] < t_next:
                t_next = issue_heap[0][0]
            if in_flight and in_flight[0][0] < t_next:
                t_next = in_flight[0][0]
            if bank_heap and bank_heap[0][0] < t_next:
                t_next = bank_heap[0][0]
            if blocked and served_any and t + 1 < t_next:
                t_next = t + 1  # freed queue space: blocked issues may go
            if t_limit is not None and t_next > t_limit:
                t_next = t_limit
            if t_next <= t:
                raise SimulationError(
                    "stream event world scheduled a non-advancing event "
                    f"(t={t}, t_next={t_next}); this is a bug"
                )
            if blocked:
                acc.stalled += len(blocked) * (t_next - t - 1)
                if proc_stalls is not None:
                    for q in blocked:
                        proc_stalls[q] += t_next - t - 1
            t = t_next

    def clone(self) -> "_StreamWorld":
        w = _StreamWorld.__new__(_StreamWorld)
        w.p = self.p
        w.n_banks = self.n_banks
        w.g = self.g
        w.d = self.d
        w.latency = self.latency
        w.hit_delay = self.hit_delay
        w.capacity = self.capacity
        w.proc_reqs = [deque(dq) for dq in self.proc_reqs]
        w.queues = [deque(dq) for dq in self.queues]
        w.bank_free_at = list(self.bank_free_at)
        w.bank_last_addr = list(self.bank_last_addr)
        w.next_issue = list(self.next_issue)
        w.in_flight = list(self.in_flight)
        w.issue_heap = list(self.issue_heap)
        w.bank_heap = list(self.bank_heap)
        w.blocked = list(self.blocked)
        w.seq = self.seq
        w.queued = self.queued
        w.t = self.t
        return w

    def state(self) -> Dict[str, Any]:
        """Machine state as plain picklable structures."""
        return {
            "proc_reqs": [list(dq) for dq in self.proc_reqs],
            "queues": [list(dq) for dq in self.queues],
            "bank_free_at": list(self.bank_free_at),
            "bank_last_addr": list(self.bank_last_addr),
            "next_issue": list(self.next_issue),
            "in_flight": list(self.in_flight),
            "issue_heap": list(self.issue_heap),
            "bank_heap": list(self.bank_heap),
            "blocked": list(self.blocked),
            "seq": self.seq,
            "queued": self.queued,
            "t": self.t,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state` output (heaps keep their heap order)."""
        self.proc_reqs = [
            deque(tuple(r) for r in dq) for dq in state["proc_reqs"]
        ]
        self.queues = [
            deque(tuple(r) for r in dq) for dq in state["queues"]
        ]
        self.bank_free_at = list(state["bank_free_at"])
        self.bank_last_addr = list(state["bank_last_addr"])
        self.next_issue = list(state["next_issue"])
        self.in_flight = [tuple(e) for e in state["in_flight"]]
        self.issue_heap = [tuple(e) for e in state["issue_heap"]]
        self.bank_heap = [tuple(e) for e in state["bank_heap"]]
        self.blocked = list(state["blocked"])
        self.seq = int(state["seq"])
        self.queued = int(state["queued"])
        self.t = int(state["t"])


class StreamSimulator:
    """Incrementally simulate one scatter over a stream of address blocks.

    Feed address blocks of any size with :meth:`feed`; each feed returns
    a :class:`StreamUpdate` whose ``result`` is bit-identical to running
    a one-shot engine over every address consumed so far.  Blocks larger
    than ``max_chunk`` are consumed in ``max_chunk`` pieces, so peak
    working-set memory is bounded by ``max_chunk`` regardless of block
    or trace size.

    Parameters
    ----------
    machine:
        Machine to simulate.  Sections, combining and non-integer times
        are refused (see the module docstring).
    bank_map:
        Optional address -> bank mapping.  Must be stateless and
        elementwise (it is applied per chunk); ``None`` uses the default
        ``address % n_banks`` interleave.
    assignment:
        Only ``"round_robin"`` streams: ``"block"`` assignment needs the
        total trace length up front.
    telemetry:
        Collect :class:`~repro.simulator.stats.SimTelemetry` counters on
        every prefix result.
    sanitize:
        Check the conservation invariants of
        :mod:`repro.simulator.sanitize` on every prefix result (``None``
        defers to the process default / ``REPRO_SANITIZE``).
    max_chunk:
        Memory budget, in addresses, for one internal chunk.
    """

    def __init__(
        self,
        machine: MachineConfig,
        bank_map: Optional[BankMap] = None,
        assignment: Assignment = "round_robin",
        telemetry: bool = False,
        sanitize: Optional[bool] = None,
        max_chunk: int = DEFAULT_CHUNK,
    ) -> None:
        require_machine(machine, "StreamSimulator")
        if machine.n_sections > 1 and machine.section_gap > 0:
            raise ParameterError(
                "the streaming simulator does not model network sections; "
                "use simulate_scatter (or disable section_gap) for "
                "sectioned machines"
            )
        if machine.combining:
            raise ParameterError(
                "the streaming simulator does not support combining: "
                "duplicate groups would split across chunk boundaries"
            )
        if assignment != "round_robin":
            raise ParameterError(
                "streaming requires assignment='round_robin': block "
                "assignment needs the total trace length up front"
            )
        if max_chunk < 1:
            raise ParameterError(
                f"max_chunk must be >= 1, got {max_chunk!r}"
            )
        g = _require_int("g", machine.g)
        d = _require_int("d", machine.d)
        latency = _require_int("latency", machine.latency)
        L = _require_int("L", machine.L)
        hit_delay = (
            _require_int("cache_hit_delay", machine.cache_hit_delay)
            if machine.cache_hit_delay is not None
            else None
        )
        if d < 1 or g < 1 or (hit_delay is not None and hit_delay < 1):
            raise ParameterError(
                "cycle simulator requires integer g, d, cache_hit_delay >= 1"
            )
        self._machine = machine
        self._bank_map = bank_map
        self._p = machine.p
        self._n_banks = machine.n_banks
        self._g = g
        self._d = d
        self._latency = latency
        self._L = L
        self._hit_delay = hit_delay
        self._capacity = machine.queue_capacity
        self._telemetry = bool(telemetry)
        self._sanitize = sanitize_enabled(sanitize)
        self._max_chunk = int(max_chunk)
        counters = self._telemetry or self._sanitize
        self._acc = _StreamAcc(self._n_banks, self._p, counters)
        self._n = 0
        self._chunk_index = 0
        self._last_time = float(L)
        self._last_wait = 0
        # Per-bank carry state for the vectorized projection path.
        self._floors = np.zeros(self._n_banks, dtype=np.float64)
        self._last_addr: Optional[np.ndarray] = (
            np.full(self._n_banks, -1, dtype=np.int64)
            if hit_delay is not None else None
        )
        # Pending events for the chunked queue-high-water sweep: every
        # request whose service start lies at or past the last horizon
        # may still overlap a future chunk's arrivals.
        self._pend_arrival = np.zeros(0, dtype=np.float64)
        self._pend_start = np.zeros(0, dtype=np.float64)
        self._pend_bank = np.zeros(0, dtype=np.int64)
        # Bounded queues miss the stall certificate by construction (a
        # contiguous stream does not settle before the horizon), so
        # they run in the exact pausable event world instead.
        self._world: Optional[_StreamWorld] = (
            _StreamWorld(self._p, self._n_banks, g, d, latency, hit_delay,
                         self._capacity)
            if self._capacity is not None else None
        )
        self._digest_chain = _DIGEST_SEED
        self._digest_tail = b""

    @property
    def n(self) -> int:
        """Total addresses consumed so far."""
        return self._n

    @property
    def machine(self) -> MachineConfig:
        """The machine being simulated."""
        return self._machine

    @property
    def prefix_digest(self) -> str:
        """Chunking-invariant SHA-256 over every address consumed.

        Two simulators that consumed the same address sequence report
        the same digest no matter how the sequence was split into
        feeds; used as the checkpoint identity."""
        return hashlib.sha256(
            self._digest_chain + self._digest_tail
        ).hexdigest()

    def feed(self, addresses: ArrayLike) -> StreamUpdate:
        """Consume one block of addresses and return the prefix update.

        The block is consumed in ``max_chunk`` pieces; the returned
        :class:`StreamUpdate` carries the full prefix result plus the
        deltas this block contributed.  An empty block is legal and
        returns the unchanged prefix."""
        addr = as_addresses(addresses)
        chunk_n = int(addr.size)
        lo = 0
        while lo < chunk_n:
            self._consume(addr[lo:lo + self._max_chunk])
            lo += self._max_chunk
        self._absorb_digest(addr)
        result, total_wait = self._prefix()
        if result.n != self._n or int(result.bank_loads.sum()) != self._n:
            raise SimulationError(
                f"stream conservation violated: consumed {self._n} "
                f"requests but the prefix result accounts for "
                f"{int(result.bank_loads.sum())} (n={result.n})"
            )
        update = StreamUpdate(
            chunk_index=self._chunk_index,
            chunk_n=chunk_n,
            n=self._n,
            result=result,
            delta_time=result.time - self._last_time,
            delta_wait=total_wait - self._last_wait,
            conserved=True,
        )
        self._chunk_index += 1
        self._last_time = result.time
        self._last_wait = total_wait
        return update

    def result(self) -> SimResult:
        """One-shot-identical :class:`SimResult` for the current prefix."""
        return self._prefix()[0]

    # -- chunk consumption -------------------------------------------------

    def _banks_for(self, chunk: np.ndarray) -> np.ndarray:
        if self._bank_map is None:
            return (chunk % self._n_banks).astype(np.int64)
        banks = np.asarray(
            self._bank_map(chunk, self._n_banks)
        ).astype(np.int64)
        if banks.shape != chunk.shape:
            raise PatternError(
                "bank_map must return one bank per address"
            )
        if banks.size and (
            int(banks.min()) < 0 or int(banks.max()) >= self._n_banks
        ):
            raise PatternError(
                f"bank_map produced banks outside [0, {self._n_banks})"
            )
        return banks

    def _consume(self, chunk: np.ndarray) -> None:
        """Fold one <= max_chunk piece into the rolling simulation."""
        m = int(chunk.size)
        idx = np.arange(self._n, self._n + m, dtype=np.int64)
        banks = self._banks_for(chunk)
        if self._world is None:
            # Unbounded queues: the stall certificate holds vacuously,
            # so the seeded projection is the exact run.
            issue = (idx // self._p).astype(np.float64) * float(self._g)
            self._commit_projection(chunk, banks, issue)
        else:
            # Certificate miss: exact event world up to the horizon —
            # the scheduled issue cycle of the first unfed request.
            proc = (idx % self._p).astype(np.int64)
            self._world.feed(proc, banks, chunk)
            n_fed = self._n + m
            self._world.run(
                self._acc, n_fed, (n_fed // self._p) * self._g,
                self._bound(n_fed),
            )
        self._n += m

    def _commit_projection(
        self, chunk: np.ndarray, banks: np.ndarray, issue: np.ndarray
    ) -> None:
        """Project one chunk through the seeded batch kernels and fold
        it into the accumulators (the batch engine's commit, carrying
        ``init_free``/``init_addr`` across chunks)."""
        acc = self._acc
        m = int(chunk.size)
        arrival = issue + float(self._latency)
        cost: Optional[np.ndarray]
        if self._last_addr is not None:
            assert self._hit_delay is not None
            start, cost = fifo_service_times_cached(
                arrival, banks, chunk, float(self._d),
                float(self._hit_delay),
                init_free=self._floors, init_addr=self._last_addr,
            )
        else:
            start = fifo_service_times(
                arrival, banks, float(self._d), init_free=self._floors
            )
            cost = None

        # Runaway parity with the one-shot engines' max_cycles bound,
        # recomputed for the cumulative prefix.
        bound = self._bound(self._n + m)
        if int(start.max()) > bound:
            done = acc.completed + int((start <= bound).sum())
            raise SimulationError(
                f"cycle simulator exceeded {bound} cycles with "
                f"{self._n + m - done} requests outstanding and "
                f"{acc.stalled} issue stalls accrued (deadlock or "
                f"runaway; queue_capacity={self._capacity})"
            )

        waits = start - arrival
        acc.total_wait += int(waits.sum())
        w = int(waits.max())
        if w > acc.max_wait:
            acc.max_wait = w
        finish = start + (cost if cost is not None else float(self._d))
        f = int(finish.max())
        if f > acc.last_finish:
            acc.last_finish = f
        acc.bank_served += np.bincount(banks, minlength=self._n_banks)
        acc.completed += m
        if acc.busy is not None and acc.q_high is not None:
            per_cost = (
                cost if cost is not None else np.full(m, float(self._d))
            )
            acc.busy += np.bincount(
                banks, weights=per_cost, minlength=self._n_banks
            )
            # Queue depths can straddle chunk seams, so sweep the union
            # of this chunk with the still-pending events, then keep
            # only those that may overlap the next chunk (service start
            # at or past the new horizon; settled events can never be
            # part of a future maximum).
            events_arrival = np.concatenate([self._pend_arrival, arrival])
            events_start = np.concatenate([self._pend_start, start])
            events_bank = np.concatenate([self._pend_bank, banks])
            np.maximum(
                acc.q_high,
                _queue_high_water(
                    events_arrival, events_start, events_bank,
                    self._n_banks,
                ),
                out=acc.q_high,
            )
            t_cut = float(((self._n + m) // self._p) * self._g)
            keep = events_start >= t_cut
            self._pend_arrival = events_arrival[keep]
            self._pend_start = events_start[keep]
            self._pend_bank = events_bank[keep]
        # Carry state: per-bank FIFO order equals array order here, and
        # finishes are nondecreasing per bank, so fancy assignment's
        # last-occurrence-wins leaves each touched bank's free-at floor
        # (and row buffer) at its final served request.
        self._floors[banks] = finish
        if self._last_addr is not None:
            self._last_addr[banks] = chunk

    def _bound(self, n: int) -> int:
        """The one-shot engines' runaway ceiling for an ``n``-request run."""
        bound = n * self._d + n * self._g + self._latency + 1000
        if self._capacity is not None:
            bound += (n // self._capacity + 1) * (self._latency + self._g + 2)
        return int(bound)

    # -- prefix results ----------------------------------------------------

    def _zero_telemetry(self) -> SimTelemetry:
        return SimTelemetry(
            bank_busy=np.zeros(self._n_banks, dtype=np.float64),
            queue_high_water=np.zeros(self._n_banks, dtype=np.int64),
            stall_breakdown={
                "bank_wait": 0.0,
                "link_wait": 0.0,
                "issue_backpressure": 0.0,
            },
            proc_stalls=np.zeros(self._p, dtype=np.int64),
            makespan=0.0,
        )

    def _prefix(self) -> Tuple[SimResult, int]:
        """Prefix result plus the exact integer total bank wait."""
        if self._n == 0:
            result = SimResult(
                time=float(self._L), n=0,
                bank_loads=np.zeros(self._n_banks, dtype=np.int64),
                machine_name=self._machine.name,
                telemetry=(
                    self._zero_telemetry() if self._telemetry else None
                ),
            )
            if self._sanitize:
                check_superstep(
                    self._machine, result, engine="stream", h_p=0,
                    n_survivors=0,
                )
            return result, 0
        acc = self._acc
        if self._world is not None and acc.completed < self._n:
            # Requests are still in flight behind the horizon: drain a
            # clone to completion (exactly the one-shot suffix for the
            # fed prefix).  The live world never runs past the horizon.
            acc = acc.clone()
            self._world.clone().run(acc, self._n, None,
                                    self._bound(self._n))
        return self._snapshot(acc), int(acc.total_wait)

    def _snapshot(self, acc: _StreamAcc) -> SimResult:
        """Freeze accumulators into a one-shot-identical result."""
        n = self._n
        tele: Optional[SimTelemetry] = None
        if self._telemetry:
            assert acc.busy is not None and acc.q_high is not None \
                and acc.proc_stalls is not None
            tele = SimTelemetry(
                bank_busy=acc.busy.copy(),
                queue_high_water=acc.q_high.copy(),
                stall_breakdown={
                    "bank_wait": float(acc.total_wait),
                    "link_wait": 0.0,
                    "issue_backpressure": float(acc.stalled),
                },
                proc_stalls=acc.proc_stalls.copy(),
                makespan=float(acc.last_finish),
            )
        result = SimResult(
            time=float(acc.last_finish + self._L),
            n=n,
            bank_loads=acc.bank_served.copy(),
            max_wait=float(acc.max_wait),
            mean_wait=float(acc.total_wait / n),
            stalled_cycles=float(acc.stalled),
            machine_name=self._machine.name,
            telemetry=tele,
        )
        if self._sanitize:
            assert acc.busy is not None and acc.q_high is not None
            check_superstep(
                self._machine, result,
                engine="stream",
                h_p=-(-n // self._p),
                n_survivors=n,
                bank_busy=acc.busy,
                queue_high_water=acc.q_high,
            )
        return result

    # -- rolling digest ----------------------------------------------------

    def _absorb_digest(self, addr: np.ndarray) -> None:
        data = self._digest_tail + addr.tobytes()
        chain = self._digest_chain
        nblk = len(data) // _DIGEST_BLOCK_BYTES
        for i in range(nblk):
            block = data[i * _DIGEST_BLOCK_BYTES:(i + 1) * _DIGEST_BLOCK_BYTES]
            chain = hashlib.sha256(chain + block).digest()
        self._digest_chain = chain
        self._digest_tail = data[nblk * _DIGEST_BLOCK_BYTES:]

    # -- checkpointing -----------------------------------------------------

    def state(self) -> Dict[str, Any]:
        """Complete resumable state as plain picklable structures."""
        acc = self._acc
        return {
            "version": 1,
            "n": self._n,
            "chunk_index": self._chunk_index,
            "last_time": self._last_time,
            "last_wait": self._last_wait,
            "digest_chain": self._digest_chain,
            "digest_tail": self._digest_tail,
            "acc": {
                "bank_served": acc.bank_served.copy(),
                "total_wait": acc.total_wait,
                "max_wait": acc.max_wait,
                "stalled": acc.stalled,
                "last_finish": acc.last_finish,
                "completed": acc.completed,
                "busy": None if acc.busy is None else acc.busy.copy(),
                "q_high": None if acc.q_high is None else acc.q_high.copy(),
                "proc_stalls": (
                    None if acc.proc_stalls is None
                    else acc.proc_stalls.copy()
                ),
            },
            "floors": self._floors.copy(),
            "last_addr": (
                None if self._last_addr is None else self._last_addr.copy()
            ),
            "pend": (
                self._pend_arrival.copy(),
                self._pend_start.copy(),
                self._pend_bank.copy(),
            ),
            "world": None if self._world is None else self._world.state(),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state` output into this *fresh* simulator.

        The simulator must have consumed nothing yet and must have been
        constructed with the same machine/telemetry configuration the
        checkpoint was taken under."""
        if state.get("version") != 1:
            raise ParameterError(
                f"unsupported stream checkpoint version "
                f"{state.get('version')!r}"
            )
        if self._n != 0:
            raise ParameterError(
                "load_state requires a fresh StreamSimulator (it has "
                f"already consumed {self._n} addresses)"
            )
        acc_state = state["acc"]
        if (state["world"] is None) != (self._world is None) \
                or (state["last_addr"] is None) != (self._last_addr is None) \
                or (acc_state["busy"] is None) != (self._acc.busy is None):
            raise ParameterError(
                "stream checkpoint was taken under a different "
                "machine/telemetry configuration"
            )
        self._n = int(state["n"])
        self._chunk_index = int(state["chunk_index"])
        self._last_time = float(state["last_time"])
        self._last_wait = int(state["last_wait"])
        self._digest_chain = bytes(state["digest_chain"])
        self._digest_tail = bytes(state["digest_tail"])
        acc = self._acc
        acc.bank_served = acc_state["bank_served"].copy()
        acc.total_wait = int(acc_state["total_wait"])
        acc.max_wait = int(acc_state["max_wait"])
        acc.stalled = int(acc_state["stalled"])
        acc.last_finish = int(acc_state["last_finish"])
        acc.completed = int(acc_state["completed"])
        if acc_state["busy"] is not None:
            acc.busy = acc_state["busy"].copy()
            acc.q_high = acc_state["q_high"].copy()
            acc.proc_stalls = acc_state["proc_stalls"].copy()
        self._floors = state["floors"].copy()
        if state["last_addr"] is not None:
            self._last_addr = state["last_addr"].copy()
        pend_arrival, pend_start, pend_bank = state["pend"]
        self._pend_arrival = pend_arrival.copy()
        self._pend_start = pend_start.copy()
        self._pend_bank = pend_bank.copy()
        if state["world"] is not None:
            assert self._world is not None
            self._world.load_state(state["world"])

    def _checkpoint_kwargs(
        self, prefix_digest: str, n: int
    ) -> Dict[str, Any]:
        return {
            "machine": self._machine,
            "bank_map": self._bank_map,
            "assignment": "round_robin",
            "telemetry": self._telemetry,
            "sanitize_counters": self._acc.busy is not None,
            "prefix_digest": prefix_digest,
            "n": n,
        }

    def save_checkpoint(self) -> Optional[str]:
        """Persist the current state under the experiment runner's memo.

        Keyed by :func:`stream_checkpoint` with the prefix digest, so a
        later session streaming the same trace prefix (under the same
        machine/telemetry configuration) can resume instead of
        recomputing.  Returns the prefix digest, or ``None`` when the
        runner cache is disabled."""
        from ..experiments import runner

        digest = self.prefix_digest
        kwargs = self._checkpoint_kwargs(digest, self._n)
        if runner.cache_store(stream_checkpoint, kwargs, self.state()):
            return digest
        return None

    def resume_from_checkpoint(self, prefix_digest: str, n: int) -> bool:
        """Restore a :meth:`save_checkpoint` state into this fresh
        simulator; returns whether the memo held one for that prefix."""
        from ..experiments import runner

        hit, state = runner.cache_fetch(
            stream_checkpoint, self._checkpoint_kwargs(prefix_digest, n)
        )
        if not hit:
            return False
        self.load_state(state)
        return True


def stream_checkpoint(
    machine: MachineConfig,
    bank_map: Optional[BankMap],
    assignment: Assignment,
    telemetry: bool,
    sanitize_counters: bool,
    prefix_digest: str,
    n: int,
) -> Dict[str, Any]:
    """Cache-key carrier for streamed-prefix checkpoints.

    :meth:`StreamSimulator.save_checkpoint` stores simulator state in
    the experiment runner's memo under ``cache_key(stream_checkpoint,
    kwargs)`` — the same keying (code version, canonicalized arguments)
    every memoized experiment uses — so streamed prefixes share the
    runner's cache semantics.  The function itself is never evaluated.
    """
    raise SimulationError(
        "stream_checkpoint is a cache-key carrier and is never called"
    )


def _iter_blocks(
    addresses: Union[ArrayLike, Iterable[ArrayLike]],
    chunk_size: int,
) -> Iterator[np.ndarray]:
    """Normalize a trace (array-like or iterable of blocks) to blocks."""
    if isinstance(addresses, (np.ndarray, list, tuple, range)):
        addr = as_addresses(addresses)
        if addr.size == 0:
            yield addr
            return
        for lo in range(0, int(addr.size), chunk_size):
            yield addr[lo:lo + chunk_size]
        return
    empty = True
    for block in addresses:
        empty = False
        yield as_addresses(block)
    if empty:
        yield np.zeros(0, dtype=np.int64)


def simulate_scatter_stream(
    machine: MachineConfig,
    addresses: Union[ArrayLike, Iterable[ArrayLike]],
    bank_map: Optional[BankMap] = None,
    assignment: Assignment = "round_robin",
    telemetry: bool = False,
    sanitize: Optional[bool] = None,
    chunk_size: int = DEFAULT_CHUNK,
) -> Iterator[StreamUpdate]:
    """Simulate one scatter incrementally, yielding per-chunk updates.

    ``addresses`` may be an address array (consumed in ``chunk_size``
    pieces) or any iterable of address blocks — including a generator
    over a trace that never fits in memory.  Every yielded
    :class:`StreamUpdate` carries the prefix :class:`SimResult`,
    bit-identical to the one-shot engines on the addresses consumed so
    far; the last update is the whole-trace result.  At least one
    update is always yielded (an empty trace yields the empty result).

    This is a generator: argument validation happens on the first
    ``next()``, not at call time.  See :class:`StreamSimulator` for the
    restrictions (no combining, no sections, round-robin only) and the
    memory bound.
    """
    sim = StreamSimulator(
        machine, bank_map, assignment=assignment, telemetry=telemetry,
        sanitize=sanitize, max_chunk=chunk_size,
    )
    for block in _iter_blocks(addresses, chunk_size):
        yield sim.feed(block)
