"""Running whole instrumented programs through the simulator.

Instrumented algorithms emit a :class:`repro.core.model.Program`; this
module executes every superstep on a machine and aggregates the results,
giving the "measured" side of program-level predicted-vs-measured
comparisons (Figure 1, Figure 12, the connected-components study).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.contention import BankMap
from ..core.model import Program
from .banksim import simulate_scatter
from .machine import MachineConfig
from .request import Assignment
from .stats import SimResult

__all__ = ["ProgramSimResult", "simulate_program"]


@dataclass(frozen=True)
class ProgramSimResult:
    """Per-superstep and aggregate simulation results for one program."""

    step_results: tuple
    step_labels: tuple
    local_work: float

    @property
    def total_time(self) -> float:
        """Sum of superstep completion times plus the program's local
        work."""
        return float(sum(r.time for r in self.step_results) + self.local_work)

    @property
    def total_requests(self) -> int:
        """Total requests simulated."""
        return int(sum(r.n for r in self.step_results))

    def time_by_label(self) -> dict:
        """Aggregate simulated time per superstep label (phase accounting)."""
        out: dict = {}
        for label, r in zip(self.step_labels, self.step_results):
            out[label] = out.get(label, 0.0) + r.time
        return out


def simulate_program(
    machine: MachineConfig,
    program: Program,
    bank_map: Optional[BankMap] = None,
    assignment: Assignment = "round_robin",
) -> ProgramSimResult:
    """Simulate every superstep of ``program`` on ``machine``.

    Supersteps execute in order with a barrier between them (bulk
    synchrony); each step's time includes the machine's ``L``, and each
    step's declared ``local_work`` is added on top.
    """
    results: List[SimResult] = []
    local = 0.0
    for step in program:
        results.append(
            simulate_scatter(machine, step.addresses, bank_map, assignment)
        )
        local += step.local_work
    return ProgramSimResult(
        step_results=tuple(results),
        step_labels=tuple(s.label for s in program),
        local_work=local,
    )
