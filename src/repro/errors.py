"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "PatternError",
    "SimulationError",
    "MappingError",
    "ContentionRuleError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ParameterError(ReproError, ValueError):
    """A machine/model parameter is out of its valid domain."""


class PatternError(ReproError, ValueError):
    """An access pattern or trace is malformed (wrong dtype, negative
    addresses, empty where non-empty is required, ...)."""


class SimulationError(ReproError, RuntimeError):
    """The simulator reached an inconsistent state (e.g. deadlock under
    bounded queues, or a request that never drains)."""


class MappingError(ReproError, ValueError):
    """A memory-to-bank mapping is invalid (non-odd multiplier for a
    multiplicative hash, bank count not a power of two where required, ...)."""


class ContentionRuleError(ReproError, RuntimeError):
    """A PRAM program violated the contention rule of the machine it was
    executed on (e.g. concurrent access on an EREW PRAM)."""
