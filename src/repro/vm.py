"""A data-parallel front end with built-in cost accounting.

:class:`VectorMachine` lets users write bulk-synchronous array programs
naturally — ``gather`` / ``scatter`` / ``scan`` / ``map`` — while every
operation is *executed* (real NumPy results) *and* charged under the
(d,x)-BSP, with the trace captured for later simulation.  It wraps the
lower-level pieces (:class:`~repro.workloads.traces.TraceRecorder`,
:class:`~repro.algorithms._arena.Arena`, the cost laws) into the API a
downstream user reaches for first::

    vm = VectorMachine(CRAY_J90)
    x = vm.array(np.random.rand(1 << 16))
    idx = vm.array(cols)
    vals = vm.gather(x, idx)          # executed AND costed
    total = vm.scan(vals)             # regular traffic, contention 1
    print(vm.predicted_time)          # running (d,x)-BSP total
    print(vm.simulate().total_time)   # or run the whole trace

Arrays are handles pairing a NumPy array with a base address in the
simulated memory, so gathers/scatters produce realistic bank footprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ._util import as_addresses
from .errors import ParameterError, PatternError
from .core.contention import BankMap
from .core.model import Program

__all__ = ["VMArray", "VectorMachine"]


@dataclass(frozen=True)
class VMArray:
    """A device-array handle: NumPy data plus its simulated base address."""

    data: np.ndarray
    base: int
    name: str = ""

    @property
    def size(self) -> int:
        """Element count."""
        return int(self.data.size)

    def addresses(self, index=None) -> np.ndarray:
        """Simulated addresses of ``self[index]`` (all elements when
        ``index`` is None)."""
        if index is None:
            return self.base + np.arange(self.data.size, dtype=np.int64)
        idx = as_addresses(index)
        if idx.size and idx.max() >= self.data.size:
            raise PatternError(
                f"index {int(idx.max())} out of bounds for array "
                f"{self.name or '<anon>'} of size {self.data.size}"
            )
        return self.base + idx


class VectorMachine:
    """Bulk-synchronous array programming with live (d,x)-BSP accounting.

    Parameters
    ----------
    machine:
        A :class:`~repro.simulator.machine.MachineConfig`; its parameters
        drive both the running analytic cost and :meth:`simulate`.
    bank_map:
        Optional memory-to-bank mapping used for costing/simulation.
    """

    def __init__(self, machine, bank_map: Optional[BankMap] = None) -> None:
        from .algorithms._arena import Arena  # local to avoid cycles
        from .workloads.traces import TraceRecorder

        self.machine = machine
        self.bank_map = bank_map
        self._arena = Arena()
        self._recorder = TraceRecorder()
        self._anon = 0

    # -- array management -------------------------------------------------
    def array(self, values, name: str = "") -> VMArray:
        """Place ``values`` into the simulated memory (no traffic charged
        — inputs are assumed resident, as in the paper's experiments)."""
        data = np.asarray(values)
        if data.ndim != 1:
            raise PatternError(f"arrays must be 1-D, got shape {data.shape}")
        if not name:
            self._anon += 1
            name = f"arr{self._anon}"
        base = self._arena.alloc(data.size, name)
        return VMArray(data=data.copy(), base=base, name=name)

    def empty(self, size: int, dtype=np.int64, name: str = "") -> VMArray:
        """Allocate an uninitialized device array."""
        if size < 0:
            raise ParameterError(f"size must be >= 0, got {size}")
        return self.array(np.zeros(size, dtype=dtype), name or "")

    # -- bulk operations ---------------------------------------------------
    def gather(self, src: VMArray, index, label: str = "gather") -> VMArray:
        """``out[i] = src[index[i]]`` — one superstep of irregular reads
        (the contention-carrying operation of the paper)."""
        idx = as_addresses(index)
        self._recorder.record(src.addresses(idx), kind="gather", label=label)
        return self.array(src.data[idx])

    def scatter(self, dest: VMArray, index, values,
                label: str = "scatter") -> None:
        """``dest[index[i]] = values[i]`` — one superstep of irregular
        writes (queued: last in request order wins on collisions)."""
        idx = as_addresses(index)
        vals = np.asarray(values)
        if vals.shape != idx.shape:
            raise PatternError("values must match index in shape")
        self._recorder.record(dest.addresses(idx), kind="scatter", label=label)
        dest.data[idx] = vals

    def scan(self, src: VMArray, op: str = "add",
             label: str = "scan") -> VMArray:
        """Exclusive scan — one regular (contention-1) pass."""
        from .algorithms.scan import exclusive_scan

        self._recorder.record(src.addresses(), kind="read", label=label)
        return self.array(exclusive_scan(src.data, op=op))

    def map(self, fn: Callable[[np.ndarray], np.ndarray], src: VMArray,
            label: str = "map") -> VMArray:
        """Elementwise compute — one regular read pass plus local work."""
        out = np.asarray(fn(src.data))
        if out.shape != src.data.shape:
            raise PatternError("map function must preserve shape")
        self._recorder.record(src.addresses(), kind="read", label=label)
        return self.array(out)

    def reduce(self, src: VMArray, op: str = "add",
               label: str = "reduce") -> float:
        """Reduction to a scalar — one regular read pass; returns the
        Python value (no device array)."""
        self._recorder.record(src.addresses(), kind="read", label=label)
        if op == "add":
            return float(src.data.sum())
        if op in ("max", "min"):
            if src.size == 0:
                raise PatternError(f"{op} of an empty array is undefined")
            return float(src.data.max() if op == "max" else src.data.min())
        raise ParameterError(f"unknown reduce op {op!r}")

    def segmented_scan(self, src: VMArray, segment_ids, op: str = "add",
                       exclusive: bool = True,
                       label: str = "segscan") -> VMArray:
        """Segmented scan [BHZ93] — one regular pass over values and
        segment descriptors."""
        from .algorithms.scan import (
            segmented_exclusive_scan,
            segmented_inclusive_scan,
        )

        seg = np.asarray(segment_ids, dtype=np.int64)
        fn = segmented_exclusive_scan if exclusive else segmented_inclusive_scan
        out = fn(src.data, seg, op=op)
        self._recorder.record(src.addresses(), kind="read", label=label)
        return self.array(out)

    def pack(self, src: VMArray, mask, label: str = "pack") -> VMArray:
        """Keep the elements where ``mask`` is true, densely — a scan
        over the mask plus a contention-free scatter of the survivors."""
        m = np.asarray(mask).astype(bool)
        if m.shape != src.data.shape:
            raise PatternError("mask must match the array in shape")
        ranks = np.cumsum(m) - 1
        self._recorder.record(src.addresses(), kind="read",
                              label=f"{label}/scan")
        out = self.array(src.data[m])
        if out.size:
            self._recorder.record(out.base + ranks[m], kind="scatter",
                                  label=f"{label}/place")
        return out

    def permute(self, src: VMArray, positions,
                label: str = "permute") -> VMArray:
        """``out[positions[i]] = src[i]`` for a permutation ``positions``
        — a contention-1 scatter (validated)."""
        pos = as_addresses(positions)
        if pos.shape != src.data.shape:
            raise PatternError("positions must match the array in shape")
        if pos.size and (int(pos.max()) >= src.size
                         or np.bincount(pos, minlength=src.size).max() > 1):
            raise PatternError("positions must form a permutation")
        out = self.array(np.empty_like(src.data))
        out.data[pos] = src.data
        self._recorder.record(out.base + pos, kind="scatter", label=label)
        return out

    # -- accounting ---------------------------------------------------------
    @property
    def program(self) -> Program:
        """The trace recorded so far."""
        return self._recorder.program

    @property
    def predicted_time(self) -> float:
        """Running (d,x)-BSP total of everything executed so far."""
        return self.program.cost_dxbsp(
            self.machine.params(), self.bank_map
        ).total

    @property
    def predicted_time_bsp(self) -> float:
        """Running bank-oblivious BSP total (the wrong one, for
        contrast)."""
        return self.program.cost_bsp(self.machine.params()).total

    def simulate(self):
        """Run the recorded trace through the bank simulator; returns a
        :class:`~repro.simulator.trace.ProgramSimResult`."""
        from .simulator.trace import simulate_program

        return simulate_program(self.machine, self.program, self.bank_map)

    def reset(self) -> None:
        """Drop the recorded trace (arrays stay valid)."""
        from .workloads.traces import TraceRecorder

        self._recorder = TraceRecorder()
