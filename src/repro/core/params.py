"""Machine-model parameter sets: the BSP and the (d,x)-BSP.

The paper extends Valiant's bulk-synchronous parallel (BSP) model with two
parameters describing the memory system of high-bandwidth multiprocessors:

``d`` — the *bank delay*: number of machine cycles that must elapse between
successive accesses to the same memory bank (the bank "recovery" or cycle
time expressed in processor cycles).

``x`` — the *expansion factor*: the ratio of the number of memory banks to
the number of processors.  A machine with ``p`` processors has
``b = round(x * p)`` banks.

The resulting model is called the **(d,x)-BSP** (the paper's "deluxe" BSP).
The classic BSP is the special case ``d = g`` and any ``x`` (banks are never
the bottleneck beyond the per-word gap ``g``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from .._util import check_nonnegative, check_positive
from ..errors import ParameterError

__all__ = ["BSPParams", "DXBSPParams"]


@dataclass(frozen=True)
class BSPParams:
    """Parameters of Valiant's BSP model.

    Attributes
    ----------
    p:
        Number of processors (>= 1).
    g:
        Gap: cycles per word of bandwidth at each processor.  A superstep
        in which each processor sends/receives at most ``h`` words costs
        ``g * h`` cycles of communication.
    L:
        Periodicity / synchronization latency in cycles; a superstep costs
        at least ``L``.
    """

    p: int
    g: float = 1.0
    L: float = 0.0

    def __post_init__(self) -> None:
        if int(self.p) != self.p or self.p < 1:
            raise ParameterError(f"p must be a positive integer, got {self.p!r}")
        object.__setattr__(self, "p", int(self.p))
        check_positive("g", self.g)
        check_nonnegative("L", self.L)

    def with_(self, **kwargs) -> "BSPParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class DXBSPParams:
    """Parameters of the (d,x)-BSP model.

    Attributes
    ----------
    p:
        Number of processors (>= 1).
    g:
        Gap: cycles per memory request at each processor.  With latency
        hiding (vector pipelines, multithreading) a processor can issue one
        request every ``g`` cycles.
    L:
        Superstep latency floor in cycles.
    d:
        Bank delay: cycles between successive accesses serviced by one
        memory bank.  ``d >= g`` on all machines of interest (banks are
        slower than processors); ``d == g`` recovers the plain BSP.
    x:
        Expansion factor: banks per processor.  The machine has
        ``n_banks = round(x * p)`` banks; ``x`` may be fractional but the
        implied bank count must be >= 1.

    Notes
    -----
    The *aggregate* request bandwidth of the processors is ``p / g`` per
    cycle and of the memory system ``x * p / d``.  They balance when
    ``x = d / g``; the paper shows that ``x > d / g`` often still helps
    irregular patterns because random bank mapping balances better when
    there are more bins (see the expansion experiment, id ``FX`` in
    DESIGN.md).
    """

    p: int
    d: float
    x: float
    g: float = 1.0
    L: float = 0.0

    def __post_init__(self) -> None:
        if int(self.p) != self.p or self.p < 1:
            raise ParameterError(f"p must be a positive integer, got {self.p!r}")
        object.__setattr__(self, "p", int(self.p))
        check_positive("g", self.g)
        check_positive("d", self.d)
        check_positive("x", self.x)
        check_nonnegative("L", self.L)
        if self.n_banks < 1:
            raise ParameterError(
                f"x * p must give at least one bank, got x={self.x}, p={self.p}"
            )

    @property
    def n_banks(self) -> int:
        """Number of memory banks, ``round(x * p)``."""
        return int(round(self.x * self.p))

    @property
    def balanced_expansion(self) -> float:
        """The expansion ``x = d / g`` at which processor-side and
        memory-side bandwidth match."""
        return self.d / self.g

    @property
    def bandwidth_ratio(self) -> float:
        """Memory-side over processor-side aggregate bandwidth,
        ``(x p / d) / (p / g) = x g / d``.  Values >= 1 mean the banks can
        absorb the processors' peak request rate for perfectly balanced
        patterns."""
        return self.x * self.g / self.d

    def to_bsp(self) -> BSPParams:
        """Project to the plain BSP (drop ``d`` and ``x``)."""
        return BSPParams(p=self.p, g=self.g, L=self.L)

    def with_(self, **kwargs) -> "DXBSPParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @staticmethod
    def from_bsp(bsp: BSPParams, d: float, x: float) -> "DXBSPParams":
        """Extend a BSP parameter set with bank delay and expansion."""
        return DXBSPParams(p=bsp.p, g=bsp.g, L=bsp.L, d=d, x=x)


def expansion_sweep(base: DXBSPParams, xs) -> Iterator[DXBSPParams]:
    """Yield copies of ``base`` with each expansion in ``xs``.

    Convenience for the expansion experiments; keeps all other parameters
    fixed.
    """
    for x in xs:
        yield base.with_(x=float(x))


__all__.append("expansion_sweep")
