"""The (d,x)-BSP model: parameters, cost laws, contention statistics and
program-level accounting.  This is the paper's primary contribution."""

from .contention import (
    PatternStats,
    bank_loads,
    contention_histogram,
    empirical_entropy,
    location_contention,
    max_bank_load,
    max_location_contention,
    normalized_entropy,
)
from .cost import (
    bsp_superstep_time,
    crossover_contention,
    dxbsp_superstep_time,
    per_processor_load,
    predict_scatter_bsp,
    predict_scatter_dxbsp,
)
from .model import CostBreakdown, Program, Superstep
from .params import BSPParams, DXBSPParams, expansion_sweep

__all__ = [
    "BSPParams",
    "DXBSPParams",
    "expansion_sweep",
    "dxbsp_superstep_time",
    "bsp_superstep_time",
    "predict_scatter_dxbsp",
    "predict_scatter_bsp",
    "crossover_contention",
    "per_processor_load",
    "PatternStats",
    "location_contention",
    "max_location_contention",
    "bank_loads",
    "max_bank_load",
    "contention_histogram",
    "empirical_entropy",
    "normalized_entropy",
    "Superstep",
    "Program",
    "CostBreakdown",
]
