"""Superstep cost laws for the BSP and the (d,x)-BSP.

The central equations of the paper (Section 2):

(d,x)-BSP superstep time, for a superstep where each processor issues at
most ``h_p`` requests and each bank receives at most ``h_b`` requests::

    T_dxbsp = max(L, g * h_p, d * h_b)

BSP superstep time, which knows nothing of banks and charges contention at
the network gap ``g`` (location contention ``k`` serializes at rate ``g``)::

    T_bsp = max(L, g * h_p, g * k)

Because ``h_b >= k`` and ``d >= g``, the (d,x)-BSP prediction always
dominates the BSP one; the gap grows to a factor of ``d / g`` on hot-spot
patterns.  All time quantities are in processor clock cycles.

Functions here broadcast over NumPy arrays so a parameter sweep is a single
vectorized call (per the HPC guides: no Python loops in hot paths).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .._util import as_addresses
from ..errors import ParameterError
from .contention import BankMap, bank_loads, max_location_contention
from .params import BSPParams, DXBSPParams

__all__ = [
    "dxbsp_superstep_time",
    "bsp_superstep_time",
    "predict_scatter_dxbsp",
    "predict_scatter_bsp",
    "crossover_contention",
    "per_processor_load",
]

ArrayLike = Union[float, int, np.ndarray]


def per_processor_load(n: int, p: int) -> int:
    """Maximum requests per processor when ``n`` requests are dealt
    round-robin over ``p`` processors: ``ceil(n / p)``."""
    if p < 1:
        raise ParameterError(f"p must be >= 1, got {p}")
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    return -(-n // p)


def dxbsp_superstep_time(
    params: DXBSPParams, h_proc: ArrayLike, h_bank: ArrayLike
) -> ArrayLike:
    """Time of a (d,x)-BSP superstep: ``max(L, g*h_proc, d*h_bank)``.

    ``h_proc`` and ``h_bank`` broadcast; the result is a float scalar for
    scalar inputs, else an ndarray.
    """
    h_proc = np.asarray(h_proc, dtype=np.float64)
    h_bank = np.asarray(h_bank, dtype=np.float64)
    if (h_proc < 0).any() or (h_bank < 0).any():
        raise ParameterError("loads must be non-negative")
    t = np.maximum(params.L, np.maximum(params.g * h_proc, params.d * h_bank))
    return float(t) if t.ndim == 0 else t


def bsp_superstep_time(
    params: Union[BSPParams, DXBSPParams], h_proc: ArrayLike, k: ArrayLike = 0
) -> ArrayLike:
    """Time of a plain BSP superstep: ``max(L, g*h_proc, g*k)``.

    ``k`` is the maximum location contention; BSP-style models charge it at
    the gap ``g`` rather than at the bank delay ``d``, which is exactly the
    discrepancy the paper corrects.
    """
    h_proc = np.asarray(h_proc, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    if (h_proc < 0).any() or (k < 0).any():
        raise ParameterError("loads must be non-negative")
    t = np.maximum(params.L, params.g * np.maximum(h_proc, k))
    return float(t) if t.ndim == 0 else t


def predict_scatter_dxbsp(
    params: DXBSPParams,
    addresses,
    bank_map: Optional[BankMap] = None,
) -> float:
    """(d,x)-BSP predicted time for one scatter/gather of ``addresses``.

    The ``n`` requests are assumed dealt evenly over the ``p`` processors
    (``h_p = ceil(n/p)``), as the Cray runtime does for a vector scatter;
    ``h_b`` is computed from the pattern under ``bank_map`` (low-order
    interleaving by default).
    """
    addr = as_addresses(addresses)
    h_p = per_processor_load(addr.size, params.p)
    loads = bank_loads(addr, params.n_banks, bank_map)
    h_b = int(loads.max()) if loads.size else 0
    return float(dxbsp_superstep_time(params, h_p, h_b))


def predict_scatter_bsp(
    params: Union[BSPParams, DXBSPParams],
    addresses,
) -> float:
    """BSP predicted time for one scatter/gather of ``addresses``.

    Uses ``h_p = ceil(n/p)`` and the location contention ``k``; knows
    nothing about banks.
    """
    addr = as_addresses(addresses)
    h_p = per_processor_load(addr.size, params.p)
    k = max_location_contention(addr)
    return float(bsp_superstep_time(params, h_p, k))


def crossover_contention(params: DXBSPParams, n: int) -> float:
    """The contention level ``k*`` at which bank delay starts to dominate.

    For a scatter of ``n`` requests, the pipeline term is ``g * n / p`` and
    the hot-location term is ``d * k``; they cross at::

        k* = g * n / (p * d)

    Below ``k*`` the BSP and (d,x)-BSP predictions agree (throughput
    bound); above it the (d,x)-BSP prediction rises with slope ``d`` while
    BSP rises only with slope ``g``.  This is the knee visible in Figure 1
    and Experiment 1.
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    return params.g * n / (params.p * params.d)
