"""Contention statistics of memory access patterns.

Terminology (paper, Section 2):

*location contention* ``k`` — the maximum number of requests, within one
superstep, destined to a single memory **location**.  Requests to the same
location are serviced serially by the bank holding it, so a superstep costs
at least ``d * k`` on the (d,x)-BSP.

*bank contention* ``h_b`` — the maximum number of requests destined to a
single memory **bank** under a given memory-to-bank mapping.  It includes
both location contention and *module-map contention* (distinct locations
that happen to share a bank); always ``h_b >= ceil(k)``.

*processor load* ``h_p`` — the maximum number of requests issued by one
processor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from .._util import as_addresses
from ..errors import ParameterError, PatternError

__all__ = [
    "location_contention",
    "max_location_contention",
    "bank_loads",
    "max_bank_load",
    "contention_histogram",
    "empirical_entropy",
    "normalized_entropy",
    "PatternStats",
]

BankMap = Callable[[np.ndarray, int], np.ndarray]


def _interleaved(addresses: np.ndarray, n_banks: int) -> np.ndarray:
    """Default bank map: low-order interleaving (``addr mod n_banks``)."""
    return addresses % n_banks


def location_contention(addresses) -> Tuple[np.ndarray, np.ndarray]:
    """Per-location request counts.

    Returns
    -------
    (locations, counts):
        ``locations`` is the sorted array of distinct addresses touched and
        ``counts[i]`` the number of requests to ``locations[i]``.
    """
    addr = as_addresses(addresses)
    if addr.size == 0:
        return addr, np.zeros(0, dtype=np.int64)
    locations, counts = np.unique(addr, return_counts=True)
    return locations, counts.astype(np.int64)


def max_location_contention(addresses) -> int:
    """The paper's ``k``: the maximum contention at any single location.

    Zero for an empty pattern.
    """
    addr = as_addresses(addresses)
    if addr.size == 0:
        return 0
    _, counts = np.unique(addr, return_counts=True)
    return int(counts.max())


def bank_loads(addresses, n_banks: int, bank_map: Optional[BankMap] = None) -> np.ndarray:
    """Number of requests landing on each bank under ``bank_map``.

    Parameters
    ----------
    addresses:
        1-D integer address vector.
    n_banks:
        Number of banks (>= 1).
    bank_map:
        Callable ``(addresses, n_banks) -> banks``.  Defaults to low-order
        interleaving, the hardware layout of the Cray machines studied in
        the paper.

    Returns
    -------
    int64 array of length ``n_banks``.
    """
    if n_banks < 1:
        raise ParameterError(f"n_banks must be >= 1, got {n_banks}")
    addr = as_addresses(addresses)
    if addr.size == 0:
        return np.zeros(n_banks, dtype=np.int64)
    banks = np.asarray((bank_map or _interleaved)(addr, n_banks))
    if banks.shape != addr.shape:
        raise PatternError(
            f"bank_map returned shape {banks.shape}, expected {addr.shape}"
        )
    if banks.min() < 0 or banks.max() >= n_banks:
        raise PatternError("bank_map produced bank ids outside [0, n_banks)")
    return np.bincount(banks, minlength=n_banks).astype(np.int64)


def max_bank_load(addresses, n_banks: int, bank_map: Optional[BankMap] = None) -> int:
    """The paper's ``h_b``: maximum requests at any one bank."""
    loads = bank_loads(addresses, n_banks, bank_map)
    return int(loads.max()) if loads.size else 0


def contention_histogram(addresses) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of location-contention values.

    Returns ``(values, n_locations)`` where ``n_locations[i]`` locations are
    each touched exactly ``values[i]`` times.  Useful for characterizing
    entropy-family patterns (Experiment 3).
    """
    _, counts = location_contention(addresses)
    if counts.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    values, freq = np.unique(counts, return_counts=True)
    return values.astype(np.int64), freq.astype(np.int64)


def empirical_entropy(addresses, base: float = 2.0) -> float:
    """Shannon entropy of the empirical address distribution, in ``base``
    units (bits by default).

    This is the statistic Thearling and Smith use to grade their
    iterated-AND key families: high entropy ~ uniform scatter, low entropy
    ~ hot-spot concentration.
    """
    addr = as_addresses(addresses)
    if addr.size == 0:
        return 0.0
    _, counts = np.unique(addr, return_counts=True)
    probs = counts / addr.size
    return float(-(probs * (np.log(probs) / np.log(base))).sum())


def normalized_entropy(addresses) -> float:
    """Entropy divided by ``log2(n)`` — 1.0 for a permutation-like pattern
    of all-distinct addresses, approaching 0 for a single hot location."""
    addr = as_addresses(addresses)
    if addr.size <= 1:
        return 1.0
    h = empirical_entropy(addr)
    return float(h / np.log2(addr.size))


@dataclass(frozen=True)
class PatternStats:
    """Summary statistics of one superstep's access pattern.

    Attributes
    ----------
    n:
        Total number of requests.
    n_distinct:
        Number of distinct locations touched.
    max_location_contention:
        ``k`` — maximum requests to one location.
    mean_location_contention:
        ``n / n_distinct`` (0 for an empty pattern).
    entropy_bits:
        Shannon entropy of the empirical address distribution.
    max_bank_load:
        ``h_b`` under the mapping supplied to :meth:`from_addresses`, or
        ``None`` if no bank count was given.
    n_banks:
        Bank count used for ``max_bank_load`` (``None`` if not computed).
    """

    n: int
    n_distinct: int
    max_location_contention: int
    mean_location_contention: float
    entropy_bits: float
    max_bank_load: Optional[int] = None
    n_banks: Optional[int] = None

    @staticmethod
    def from_addresses(
        addresses,
        n_banks: Optional[int] = None,
        bank_map: Optional[BankMap] = None,
    ) -> "PatternStats":
        """Compute all statistics of an address vector in one pass."""
        addr = as_addresses(addresses)
        if addr.size == 0:
            return PatternStats(0, 0, 0, 0.0, 0.0,
                                0 if n_banks else None, n_banks)
        _, counts = np.unique(addr, return_counts=True)
        probs = counts / addr.size
        entropy = float(-(probs * np.log2(probs)).sum())
        hb = None
        if n_banks is not None:
            hb = max_bank_load(addr, n_banks, bank_map)
        return PatternStats(
            n=int(addr.size),
            n_distinct=int(counts.size),
            max_location_contention=int(counts.max()),
            mean_location_contention=float(addr.size / counts.size),
            entropy_bits=entropy,
            max_bank_load=hb,
            n_banks=n_banks,
        )
