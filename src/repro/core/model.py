"""Program-level cost accounting: supersteps and superstep sequences.

Algorithms in :mod:`repro.algorithms` are *instrumented*: besides computing
their result they emit the memory access pattern of each bulk step.  This
module holds the containers for those patterns and the whole-program cost
accounting on top of :mod:`repro.core.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

import numpy as np

from .._util import as_addresses
from ..errors import PatternError
from .contention import BankMap, PatternStats
from .cost import predict_scatter_bsp, predict_scatter_dxbsp
from .params import BSPParams, DXBSPParams

__all__ = ["Superstep", "Program", "CostBreakdown"]


@dataclass(frozen=True)
class Superstep:
    """One bulk-synchronous step: a bag of memory requests plus local work.

    Attributes
    ----------
    addresses:
        int64 vector of memory locations touched (reads and writes are
        costed identically by the model; the ``kind`` tag is metadata).
    kind:
        One of ``"read"``, ``"write"``, ``"scatter"``, ``"gather"``,
        ``"mixed"`` — informational only.
    label:
        Free-form tag (e.g. the algorithm phase that produced the step).
    local_work:
        Cycles of purely local computation overlapped with nothing;
        added to the step's communication time.
    """

    addresses: np.ndarray
    kind: str = "mixed"
    label: str = ""
    local_work: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "addresses", as_addresses(self.addresses))
        if self.kind not in ("read", "write", "scatter", "gather", "mixed"):
            raise PatternError(f"unknown superstep kind {self.kind!r}")
        if self.local_work < 0:
            raise PatternError("local_work must be >= 0")

    @property
    def n(self) -> int:
        """Number of memory requests in this superstep."""
        return int(self.addresses.size)

    def stats(
        self, n_banks: Optional[int] = None, bank_map: Optional[BankMap] = None
    ) -> PatternStats:
        """Contention statistics of this step's pattern."""
        return PatternStats.from_addresses(self.addresses, n_banks, bank_map)

    def time_dxbsp(
        self, params: DXBSPParams, bank_map: Optional[BankMap] = None
    ) -> float:
        """(d,x)-BSP predicted time, including local work."""
        return predict_scatter_dxbsp(params, self.addresses, bank_map) + self.local_work

    def time_bsp(self, params: BSPParams | DXBSPParams) -> float:
        """BSP predicted time, including local work."""
        return predict_scatter_bsp(params, self.addresses) + self.local_work


@dataclass(frozen=True)
class CostBreakdown:
    """Per-superstep and total predicted times for one program."""

    step_times: np.ndarray  # float64, one entry per superstep
    labels: tuple

    @property
    def total(self) -> float:
        """Sum over supersteps."""
        return float(self.step_times.sum())

    def by_label(self) -> dict:
        """Aggregate step times by their label (phase accounting)."""
        out: dict = {}
        for label, t in zip(self.labels, self.step_times):
            out[label] = out.get(label, 0.0) + float(t)
        return out


class Program:
    """An ordered sequence of supersteps emitted by an instrumented
    algorithm.

    Iteration yields :class:`Superstep` objects in program order.
    """

    def __init__(self, steps: Iterable[Superstep] = ()) -> None:
        self._steps: List[Superstep] = list(steps)
        for s in self._steps:
            if not isinstance(s, Superstep):
                raise PatternError(f"expected Superstep, got {type(s).__name__}")

    def append(self, step: Superstep) -> None:
        """Append one superstep."""
        if not isinstance(step, Superstep):
            raise PatternError(f"expected Superstep, got {type(step).__name__}")
        self._steps.append(step)

    def extend(self, steps: Iterable[Superstep]) -> None:
        """Append several supersteps in order."""
        for s in steps:
            self.append(s)

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[Superstep]:
        return iter(self._steps)

    def __getitem__(self, i) -> Superstep:
        return self._steps[i]

    @property
    def total_requests(self) -> int:
        """Total memory requests over all supersteps."""
        return sum(s.n for s in self._steps)

    def cost_dxbsp(
        self, params: DXBSPParams, bank_map: Optional[BankMap] = None
    ) -> CostBreakdown:
        """Predicted (d,x)-BSP cost of every superstep."""
        times = np.array(
            [s.time_dxbsp(params, bank_map) for s in self._steps], dtype=np.float64
        )
        return CostBreakdown(times, tuple(s.label for s in self._steps))

    def cost_bsp(self, params: BSPParams | DXBSPParams) -> CostBreakdown:
        """Predicted BSP cost of every superstep."""
        times = np.array(
            [s.time_bsp(params) for s in self._steps], dtype=np.float64
        )
        return CostBreakdown(times, tuple(s.label for s in self._steps))

    def max_location_contention(self) -> int:
        """Maximum location contention over all supersteps (program ``k``)."""
        k = 0
        for s in self._steps:
            st = s.stats()
            k = max(k, st.max_location_contention)
        return k

    def __add__(self, other: "Program") -> "Program":
        """Concatenate two programs (this one first)."""
        if not isinstance(other, Program):
            return NotImplemented
        return Program(list(self._steps) + list(other._steps))

    def filter(self, predicate) -> "Program":
        """Program containing only the supersteps where
        ``predicate(step)`` is true (order preserved)."""
        return Program([s for s in self._steps if predicate(s)])

    def by_label(self, fragment: str) -> "Program":
        """Supersteps whose label contains ``fragment`` — convenient for
        isolating one phase of an instrumented run."""
        return self.filter(lambda s: fragment in s.label)
