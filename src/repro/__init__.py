"""repro — reproduction of "Accounting for Memory Bank Contention and
Delay in High-Bandwidth Multiprocessors" (Blelloch, Gibbons, Matias,
Zagha; SPAA 1995).

The package provides, as importable subsystems:

* :mod:`repro.core` — the (d,x)-BSP model: parameters, superstep cost
  laws, contention statistics, program-level accounting.
* :mod:`repro.simulator` — a cycle-level memory-bank simulator standing in
  for the paper's Cray C90/J90 testbed (vectorized fast path + a
  cycle-accurate bounded-queue reference).
* :mod:`repro.mapping` — interleaved / random / polynomial-universal-hash
  bank mappings, module-map contention analysis, tail bounds.
* :mod:`repro.emulation` — EREW/CRCW/QRQW PRAMs and the QRQW → (d,x)-BSP
  work-preserving emulation (Theorems 5.1/5.2).
* :mod:`repro.algorithms` — instrumented binary search, random
  permutation, SpMV, connected components, radix sort, scans,
  multiprefix, list ranking.
* :mod:`repro.workloads` — hot-spot / entropy / section-confined pattern
  generators and trace capture.
* :mod:`repro.analysis` — predicted-vs-measured comparison and reporting.
* :mod:`repro.experiments` — one module per paper table/figure.
* :mod:`repro.serving` — micro-batching prediction/simulation service
  (in-process API, NDJSON CLI, optional HTTP endpoint).

Quickstart::

    from repro.core import crossover_contention
    from repro.simulator import CRAY_J90, simulate_scatter
    from repro.workloads import hotspot
    from repro.analysis import compare_scatter

    addr = hotspot(n=512 * 1024, k=4096, space=1 << 24, seed=0)
    cmp = compare_scatter(CRAY_J90, addr)
    print(cmp.bsp_time, cmp.dxbsp_time, cmp.simulated_time)
"""

from . import algorithms, analysis, core, emulation, mapping, simulator, workloads
from .vm import VectorMachine, VMArray
from .errors import (
    ContentionRuleError,
    MappingError,
    ParameterError,
    PatternError,
    ReproError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "core",
    "simulator",
    "mapping",
    "emulation",
    "algorithms",
    "workloads",
    "analysis",
    "VectorMachine",
    "VMArray",
    "ReproError",
    "ParameterError",
    "PatternError",
    "SimulationError",
    "MappingError",
    "ContentionRuleError",
    "__version__",
]
