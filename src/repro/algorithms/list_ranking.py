"""List ranking by pointer jumping [RM94] — future-work extension.

Reid-Miller's Cray C-90 list ranking is the other algorithm the paper's
conclusion queues up for contention analysis.  Wyllie-style pointer
jumping performs ``ceil(lg n)`` rounds of ``rank += rank[succ];
succ = succ[succ]`` — each round is a *gather at the successor pointers*.
On a proper list the successor function is injective (contention 1 at
every location except the tail, which accumulates pointers from the
growing suffix), so the interesting contention is the hot tail: after
round ``r`` up to ``2^r`` nodes point at the tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ParameterError, PatternError
from ..workloads.traces import TraceRecorder, maybe_record
from ._arena import Arena

__all__ = ["list_rank", "random_list"]


def list_rank(
    successor,
    recorder: Optional[TraceRecorder] = None,
    arena: Optional[Arena] = None,
) -> np.ndarray:
    """Distance of every node to the end of its list.

    Parameters
    ----------
    successor:
        int64 vector; ``successor[i]`` is ``i``'s next node, with the tail
        marked by ``successor[t] == t`` (self-loop sentinel).  Multiple
        disjoint lists are fine.

    Returns
    -------
    int64 ranks: the tail gets 0, its predecessor 1, and so on.
    """
    succ = np.asarray(successor, dtype=np.int64).copy()
    n = succ.size
    if succ.ndim != 1:
        raise PatternError(f"successor must be 1-D, got shape {succ.shape}")
    if n and (succ.min() < 0 or succ.max() >= n):
        raise PatternError("successor ids outside [0, n)")
    arena = arena or Arena()
    succ_base = arena.alloc(n, "succ")
    rank_base = arena.alloc(n, "rank")

    is_tail = succ == np.arange(n, dtype=np.int64)
    rank = (~is_tail).astype(np.int64)
    rounds = 0
    max_rounds = max(1, int(n).bit_length() + 2)
    while True:
        done = np.array_equal(succ, succ[succ])
        if recorder is not None:
            maybe_record(
                recorder, rank_base + succ, kind="gather",
                label=f"listrank/round{rounds}/read-rank",
            )
            maybe_record(
                recorder, succ_base + succ, kind="gather",
                label=f"listrank/round{rounds}/read-succ",
            )
        rank = rank + rank[succ]
        succ = succ[succ]
        rounds += 1
        if done:
            break
        if rounds > max_rounds:  # unreachable for list inputs; safety net
            raise PatternError(
                "pointer jumping did not converge within lg(n) rounds"
            )
    # A cycle collapses to self-loops under pointer jumping, so mere
    # convergence is not proof of list-ness: every final successor must be
    # one of the *original* tails.
    if n and not is_tail[succ].all():
        raise PatternError(
            "successor graph is not a set of lists (cycle detected)"
        )
    return rank


def random_list(n: int, seed=None) -> Tuple[np.ndarray, np.ndarray]:
    """A random singly-linked list over ``n`` nodes.

    Returns
    -------
    (successor, order):
        ``successor`` in the :func:`list_rank` convention; ``order`` is
        the head-to-tail node sequence (for oracle checking).
    """
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n).astype(np.int64)
    succ = np.empty(n, dtype=np.int64)
    succ[order[:-1]] = order[1:]
    succ[order[-1]] = order[-1]
    return succ, order
