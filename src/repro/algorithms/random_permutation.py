"""Random permutation generation: QRQW dart-throwing vs EREW sort-based
(paper Section 6, Figure 11).

**QRQW algorithm** [GMR94a] — each element ``i`` draws a random index and
writes its self-index into a destination array at that location.  Elements
with no collision are done and drop out; collided elements repeat in
another round, until none remain.  The values written into the destination
are then packed into contiguous positions, producing the permutation.  It
runs in ``O(n/p + lg n)`` QRQW time: rounds shrink geometrically and the
per-round contention is small whp — contention *allowed but accounted*.

**EREW baseline** — tag each element with a random key and radix-sort
[ZB91]; the sorted order is the permutation.  Contention-free but pays the
full multi-pass sort every time.

Both produce a permutation of ``0..n-1`` (the property the tests check);
uniformity is approximate for both in the usual ways (collision resolution
order / duplicate keys).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .._util import as_rng
from ..errors import ParameterError
from ..workloads.traces import TraceRecorder, maybe_record
from ._arena import Arena
from .radix_sort import radix_sort

__all__ = ["qrqw_random_permutation", "erew_random_permutation", "DartStats"]


@dataclass(frozen=True)
class DartStats:
    """Shape of one dart-throwing run.

    Attributes
    ----------
    rounds:
        Number of dart rounds until every element placed.
    per_round_active:
        Elements still active at the start of each round.
    per_round_contention:
        Maximum slot contention in each round's scatter.
    """

    rounds: int
    per_round_active: Tuple[int, ...]
    per_round_contention: Tuple[int, ...]

    @property
    def total_darts(self) -> int:
        """Total scatter operations over all rounds."""
        return int(sum(self.per_round_active))


def qrqw_random_permutation(
    n: int,
    slots_factor: float = 1.0,
    seed=None,
    recorder: Optional[TraceRecorder] = None,
    arena: Optional[Arena] = None,
    max_rounds: int = 10_000,
) -> Tuple[np.ndarray, DartStats]:
    """Generate a permutation of ``0..n-1`` by dart throwing.

    Parameters
    ----------
    n:
        Permutation size.
    slots_factor:
        Each round's fresh destination region holds
        ``ceil(slots_factor * survivors)`` slots (factor 1 matches the
        paper's size-``n`` first round; a larger factor lowers collision
        probability, trading memory for fewer rounds — an ablation).
    seed / recorder / arena:
        RNG seed and optional instrumentation.

    Returns
    -------
    (perm, stats):
        ``perm`` is a permutation of ``0..n-1``; ``stats`` records the
        round structure.
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if slots_factor < 1.0:
        raise ParameterError(f"slots_factor must be >= 1, got {slots_factor}")
    rng = as_rng(seed)
    arena = arena or Arena()

    # Each round throws the still-active elements into a *fresh* destination
    # region sized proportionally to the survivors; an element whose dart is
    # unique in its round is done.  Survivor counts shrink geometrically
    # (collision probability is bounded below 1 for factor >= 1), giving
    # the O(lg n) round count the QRQW analysis charges.
    perm = np.empty(max(n, 1), dtype=np.int64)[:n]
    active = np.arange(n, dtype=np.int64)
    next_rank = 0
    per_round_active = []
    per_round_contention = []
    rounds = 0

    while active.size:
        if rounds >= max_rounds:
            raise ParameterError(
                f"dart throwing exceeded {max_rounds} rounds (n={n})"
            )
        m = active.size
        n_slots = max(m, int(np.ceil(slots_factor * m)))
        dest_base = arena.alloc(n_slots, f"dest/round{rounds}")
        darts = rng.integers(0, n_slots, size=m, dtype=np.int64)
        per_round_active.append(m)
        _, counts = np.unique(darts, return_counts=True)
        per_round_contention.append(int(counts.max()))
        if recorder is not None:
            # The round's scatter (write self-index at the dart location);
            # its recorded contention is the collision multiplicity.
            maybe_record(
                recorder, dest_base + darts, kind="scatter",
                label=f"darts/round{rounds}/throw",
            )
            # Readback to learn who collided (gather, same addresses).
            maybe_record(
                recorder, dest_base + darts, kind="gather",
                label=f"darts/round{rounds}/check",
            )
        # An element is done iff its dart hit a slot nobody else hit.
        slot_count = np.bincount(darts, minlength=n_slots)
        unique_dart = slot_count[darts] == 1
        placed = active[unique_dart]
        placed_slots = darts[unique_dart]
        # Pack this round's winners: rank of each occupied slot within the
        # round's region (an exclusive scan), offset by ranks already dealt.
        slot_rank = np.cumsum(slot_count == 1) - 1
        if recorder is not None:
            maybe_record(
                recorder,
                dest_base + np.arange(n_slots, dtype=np.int64),
                kind="read",
                label=f"darts/round{rounds}/pack-scan",
            )
        perm[placed] = next_rank + slot_rank[placed_slots]
        next_rank += placed.size
        active = active[~unique_dart]
        rounds += 1

    stats = DartStats(
        rounds=rounds,
        per_round_active=tuple(per_round_active),
        per_round_contention=tuple(per_round_contention),
    )
    return perm, stats


def erew_random_permutation(
    n: int,
    key_bits: int = 48,
    seed=None,
    recorder: Optional[TraceRecorder] = None,
    arena: Optional[Arena] = None,
) -> np.ndarray:
    """Generate a permutation of ``0..n-1`` by sorting random keys with
    the instrumented radix sort (the EREW baseline of Figure 11)."""
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if not (1 <= key_bits <= 62):
        raise ParameterError(f"key_bits must be in [1, 62], got {key_bits}")
    rng = as_rng(seed)
    keys = rng.integers(0, np.int64(1) << key_bits, size=n, dtype=np.int64)
    _, order, _ = radix_sort(
        keys, bits=key_bits, recorder=recorder, arena=arena or Arena()
    )
    # order is where each rank's element came from; its inverse is an
    # equally random permutation, but `order` itself is already one.
    return order
