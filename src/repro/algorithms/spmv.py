"""Sparse matrix–vector multiplication with segmented sums [BHZ93]
(paper Section 6, Figure 12).

The implementation mirrors the paper's: compressed-row storage holding,
for each row, its non-zero values with their column indices; the product
is computed by *gathering* the input vector at the column indices,
multiplying elementwise, and reducing each row with a segmented sum — a
formulation whose latency is hidden regardless of matrix structure.

For contention analysis the decisive memory operation is the **gather of
the input vector by column index**: a column appearing in ``c`` rows is
read ``c`` times in one superstep, so a *dense column* of length ``c``
makes the location contention ``k = c``.  Figure 12 sweeps that length and
shows the BSP prediction staying flat (wrong) while the (d,x)-BSP tracks
the measured rise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .._util import as_rng
from ..errors import ParameterError, PatternError
from ..workloads.traces import TraceRecorder, maybe_record
from ._arena import Arena
from .scan import segmented_sum

__all__ = ["CSRMatrix", "random_csr", "dense_column_csr", "spmv"]


@dataclass(frozen=True)
class CSRMatrix:
    """Compressed sparse row matrix.

    Attributes
    ----------
    indptr:
        int64, length ``n_rows + 1``; row ``r`` owns entries
        ``indptr[r]:indptr[r+1]``.
    indices:
        int64 column index per non-zero.
    data:
        float64 value per non-zero.
    shape:
        ``(n_rows, n_cols)``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: Tuple[int, int]

    def __post_init__(self) -> None:
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise ParameterError(f"shape must be non-negative, got {self.shape}")
        if self.indptr.ndim != 1 or self.indptr.size != n_rows + 1:
            raise PatternError("indptr must have length n_rows + 1")
        if self.indptr[0] != 0 or (np.diff(self.indptr) < 0).any():
            raise PatternError("indptr must start at 0 and be non-decreasing")
        if self.indices.shape != self.data.shape or self.indices.ndim != 1:
            raise PatternError("indices and data must be matching 1-D arrays")
        if self.indptr[-1] != self.indices.size:
            raise PatternError("indptr[-1] must equal nnz")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= n_cols
        ):
            raise PatternError("column indices outside [0, n_cols)")

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.size)

    def row_ids(self) -> np.ndarray:
        """Per-entry row id (the segmented-sum segment ids)."""
        return np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )

    def to_dense(self) -> np.ndarray:
        """Dense ndarray (tests/small matrices only).  Duplicate entries
        accumulate, matching SpMV semantics."""
        out = np.zeros(self.shape, dtype=np.float64)
        rows = self.row_ids()
        np.add.at(out, (rows, self.indices), self.data)
        return out

    def max_column_count(self) -> int:
        """Largest number of entries in one column — the SpMV gather's
        location contention ``k``."""
        if self.nnz == 0:
            return 0
        return int(np.bincount(self.indices, minlength=self.shape[1]).max())


def random_csr(
    n_rows: int, n_cols: int, nnz_per_row: int, seed=None
) -> CSRMatrix:
    """A random matrix with exactly ``nnz_per_row`` entries per row,
    columns drawn uniformly (duplicates within a row allowed — they
    accumulate, as in the paper's gather-based formulation)."""
    if n_rows < 0 or n_cols < 1 or nnz_per_row < 0:
        raise ParameterError("need n_rows >= 0, n_cols >= 1, nnz_per_row >= 0")
    rng = as_rng(seed)
    nnz = n_rows * nnz_per_row
    indptr = np.arange(0, nnz + 1, max(nnz_per_row, 1), dtype=np.int64)
    if nnz_per_row == 0:
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
    indices = rng.integers(0, n_cols, size=nnz, dtype=np.int64)
    data = rng.standard_normal(nnz)
    return CSRMatrix(indptr=indptr, indices=indices, data=data,
                     shape=(n_rows, n_cols))


def dense_column_csr(
    n_rows: int,
    n_cols: int,
    nnz_per_row: int,
    dense_len: int,
    dense_col: int = 0,
    seed=None,
) -> CSRMatrix:
    """The Figure-12 workload: random matrix plus one *dense column* —
    column ``dense_col`` additionally appears in the first ``dense_len``
    rows, so the SpMV gather has location contention ``>= dense_len``."""
    if not (0 <= dense_len <= n_rows):
        raise ParameterError(f"need 0 <= dense_len <= n_rows, got {dense_len}")
    if not (0 <= dense_col < n_cols):
        raise ParameterError("dense_col outside [0, n_cols)")
    rng = as_rng(seed)
    base = random_csr(n_rows, n_cols, nnz_per_row, rng)
    counts = np.diff(base.indptr)
    extra = np.zeros(n_rows, dtype=np.int64)
    extra[:dense_len] = 1
    new_counts = counts + extra
    indptr = np.concatenate([[0], np.cumsum(new_counts)]).astype(np.int64)
    nnz = int(indptr[-1])
    indices = np.empty(nnz, dtype=np.int64)
    data = np.empty(nnz, dtype=np.float64)
    # Splice the dense-column entry at the front of each of the first
    # dense_len rows.
    old_rows = base.row_ids()
    # Position of old entry j within its row, shifted by the dense entry.
    within = np.arange(base.nnz, dtype=np.int64) - base.indptr[old_rows]
    dest = indptr[old_rows] + extra[old_rows] + within
    indices[dest] = base.indices
    data[dest] = base.data
    dense_pos = indptr[:dense_len]
    indices[dense_pos] = dense_col
    data[dense_pos] = rng.standard_normal(dense_len)
    return CSRMatrix(indptr=indptr, indices=indices, data=data,
                     shape=(n_rows, n_cols))


def spmv(
    matrix: CSRMatrix,
    x,
    recorder: Optional[TraceRecorder] = None,
    arena: Optional[Arena] = None,
) -> np.ndarray:
    """Compute ``y = A @ x`` by gather / multiply / segmented-sum.

    Records (when instrumented): the column-index read (regular), the
    input-vector gather (the contention-carrying step), the segmented-sum
    pass (regular), and the result scatter (a permutation).
    """
    xv = np.asarray(x, dtype=np.float64)
    n_rows, n_cols = matrix.shape
    if xv.shape != (n_cols,):
        raise PatternError(f"x must have shape ({n_cols},), got {xv.shape}")
    arena = arena or Arena()
    if recorder is not None:
        col_base = arena.alloc(matrix.nnz, "cols")
        x_base = arena.alloc(n_cols, "x")
        val_base = arena.alloc(matrix.nnz, "vals")
        y_base = arena.alloc(n_rows, "y")
        nz = np.arange(matrix.nnz, dtype=np.int64)
        maybe_record(recorder, col_base + nz, kind="read", label="spmv/read-cols")
        maybe_record(
            recorder, x_base + matrix.indices, kind="gather", label="spmv/gather-x"
        )
        maybe_record(recorder, val_base + nz, kind="read", label="spmv/read-vals")
        maybe_record(recorder, val_base + nz, kind="read", label="spmv/segsum")
        maybe_record(
            recorder,
            y_base + np.arange(n_rows, dtype=np.int64),
            kind="scatter",
            label="spmv/write-y",
        )
    gathered = xv[matrix.indices] * matrix.data
    return segmented_sum(gathered, matrix.row_ids(), n_rows)
