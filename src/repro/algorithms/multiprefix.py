"""Multiprefix operation [She93] — future-work extension.

The paper's conclusion lists multiprefix among the algorithms whose
contention properties the authors were analyzing next.  A multiprefix
takes per-element ``(key, value)`` pairs and returns, for each element,
the sum of values of *earlier* elements with the same key (plus the
per-key totals) — the workhorse behind histogramming and radix-sort
ranking.  Its contention profile is exactly the key-multiplicity
distribution: every element with key ``k`` touches key ``k``'s cell.

Implemented here in the standard vector-machine way: stable sort by key,
segmented exclusive scan, scatter back — the instrumented trace exposes
both the (contention-free) sort-based path and the direct
(contention-``k``) atomic path for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ParameterError, PatternError
from ..workloads.traces import TraceRecorder, maybe_record
from ._arena import Arena
from .radix_sort import radix_sort
from .scan import segmented_exclusive_scan

__all__ = ["multiprefix", "multiprefix_direct"]


def _check_inputs(keys, values, n_keys: int) -> Tuple[np.ndarray, np.ndarray]:
    k = np.asarray(keys, dtype=np.int64)
    v = np.asarray(values)
    if k.ndim != 1 or v.shape != k.shape:
        raise PatternError("keys and values must be matching 1-D arrays")
    if n_keys < 1:
        raise ParameterError(f"n_keys must be >= 1, got {n_keys}")
    if k.size and (k.min() < 0 or k.max() >= n_keys):
        raise PatternError("keys outside [0, n_keys)")
    return k, v


def multiprefix(
    keys,
    values,
    n_keys: int,
    recorder: Optional[TraceRecorder] = None,
    arena: Optional[Arena] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort-based multiprefix.

    Returns
    -------
    (prefix, totals):
        ``prefix[i]`` = sum of ``values[j]`` for ``j < i`` with
        ``keys[j] == keys[i]``; ``totals[k]`` = sum of values with key
        ``k``.
    """
    k, v = _check_inputs(keys, values, n_keys)
    arena = arena or Arena()
    bits = max(1, int(n_keys - 1).bit_length())
    _, order, _ = radix_sort(k, bits=bits, recorder=recorder, arena=arena)
    sorted_k = k[order]
    sorted_v = v[order]
    scanned = segmented_exclusive_scan(sorted_v, sorted_k, op="add")
    if recorder is not None:
        v_base = arena.alloc(k.size, "mp/values")
        maybe_record(
            recorder,
            v_base + np.arange(k.size, dtype=np.int64),
            kind="read",
            label="multiprefix/segscan",
        )
    prefix = np.empty_like(scanned)
    prefix[order] = scanned
    if recorder is not None:
        out_base = arena.alloc(k.size, "mp/out")
        maybe_record(
            recorder, out_base + order, kind="scatter", label="multiprefix/unpermute"
        )
    totals = np.bincount(k, weights=np.asarray(v, dtype=np.float64),
                         minlength=n_keys)
    if np.issubdtype(v.dtype, np.integer):
        totals = totals.astype(np.int64)
        prefix = prefix.astype(np.int64)
    return prefix, totals


def multiprefix_direct(
    keys,
    values,
    n_keys: int,
    recorder: Optional[TraceRecorder] = None,
    arena: Optional[Arena] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Direct (queued-write) multiprefix: every element updates its key's
    cell in request order — one superstep whose contention equals the
    maximum key multiplicity.  This is the QRQW-friendly formulation; on
    the (d,x)-BSP it costs ``~ d * max_multiplicity`` but skips the sort
    entirely, the same trade the paper studies for the permutation
    algorithm.
    """
    k, v = _check_inputs(keys, values, n_keys)
    arena = arena or Arena()
    if recorder is not None:
        cell_base = arena.alloc(n_keys, "mp/cells")
        maybe_record(
            recorder, cell_base + k, kind="scatter", label="multiprefix-direct/update"
        )
    # Serial-semantics prefix within equal keys, computed vectorized:
    # stable argsort groups equal keys in request order.
    order = np.argsort(k, kind="stable")
    sorted_v = np.asarray(v)[order]
    scanned = segmented_exclusive_scan(sorted_v, k[order], op="add")
    prefix = np.empty_like(scanned)
    prefix[order] = scanned
    totals = np.bincount(k, weights=np.asarray(v, dtype=np.float64),
                         minlength=n_keys)
    if np.issubdtype(np.asarray(v).dtype, np.integer):
        totals = totals.astype(np.int64)
        prefix = prefix.astype(np.int64)
    return prefix, totals
