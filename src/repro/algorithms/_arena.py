"""A trivial bump allocator for trace addresses.

Instrumented algorithms need each logical array to occupy a distinct
region of the simulated address space so their recorded patterns have
realistic bank footprints.  :class:`Arena` hands out disjoint base
addresses; nothing is ever freed (traces are short-lived).
"""

from __future__ import annotations

from ..errors import ParameterError

__all__ = ["Arena"]


class Arena:
    """Bump allocator over the simulated word-addressed memory."""

    def __init__(self, base: int = 0, align: int = 64) -> None:
        if base < 0:
            raise ParameterError(f"base must be >= 0, got {base}")
        if align < 1:
            raise ParameterError(f"align must be >= 1, got {align}")
        self._next = int(base)
        self._align = int(align)
        self._regions: dict[str, tuple[int, int]] = {}

    def alloc(self, size: int, name: str = "") -> int:
        """Reserve ``size`` words; returns the region's base address."""
        if size < 0:
            raise ParameterError(f"size must be >= 0, got {size}")
        # Round the base up so regions start on an alignment boundary;
        # keeps region→bank phase effects independent across arrays.
        base = -(-self._next // self._align) * self._align
        self._next = base + int(size)
        if name:
            self._regions[name] = (base, int(size))
        return base

    def region(self, name: str) -> tuple[int, int]:
        """(base, size) of a named region."""
        return self._regions[name]

    @property
    def used(self) -> int:
        """One past the highest address handed out."""
        return self._next
