"""Parallel merging of sorted sequences by cross-ranking.

"Binary searching is an important substep in several algorithms for
sorting and merging (e.g. [RV87])" — the QRQW binary search of
:mod:`repro.algorithms.binary_search` is exactly the substep: merging
``a`` and ``b`` amounts to ranking every element of each sequence in the
other, then scattering to ``position = own_index + cross_rank`` (a
permutation, contention 1).  The ranking searches are where contention
lives, and the replicated-tree trick bounds it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import PatternError
from ..workloads.traces import TraceRecorder, maybe_record
from ._arena import Arena
from .binary_search import build_implicit_tree, qrqw_binary_search

__all__ = ["merge_sorted"]


def merge_sorted(
    a,
    b,
    target_contention: int = 8,
    seed=None,
    recorder: Optional[TraceRecorder] = None,
    arena: Optional[Arena] = None,
) -> np.ndarray:
    """Stable merge of two sorted int arrays.

    Ties resolve ``a``-before-``b`` (the stable convention).  When
    instrumented, the trace contains the two replicated-tree ranking
    descents (bounded contention ~``target_contention`` per level) and
    the final permutation scatter.
    """
    av = np.asarray(a, dtype=np.int64)
    bv = np.asarray(b, dtype=np.int64)
    for name, arr in (("a", av), ("b", bv)):
        if arr.ndim != 1:
            raise PatternError(f"{name} must be 1-D, got shape {arr.shape}")
        if arr.size and (np.diff(arr) < 0).any():
            raise PatternError(f"{name} must be sorted ascending")
    arena = arena or Arena()

    # Cross ranks (stable): a-elements precede equal b-elements.
    rank_a_in_b = np.searchsorted(bv, av, side="left")
    rank_b_in_a = np.searchsorted(av, bv, side="right")

    if recorder is not None:
        # The ranking is performed by replicated-tree descents; run the
        # instrumented searches for their (realistic) traces.
        if bv.size:
            with recorder.phase("merge/rank-a-in-b"):
                qrqw_binary_search(
                    build_implicit_tree(bv), av, target_contention,
                    seed=seed, recorder=recorder, arena=arena,
                )
        if av.size:
            with recorder.phase("merge/rank-b-in-a"):
                qrqw_binary_search(
                    build_implicit_tree(av), bv, target_contention,
                    seed=seed, recorder=recorder, arena=arena,
                )

    out = np.empty(av.size + bv.size, dtype=np.int64)
    pos_a = np.arange(av.size, dtype=np.int64) + rank_a_in_b
    pos_b = np.arange(bv.size, dtype=np.int64) + rank_b_in_a
    out[pos_a] = av
    out[pos_b] = bv
    if recorder is not None and out.size:
        out_base = arena.alloc(out.size, "merge/out")
        maybe_record(
            recorder,
            out_base + np.concatenate([pos_a, pos_b]),
            kind="scatter",
            label="merge/place",
        )
    return out
