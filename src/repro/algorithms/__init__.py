"""Instrumented parallel algorithms from the paper's Section 6 (plus the
future-work extensions its conclusion names), with the scan / radix-sort
substrates they build on."""

from ._arena import Arena
from .compaction import erew_compact, qrqw_compact
from .maximum import erew_maximum, qrqw_maximum, tournament_rounds
from .merge import merge_sorted
from .binary_search import (
    MIN_SENTINEL,
    build_implicit_tree,
    erew_binary_search,
    qrqw_binary_search,
    replication_schedule,
)
from .connected_components import (
    CCStats,
    connected_components,
    grid_edges,
    random_graph_edges,
    star_edges,
)
from .list_ranking import list_rank, random_list
from .multiprefix import multiprefix, multiprefix_direct
from .radix_sort import RadixSortStats, radix_sort
from .random_permutation import (
    DartStats,
    erew_random_permutation,
    qrqw_random_permutation,
)
from .scan import (
    exclusive_scan,
    inclusive_scan,
    segment_ids_from_flags,
    segmented_exclusive_scan,
    segmented_inclusive_scan,
    segmented_max,
    segmented_sum,
)
from .spmv import CSRMatrix, dense_column_csr, random_csr, spmv

__all__ = [
    "Arena",
    "exclusive_scan",
    "inclusive_scan",
    "segment_ids_from_flags",
    "segmented_inclusive_scan",
    "segmented_exclusive_scan",
    "segmented_sum",
    "segmented_max",
    "radix_sort",
    "RadixSortStats",
    "build_implicit_tree",
    "replication_schedule",
    "qrqw_binary_search",
    "erew_binary_search",
    "MIN_SENTINEL",
    "qrqw_random_permutation",
    "erew_random_permutation",
    "DartStats",
    "CSRMatrix",
    "random_csr",
    "dense_column_csr",
    "spmv",
    "connected_components",
    "CCStats",
    "random_graph_edges",
    "star_edges",
    "grid_edges",
    "multiprefix",
    "multiprefix_direct",
    "list_rank",
    "random_list",
    "qrqw_compact",
    "erew_compact",
    "qrqw_maximum",
    "erew_maximum",
    "tournament_rounds",
    "merge_sorted",
]
