"""Scan and segmented-scan primitives [BHZ93].

Segmented scans are the substrate of the paper's sparse-matrix kernel:
they let a vector machine reduce each row of a CSR matrix regardless of
row-length skew, with perfectly regular (contention-1) memory traffic —
the latency is hidden "regardless of the structure of the matrix".  The
contention-interesting traffic in SpMV is the *gather* of the input
vector, not these scans.

All operations are NumPy-vectorized; segments are described either by
per-element segment ids (non-decreasing not required) or by head flags.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..errors import ParameterError, PatternError

__all__ = [
    "exclusive_scan",
    "inclusive_scan",
    "segment_ids_from_flags",
    "segmented_inclusive_scan",
    "segmented_exclusive_scan",
    "segmented_sum",
    "segmented_max",
]

ScanOp = Literal["add", "max", "min"]


def _identity(dtype, op: ScanOp):
    """The op's identity element in the value dtype."""
    if op == "add":
        return 0
    integral = np.issubdtype(dtype, np.integer)
    if op == "max":
        return np.iinfo(dtype).min if integral else -np.inf
    if op == "min":
        return np.iinfo(dtype).max if integral else np.inf
    raise ParameterError(f"unknown scan op {op!r}")


def inclusive_scan(values, op: ScanOp = "add") -> np.ndarray:
    """Inclusive scan (running reduction) of ``values`` under ``op``."""
    v = np.asarray(values)
    if v.ndim != 1:
        raise PatternError(f"values must be 1-D, got shape {v.shape}")
    if op == "add":
        return np.cumsum(v)
    if op == "max":
        return np.maximum.accumulate(v) if v.size else v.copy()
    if op == "min":
        return np.minimum.accumulate(v) if v.size else v.copy()
    raise ParameterError(f"unknown scan op {op!r}")


def exclusive_scan(values, op: ScanOp = "add") -> np.ndarray:
    """Exclusive scan: element ``i`` gets the reduction of ``values[:i]``.

    The identity (0 for add, the dtype minimum for max) fills position 0.
    """
    v = np.asarray(values)
    if v.ndim != 1:
        raise PatternError(f"values must be 1-D, got shape {v.shape}")
    out = np.empty_like(v)
    if v.size == 0:
        return out
    inc = inclusive_scan(v, op)
    out[1:] = inc[:-1]
    out[0] = _identity(v.dtype, op)
    return out


def segment_ids_from_flags(flags) -> np.ndarray:
    """Convert head flags (1 starts a segment) to 0-based segment ids.

    The first element is treated as a segment head regardless of its flag,
    so every element belongs to some segment.
    """
    f = np.asarray(flags).astype(bool)
    if f.ndim != 1:
        raise PatternError(f"flags must be 1-D, got shape {f.shape}")
    if f.size == 0:
        return np.zeros(0, dtype=np.int64)
    ids = np.cumsum(f.astype(np.int64))
    return ids - ids[0] if f[0] else ids  # normalize to start at 0


def _check_segments(values: np.ndarray, seg: np.ndarray) -> None:
    if values.shape != seg.shape:
        raise PatternError("values and segment ids must have matching shapes")
    if seg.size and (np.diff(seg) < 0).any():
        raise PatternError("segment ids must be non-decreasing")
    if seg.size and seg[0] < 0:
        raise PatternError("segment ids must be non-negative")


def segmented_inclusive_scan(values, segment_ids, op: ScanOp = "add") -> np.ndarray:
    """Inclusive scan restarting at each segment boundary.

    Segments must be contiguous (ids non-decreasing).  Vectorized: an
    unsegmented scan is corrected per segment (add) or computed over
    per-segment lifted values (max) — no Python loop over segments.
    """
    v = np.asarray(values)
    seg = np.asarray(segment_ids, dtype=np.int64)
    _check_segments(v, seg)
    if v.size == 0:
        return v.copy()
    starts = np.empty(v.size, dtype=bool)
    starts[0] = True
    np.not_equal(seg[1:], seg[:-1], out=starts[1:])
    if op == "add":
        inc = np.cumsum(v)
        # Subtract, from every element, the running total just before its
        # segment started: forward-fill each start's index to its segment.
        start_idx = np.maximum.accumulate(np.where(starts, np.arange(v.size), 0))
        return inc - (inc - v)[start_idx]
    if op in ("max", "min"):
        sign = 1.0 if op == "max" else -1.0
        vf = sign * v.astype(np.float64)
        span = float(vf.max() - vf.min()) + 1.0
        seg_norm = np.cumsum(starts) - 1
        lifted = vf + seg_norm * span
        run = sign * (np.maximum.accumulate(lifted) - seg_norm * span)
        return run.astype(v.dtype) if np.issubdtype(v.dtype, np.integer) else run
    raise ParameterError(f"unknown scan op {op!r}")


def segmented_exclusive_scan(values, segment_ids, op: ScanOp = "add") -> np.ndarray:
    """Exclusive segmented scan: each segment starts from the identity."""
    v = np.asarray(values)
    seg = np.asarray(segment_ids, dtype=np.int64)
    _check_segments(v, seg)
    inc = segmented_inclusive_scan(v, seg, op)
    if v.size == 0:
        return inc
    if op == "add":
        return inc - v
    # max/min: shift within segments, identity at heads.
    out = np.empty_like(inc)
    out[1:] = inc[:-1]
    starts = np.empty(v.size, dtype=bool)
    starts[0] = True
    np.not_equal(seg[1:], seg[:-1], out=starts[1:])
    out[starts] = _identity(v.dtype, op)
    return out


def segmented_sum(values, segment_ids, n_segments: int) -> np.ndarray:
    """Total of each segment (ids need not be sorted here; bincount)."""
    v = np.asarray(values)
    seg = np.asarray(segment_ids, dtype=np.int64)
    if v.shape != seg.shape:
        raise PatternError("values and segment ids must have matching shapes")
    if n_segments < 0 or (seg.size and (seg.min() < 0 or seg.max() >= n_segments)):
        raise PatternError("segment ids must lie in [0, n_segments)")
    return np.bincount(seg, weights=v, minlength=n_segments)


def segmented_max(values, segment_ids, n_segments: int) -> np.ndarray:
    """Maximum of each segment; empty segments get the dtype identity."""
    v = np.asarray(values)
    seg = np.asarray(segment_ids, dtype=np.int64)
    if v.shape != seg.shape:
        raise PatternError("values and segment ids must have matching shapes")
    if n_segments < 0 or (seg.size and (seg.min() < 0 or seg.max() >= n_segments)):
        raise PatternError("segment ids must lie in [0, n_segments)")
    ident = np.iinfo(v.dtype).min if np.issubdtype(v.dtype, np.integer) else -np.inf
    out = np.full(n_segments, ident, dtype=v.dtype if v.size else np.float64)
    np.maximum.at(out, seg, v)
    return out
