"""Instrumented LSD radix sort [ZB91] — the EREW baseline substrate.

Zagha and Blelloch's radix sort is the highly-optimized EREW-style
algorithm the paper's random-permutation experiment compares against (and
"currently the fastest implementation of the NAS sorting benchmark"
[BBDS94] at the time).  Its memory behaviour per pass:

1. **histogram** — each (virtual) processor counts digit occurrences in a
   *private* histogram (addresses ``hist_base + proc*R + digit``); the
   privatization is precisely how the EREW algorithm avoids location
   contention, at the price of ``p*R`` extra space and a histogram-merge
   scan.
2. **rank** — exclusive scan over the merged histograms (regular traffic).
3. **permute** — scatter keys to their ranks: a permutation, contention 1.

So a radix sort is (by design) an almost contention-free program — which
is exactly why the dart-throwing QRQW permutation algorithm, which accepts
some well-accounted contention, can beat it (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .._util import as_rng
from ..errors import ParameterError, PatternError
from ..workloads.traces import TraceRecorder, maybe_record
from ._arena import Arena

__all__ = ["radix_sort", "RadixSortStats"]


@dataclass(frozen=True)
class RadixSortStats:
    """Shape of one radix-sort run: passes and per-pass element count."""

    n: int
    bits: int
    radix_bits: int
    n_passes: int


def radix_sort(
    keys,
    bits: Optional[int] = None,
    radix_bits: int = 8,
    p: int = 8,
    recorder: Optional[TraceRecorder] = None,
    arena: Optional[Arena] = None,
) -> Tuple[np.ndarray, np.ndarray, RadixSortStats]:
    """Sort non-negative integer ``keys`` LSD-first.

    Parameters
    ----------
    keys:
        1-D non-negative int array.
    bits:
        Key width; defaults to the width of the maximum key.
    radix_bits:
        Digit width per pass (``R = 2**radix_bits`` buckets).
    p:
        Virtual processors for histogram privatization (affects only the
        recorded trace, not the result).
    recorder / arena:
        Optional instrumentation (see :mod:`repro.workloads.traces`).

    Returns
    -------
    (sorted_keys, order, stats):
        ``sorted_keys == keys[order]``; ``order`` is the stable sorting
        permutation.
    """
    k = np.asarray(keys)
    if k.ndim != 1:
        raise PatternError(f"keys must be 1-D, got shape {k.shape}")
    if not np.issubdtype(k.dtype, np.integer):
        raise PatternError(f"keys must be integers, got dtype {k.dtype}")
    if k.size and int(k.min()) < 0:
        raise PatternError("keys must be non-negative")
    if radix_bits < 1 or radix_bits > 24:
        raise ParameterError(f"radix_bits must be in [1, 24], got {radix_bits}")
    if p < 1:
        raise ParameterError(f"p must be >= 1, got {p}")

    n = k.size
    if bits is None:
        bits = max(1, int(k.max()).bit_length()) if n else 1
    if bits < 1:
        raise ParameterError(f"bits must be >= 1, got {bits}")
    n_passes = -(-bits // radix_bits)
    R = 1 << radix_bits
    stats = RadixSortStats(n=n, bits=bits, radix_bits=radix_bits, n_passes=n_passes)

    arena = arena or Arena()
    key_base = arena.alloc(n, "keys")
    out_base = arena.alloc(n, "out")
    hist_base = arena.alloc(p * R, "hist")

    order = np.arange(n, dtype=np.int64)
    work = k.astype(np.int64, copy=True)
    proc = order % p  # element -> virtual processor (round-robin dealing)

    for pass_no in range(n_passes):
        shift = pass_no * radix_bits
        digit = (work >> shift) & (R - 1)
        if recorder is not None:
            # Histogram build: each processor scatters increments into its
            # private histogram row.  Contention-free across processors.
            maybe_record(
                recorder,
                hist_base + proc * R + digit,
                kind="scatter",
                label=f"radix/pass{pass_no}/histogram",
            )
            # Histogram merge + rank: one regular pass over p*R words.
            maybe_record(
                recorder,
                hist_base + np.arange(p * R, dtype=np.int64),
                kind="read",
                label=f"radix/pass{pass_no}/rank-scan",
            )
        # Stable counting-sort pass (argsort(kind="stable") on a small-
        # alphabet digit array is a counting sort under the hood).
        perm = np.argsort(digit, kind="stable")
        work = work[perm]
        order = order[perm]
        if recorder is not None:
            # Permute: scatter each key to its rank — a permutation write.
            rank = np.empty(n, dtype=np.int64)
            rank[perm] = np.arange(n, dtype=np.int64)
            maybe_record(
                recorder,
                out_base + rank,
                kind="scatter",
                label=f"radix/pass{pass_no}/permute",
            )
            maybe_record(
                recorder,
                key_base + np.arange(n, dtype=np.int64),
                kind="read",
                label=f"radix/pass{pass_no}/read-keys",
            )

    return work, order, stats
