"""Maximum finding by queued tournaments — a QRQW-style reduction.

The QRQW cost rule changes the optimal reduction tree.  An EREW reduction
must use fan-in 2 (anything higher is a concurrent access): ``lg n``
rounds.  The queue rule *allows* fan-in ``f`` at a cost of ``f`` per
round, giving ``log_f n`` rounds of cost ``f`` — total ``f·log_f n``,
minimized (classically) at ``f ~ lg n / lg lg n``.  On the (d,x)-BSP the
per-round cost becomes ``max(g·ceil(m/p), d·f)``: once the round size
``m`` drops under ``p·d·f/g``, the ``d·f`` term is pure serialization and
the fan-in sweet spot shifts — the ablation bench maps that surface.

Both variants return the true maximum (tested against ``np.max``) and
record one gather+scatter superstep per round when instrumented.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ParameterError, PatternError
from ..workloads.traces import TraceRecorder, maybe_record
from ._arena import Arena

__all__ = ["qrqw_maximum", "erew_maximum", "tournament_rounds"]


def tournament_rounds(n: int, fan_in: int) -> int:
    """Rounds a fan-in-``fan_in`` tournament needs to reduce ``n`` values
    to one: ``ceil(log_f n)`` (0 for n <= 1)."""
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if fan_in < 2:
        raise ParameterError(f"fan_in must be >= 2, got {fan_in}")
    rounds = 0
    m = n
    while m > 1:
        m = -(-m // fan_in)
        rounds += 1
    return rounds


def qrqw_maximum(
    values,
    fan_in: int = 8,
    recorder: Optional[TraceRecorder] = None,
    arena: Optional[Arena] = None,
) -> np.ndarray:
    """Maximum of ``values`` by a fan-in-``fan_in`` queued tournament.

    Each round partitions the survivors into groups of ``fan_in``; every
    member writes its value at the group's cell (queued writes, contention
    ``fan_in``) and the group's maximum survives.  Returns a 0-d array
    with the maximum.
    """
    v = np.asarray(values)
    if v.ndim != 1:
        raise PatternError(f"values must be 1-D, got shape {v.shape}")
    if v.size == 0:
        raise PatternError("maximum of an empty array is undefined")
    if fan_in < 2:
        raise ParameterError(f"fan_in must be >= 2, got {fan_in}")
    arena = arena or Arena()
    current = v.copy()
    rnd = 0
    while current.size > 1:
        m = current.size
        n_groups = -(-m // fan_in)
        group = np.arange(m, dtype=np.int64) // fan_in
        if recorder is not None:
            cell_base = arena.alloc(n_groups, f"max/round{rnd}")
            # Queued writes: every member hits its group's cell.
            maybe_record(recorder, cell_base + group, kind="scatter",
                         label=f"qrqw-max/round{rnd}/tournament")
        # Group maxima, vectorized (pad with the dtype minimum).
        pad = n_groups * fan_in - m
        padded = np.concatenate([
            current,
            np.full(pad, _identity(current.dtype), dtype=current.dtype),
        ])
        current = padded.reshape(n_groups, fan_in).max(axis=1)
        rnd += 1
    return current[0]


def erew_maximum(
    values,
    recorder: Optional[TraceRecorder] = None,
    arena: Optional[Arena] = None,
) -> np.ndarray:
    """Maximum by the EREW fan-in-2 binary tree — the contention-free
    baseline (``lg n`` rounds of contention-1 traffic)."""
    v = np.asarray(values)
    if v.ndim != 1:
        raise PatternError(f"values must be 1-D, got shape {v.shape}")
    if v.size == 0:
        raise PatternError("maximum of an empty array is undefined")
    arena = arena or Arena()
    current = v.copy()
    rnd = 0
    while current.size > 1:
        m = current.size
        half = m // 2
        if recorder is not None:
            buf_base = arena.alloc(m, f"erew-max/round{rnd}")
            # Pairwise reads: each survivor reads one partner — k = 1.
            maybe_record(
                recorder,
                buf_base + np.arange(2 * half, dtype=np.int64),
                kind="read",
                label=f"erew-max/round{rnd}/pairs",
            )
        left = current[0:2 * half:2]
        right = current[1:2 * half:2]
        merged = np.maximum(left, right)
        if m % 2:
            merged = np.concatenate([merged, current[-1:]])
        current = merged
        rnd += 1
    return current[0]


def _identity(dtype) -> object:
    if np.issubdtype(dtype, np.integer):
        return np.iinfo(dtype).min
    return -np.inf
