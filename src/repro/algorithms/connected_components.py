"""Greiner-style parallel connected components [Gre94] (paper Section 6).

Greiner's data-parallel algorithm proceeds in phases: *hooking* nodes
together to form a forest, repeated *shortcutting* to contract each tree
toward its root, *contracting* the graph to a smaller one that is
processed again, and finally *expanding* to propagate labels back.  The
paper instruments these phases because their contention profiles differ
sharply: hooking and shortcutting concentrate traffic at popular roots
(a star graph drives the contention to ``n``), which is precisely where
BSP-style predictions fall apart (Figure 1).

The implementation below is the hook-and-shortcut family (Awerbuch–
Shiloach/Greiner hybrid): conditional hooking of larger labels onto
smaller ones, full shortcutting, then edge contraction — iterated until
no cross-component edges remain.  Correctness is independently verified
against a union-find oracle in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .._util import as_rng
from ..errors import ParameterError, PatternError
from ..workloads.traces import TraceRecorder, maybe_record
from ._arena import Arena

__all__ = [
    "connected_components",
    "CCStats",
    "random_graph_edges",
    "star_edges",
    "grid_edges",
]


@dataclass(frozen=True)
class CCStats:
    """Phase structure of one connected-components run."""

    outer_rounds: int
    shortcut_rounds: int
    hook_contention: Tuple[int, ...]  # per outer round


def _check_edges(n: int, edges: np.ndarray) -> np.ndarray:
    e = np.asarray(edges, dtype=np.int64)
    if e.ndim != 2 or (e.size and e.shape[1] != 2):
        raise PatternError(f"edges must be (m, 2), got shape {e.shape}")
    if e.size and (e.min() < 0 or e.max() >= n):
        raise PatternError("edge endpoints outside [0, n)")
    return e.reshape(-1, 2)


def connected_components(
    n: int,
    edges,
    recorder: Optional[TraceRecorder] = None,
    arena: Optional[Arena] = None,
    max_rounds: int = 10_000,
) -> Tuple[np.ndarray, CCStats]:
    """Label the connected components of an ``n``-vertex graph.

    Returns
    -------
    (labels, stats):
        ``labels[v]`` is the smallest vertex id in ``v``'s component;
        ``stats`` records the phase structure.
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    e = _check_edges(n, edges)
    arena = arena or Arena()
    p_base = arena.alloc(n, "parent")

    parent = np.arange(n, dtype=np.int64)
    u, v = (e[:, 0], e[:, 1]) if e.size else (
        np.zeros(0, np.int64), np.zeros(0, np.int64)
    )
    outer = 0
    shortcut_total = 0
    hook_contention = []

    while u.size:
        if outer >= max_rounds:
            raise ParameterError(f"connected components exceeded {max_rounds} rounds")
        # --- hook: pull both endpoints' labels, write the smaller over
        # the larger's root (min-combining resolves write collisions).
        pu = parent[u]
        pv = parent[v]
        if recorder is not None:
            with recorder.phase(f"round{outer}"):
                maybe_record(
                    recorder,
                    p_base + np.concatenate([u, v]),
                    kind="gather",
                    label="hook/read-parents",
                )
        lo = np.minimum(pu, pv)
        hi = np.maximum(pu, pv)
        cross = lo != hi
        hi_c, lo_c = hi[cross], lo[cross]
        if recorder is not None and hi_c.size:
            with recorder.phase(f"round{outer}"):
                maybe_record(
                    recorder, p_base + hi_c, kind="scatter", label="hook/write-roots"
                )
        if hi_c.size:
            _, counts = np.unique(hi_c, return_counts=True)
            hook_contention.append(int(counts.max()))
            np.minimum.at(parent, hi_c, lo_c)
        else:
            hook_contention.append(0)

        # --- shortcut: parent = parent[parent] to a fixpoint.
        while True:
            grand = parent[parent]
            if recorder is not None:
                with recorder.phase(f"round{outer}"):
                    maybe_record(
                        recorder,
                        p_base + parent,
                        kind="gather",
                        label="shortcut/jump",
                    )
            shortcut_total += 1
            if np.array_equal(grand, parent):
                break
            parent = grand

        # --- contract: relabel edges by component, drop self-loops.
        nu, nv = parent[u], parent[v]
        if recorder is not None:
            with recorder.phase(f"round{outer}"):
                maybe_record(
                    recorder,
                    p_base + np.concatenate([u, v]),
                    kind="gather",
                    label="contract/relabel",
                )
        keep = nu != nv
        u, v = nu[keep], nv[keep]
        outer += 1

    # --- expand: one final shortcut pass delivers every vertex its root
    # label (roots are fixpoints already; this is the label propagation).
    labels = parent[parent]
    if recorder is not None:
        with recorder.phase("expand"):
            maybe_record(recorder, p_base + parent, kind="gather", label="propagate")
    return labels, CCStats(
        outer_rounds=outer,
        shortcut_rounds=shortcut_total,
        hook_contention=tuple(hook_contention),
    )


# ---------------------------------------------------------------------------
# Graph generators for the experiments.

def random_graph_edges(n: int, m: int, seed=None) -> np.ndarray:
    """``m`` uniformly random edges on ``n`` vertices (self-loops allowed;
    the algorithm discards them)."""
    if n < 1 or m < 0:
        raise ParameterError(f"need n >= 1 and m >= 0, got n={n}, m={m}")
    rng = as_rng(seed)
    return rng.integers(0, n, size=(m, 2), dtype=np.int64)


def star_edges(n: int, center: int = 0) -> np.ndarray:
    """A star: every vertex hooked to ``center`` — the maximum-contention
    graph for the hook phase (all writes hit one root)."""
    if n < 1 or not (0 <= center < n):
        raise ParameterError(f"need n >= 1 and 0 <= center < n")
    others = np.concatenate(
        [np.arange(center, dtype=np.int64),
         np.arange(center + 1, n, dtype=np.int64)]
    )
    return np.stack([np.full(others.size, center, dtype=np.int64), others], axis=1)


def grid_edges(rows: int, cols: int) -> np.ndarray:
    """A 2-D grid graph — a low-contention, high-diameter contrast case."""
    if rows < 1 or cols < 1:
        raise ParameterError(f"need rows, cols >= 1, got {rows}x{cols}")
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1)
    vert = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1)
    return np.concatenate([horiz, vert], axis=0)
