"""QRQW vs EREW parallel binary search [GMR94a] (paper Section 6).

``n`` independent keys are looked up in a balanced binary search tree of
``m`` keys.

**QRQW algorithm** — search the (implicit, heap-ordered) tree directly,
but *replicate* the nodes of the top levels: level ``l`` holds ``c_l``
copies of each node and every searcher picks a copy at random.  Without
replication every search visits the root — contention ``n``; with
``c_l ~ n / (2^l * tau)`` copies the expected contention at any copy is
about ``tau`` per level, a *well-accounted* amount of contention that the
QRQW model (and the (d,x)-BSP underneath) charges honestly.

**EREW baseline** — avoids contention altogether by sorting the query
keys (radix sort, itself EREW) and then merging the sorted queries with
the tree keys, a contention-free two-sequence merge.  The sort dominates
its cost, which is why the QRQW version wins over a wide range of ``n``.

Both return, for each query, the *predecessor value*: the largest tree
key ``<=`` the query (or ``MIN_SENTINEL`` when none), verified in tests
against :func:`numpy.searchsorted`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .._util import as_rng
from ..errors import ParameterError, PatternError
from ..workloads.traces import TraceRecorder, maybe_record
from ._arena import Arena
from .radix_sort import radix_sort

__all__ = [
    "MIN_SENTINEL",
    "build_implicit_tree",
    "replication_schedule",
    "qrqw_binary_search",
    "erew_binary_search",
]

#: Value returned when a query precedes every tree key.
MIN_SENTINEL = np.int64(np.iinfo(np.int64).min)

#: Internal padding key (larger than any real key) for non-full trees.
_MAX_PAD = np.int64(np.iinfo(np.int64).max)


def build_implicit_tree(sorted_keys) -> np.ndarray:
    """Lay out sorted keys as an implicit heap-ordered balanced BST.

    Node 0 is the root; node ``i`` has children ``2i+1`` / ``2i+2``.  The
    array is padded to ``2^depth - 1`` slots with ``+inf`` sentinels (they
    compare greater than every query, steering searches left, so padding
    never changes a predecessor).
    """
    keys = np.asarray(sorted_keys)
    if keys.ndim != 1:
        raise PatternError(f"sorted_keys must be 1-D, got shape {keys.shape}")
    if keys.size and (np.diff(keys) < 0).any():
        raise PatternError("keys must be sorted ascending")
    m = keys.size
    depth = max(1, int(m).bit_length() if m else 1)
    if (1 << depth) - 1 < m:
        depth += 1
    size = (1 << depth) - 1
    tree = np.full(size, _MAX_PAD, dtype=np.int64)
    # Level-wise construction: each node covers a key interval [lo, hi);
    # it stores the interval's middle key and splits it for its children.
    los = np.array([0], dtype=np.int64)
    his = np.array([m], dtype=np.int64)
    node0 = 0
    for level in range(depth):
        width = 1 << level
        mids = (los + his) // 2
        valid = los < his
        idx = node0 + np.arange(width)
        tree[idx[valid]] = keys[mids[valid]]
        # Children intervals (invalid nodes propagate empty intervals).
        new_los = np.empty(2 * width, dtype=np.int64)
        new_his = np.empty(2 * width, dtype=np.int64)
        new_los[0::2], new_his[0::2] = los, np.where(valid, mids, los)
        new_los[1::2], new_his[1::2] = np.where(valid, mids + 1, his), his
        los, his = new_los, new_his
        node0 += width
    return tree


def replication_schedule(
    n_queries: int, depth: int, target_contention: int = 8
) -> np.ndarray:
    """Copies per node at each level: ``c_l = max(1, n / (2^l * tau))``.

    Enough copies that the *expected* contention per copy is about
    ``tau`` (= ``target_contention``) when queries spread uniformly.
    """
    if n_queries < 0 or depth < 1:
        raise ParameterError("need n_queries >= 0 and depth >= 1")
    if target_contention < 1:
        raise ParameterError(
            f"target_contention must be >= 1, got {target_contention}"
        )
    levels = np.arange(depth, dtype=np.int64)
    nodes = np.int64(1) << levels
    copies = np.maximum(1, n_queries // (nodes * target_contention))
    return copies.astype(np.int64)


@dataclass(frozen=True)
class _TreeLayout:
    """Address layout of the replicated tree: per-level bases and copy
    counts, used only for trace realism."""

    level_base: np.ndarray
    copies: np.ndarray


def _layout(depth: int, copies: np.ndarray, arena: Arena) -> _TreeLayout:
    bases = np.empty(depth, dtype=np.int64)
    for level in range(depth):
        n_nodes = 1 << level
        bases[level] = arena.alloc(int(n_nodes * copies[level]), f"tree/L{level}")
    return _TreeLayout(level_base=bases, copies=copies)


def qrqw_binary_search(
    tree: np.ndarray,
    queries,
    target_contention: int = 8,
    seed=None,
    recorder: Optional[TraceRecorder] = None,
    arena: Optional[Arena] = None,
) -> np.ndarray:
    """Search every query in the replicated implicit tree.

    Returns the predecessor value of each query (largest tree key <=
    query, ``MIN_SENTINEL`` if none).  When ``recorder`` is given, each
    level's gather — with its randomized replica choice — is recorded as
    one superstep, so the trace's per-step contention is ~``tau`` whp
    instead of ``n``.
    """
    q = np.asarray(queries, dtype=np.int64)
    if q.ndim != 1:
        raise PatternError(f"queries must be 1-D, got shape {q.shape}")
    size = tree.size
    depth = int(size + 1).bit_length() - 1
    if (1 << depth) - 1 != size:
        raise PatternError("tree size must be 2^depth - 1 (use build_implicit_tree)")
    rng = as_rng(seed)
    copies = replication_schedule(q.size, depth, target_contention)
    layout = _layout(depth, copies, arena or Arena()) if recorder is not None else None

    pos = np.zeros(q.size, dtype=np.int64)  # current node (implicit index)
    best = np.full(q.size, MIN_SENTINEL, dtype=np.int64)
    node0 = 0
    for level in range(depth):
        local = pos - node0  # node index within the level
        node_keys = tree[pos]
        if recorder is not None:
            replica = rng.integers(0, copies[level], size=q.size, dtype=np.int64)
            addr = layout.level_base[level] + local * copies[level] + replica
            maybe_record(
                recorder, addr, kind="gather", label=f"qrqw-search/level{level}"
            )
        go_right = node_keys <= q
        best = np.where(go_right, node_keys, best)
        pos = node0 + (1 << level) + 2 * local + go_right.astype(np.int64)
        node0 += 1 << level
    # Padding sentinels never update `best` (they exceed every query).
    return best


def erew_binary_search(
    sorted_keys,
    queries,
    recorder: Optional[TraceRecorder] = None,
    arena: Optional[Arena] = None,
) -> np.ndarray:
    """EREW baseline: radix-sort the queries, merge with the tree keys,
    un-permute the answers.  Contention-free by construction; cost
    dominated by the sort.  Returns predecessor values like
    :func:`qrqw_binary_search`.
    """
    keys = np.asarray(sorted_keys, dtype=np.int64)
    q = np.asarray(queries, dtype=np.int64)
    if keys.ndim != 1 or q.ndim != 1:
        raise PatternError("keys and queries must be 1-D")
    if keys.size and (np.diff(keys) < 0).any():
        raise PatternError("keys must be sorted ascending")
    if q.size and int(q.min()) < 0:
        raise PatternError("radix-sorted queries must be non-negative")
    arena = arena or Arena()

    sorted_q, order, _ = radix_sort(q, recorder=recorder, arena=arena)

    # Merge step: sorted queries against sorted keys.  Each element of
    # either sequence is inspected once — contention-free; we record it as
    # one linear pass over both arrays.
    ranks = np.searchsorted(keys, sorted_q, side="right")
    if recorder is not None:
        key_base = arena.alloc(keys.size, "merge/keys")
        q_base = arena.alloc(q.size, "merge/queries")
        merge_addr = np.concatenate(
            [
                key_base + np.arange(keys.size, dtype=np.int64),
                q_base + np.arange(q.size, dtype=np.int64),
            ]
        )
        maybe_record(recorder, merge_addr, kind="read", label="erew-search/merge")

    if keys.size:
        pred_sorted = np.where(
            ranks > 0, keys[np.maximum(ranks - 1, 0)], MIN_SENTINEL
        )
    else:
        pred_sorted = np.full(q.size, MIN_SENTINEL, dtype=np.int64)
    # Route answers back to query order (a permutation scatter).
    out = np.empty(q.size, dtype=np.int64)
    out[order] = pred_sorted
    if recorder is not None:
        res_base = arena.alloc(q.size, "results")
        maybe_record(
            recorder, res_base + order, kind="scatter", label="erew-search/unpermute"
        )
    return out
