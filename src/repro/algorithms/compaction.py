"""Linear compaction: QRQW dart-throwing vs EREW prefix-sum pack.

Compaction — moving ``k`` marked items scattered in an ``n``-slot array
into an output of size ``O(k)`` — is a core QRQW primitive [GMR94a]: the
dart-throwing placement touches ``O(k)`` memory with small queued
contention, while the classical EREW formulation must run a prefix sum
over all ``n`` slots even when ``k`` is tiny.  The items' positions are
taken as input (they are typically the live output of a previous bulk
step); the EREW baseline is charged its full-scan honesty.

Both functions return the compacted items (order unspecified for the
QRQW version, stable for the EREW one) plus instrumented traces.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._util import as_rng
from ..errors import ParameterError, PatternError
from ..workloads.traces import TraceRecorder, maybe_record
from ._arena import Arena
from .random_permutation import DartStats

__all__ = ["qrqw_compact", "erew_compact"]


def qrqw_compact(
    items,
    slots_factor: float = 2.0,
    seed=None,
    recorder: Optional[TraceRecorder] = None,
    arena: Optional[Arena] = None,
    max_rounds: int = 10_000,
) -> Tuple[np.ndarray, DartStats]:
    """Compact ``items`` (any 1-D array) into a dense output by dart
    throwing: each item claims a random slot in a fresh ``O(survivors)``
    region per round; unique darts win, collisions retry.

    Returns ``(compacted, stats)`` where ``compacted`` is a permutation
    of ``items`` and ``stats`` the round structure.  Memory touched is
    ``O(k)`` — independent of the size of the array the items came from.
    """
    arr = np.asarray(items)
    if arr.ndim != 1:
        raise PatternError(f"items must be 1-D, got shape {arr.shape}")
    if slots_factor < 1.0:
        raise ParameterError(f"slots_factor must be >= 1, got {slots_factor}")
    rng = as_rng(seed)
    arena = arena or Arena()
    k = arr.size
    out = np.empty(k, dtype=arr.dtype)
    active = np.arange(k, dtype=np.int64)
    next_rank = 0
    per_round_active = []
    per_round_contention = []
    rounds = 0
    while active.size:
        if rounds >= max_rounds:
            raise ParameterError(
                f"compaction exceeded {max_rounds} rounds (k={k})"
            )
        m = active.size
        n_slots = max(m, int(np.ceil(slots_factor * m)))
        dest_base = arena.alloc(n_slots, f"compact/round{rounds}")
        darts = rng.integers(0, n_slots, size=m, dtype=np.int64)
        per_round_active.append(m)
        slot_count = np.bincount(darts, minlength=n_slots)
        per_round_contention.append(int(slot_count.max()) if m else 0)
        if recorder is not None:
            maybe_record(recorder, dest_base + darts, kind="scatter",
                         label=f"compact/round{rounds}/throw")
            maybe_record(recorder, dest_base + darts, kind="gather",
                         label=f"compact/round{rounds}/check")
        unique_dart = slot_count[darts] == 1
        placed = active[unique_dart]
        placed_slots = darts[unique_dart]
        slot_rank = np.cumsum(slot_count == 1) - 1
        if recorder is not None:
            maybe_record(
                recorder,
                dest_base + np.arange(n_slots, dtype=np.int64),
                kind="read",
                label=f"compact/round{rounds}/pack-scan",
            )
        out[next_rank + slot_rank[placed_slots]] = arr[placed]
        next_rank += placed.size
        active = active[~unique_dart]
        rounds += 1
    stats = DartStats(
        rounds=rounds,
        per_round_active=tuple(per_round_active),
        per_round_contention=tuple(per_round_contention),
    )
    return out, stats


def erew_compact(
    mask,
    values,
    recorder: Optional[TraceRecorder] = None,
    arena: Optional[Arena] = None,
) -> np.ndarray:
    """EREW compaction: exclusive scan over the full ``n``-slot mask,
    then scatter the marked values to their ranks — contention-free but
    Θ(n) memory traffic regardless of how few items are marked.

    Returns the marked ``values`` in stable (index) order.
    """
    m = np.asarray(mask).astype(bool)
    v = np.asarray(values)
    if m.shape != v.shape or m.ndim != 1:
        raise PatternError("mask and values must be matching 1-D arrays")
    arena = arena or Arena()
    n = m.size
    ranks = np.cumsum(m) - 1  # inclusive scan -> 0-based rank of marked
    if recorder is not None:
        mask_base = arena.alloc(n, "compact/mask")
        out_base = arena.alloc(max(1, int(m.sum())), "compact/out")
        idx = np.arange(n, dtype=np.int64)
        maybe_record(recorder, mask_base + idx, kind="read",
                     label="erew-compact/scan")
        marked_idx = idx[m]
        maybe_record(recorder, out_base + ranks[m], kind="scatter",
                     label="erew-compact/place")
        maybe_record(recorder, mask_base + marked_idx, kind="gather",
                     label="erew-compact/read-values")
    return v[m]
