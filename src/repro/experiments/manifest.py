"""Structured run manifests: the machine-readable record of a run.

The paper's claim is quantitative — predicted vs. simulated time across
Experiments 1-3 and Figures 11-12 — so reproduction runs need an
auditable record of *how* each number was produced.  A
:class:`RunManifest` captures, per experiment: the registry id, the
package code version, the default machine parameters and seed the
experiment ran under, wall-clock time (split into pool compute, cache
scan and fused grid evaluation), the runner's fault/cache counters
(hits, misses, duplicates collapsed, fused points, retries,
timeouts, quarantined cache entries) and its shared-memory traffic
(bytes shipped to workers by handle instead of pickled copies).

``python -m repro.experiments --all --json DIR`` writes one
schema-checked manifest per experiment as ``DIR/<id>.json``;
:func:`validate_manifest` is the schema check, deliberately dependency
free (no jsonschema in the image).
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..errors import ParameterError
from . import runner
from .common import DEFAULT_N, DEFAULT_SEED, j90

__all__ = [
    "RunManifest",
    "MANIFEST_SCHEMA",
    "validate_manifest",
    "write_manifest",
]

#: Manifest format version; bump on any incompatible field change.
#: v2: adds shared-memory traffic (``bytes_shipped``/``shm_hits``) and
#: the pool-vs-cache wall-clock split (``pool_seconds``/``cache_seconds``).
#: v3: adds grid fusion accounting — ``dedup_collapsed`` (identical
#: points collapsed within one submission), ``fused_points`` (misses
#: evaluated through a fused grid task) and the ``fused_seconds``
#: wall-clock bucket (fused evaluation time, previously unaccounted).
SCHEMA_VERSION = 3

#: Required fields and their types — the (flat) manifest schema.
#: ``machine`` is the nested dict of default machine parameters.
MANIFEST_SCHEMA: Dict[str, type] = {
    "schema_version": int,
    "exp_id": str,
    "code_version": str,
    "seed": int,
    "n": int,
    "machine": dict,
    "seconds": float,
    "points": int,
    "cache_hits": int,
    "cache_misses": int,
    "retries": int,
    "timeouts": int,
    "quarantined": int,
    "bytes_shipped": int,
    "shm_hits": int,
    "dedup_collapsed": int,
    "fused_points": int,
    "pool_seconds": float,
    "cache_seconds": float,
    "fused_seconds": float,
    "experiment_retries": int,
    "parallel": int,
    "cache_enabled": bool,
    "created_unix": float,
}


@dataclasses.dataclass(frozen=True)
class RunManifest:
    """Machine-readable record of one experiment invocation.

    ``machine``/``seed``/``n`` record the *package defaults* the
    experiment modules run under (the paper's J90, seed 1995, S = 64K);
    experiments that sweep several machines (e.g. T1) still execute
    under these defaults for their headline numbers.
    """

    exp_id: str
    code_version: str
    seed: int
    n: int
    machine: Dict[str, Any]
    seconds: float
    points: int
    cache_hits: int
    cache_misses: int
    retries: int
    timeouts: int
    quarantined: int
    bytes_shipped: int
    shm_hits: int
    dedup_collapsed: int
    fused_points: int
    pool_seconds: float
    cache_seconds: float
    fused_seconds: float
    experiment_retries: int
    parallel: int
    cache_enabled: bool
    created_unix: float
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def from_outcome(
        cls,
        outcome: "runner.ExperimentOutcome",
        *,
        parallel: int = 1,
        cache_enabled: bool = True,
    ) -> "RunManifest":
        """Build the manifest for one :class:`~runner.ExperimentOutcome`."""
        s = outcome.stats
        return cls(
            exp_id=outcome.exp_id,
            code_version=runner.code_version(),
            seed=DEFAULT_SEED,
            n=DEFAULT_N,
            machine=dataclasses.asdict(j90()),
            seconds=float(outcome.seconds),
            points=s.points,
            cache_hits=s.cache_hits,
            cache_misses=s.cache_misses,
            retries=s.retries,
            timeouts=s.timeouts,
            quarantined=s.quarantined,
            bytes_shipped=s.bytes_shipped,
            shm_hits=s.shm_hits,
            dedup_collapsed=s.dedup_collapsed,
            fused_points=s.fused_points,
            pool_seconds=float(s.pool_seconds),
            cache_seconds=float(s.cache_seconds),
            fused_seconds=float(s.fused_seconds),
            experiment_retries=outcome.retries,
            parallel=int(parallel),
            cache_enabled=bool(cache_enabled),
            # Provenance timestamp of the manifest itself — never part
            # of a simulated result or a cache key.
            created_unix=time.time(),  # reprolint: disable=REPRO102
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict view matching :data:`MANIFEST_SCHEMA`."""
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        """Serialized manifest (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def validate_manifest(
    data: Dict[str, Any],
    schema: Optional[Dict[str, type]] = None,
    expected_version: Optional[int] = None,
) -> None:
    """Raise :class:`ParameterError` unless ``data`` matches the schema.

    Checks presence and type of every schema field, rejects unknown
    fields (schema drift must bump the schema version, not leak
    silently) and rejects negative counters.  Defaults validate an
    experiment :class:`RunManifest` against :data:`MANIFEST_SCHEMA`;
    other manifest producers (the serving metrics export,
    :mod:`repro.serving.metrics`) pass their own flat ``schema`` dict
    and ``expected_version`` to reuse the same checker.
    """
    if schema is None:
        schema = MANIFEST_SCHEMA
    if expected_version is None:
        expected_version = SCHEMA_VERSION
    problems = []
    for field_name, typ in schema.items():
        if field_name not in data:
            problems.append(f"missing field {field_name!r}")
            continue
        value = data[field_name]
        # bool is an int subclass; keep the check strict both ways.
        if typ is bool:
            ok = isinstance(value, bool)
        elif typ is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        elif typ is float:
            # JSON round-trips whole floats as ints; accept both.
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        else:
            ok = isinstance(value, typ)
        if not ok:
            problems.append(
                f"field {field_name!r} should be {typ.__name__}, "
                f"got {type(value).__name__}"
            )
    for field_name in data:
        if field_name not in schema:
            problems.append(f"unknown field {field_name!r}")
    for counter in ("points", "cache_hits", "cache_misses", "retries",
                    "timeouts", "quarantined", "bytes_shipped",
                    "shm_hits", "dedup_collapsed", "fused_points",
                    "experiment_retries",
                    # serving-manifest counters share the nonneg check
                    "received", "served", "shed", "closed", "expired",
                    "failed", "invalid", "lru_hits", "disk_hits",
                    "evaluations", "batches", "batched_requests",
                    "max_batch", "queue_high_water",
                    # router-manifest counters (repro.serving.shard)
                    "routed", "forwarded", "rebalanced", "hot_hits",
                    "hot_puts", "workers"):
        if counter not in schema:
            continue
        if isinstance(data.get(counter), int) and data[counter] < 0:
            problems.append(f"field {counter!r} must be >= 0")
    if data.get("schema_version") not in (None, expected_version):
        problems.append(
            f"schema_version {data['schema_version']!r} != {expected_version}"
        )
    if problems:
        raise ParameterError(
            "invalid run manifest: " + "; ".join(problems)
        )


def write_manifest(manifest: RunManifest, directory: Union[str, Path]) -> Path:
    """Schema-check ``manifest`` and write it to ``directory/<id>.json``."""
    data = manifest.to_dict()
    validate_manifest(data)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{manifest.exp_id}.json"
    path.write_text(manifest.to_json())
    return path
