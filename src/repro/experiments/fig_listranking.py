"""List-ranking contention study [RM94] — the paper's future work.

Pointer jumping's memory signature: each of the ``ceil(lg n)`` rounds is
an irregular permutation-like gather — *except* at the shrinking frontier
near the tails, where contention doubles every round (after round ``r``
up to ``2^r`` nodes read the tail's cells).  The (d,x)-BSP accounting
shows when that hot tail starts to matter: for a single list it stays
under the throughput bound until ``2^r > g·n/(p·d)``, i.e. only the last
``lg(p·d/g)`` rounds pay extra — the contention profile Reid-Miller's
Cray implementation had to engineer around.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..algorithms.list_ranking import list_rank, random_list
from ..analysis.predict import compare_program
from ..analysis.report import Series
from ..simulator.machine import MachineConfig
from ..simulator.trace import simulate_program
from ..workloads.traces import TraceRecorder
from .common import DEFAULT_SEED, j90
from .runner import run_grid

__all__ = ["run", "run_round_profile", "main"]


def _point(machine: MachineConfig, n: int, seed: int):
    """One list length: instrumented ranking + model comparison."""
    succ, _ = random_list(n, seed=seed)
    rec = TraceRecorder()
    list_rank(succ, recorder=rec)
    cmp = compare_program(machine, rec.program)
    return cmp.bsp_time, cmp.dxbsp_time, cmp.simulated_time


def run(
    machine: Optional[MachineConfig] = None,
    n_values: Optional[Sequence[int]] = None,
    seed: int = DEFAULT_SEED,
) -> Series:
    """Total ranking time vs list length, BSP vs (d,x)-BSP vs simulated."""
    machine = machine or j90()
    ns = np.asarray(
        n_values if n_values is not None
        else [1 << b for b in range(10, 17, 2)],
        dtype=np.int64,
    )
    rows = run_grid(_point, [
        dict(machine=machine, n=int(n), seed=seed + i)
        for i, n in enumerate(ns)
    ])
    bsp, dxbsp, sim = (np.asarray(col) for col in zip(*rows))
    series = Series(
        name=f"fig_listranking ({machine.name}) [future work]",
        x_label="list length n",
        x=ns.astype(np.float64),
    )
    series.add("bsp", bsp)
    series.add("dxbsp", dxbsp)
    series.add("simulated", sim)
    return series


def run_round_profile(
    machine: Optional[MachineConfig] = None,
    n: int = 32 * 1024,
    seed: int = DEFAULT_SEED,
) -> Series:
    """Per-round contention and simulated time for one ranking — the hot
    tail emerging over the rounds."""
    machine = machine or j90()
    succ, _ = random_list(n, seed=seed)
    rec = TraceRecorder()
    list_rank(succ, recorder=rec)
    succ_steps = [s for s in rec.program if "read-succ" in s.label]
    rounds = np.arange(len(succ_steps), dtype=np.float64)
    cont = np.array(
        [s.stats().max_location_contention for s in succ_steps],
        dtype=np.float64,
    )
    res = simulate_program(machine, rec.program)
    times = np.array(
        [r.time for r, lbl in zip(res.step_results, res.step_labels)
         if "read-succ" in lbl]
    )
    series = Series(
        name=f"fig_listranking rounds ({machine.name}, n={n})",
        x_label="jump round",
        x=rounds,
    )
    series.add("tail_contention", cont)
    series.add("round_simulated", times)
    return series


def main() -> str:
    """Render and print both list-ranking views."""
    out = run().format() + "\n\n" + run_round_profile().format()
    print(out)
    return out


if __name__ == "__main__":
    main()
