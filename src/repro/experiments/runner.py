"""Shared experiment execution: parallel grid fan-out + on-disk memo cache.

Every experiment in this package is a sweep over *independent grid
points* (one pattern simulated per contention value, per expansion
factor, per key family, ...).  Instead of each module hand-rolling a
``for`` loop, they declare the points and hand them to :func:`run_grid`,
which supplies two orthogonal services:

* **parallelism** — grid points fan out over a process pool
  (``--parallel N`` on the CLI, ``REPRO_PARALLEL`` in the environment);
* **memoization** — each point's result is cached on disk, keyed by
  ``(code version, point function, arguments)``, where arguments cover
  the machine parameters, the pattern spec and the seed.  Re-running a
  sweep after touching an unrelated file is near-instant; touching any
  source file under ``repro`` invalidates every key at once (the code
  version is a digest of the package sources — coarse but impossible to
  fool with a stale result).

Point functions must be module-level (picklable by reference) and their
arguments/results picklable; results should be small (floats, tuples,
light dataclasses), which all experiment points satisfy.

Whole experiments also run concurrently: :func:`run_experiments` fans
the registry ids of ``python -m repro.experiments --all`` out over the
pool, capturing each experiment's stdout so reports stay untangled.

The pooled fan-out is **zero-copy** for array payloads: large ndarray
kwargs (a 64K address pattern, an SpMV input vector) are published once
into named ``multiprocessing.shared_memory`` segments and workers
receive a small handle instead of a pickled copy; cache hits never
reach the pool at all, and the misses are submitted in *chunks* (a few
tasks per worker) rather than one future per point, so pool overhead
stays O(workers), not O(points).

Both layers are **fault tolerant**: a grid point that raises, times out
or takes its worker process down does not abort the sweep — the failed
points are retried serially in-process once the pool drains (and a
crashed experiment under ``--all`` is likewise rerun serially).
Unreadable cache entries are quarantined (renamed to ``*.corrupt``)
instead of being re-hit, and Ctrl-C tears the pool down without waiting
for stragglers; shared-memory segments orphaned by an abnormal exit are
swept by :func:`clear_cache` alongside stale tmp files.  Every run
tallies :class:`GridStats` (cache hits and misses, retries, timeouts,
quarantines, shared-memory traffic, pool vs cache wall-clock) which
:mod:`repro.experiments.manifest` exports as machine-readable run
manifests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import itertools
import os
import pickle
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeoutError,
    as_completed,
)
from contextlib import redirect_stdout
from multiprocessing import shared_memory
from pathlib import Path
from typing import (
    Any, Callable, Dict, List, Optional, Sequence, Tuple, Union,
)

import numpy as np

from ..errors import ParameterError

__all__ = [
    "run_grid",
    "run_experiments",
    "ExperimentOutcome",
    "GridStats",
    "grid_stats",
    "reset_grid_stats",
    "configure",
    "cache_dir",
    "cache_key",
    "cache_fetch",
    "cache_store",
    "code_version",
    "clear_cache",
    "shm_segment_name",
]

#: Process-wide overrides set by :func:`configure` (e.g. from CLI flags).
#: ``None`` means "fall through to the environment, then the default".
_config: Dict[str, Any] = {"parallel": None, "cache": None, "cache_dir": None}

_CACHE_VERSION = 2  # bump to invalidate every on-disk entry at once
# v2: lists and tuples hash under distinct tags (they used to collide).


@dataclasses.dataclass
class GridStats:
    """Counters accumulated by :func:`run_grid` (and reset per experiment
    by :func:`run_experiments`), the observable record of how a sweep
    actually executed.

    Attributes
    ----------
    points:
        Grid points requested.
    cache_hits / cache_misses:
        Points served from / absent from the on-disk memo cache (both
        stay zero while caching is disabled).
    retries:
        Points re-executed serially after their pooled attempt raised,
        timed out, or lost its worker process.
    timeouts:
        Points whose pooled attempt exceeded the per-point timeout.
    quarantined:
        Unreadable cache entries renamed to ``*.corrupt``.
    bytes_shipped:
        ndarray payload bytes routed to pool workers through shared
        memory instead of pickled copies (counted per point reference:
        one vector shared by ten points ships its size ten times here
        while occupying one segment).
    shm_hits:
        Point kwargs served to workers via a shared-memory handle.
    dedup_collapsed:
        Points collapsed onto an identical earlier point (same
        ``cache_key``) within one :func:`run_grid` submission — they
        never probe the disk memo nor reach the pool; the first
        occurrence's result answers them all.  Zero while caching is
        disabled (no keys, no dedupe).
    fused_points:
        Cache-miss points evaluated through a fused grid task (the
        point function's ``grid_fuse`` adapter) instead of one-by-one.
    pool_seconds:
        Wall-clock spent computing cache misses (pool fan-out plus
        serial retries and result stores); excludes in-process fused
        evaluation, which lands in ``fused_seconds``.
    cache_seconds:
        Wall-clock spent scanning/loading the on-disk memo cache —
        kept separate from ``pool_seconds`` because hits never reach
        the pool.
    fused_seconds:
        Wall-clock spent inside fused grid evaluations.  Disjoint from
        ``pool_seconds`` when fused groups run in-process; measured
        worker-side (and therefore concurrent with ``pool_seconds``)
        when they run as pooled tasks.
    """

    points: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    timeouts: int = 0
    quarantined: int = 0
    bytes_shipped: int = 0
    shm_hits: int = 0
    dedup_collapsed: int = 0
    fused_points: int = 0
    pool_seconds: float = 0.0
    cache_seconds: float = 0.0
    fused_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (manifest/JSON export)."""
        return dataclasses.asdict(self)


#: Process-wide tally across run_grid calls; snapshot via grid_stats().
_stats = GridStats()


def grid_stats() -> GridStats:
    """Copy of the tally accumulated since the last reset."""
    return dataclasses.replace(_stats)


def reset_grid_stats() -> GridStats:
    """Zero the tally; returns the counts it held."""
    global _stats
    snapshot = _stats
    _stats = GridStats()
    return snapshot


def configure(
    parallel: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[os.PathLike] = None,
) -> None:
    """Set process-wide execution defaults (the CLI calls this).

    Passing ``None`` for a field leaves it unchanged; fields keep
    falling back to ``REPRO_PARALLEL`` / ``REPRO_CACHE`` /
    ``REPRO_CACHE_DIR`` and then to serial, cache-on defaults.
    """
    if parallel is not None:
        if parallel < 1:
            raise ParameterError(f"parallel must be >= 1, got {parallel}")
        _config["parallel"] = int(parallel)
    if cache is not None:
        _config["cache"] = bool(cache)
    if cache_dir is not None:
        _config["cache_dir"] = Path(cache_dir)


def _parallelism(override: Optional[int]) -> int:
    if override is not None:
        return max(1, int(override))
    if _config["parallel"] is not None:
        return _config["parallel"]
    env = os.environ.get("REPRO_PARALLEL", "")
    return max(1, int(env)) if env.isdigit() else 1


def _cache_enabled(override: Optional[bool]) -> bool:
    if override is not None:
        return override
    if _config["cache"] is not None:
        return _config["cache"]
    return os.environ.get("REPRO_CACHE", "1") != "0"


def cache_dir() -> Path:
    """Directory holding memoized grid-point results."""
    if _config["cache_dir"] is not None:
        return _config["cache_dir"]
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-experiments"


def clear_cache() -> int:
    """Delete every cached entry; returns the number removed.

    Sweeps live entries (``*.pkl``), quarantined unreadable ones
    (``*.corrupt``), temp files orphaned by interrupted writers
    (``.<key>.<pid>.tmp``) and shared-memory scratch segments orphaned
    by an abnormal exit (``/dev/shm/repro_shm_*`` — a run killed
    between publishing its arrays and unlinking them leaves these
    behind), all counted in the return value.
    """
    removed = _sweep_shm()
    root = cache_dir()
    if not root.is_dir():
        return removed
    for pattern in ("*.pkl", "*.corrupt", ".*.tmp"):
        for path in sorted(root.glob(pattern)):
            path.unlink(missing_ok=True)
            removed += 1
    return removed


_code_version: Optional[str] = None


def code_version() -> str:
    """Digest of every source file under the ``repro`` package.

    Any edit to any module invalidates all cached results.  Coarser than
    per-function dependency tracking, but a cached result can never
    survive a code change that would have altered it.
    """
    global _code_version
    if _code_version is None:
        root = Path(__file__).resolve().parents[1]
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _code_version = h.hexdigest()[:16]
    return _code_version


def _feed(h: "hashlib._Hash", value: Any) -> None:
    """Feed a canonical byte encoding of ``value`` into hasher ``h``.

    Covers everything experiment points pass around: scalars, strings,
    containers, numpy arrays (digested by dtype/shape/contents, so a
    64K-address pattern keys cheaply), and dataclasses such as
    :class:`~repro.simulator.machine.MachineConfig` (encoded field by
    field — the machine params part of the key).
    """
    if isinstance(value, np.ndarray):
        h.update(b"nd:")
        h.update(str(value.dtype).encode())
        h.update(str(value.shape).encode())
        h.update(np.ascontiguousarray(value).tobytes())
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        h.update(b"dc:")
        h.update(type(value).__qualname__.encode())
        for f in dataclasses.fields(value):
            h.update(f.name.encode())
            _feed(h, getattr(value, f.name))
    elif isinstance(value, dict):
        h.update(b"{:")
        for k in sorted(value, key=repr):
            _feed(h, k)
            _feed(h, value[k])
    elif isinstance(value, (list, tuple)):
        # Distinct tags: a list and a tuple of the same items are
        # different kwargs and must not share a memo entry.
        h.update(b"[:" if isinstance(value, list) else b"(:")
        for item in value:
            _feed(h, item)
    elif isinstance(value, (str, bytes, bool, type(None))):
        h.update(repr(value).encode())
    elif isinstance(value, (int, float, np.integer, np.floating)):
        # One representation per numeric value regardless of numpy width.
        try:
            canon: Union[int, float] = (
                # Exact integrality test on purpose: 3.0 and 3 must encode
                # identically so numpy widths don't split memo entries.
                int(value) if float(value) == int(value)  # reprolint: disable=REPRO103
                else float(value)
            )
        except (OverflowError, ValueError):
            # An int too large for float(), or a non-finite float for
            # int(): only one of the two forms represents the value at
            # all, so the cross-width collapse is moot — encode it
            # directly instead of raising (request-derived values reach
            # this hasher, and hashing must be total over them).
            canon = int(value) if isinstance(value, (int, np.integer)) \
                else float(value)
        h.update(repr(canon).encode())
    else:
        h.update(b"pk:")
        h.update(pickle.dumps(value, protocol=4))
    h.update(b";")


def cache_key(fn: Callable, kwargs: Dict[str, Any]) -> str:
    """Stable key for one grid point: code version + function identity +
    canonicalized arguments."""
    h = hashlib.sha256()
    h.update(f"v{_CACHE_VERSION}:{code_version()}".encode())
    h.update(f"{fn.__module__}.{fn.__qualname__}".encode())
    _feed(h, kwargs)
    return h.hexdigest()


_MISS = object()


def cache_fetch(
    fn: Callable, kwargs: Dict[str, Any]
) -> Tuple[bool, Any]:
    """Probe the on-disk memo for one point: ``(True, value)`` on a hit
    for ``fn(**kwargs)``, else ``(False, None)``.  Never computes.

    This is the read-only side of the memo :func:`run_grid` maintains;
    the serving layer (:mod:`repro.serving`) probes it at admission so a
    previously-computed request can be answered without occupying a
    queue slot.  Returns a miss outright while caching is disabled
    (same switches as :func:`run_grid`), and deliberately leaves
    :class:`GridStats` untouched — the probe is not a grid point.
    """
    if not _cache_enabled(None):
        return False, None
    hit = _cache_load(cache_key(fn, kwargs))
    if hit is _MISS:
        return False, None
    return True, hit


def cache_store(fn: Callable, kwargs: Dict[str, Any], value: Any) -> bool:
    """Write ``value`` into the memo as the result of ``fn(**kwargs)``.

    The write side of :func:`cache_fetch`, keyed identically (code
    version + function identity + canonicalized arguments), so state a
    caller persists here is found by any later session probing the same
    point.  The streaming simulator uses this to checkpoint streamed
    prefixes (:func:`repro.simulator.stream.stream_checkpoint`) under
    the same memo semantics as every experiment grid point.  Returns
    ``False`` without writing while caching is disabled (same switches
    as :func:`run_grid`); the write itself is best-effort and atomic.
    """
    if not _cache_enabled(None):
        return False
    _cache_store(cache_key(fn, kwargs), value)
    return True


def _cache_load(key: str) -> Any:
    path = cache_dir() / f"{key}.pkl"
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except FileNotFoundError:
        return _MISS
    except Exception:  # reprolint: disable=REPRO111 -- any unreadable entry is a miss, never a crash
        # The entry exists but cannot be read (truncated write, foreign
        # pickle, permission change...).  Quarantine it so the next run
        # does not pay the failed read again — clear_cache sweeps these.
        try:
            path.replace(path.with_suffix(".corrupt"))
            _stats.quarantined += 1
        except OSError:  # reprolint: disable=REPRO112 -- quarantine is best-effort
            pass
        return _MISS


def _cache_store(key: str, result: Any) -> None:
    root = cache_dir()
    try:
        root.mkdir(parents=True, exist_ok=True)
        tmp = root / f".{key}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(result, fh, protocol=4)
        tmp.replace(root / f"{key}.pkl")  # atomic publish
    except OSError:  # reprolint: disable=REPRO112 -- caching is best-effort; never fail the experiment
        pass


#: Name prefix of this package's shared-memory segments (visible as
#: ``/dev/shm/<prefix>*`` files on Linux; swept by :func:`clear_cache`).
_SHM_PREFIX = "repro_shm_"

#: ndarray kwargs at least this big ship via shared memory; smaller
#: ones ride in the pickled task payload (a segment per tiny array
#: would cost more than it saves).
_SHM_MIN_BYTES = 64 * 1024

#: Where POSIX shared memory appears as plain files (Linux tmpfs);
#: monkeypatched by tests, skipped where the platform has no such dir.
_SHM_DIR = Path("/dev/shm")

_shm_counter = itertools.count()


def shm_segment_name(tag: str = "seg") -> str:
    """Fresh shared-memory segment name under this package's prefix.

    Every segment this repo creates — the runner's zero-copy array
    shipping and the serving tier's shared hot cache — is named through
    here, so :func:`clear_cache`'s orphan sweep (and a human looking at
    ``/dev/shm``) covers all of them uniformly.  The name embeds the
    creating pid and a process-wide counter, so it never collides within
    a process tree.
    """
    return f"{_SHM_PREFIX}{tag}_{os.getpid()}_{next(_shm_counter)}"


def _sweep_shm() -> int:
    """Remove orphaned shared-memory scratch segments; returns the count.

    A normally-exiting :func:`run_grid` unlinks its own segments; this
    sweep (part of :func:`clear_cache`) collects what SIGKILL or a hard
    crash left behind.  Best-effort by design: live runs re-create what
    they need, and a segment that vanishes mid-delete is still gone.
    """
    if not _SHM_DIR.is_dir():
        return 0
    removed = 0
    for path in sorted(_SHM_DIR.glob(_SHM_PREFIX + "*")):
        try:
            path.unlink()
            removed += 1
        except OSError:  # reprolint: disable=REPRO112 -- sweep is best-effort; the segment may already be gone
            pass
    return removed


@dataclasses.dataclass(frozen=True)
class _ShmHandle:
    """Pickled in place of a large ndarray kwarg: workers attach the
    named segment and rebuild a (read-only) view instead of receiving
    a multi-megabyte pickled copy."""

    name: str
    dtype: str
    shape: Tuple[int, ...]


class _ShmSession:
    """Parent-side shared-memory publication for one :func:`run_grid`.

    Arrays are copied into named segments once each (deduplicated by
    object identity — an SpMV vector shared by every grid point
    occupies one segment) and unlinked in the grid's ``finally``;
    worker mappings survive the unlink until the pool winds down.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._handles: Dict[int, _ShmHandle] = {}

    def adapt(self, point: Dict[str, Any]) -> Dict[str, Any]:
        """Copy of ``point`` with large ndarray values replaced by
        handles (counted in ``GridStats.bytes_shipped``/``shm_hits``)."""
        out: Dict[str, Any] = {}
        for key, value in point.items():
            if (
                isinstance(value, np.ndarray)
                and value.nbytes >= _SHM_MIN_BYTES
                and not value.dtype.hasobject
            ):
                out[key] = self._publish(value)
                _stats.shm_hits += 1
                _stats.bytes_shipped += int(value.nbytes)
            else:
                out[key] = value
        return out

    def _publish(self, arr: np.ndarray) -> _ShmHandle:
        handle = self._handles.get(id(arr))
        if handle is not None:
            return handle
        contig = np.ascontiguousarray(arr)
        seg = shared_memory.SharedMemory(
            name=shm_segment_name(),
            create=True,
            size=contig.nbytes,
        )
        np.ndarray(contig.shape, dtype=contig.dtype, buffer=seg.buf)[...] \
            = contig
        handle = _ShmHandle(seg.name, str(contig.dtype), tuple(contig.shape))
        self._segments.append(seg)
        self._handles[id(arr)] = handle
        return handle

    def close(self) -> None:
        """Unlink every published segment (idempotent, best-effort)."""
        segments, self._segments = self._segments, []
        self._handles = {}
        for seg in segments:
            try:
                seg.close()
                seg.unlink()
            except OSError:  # reprolint: disable=REPRO112 -- teardown is best-effort; clear_cache sweeps leftovers
                pass


#: Worker-side attachment cache: one mapping per segment per worker
#: process.  Entries whose segment the parent has since unlinked are
#: evicted lazily by :func:`_evict_stale_attachments` — a long-lived
#: worker (a serving shard, a reused pool process) must not pin every
#: segment it ever mapped, because an mmap keeps the memory alive even
#: after the unlink.
_attached: Dict[str, shared_memory.SharedMemory] = {}


def _evict_stale_attachments() -> int:
    """Drop cached attachments whose segment the parent has unlinked.

    Called on every attachment-cache miss (i.e. when a *new* pool's
    segments start arriving — exactly the moment the previous pool's
    segments have been unlinked).  A mapping still exported to a live
    numpy view raises ``BufferError`` on close and is kept for the next
    sweep; everything else is closed so the kernel can finally free the
    unlinked pages.  Returns the number of entries evicted.  No-op on
    platforms without a visible shm directory — there the liveness
    probe (does the backing file still exist?) is unavailable, and the
    pre-fix behaviour (cache for the process lifetime) is kept.
    """
    if not _SHM_DIR.is_dir():
        return 0
    evicted = 0
    for name in list(_attached):
        if (_SHM_DIR / name).exists():
            continue  # parent still owns it; mapping stays hot
        seg = _attached[name]
        try:
            seg.close()
        except BufferError:  # reprolint: disable=REPRO112 -- a live view pins the mapping; entry stays for the next sweep
            # A numpy view from an in-flight (or leaked) resolve still
            # exports the buffer; closing now would invalidate it.
            continue
        del _attached[name]
        evicted += 1
    return evicted


def _attach(handle: _ShmHandle) -> np.ndarray:
    seg = _attached.get(handle.name)
    if seg is None:
        # A miss means a new publication round (new pool / new grid) is
        # reaching this worker — sweep the previous rounds' unlinked
        # segments before mapping more memory.
        _evict_stale_attachments()
        # Attaching re-registers the name with the resource tracker.
        # Pool workers (fork and spawn both) inherit the parent's
        # tracker, whose registry is a set, so the re-registration is
        # idempotent and the parent's unlink clears the single entry —
        # no unregister dance needed worker-side.
        seg = shared_memory.SharedMemory(name=handle.name)
        _attached[handle.name] = seg
    # np.frombuffer keeps the memoryview as the view's base and holds
    # its buffer export for the array's lifetime (np.ndarray(buffer=)
    # would unwrap to the mmap and drop the export): an eviction sweep
    # racing a live view gets a BufferError instead of unmapping the
    # pages out from under it.
    dtype = np.dtype(handle.dtype)
    count = int(np.prod(handle.shape, dtype=np.int64)) \
        if handle.shape else 1
    arr = np.frombuffer(seg.buf, dtype=dtype, count=count) \
        .reshape(handle.shape)
    # Read-only: grid points share these pages across workers, so a
    # mutating point function must fail loudly, not corrupt its peers.
    arr.setflags(write=False)
    return arr


def _resolve(point: Dict[str, Any]) -> Dict[str, Any]:
    return {
        key: _attach(value) if isinstance(value, _ShmHandle) else value
        for key, value in point.items()
    }


def _run_chunk(fn: Callable, chunk: List[Dict[str, Any]]) -> List[Any]:
    """Worker-side execution of one chunk of grid points."""
    return [fn(**_resolve(point)) for point in chunk]


def _run_fused(
    fn: Callable, group: List[Dict[str, Any]]
) -> Tuple[float, List[Any]]:
    """Evaluate one fused group through ``fn.grid_fuse.run``.

    Runs in-process on the serial path and as a single pooled task on
    the pooled path (one dispatch for the whole group instead of one
    per point).  Returns ``(elapsed_seconds, results)`` — the elapsed
    time is the ``GridStats.fused_seconds`` datum, measured here so
    pooled fused tasks report their own compute time.
    """
    points = [_resolve(point) for point in group]
    # Fused evaluation wall-clock is a GridStats datum, never cached.
    t0 = time.perf_counter()  # reprolint: disable=REPRO102
    out = fn.grid_fuse.run(points)
    elapsed = time.perf_counter() - t0  # reprolint: disable=REPRO102
    if not isinstance(out, list) or len(out) != len(points):
        raise ParameterError(
            f"{fn.__name__}.grid_fuse.run must return one result per "
            f"point; got {len(out) if isinstance(out, list) else out!r} "
            f"for {len(points)} points"
        )
    return elapsed, out


def _fusion_split(
    fn: Callable,
    points: List[Dict[str, Any]],
    todo: List[int],
    fuse: Optional[bool],
) -> Tuple[List[int], List[List[int]]]:
    """Partition the cache misses into per-point work and fused groups.

    A point function opts in by exposing a ``grid_fuse`` adapter with
    ``key(point)`` (a hashable compatibility key, or ``None`` for "run
    this point alone") and ``run(points)`` (evaluate a compatible group,
    results aligned).  Misses sharing a key form one fused group; keys
    held by a single point, keyless points, and everything when fusion
    is off stay on the per-point path.  ``fuse=None`` means "fuse when
    the adapter exists"; ``False`` forces per-point evaluation.
    """
    fuser = getattr(fn, "grid_fuse", None)
    if fuse is False or fuser is None or len(todo) < 2:
        return list(todo), []
    singles: List[int] = []
    by_key: Dict[Any, List[int]] = {}
    for i in todo:
        key = fuser.key(points[i])
        if key is None:
            singles.append(i)
        else:
            by_key.setdefault(key, []).append(i)
    groups: List[List[int]] = []
    for group in by_key.values():
        if len(group) >= 2:
            groups.append(group)
        else:
            singles.append(group[0])
    singles.sort()
    return singles, groups


#: Chunks submitted per worker: >1 keeps the pool load-balanced when
#: point costs vary without falling back to one future per point.
_CHUNKS_PER_WORKER = 4


def _pool(workers: int, cache: Optional[bool] = None) -> ProcessPoolExecutor:
    # Workers inherit the parent's effective cache settings but run
    # serially themselves — nested pools would oversubscribe the machine.
    return ProcessPoolExecutor(
        max_workers=workers,
        initializer=configure,
        initargs=(1, _cache_enabled(cache), cache_dir()),
    )


def run_grid(
    fn: Callable,
    points: Sequence[Dict[str, Any]],
    *,
    parallel: Optional[int] = None,
    cache: Optional[bool] = None,
    timeout: Optional[float] = None,
    fuse: Optional[bool] = None,
) -> List[Any]:
    """Evaluate ``fn(**point)`` for every point, in order.

    Results come back aligned with ``points`` regardless of completion
    order.  Cached points are served from disk without touching the
    pool; only misses are executed (and then stored).  While caching is
    enabled, *identical* points (same ``cache_key``) within one call
    are deduplicated up front: the first occurrence probes the memo and
    computes, the duplicates share its result
    (``GridStats.dedup_collapsed`` counts them).

    A point function may expose a ``grid_fuse`` adapter (see
    :func:`_fusion_split`): compatible cache misses are then dispatched
    as *one fused task* — a single vectorized pass over the whole group
    — instead of one task per point.  Each fused result is stored under
    its own point's ``cache_key``, and the adapter contract requires
    per-point results identical to ``fn(**point)``, so the memo stays
    bit-identical point for point.  A fused group that fails for any
    reason falls back to evaluating its points individually.

    The pooled fan-out never aborts the sweep on a single bad point: a
    point whose worker raises, exceeds ``timeout``, or dies (OOM kill,
    segfault — the whole pool breaks) is collected and retried serially
    in-process after the pool drains, so one flaky point costs one
    retry, not the whole grid.  Only a failure of the *serial* retry
    propagates.  Ctrl-C shuts the pool down immediately without waiting
    for outstanding points.

    Parameters
    ----------
    fn:
        Module-level point function (must be picklable by reference).
    points:
        One kwargs dict per grid point.
    parallel:
        Worker processes; default from :func:`configure` /
        ``REPRO_PARALLEL`` / 1.  With one worker (or one miss) the
        points run in-process — no pool overhead.
    cache:
        Force caching on/off for this grid; default from
        :func:`configure` / ``REPRO_CACHE`` / on.  Points that measure
        wall-clock time must pass ``cache=False``.  Disabling the cache
        also disables dedupe (no keys are computed, and repeat points
        may be intentional timing probes).
    timeout:
        Per-point seconds before a pooled point is abandoned and
        retried serially (a chunk of ``k`` points is waited on for
        ``k * timeout``, so the bound is per point, not a global
        budget; a timed-out chunk retries all of its points).
        ``None`` (default) waits forever.  Serial execution ignores
        it — in-process work cannot be preempted safely.
    fuse:
        ``None`` (default) fuses whenever ``fn`` carries a
        ``grid_fuse`` adapter; ``False`` forces per-point evaluation
        (e.g. for benchmarking the unfused path); ``True`` is the
        explicit spelling of the default behaviour.
    """
    points = [dict(p) for p in points]
    results: List[Any] = [None] * len(points)
    enabled = _cache_enabled(cache)
    keys: List[Optional[str]] = [None] * len(points)
    todo: List[int] = []
    dup_of: Dict[int, int] = {}
    first_of_key: Dict[str, int] = {}
    _stats.points += len(points)
    # Cache-scan wall-clock is a GridStats datum (pool vs cache split
    # in run manifests), never itself cached or compared.
    t0 = time.perf_counter()  # reprolint: disable=REPRO102
    for i, point in enumerate(points):
        if enabled:
            key = cache_key(fn, point)
            keys[i] = key
            first = first_of_key.get(key)
            if first is not None:
                # Identical point already seen in this submission:
                # collapse onto it — no second disk probe, no second
                # evaluation; its result is copied in at the end.
                dup_of[i] = first
                _stats.dedup_collapsed += 1
                continue
            first_of_key[key] = i
            hit = _cache_load(key)
            if hit is not _MISS:
                results[i] = hit
                _stats.cache_hits += 1
                continue
            _stats.cache_misses += 1
        todo.append(i)
    _stats.cache_seconds += time.perf_counter() - t0  # reprolint: disable=REPRO102

    t0 = time.perf_counter()  # reprolint: disable=REPRO102
    serial_fused = 0.0
    singles, fused_groups = _fusion_split(fn, points, todo, fuse)
    workers = min(_parallelism(parallel), len(singles) + len(fused_groups))
    if workers > 1:
        failed: List[int] = []
        session = _ShmSession()
        pool = _pool(workers, cache)
        try:
            payload = {i: session.adapt(points[i]) for i in todo}
            # A few chunks per worker: large enough to amortize pool
            # dispatch, small enough to balance uneven point costs.
            chunk_size = max(
                1, -(-len(singles) // (workers * _CHUNKS_PER_WORKER))
            )
            chunks = [
                singles[j:j + chunk_size]
                for j in range(0, len(singles), chunk_size)
            ]
            futures = {
                pool.submit(_run_chunk, fn, [payload[i] for i in chunk]):
                    ("chunk", chunk)
                for chunk in chunks
            }
            for group in fused_groups:
                # One pooled task per fused group: the whole compatible
                # sweep rides one dispatch + one vectorized pass.
                fut = pool.submit(
                    _run_fused, fn, [payload[i] for i in group]
                )
                futures[fut] = ("fused", group)
            for fut, (kind, chunk) in futures.items():
                try:
                    outcome = fut.result(
                        timeout=None if timeout is None
                        else timeout * len(chunk)
                    )
                except FuturesTimeoutError:
                    fut.cancel()
                    _stats.timeouts += len(chunk)
                    failed.extend(chunk)
                    continue
                except Exception:  # reprolint: disable=REPRO111 -- fault-tolerant retry must catch everything
                    # Includes BrokenProcessPool: when a worker dies the
                    # executor poisons every outstanding future, so each
                    # lands here and joins the serial retry pass.
                    failed.extend(chunk)
                    continue
                if kind == "fused":
                    elapsed, chunk_results = outcome
                    _stats.fused_seconds += elapsed
                    _stats.fused_points += len(chunk)
                else:
                    chunk_results = outcome
                for i, r in zip(chunk, chunk_results):
                    results[i] = r
        finally:
            # On SIGINT (or any error) drop queued work and return
            # without waiting for stragglers; workers are reaped on
            # interpreter exit.  Unlinking the segments here is safe:
            # workers that already mapped them keep their mappings.
            pool.shutdown(wait=False, cancel_futures=True)
            session.close()
        for i in failed:
            # Serial retries take the original points — arrays inline,
            # no shared-memory indirection (nor a fused pass) to go
            # wrong twice.
            _stats.retries += 1
            results[i] = fn(**points[i])
    else:
        for group in fused_groups:
            try:
                elapsed, group_results = _run_fused(fn, [points[i] for i in group])
            except Exception:  # reprolint: disable=REPRO111 -- a broken fused pass must fall back per point, not kill the grid
                for i in group:
                    _stats.retries += 1
                    results[i] = fn(**points[i])
                continue
            serial_fused += elapsed
            _stats.fused_seconds += elapsed
            _stats.fused_points += len(group)
            for i, r in zip(group, group_results):
                results[i] = r
        for i in singles:
            results[i] = fn(**points[i])

    if enabled:
        for i in todo:
            _cache_store(keys[i], results[i])
        for i, first in dup_of.items():
            results[i] = results[first]
    # In-process fused evaluation is its own wall-clock bucket; the
    # remainder of this block (pool fan-out, retries, stores) stays in
    # pool_seconds.
    _stats.pool_seconds += (
        time.perf_counter() - t0 - serial_fused  # reprolint: disable=REPRO102
    )
    return results


@dataclasses.dataclass(frozen=True)
class ExperimentOutcome:
    """One registry experiment's rendered output, wall-clock and stats.

    Attributes
    ----------
    exp_id:
        Registry id (DESIGN.md).
    output:
        The report string returned by the experiment's ``main()``.
    seconds:
        Wall-clock time of the run.
    captured:
        Everything the experiment wrote to stdout while running
        (``main()`` conventionally prints its own report, so this
        usually contains ``output`` plus any stray prints).
    stats:
        :class:`GridStats` accumulated by the experiment's grids.
    retries:
        Times the whole experiment was rerun serially after its pool
        worker died.
    """

    exp_id: str
    output: str
    seconds: float
    captured: str = ""
    stats: GridStats = dataclasses.field(default_factory=GridStats)
    retries: int = 0

    @property
    def stray_output(self) -> str:
        """Captured stdout that is not part of the returned report —
        debug prints that previously vanished under ``--all``."""
        stray = self.captured
        if self.output:
            stray = stray.replace(self.output, "", 1)
        return stray.strip()


def _run_experiment(exp_id: str) -> ExperimentOutcome:
    """Run one registry experiment, capturing its stdout and grid stats."""
    from . import REGISTRY  # deferred: workers re-import lazily

    reset_grid_stats()
    buf = io.StringIO()
    # Wall-clock here is the datum itself (ExperimentOutcome.seconds,
    # recorded in run manifests) — it is never cached or compared.
    t0 = time.perf_counter()  # reprolint: disable=REPRO102
    with redirect_stdout(buf):
        out = REGISTRY[exp_id].main()
    return ExperimentOutcome(
        exp_id,
        out if isinstance(out, str) else ("" if out is None else str(out)),
        time.perf_counter() - t0,  # reprolint: disable=REPRO102
        captured=buf.getvalue(),
        stats=grid_stats(),
    )


def run_experiments(
    ids: Sequence[str],
    parallel: Optional[int] = None,
) -> List[ExperimentOutcome]:
    """Run whole experiments (registry ids) concurrently, in id order.

    Unlike :func:`run_grid` there is no memo layer here — the per-point
    caches inside each experiment already carry the reuse; this level
    only supplies the fan-out for ``--all``.  An experiment whose pool
    worker dies is rerun serially (``outcome.retries`` records it), so
    one crash never takes down the whole ``--all`` sweep.
    """
    ids = list(ids)
    workers = min(_parallelism(parallel), len(ids))
    if workers <= 1:
        return [_run_experiment(i) for i in ids]
    results: Dict[str, ExperimentOutcome] = {}
    retry: List[str] = []
    pool = _pool(workers)
    try:
        futures = {pool.submit(_run_experiment, i): i for i in ids}
        for fut in as_completed(futures):
            try:
                outcome = fut.result()
            except Exception:  # reprolint: disable=REPRO111 -- one crashed experiment must not kill --all
                retry.append(futures[fut])
                continue
            results[outcome.exp_id] = outcome
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    for exp_id in sorted(retry, key=ids.index):
        results[exp_id] = dataclasses.replace(
            _run_experiment(exp_id), retries=1
        )
    return [results[i] for i in ids]
