"""Expansion figure — it pays to have more banks than d per processor.

The paper's second headline result: "it often improves performance to
have additional memory banks, even beyond the natural choice of d banks
per processor to compensate for a bank delay of d."

The sweep holds ``p`` and ``d`` fixed and varies the number of banks,
scattering the same irregular pattern through a random hash.  Two effects
shape the curve:

* up to ``x = d/g`` more banks add raw memory bandwidth — time drops
  steeply (the ``d/x`` regime);
* beyond ``x = d/g`` aggregate bandwidth already matches the processors,
  but random mapping balances better with more bins, so the *maximum*
  bank load (and hence the time) keeps improving — the paper's point.

Reported per expansion: simulated time, the (d,x)-BSP prediction and the
balance-only lower bound ``max(g·n/p, d·n/(x·p))``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.report import Series
from ..core.cost import per_processor_load, predict_scatter_dxbsp
from ..mapping.hashing import linear_hash
from ..simulator.banksim import simulate_scatter
from ..simulator.machine import MachineConfig
from ..workloads.patterns import hotspot, uniform_random
from .common import DEFAULT_N, DEFAULT_SEED, DEFAULT_SPACE, j90
from .runner import run_grid

__all__ = ["run", "main"]


def _point(
    machine: MachineConfig, x: float, n: int, hot_k: int, space: int,
    seed: int,
):
    """One expansion value.  Patterns and the hash map are deterministic
    in the seed, so each point regenerates them locally."""
    m = machine.with_(n_banks=max(1, int(round(x * machine.p))))
    addr = uniform_random(n, space, seed=seed)
    hot_addr = hotspot(n, hot_k, space, seed=seed + 1)
    mapping = linear_hash(seed=seed)
    balance = max(
        m.g * per_processor_load(n, m.p),
        m.d * per_processor_load(n, m.n_banks),
    )
    return (
        simulate_scatter(m, addr, mapping).time,
        predict_scatter_dxbsp(m.params(), addr, mapping),
        balance,
        simulate_scatter(m, hot_addr, mapping).time,
    )


def run(
    machine: Optional[MachineConfig] = None,
    n: int = DEFAULT_N,
    expansions: Optional[Sequence[float]] = None,
    hot_k: int = 4096,
    seed: int = DEFAULT_SEED,
) -> Series:
    """Sweep the bank count at fixed p and d (powers of two so the hash
    families apply).

    Besides the irregular (all-spreadable) pattern, a hot-spot column
    shows the limit of the remedy: expansion absorbs *module-map*
    contention but cannot touch *location* contention — the hot pattern
    flattens at ``d*hot_k`` no matter how many banks are added.
    """
    machine = machine or j90()
    xs = np.asarray(
        expansions if expansions is not None
        else [1, 2, 4, 8, 16, 32, 64, 128, 256],
        dtype=np.float64,
    )
    rows = run_grid(_point, [
        dict(machine=machine, x=float(x), n=n, hot_k=hot_k,
             space=DEFAULT_SPACE, seed=seed)
        for x in xs
    ])
    sim, pred, balance, hot_sim = (np.asarray(col) for col in zip(*rows))
    series = Series(
        name=f"fig_expansion ({machine.name} base, n={n}, d={machine.d}, "
        f"hot k={hot_k})",
        x_label="expansion x",
        x=xs,
    )
    series.add("simulated", sim)
    series.add("dxbsp", pred)
    series.add("perfect_balance", balance)
    series.add("hotspot_simulated", hot_sim)
    return series


def main() -> str:
    """Render and print the expansion sweep for the J90's d (and the
    C90's d as a contrast column would—run with a C90 machine for that)."""
    out = run().format()
    print(out)
    return out


if __name__ == "__main__":
    main()
