"""Experiment 1 — scatter time vs single-location contention.

A scatter of ``n`` elements where exactly ``k`` target one hot location
(the rest distinct).  The (d,x)-BSP predicts::

    T = max(g*n/p, d*k)        (L negligible)

so the curve is flat at ``g*n/p`` until the knee ``k* = g*n/(p*d)`` and
then rises with slope ``d``.  The BSP prediction rises only with slope
``g`` — under the J90's ``d = 14`` it under-predicts hot patterns by up
to 14x.  The simulator plays the role of the Cray measurements.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.predict import compare_scatter
from ..analysis.report import Series
from ..core.cost import crossover_contention
from ..simulator.machine import MachineConfig
from ..workloads.patterns import hotspot
from .common import DEFAULT_N, DEFAULT_SEED, DEFAULT_SPACE, diagnose_scatter, j90
from .runner import run_grid

__all__ = ["default_contentions", "run", "main", "diagnose"]


def default_contentions(n: int) -> np.ndarray:
    """Geometric sweep of contention values 1 .. n."""
    ks = np.unique(np.geomspace(1, n, num=17).astype(np.int64))
    return ks


def _point(machine: MachineConfig, n: int, k: int, space: int, seed: int):
    """One grid point: hot-spot pattern with contention ``k``."""
    addr = hotspot(n, k, space, seed=seed)
    cmp = compare_scatter(machine, addr, label=f"k={k}")
    return cmp.bsp_time, cmp.dxbsp_time, cmp.simulated_time


def run(
    machine: Optional[MachineConfig] = None,
    n: int = DEFAULT_N,
    contentions: Optional[Sequence[int]] = None,
    seed: int = DEFAULT_SEED,
) -> Series:
    """Sweep contention; returns a series with BSP / (d,x)-BSP / simulated
    times plus the analytic knee in the series name."""
    machine = machine or j90()
    ks = np.asarray(
        contentions if contentions is not None else default_contentions(n),
        dtype=np.int64,
    )
    rows = run_grid(_point, [
        dict(machine=machine, n=n, k=int(k), space=DEFAULT_SPACE, seed=seed + i)
        for i, k in enumerate(ks)
    ])
    bsp, dxbsp, sim = (np.asarray(col) for col in zip(*rows))
    knee = crossover_contention(machine.params(), n)
    series = Series(
        name=f"exp1_hotspot ({machine.name}, n={n}, knee k*~{knee:.0f})",
        x_label="contention k",
        x=ks.astype(np.float64),
    )
    series.add("bsp", bsp)
    series.add("dxbsp", dxbsp)
    series.add("simulated", sim)
    return series


def diagnose(
    machine: Optional[MachineConfig] = None,
    n: int = DEFAULT_N,
    k: Optional[int] = None,
    seed: int = DEFAULT_SEED,
) -> str:
    """Telemetry deep-dive on one contention value (default: all-hot).

    Shows the serialized hot bank directly — ``k`` requests' worth of
    busy cycles on one bank, queue high-water ~``k``, everything else
    idle — which is *why* the flat BSP prediction misses by up to ``d``x.
    """
    machine = machine or j90()
    k = n if k is None else int(k)
    addr = hotspot(n, k, DEFAULT_SPACE, seed=seed)
    return diagnose_scatter(machine, addr, label=f"hotspot k={k}")


def main() -> str:
    """Render and print the Experiment-1 sweep."""
    out = run().format()
    print(out)
    return out


if __name__ == "__main__":
    main()
