"""Binary-search figure [reconstructed number] — QRQW vs EREW lookup.

``n`` keys are searched in a balanced tree of ``m`` keys.  The QRQW
algorithm replicates the top tree levels and accepts bounded contention;
the EREW baseline sorts the queries first and merges.  Per the paper,
"the qrqw algorithm performs better over a wider range of problem sizes"
— here both instrumented programs are costed and simulated on the same
machine, sweeping ``n``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..algorithms.binary_search import (
    build_implicit_tree,
    erew_binary_search,
    qrqw_binary_search,
)
from ..analysis.predict import compare_program
from ..analysis.report import Series
from ..simulator.machine import MachineConfig
from ..workloads.traces import TraceRecorder
from .common import DEFAULT_SEED, j90
from .runner import run_grid

__all__ = ["run", "main"]


def _point(
    machine: MachineConfig, tree: np.ndarray, keys: np.ndarray,
    queries: np.ndarray, target_contention: int, seed: int,
):
    """One query batch: both search algorithms, simulated and predicted.

    The query batches are drawn sequentially from one generator in the
    parent (preserving the published numbers), so they arrive as arrays.
    """
    rec_q = TraceRecorder()
    res_q = qrqw_binary_search(
        tree, queries, target_contention, seed=seed, recorder=rec_q
    )
    rec_e = TraceRecorder()
    res_e = erew_binary_search(keys, queries, recorder=rec_e)
    assert (res_q == res_e).all()  # both must agree before we time them
    cq = compare_program(machine, rec_q.program)
    ce = compare_program(machine, rec_e.program)
    return (cq.simulated_time, ce.simulated_time,
            cq.dxbsp_time, ce.dxbsp_time)


def run(
    machine: Optional[MachineConfig] = None,
    m: int = 64 * 1024,
    n_values: Optional[Sequence[int]] = None,
    target_contention: int = 8,
    seed: int = DEFAULT_SEED,
) -> Series:
    """Sweep the number of queries ``n``; columns: simulated and
    (d,x)-BSP-predicted times for both algorithms."""
    machine = machine or j90()
    ns = np.asarray(
        n_values if n_values is not None
        else [1 << b for b in range(8, 17, 2)],
        dtype=np.int64,
    )
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.integers(0, 1 << 30, size=m, dtype=np.int64))
    tree = build_implicit_tree(keys)
    rows = run_grid(_point, [
        dict(machine=machine, tree=tree, keys=keys,
             queries=rng.integers(0, 1 << 30, size=int(n), dtype=np.int64),
             target_contention=target_contention, seed=seed + i)
        for i, n in enumerate(ns)
    ])
    qrqw_sim, erew_sim, qrqw_pred, erew_pred = (
        np.asarray(col) for col in zip(*rows)
    )
    series = Series(
        name=f"fig10_binary_search ({machine.name}, m={m}, tau={target_contention})",
        x_label="queries n",
        x=ns.astype(np.float64),
    )
    series.add("qrqw_simulated", qrqw_sim)
    series.add("erew_simulated", erew_sim)
    series.add("qrqw_dxbsp", qrqw_pred)
    series.add("erew_dxbsp", erew_pred)
    return series


def main() -> str:
    """Render and print the binary-search comparison."""
    out = run().format()
    print(out)
    return out


if __name__ == "__main__":
    main()
