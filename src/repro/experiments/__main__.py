"""Run paper experiments from the command line.

Usage::

    python -m repro.experiments                  # list experiments
    python -m repro.experiments E1 F12           # run selected ids
    python -m repro.experiments --all            # run everything
    python -m repro.experiments --all --parallel 4
    python -m repro.experiments E1 --no-cache    # force recomputation
    python -m repro.experiments --all --json out # + one manifest per id
"""

from __future__ import annotations

import argparse
import sys

from . import REGISTRY
from . import runner


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures "
        "(ids per DESIGN.md).",
    )
    parser.add_argument("ids", nargs="*", metavar="ID",
                        help="experiment ids (e.g. T1 E1 F12)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--parallel", type=int, metavar="N", default=None,
                        help="worker processes for experiments and grid "
                             "points (default: REPRO_PARALLEL or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and bypass the on-disk result cache")
    parser.add_argument("--clear-cache", action="store_true",
                        help="delete all cached results, then exit unless "
                             "ids/--all were also given")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write each experiment's output to "
                             "DIR/<id>.txt (with its wall-clock time)")
    parser.add_argument("--json", metavar="DIR", default=None,
                        dest="json_dir",
                        help="write one machine-readable run manifest per "
                             "experiment to DIR/<id>.json (seeds, machine "
                             "params, code version, cache hit/miss and "
                             "retry counts, wall-clock)")
    args = parser.parse_args(argv)
    if args.parallel is not None and args.parallel < 1:
        parser.error("--parallel must be >= 1")

    if args.clear_cache:
        removed = runner.clear_cache()
        print(f"cleared {removed} cached result(s) from {runner.cache_dir()}")
        if not args.ids and not args.all:
            return 0

    if not args.ids and not args.all:
        print("available experiments:")
        for key, mod in REGISTRY.items():
            doc = (mod.__doc__ or "").strip().splitlines()[0]
            print(f"  {key:<4} {doc}")
        print("\nrun with ids (e.g. `python -m repro.experiments E1`) "
              "or --all")
        return 0

    ids = list(REGISTRY) if args.all else args.ids
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        parser.error(f"unknown experiment id(s): {', '.join(unknown)} "
                     f"(known: {', '.join(REGISTRY)})")
    runner.configure(parallel=args.parallel,
                     cache=False if args.no_cache else None)
    import pathlib

    save_dir = None
    if args.save is not None:
        save_dir = pathlib.Path(args.save)
        save_dir.mkdir(parents=True, exist_ok=True)
    json_dir = None
    if args.json_dir is not None:
        json_dir = pathlib.Path(args.json_dir)
        json_dir.mkdir(parents=True, exist_ok=True)
    for outcome in runner.run_experiments(ids, parallel=args.parallel):
        print(f"=== {outcome.exp_id} [{outcome.seconds:.2f}s] " + "=" * 50)
        print(outcome.output)
        stray = outcome.stray_output
        if stray:
            print(f"--- captured stdout ({outcome.exp_id}) ---")
            print(stray)
        if save_dir is not None:
            text = f"{outcome.output}\n"
            if stray:
                text += f"\n[captured stdout]\n{stray}\n"
            # Pool vs cache vs fused split keeps saved timings honest:
            # a fully cache-hit rerun reports near-zero pool time
            # instead of passing the cache scan off as compute, and
            # fused grid passes are not hidden inside pool time.
            text += (
                f"\n[wall-clock: {outcome.seconds:.3f}s "
                f"(pool {outcome.stats.pool_seconds:.3f}s, "
                f"cache {outcome.stats.cache_seconds:.3f}s, "
                f"fused {outcome.stats.fused_seconds:.3f}s)]\n"
            )
            (save_dir / f"{outcome.exp_id}.txt").write_text(text)
        if json_dir is not None:
            from .manifest import RunManifest, write_manifest

            write_manifest(
                RunManifest.from_outcome(
                    outcome,
                    parallel=runner._parallelism(args.parallel),
                    cache_enabled=not args.no_cache,
                ),
                json_dir,
            )
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
