"""Run paper experiments from the command line.

Usage::

    python -m repro.experiments            # list experiments
    python -m repro.experiments E1 F12     # run selected ids
    python -m repro.experiments --all      # run everything
"""

from __future__ import annotations

import argparse
import sys

from . import REGISTRY


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures "
        "(ids per DESIGN.md).",
    )
    parser.add_argument("ids", nargs="*", metavar="ID",
                        help="experiment ids (e.g. T1 E1 F12)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write each experiment's output to "
                             "DIR/<id>.txt")
    args = parser.parse_args(argv)

    if not args.ids and not args.all:
        print("available experiments:")
        for key, mod in REGISTRY.items():
            doc = (mod.__doc__ or "").strip().splitlines()[0]
            print(f"  {key:<4} {doc}")
        print("\nrun with ids (e.g. `python -m repro.experiments E1`) "
              "or --all")
        return 0

    ids = list(REGISTRY) if args.all else args.ids
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        parser.error(f"unknown experiment id(s): {', '.join(unknown)} "
                     f"(known: {', '.join(REGISTRY)})")
    save_dir = None
    if args.save is not None:
        import pathlib

        save_dir = pathlib.Path(args.save)
        save_dir.mkdir(parents=True, exist_ok=True)
    for key in ids:
        print(f"=== {key} " + "=" * 60)
        out = REGISTRY[key].main()
        if save_dir is not None:
            (save_dir / f"{key}.txt").write_text(out + "\n")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
