"""QRQW emulation slowdown (Theorems 5.1 / 5.2).

Two views of the Section-5 result that the QRQW PRAM maps onto the
(d,x)-BSP work-preservingly with a slowdown that is a *nonlinear*
function of ``d`` and ``x``:

* **analytic** — :func:`repro.emulation.emulation_overhead` evaluated
  over an expansion sweep at fixed ``d``: for ``x <= d`` the overhead
  rides the inevitable ``d/(g·x)``; past ``x = d`` it keeps falling
  (sub-linearly) toward 1 as the Raghavan–Spencer congestion term
  shrinks;
* **measured** — random QRQW steps (uniform requests with a planted
  contention ``k``) executed via :func:`repro.emulation.emulate_qrqw`
  on machines with the swept bank counts.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.report import Series
from ..emulation.emulate import emulate_qrqw, emulation_overhead, inevitable_overhead
from ..emulation.qrqw import QRQWPram
from ..simulator.machine import MachineConfig
from ..workloads.patterns import hotspot
from .common import DEFAULT_SEED, j90
from .runner import run_grid

__all__ = ["run", "main", "build_random_qrqw_program"]


def build_random_qrqw_program(
    p: int, n_ops: int, k: int, n_steps: int, memory_size: int, seed: int
) -> QRQWPram:
    """A synthetic QRQW program: ``n_steps`` write steps of ``n_ops``
    requests each with planted location contention ``k``."""
    pram = QRQWPram(p=p, memory_size=memory_size)
    for s in range(n_steps):
        addr = hotspot(n_ops, k, memory_size, seed=seed + s)
        pram.write(addr, np.arange(n_ops), label=f"step{s}")
    return pram


def _point(
    machine: MachineConfig, x: float, n_ops: int, k: int, n_steps: int,
    memory_size: int, seed: int,
):
    """One expansion value.  The synthetic QRQW program is deterministic
    in (p, sizes, seed), so each point rebuilds it rather than shipping
    it — bit-identical and cheap next to the emulation itself."""
    m = machine.with_(n_banks=max(1, int(round(x * machine.p))))
    params = m.params()
    pram = build_random_qrqw_program(
        machine.p, n_ops, k, n_steps, memory_size=memory_size, seed=seed
    )
    res = emulate_qrqw(m, pram, seed=seed)
    return (
        emulation_overhead(params, n_ops, k),
        inevitable_overhead(params),
        res.measured_overhead,
    )


def run(
    machine: Optional[MachineConfig] = None,
    n_ops: int = 32 * 1024,
    k: int = 8,
    n_steps: int = 3,
    expansions: Optional[Sequence[float]] = None,
    seed: int = DEFAULT_SEED,
) -> Series:
    """Sweep expansion at the machine's fixed ``d``; columns: analytic
    overhead bound, the inevitable ``d/(gx)`` floor, and the measured
    overhead of an executed emulation."""
    machine = machine or j90()
    xs = np.asarray(
        expansions if expansions is not None else [1, 2, 4, 8, 16, 32, 64, 128],
        dtype=np.float64,
    )
    rows = run_grid(_point, [
        dict(machine=machine, x=float(x), n_ops=n_ops, k=k, n_steps=n_steps,
             memory_size=1 << 24, seed=seed)
        for x in xs
    ])
    bound, floor, measured = (np.asarray(col) for col in zip(*rows))
    series = Series(
        name=f"fig_emulation ({machine.name} base, d={machine.d}, "
        f"n={n_ops}/step, k={k})",
        x_label="expansion x",
        x=xs,
    )
    series.add("overhead_bound", bound)
    series.add("inevitable_d_over_gx", floor)
    series.add("measured", measured)
    return series


def main() -> str:
    """Render and print the emulation-overhead sweep."""
    out = run().format()
    print(out)
    return out


if __name__ == "__main__":
    main()
