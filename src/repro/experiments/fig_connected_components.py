"""Connected components — per-phase contention accounting (paper §6).

"Our final algorithm experiment measures the contention in Greiner's
algorithm ... hooking nodes together to form a forest, performing
repeated shortcutting operations ... contracting the graph ... and
expanding the graph to propagate the new labels."

For each input graph the instrumented run yields: the per-phase time
breakdown (simulated), the whole-program BSP and (d,x)-BSP predictions,
and the worst per-phase contention — showing that the hook phase on a
high-degree graph is where the BSP's accounting collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.connected_components import (
    connected_components,
    grid_edges,
    random_graph_edges,
    star_edges,
)
from ..analysis.predict import compare_program
from ..analysis.report import format_table
from ..simulator.machine import MachineConfig
from ..simulator.trace import simulate_program
from ..workloads.traces import TraceRecorder
from .common import DEFAULT_SEED, j90
from .runner import run_grid

__all__ = ["HEADERS", "default_graphs", "run", "main", "CCExperimentRow"]

HEADERS = (
    "graph", "vertices", "edges", "max k", "bsp", "dxbsp", "simulated",
    "sim/bsp",
)


@dataclass(frozen=True)
class CCExperimentRow:
    """One graph's outcome, with the per-phase simulated breakdown."""

    graph: str
    n_vertices: int
    n_edges: int
    max_contention: int
    bsp_time: float
    dxbsp_time: float
    simulated_time: float
    phase_times: Dict[str, float]

    def row(self) -> tuple:
        """Table row (phase breakdown reported separately)."""
        return (
            self.graph,
            self.n_vertices,
            self.n_edges,
            self.max_contention,
            self.bsp_time,
            self.dxbsp_time,
            self.simulated_time,
            self.simulated_time / self.bsp_time if self.bsp_time else float("inf"),
        )


def default_graphs(n: int, seed: int) -> List[Tuple[str, int, np.ndarray]]:
    """The three contrast graphs: random (moderate contention), star
    (maximum hook contention), grid (minimal contention, many rounds)."""
    side = max(2, int(np.sqrt(n)))
    return [
        ("random", n, random_graph_edges(n, 2 * n, seed)),
        ("star", n, star_edges(n)),
        ("grid", side * side, grid_edges(side, side)),
    ]


def _point(
    machine: MachineConfig, name: str, n_vertices: int, edges: np.ndarray
) -> CCExperimentRow:
    """One graph: instrumented CC run, model comparison, phase breakdown."""
    recorder = TraceRecorder()
    connected_components(n_vertices, edges, recorder=recorder)
    cmp = compare_program(machine, recorder.program, label=name)
    phases = simulate_program(machine, recorder.program).time_by_label()
    # Collapse per-round labels into their phase kind (hook/shortcut/
    # contract/expand) for a readable breakdown.
    collapsed: Dict[str, float] = {}
    for label, t in phases.items():
        parts = label.split("/")
        kind = parts[1] if parts[0].startswith("round") and len(parts) > 1 \
            else parts[0]
        collapsed[kind] = collapsed.get(kind, 0.0) + t
    return CCExperimentRow(
        graph=name,
        n_vertices=n_vertices,
        n_edges=int(edges.shape[0]),
        max_contention=cmp.contention,
        bsp_time=cmp.bsp_time,
        dxbsp_time=cmp.dxbsp_time,
        simulated_time=cmp.simulated_time,
        phase_times=collapsed,
    )


def run(
    machine: Optional[MachineConfig] = None,
    n: int = 16 * 1024,
    seed: int = DEFAULT_SEED,
) -> List[CCExperimentRow]:
    """Run all graphs; one :class:`CCExperimentRow` each."""
    machine = machine or j90()
    return run_grid(_point, [
        dict(machine=machine, name=name, n_vertices=nv, edges=edges)
        for name, nv, edges in default_graphs(n, seed)
    ])


def main() -> str:
    """Render and print the CC table plus per-phase breakdowns."""
    rows = run()
    parts = [format_table(HEADERS, [r.row() for r in rows],
                          title="connected components")]
    for r in rows:
        phase_rows = sorted(r.phase_times.items(), key=lambda kv: -kv[1])
        parts.append(
            format_table(("phase", "simulated cycles"), phase_rows,
                         title=f"phases: {r.graph}")
        )
    out = "\n\n".join(parts)
    print(out)
    return out


if __name__ == "__main__":
    main()
