"""Shared defaults for the experiment modules.

The paper runs on a dedicated 8-processor Cray J90 (with C90 results
"qualitatively similar"), vectors of S = 64K elements per superstep and
negligible L.  The experiment defaults mirror that: the J90 preset, 64K
requests per pattern, and a deterministic seed so every table and figure
regenerates bit-identically.
"""

from __future__ import annotations

from ..simulator.machine import CRAY_C90, CRAY_J90, MachineConfig

__all__ = [
    "DEFAULT_SEED",
    "DEFAULT_N",
    "DEFAULT_SPACE",
    "j90",
    "c90",
    "diagnose_scatter",
]

#: Seed used by every experiment unless overridden.
DEFAULT_SEED = 1995  # the paper's year

#: Requests per pattern — the paper's S = 64K.
DEFAULT_N = 64 * 1024

#: Address space for background traffic (comfortably exceeds bank counts).
DEFAULT_SPACE = 1 << 24


def j90(**overrides) -> MachineConfig:
    """The paper's experimental machine: 8-processor Cray J90."""
    return CRAY_J90.with_(**overrides) if overrides else CRAY_J90


def c90(**overrides) -> MachineConfig:
    """The Cray C90 preset (d = 6, SRAM)."""
    return CRAY_C90.with_(**overrides) if overrides else CRAY_C90


def diagnose_scatter(machine: MachineConfig, addresses, label: str = "") -> str:
    """Explain one pattern's prediction error with simulator telemetry.

    Runs the pattern through both models and the simulator (with
    telemetry on) and renders: the three times with the (d,x)-BSP's
    signed error, then the hottest banks and the stall breakdown — the
    *why* when a pattern misses (or meets) the model bound.  The
    experiment modules expose this as ``diagnose(...)`` with their own
    pattern generators.
    """
    from ..analysis.predict import compare_scatter
    from ..analysis.report import telemetry_table
    from ..simulator.banksim import simulate_scatter

    cmp = compare_scatter(machine, addresses, label=label)
    res = simulate_scatter(machine, addresses, telemetry=True)
    header = (
        f"{label or 'pattern'}: n={cmp.n} k={cmp.contention}  "
        f"bsp={cmp.bsp_time:,.0f}  dxbsp={cmp.dxbsp_time:,.0f}  "
        f"simulated={cmp.simulated_time:,.0f}  "
        f"(dxbsp error {cmp.dxbsp_error:+.1%})"
    )
    return header + "\n" + telemetry_table(res)
