"""Multiprefix contention study [She93] — the paper's future work.

The conclusion lists multiprefix among the algorithms "we are currently
looking into analyzing".  The analysis here compares the two natural
implementations across key-multiplicity regimes:

* **sort-based** — radix sort + segmented scan + unpermute:
  contention-free, fixed multi-pass traffic;
* **direct** — every element updates its key's cell with a queued write:
  one pass, contention = the maximum key multiplicity.

The crossover is exactly the Figure-11 trade replayed for multiprefix:
with many distinct keys the direct method's contention is low and it
wins; as keys concentrate, ``d * multiplicity`` overtakes the sort's
fixed cost.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..algorithms.multiprefix import multiprefix, multiprefix_direct
from ..analysis.predict import compare_program
from ..analysis.report import Series
from ..simulator.machine import MachineConfig
from ..workloads.traces import TraceRecorder
from .common import DEFAULT_SEED, j90
from .runner import run_grid

__all__ = ["run", "main"]


def _point(
    machine: MachineConfig, keys: np.ndarray, values: np.ndarray,
    n_keys: int,
):
    """One key-multiplicity regime: both implementations, simulated.

    Key/value draws come sequentially from one parent generator, so the
    arrays ship with the point.
    """
    rec_s = TraceRecorder()
    p_s, t_s = multiprefix(keys, values, n_keys, recorder=rec_s)
    rec_d = TraceRecorder()
    p_d, t_d = multiprefix_direct(keys, values, n_keys, recorder=rec_d)
    assert np.array_equal(p_s, p_d) and np.array_equal(t_s, t_d)
    return (
        compare_program(machine, rec_s.program).simulated_time,
        compare_program(machine, rec_d.program).simulated_time,
        float(np.bincount(keys, minlength=n_keys).max()),
    )


def run(
    machine: Optional[MachineConfig] = None,
    n: int = 32 * 1024,
    n_keys_values: Optional[Sequence[int]] = None,
    seed: int = DEFAULT_SEED,
) -> Series:
    """Sweep the number of distinct keys (high -> low multiplicity)."""
    machine = machine or j90()
    keys_sweep = np.asarray(
        n_keys_values if n_keys_values is not None
        else [2, 16, 128, 1024, 8192, 32768],
        dtype=np.int64,
    )
    rng = np.random.default_rng(seed)
    points = []
    for n_keys in keys_sweep:
        keys = rng.integers(0, n_keys, size=n, dtype=np.int64)
        values = rng.integers(0, 100, size=n, dtype=np.int64)
        points.append(dict(machine=machine, keys=keys, values=values,
                           n_keys=int(n_keys)))
    rows = run_grid(_point, points)
    sorted_sim, direct_sim, mult = (np.asarray(col) for col in zip(*rows))
    series = Series(
        name=f"fig_multiprefix ({machine.name}, n={n}) [future work]",
        x_label="distinct keys",
        x=keys_sweep.astype(np.float64),
    )
    series.add("max_multiplicity", mult)
    series.add("sorted_simulated", sorted_sim)
    series.add("direct_simulated", direct_sim)
    return series


def main() -> str:
    """Render and print the multiprefix comparison."""
    out = run().format()
    print(out)
    return out


if __name__ == "__main__":
    main()
