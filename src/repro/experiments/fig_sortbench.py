"""Radix sort vs key distribution — the NAS-IS tie-in.

The paper's EREW baseline is Zagha–Blelloch radix sort, "the fastest
implementation of the NAS sorting benchmark" [ZB91, BBDS94].  Sorting
speed on a bank-delay machine depends on the *key distribution* through
the histogramming step: private per-processor histograms remove
cross-processor contention, but each processor still queues its own
updates at popular digit cells, so skewed keys serialize there.

The sweep sorts the same number of keys from four families — uniform,
NAS-IS (binomial-shaped), Zipf, and a Thearling–Smith AND round — and
reports the instrumented program's BSP / (d,x)-BSP / simulated times
plus the histogram step's worst contention.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..algorithms.radix_sort import radix_sort
from ..analysis.predict import compare_program
from ..analysis.report import format_table
from ..simulator.machine import MachineConfig
from ..workloads.entropy import anded_keys
from ..workloads.nas import nas_is_keys
from ..workloads.patterns import uniform_random, zipf_pattern
from ..workloads.traces import TraceRecorder
from .common import DEFAULT_SEED, j90
from .runner import run_grid

__all__ = ["HEADERS", "key_families", "run", "main"]

HEADERS = ("keys", "hist contention", "bsp", "dxbsp", "simulated",
           "vs uniform")


def key_families(n: int, bits: int, seed: int) -> List[Tuple[str, np.ndarray]]:
    """The four key distributions, all over ``[0, 2^bits)``."""
    space = 1 << bits
    return [
        ("uniform", uniform_random(n, space, seed=seed)),
        ("nas-is", nas_is_keys(n, bits=bits, seed=seed)),
        ("zipf a=1.3", zipf_pattern(n, space, alpha=1.3, seed=seed)),
        ("ts-and r=2", anded_keys(n, bits, rounds=2, seed=seed)),
    ]


def _point(machine: MachineConfig, keys: np.ndarray, bits: int):
    """One key family: instrumented sort + model comparison."""
    recorder = TraceRecorder()
    sorted_keys, _, _ = radix_sort(keys, bits=bits, recorder=recorder)
    assert sorted_keys[0] <= sorted_keys[-1]
    cmp = compare_program(machine, recorder.program)
    hist_k = max(
        s.stats().max_location_contention
        for s in recorder.program if "histogram" in s.label
    )
    return hist_k, cmp.bsp_time, cmp.dxbsp_time, cmp.simulated_time


def run(
    machine: Optional[MachineConfig] = None,
    n: int = 64 * 1024,
    bits: int = 19,
    seed: int = DEFAULT_SEED,
) -> List[Tuple]:
    """One row per key family ("vs uniform" is relative to the first)."""
    machine = machine or j90()
    families = key_families(n, bits, seed)
    results = run_grid(_point, [
        dict(machine=machine, keys=keys, bits=bits) for _, keys in families
    ])
    uniform_time = results[0][3]
    return [
        (name, hist_k, bsp, dxbsp, sim, sim / uniform_time)
        for (name, _), (hist_k, bsp, dxbsp, sim) in zip(families, results)
    ]


def main() -> str:
    """Render and print the sorting-benchmark table."""
    out = format_table(HEADERS, run(),
                       title="radix sort vs key distribution (NAS tie-in)")
    print(out)
    return out


if __name__ == "__main__":
    main()
