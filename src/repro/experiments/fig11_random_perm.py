"""Figure 11 — random permutation: QRQW dart-throwing vs EREW sort.

"The qrqw algorithm performs better over a wider range of problem sizes,
and even a simple C implementation outperforms the erew version, which is
based on a highly-optimized radix sort [ZB91]."

Both instrumented generators run over a sweep of ``n``; their recorded
programs are simulated and predicted on the same machine.  The expected
shape: the dart thrower touches each element O(1) expected times per
round with geometrically shrinking rounds (~2.7n total traffic at factor
1) versus the radix sort's fixed multi-pass traffic (~4 supersteps x
passes x n), so QRQW wins across the sweep and the gap widens with key
width.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..algorithms.random_permutation import (
    erew_random_permutation,
    qrqw_random_permutation,
)
from ..analysis.predict import compare_program
from ..analysis.report import Series
from ..simulator.machine import MachineConfig
from ..workloads.traces import TraceRecorder
from .common import DEFAULT_SEED, j90
from .runner import run_grid

__all__ = ["run", "main"]


def _point(machine: MachineConfig, n: int, key_bits: int, seed: int):
    """One permutation size: both generators, simulated and predicted."""
    rec_q = TraceRecorder()
    _, stats = qrqw_random_permutation(n, seed=seed, recorder=rec_q)
    rec_e = TraceRecorder()
    erew_random_permutation(n, key_bits=key_bits, seed=seed, recorder=rec_e)
    cq = compare_program(machine, rec_q.program)
    ce = compare_program(machine, rec_e.program)
    return (cq.simulated_time, ce.simulated_time,
            cq.dxbsp_time, ce.dxbsp_time, float(stats.rounds))


def run(
    machine: Optional[MachineConfig] = None,
    n_values: Optional[Sequence[int]] = None,
    key_bits: int = 48,
    seed: int = DEFAULT_SEED,
) -> Series:
    """Sweep the permutation size; columns: simulated and predicted times
    for both algorithms plus the dart round count."""
    machine = machine or j90()
    ns = np.asarray(
        n_values if n_values is not None
        else [1 << b for b in range(10, 19, 2)],
        dtype=np.int64,
    )
    rows = run_grid(_point, [
        dict(machine=machine, n=int(n), key_bits=key_bits, seed=seed + i)
        for i, n in enumerate(ns)
    ])
    qrqw_sim, erew_sim, qrqw_pred, erew_pred, rounds = (
        np.asarray(col) for col in zip(*rows)
    )
    series = Series(
        name=f"fig11_random_perm ({machine.name}, {key_bits}-bit EREW keys)",
        x_label="permutation size n",
        x=ns.astype(np.float64),
    )
    series.add("qrqw_simulated", qrqw_sim)
    series.add("erew_simulated", erew_sim)
    series.add("qrqw_dxbsp", qrqw_pred)
    series.add("erew_dxbsp", erew_pred)
    series.add("dart_rounds", rounds)
    return series


def main() -> str:
    """Render and print Figure 11."""
    out = run().format()
    print(out)
    return out


if __name__ == "__main__":
    main()
