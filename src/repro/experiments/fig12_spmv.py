"""Figure 12 — sparse matrix–vector multiply vs dense-column length.

"Figure 12 shows measured and predicted time as a function of the length
of the dense column": the SpMV gather of the input vector reads the dense
column's entry once per containing row, so its location contention equals
the column length.  The BSP prediction ignores the bank delay and stays
flat; the (d,x)-BSP rises with slope ``d`` past the knee and tracks the
measurement.

The whole instrumented SpMV program (column read, x-gather, value read,
segmented sum, result write) is predicted and simulated — not just the
gather — so regular traffic dilutes the discrepancy exactly as on the
real machine.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..algorithms.spmv import dense_column_csr, spmv
from ..analysis.predict import compare_program
from ..analysis.report import Series
from ..simulator.machine import MachineConfig
from ..workloads.traces import TraceRecorder
from .common import DEFAULT_SEED, j90
from .runner import run_grid

__all__ = ["run", "main"]


def _point(
    machine: MachineConfig, n_rows: int, n_cols: int, nnz_per_row: int,
    dense_len: int, x: np.ndarray, seed: int,
):
    """One dense-column length: instrumented SpMV + model comparison."""
    matrix = dense_column_csr(n_rows, n_cols, nnz_per_row, dense_len,
                              seed=seed)
    recorder = TraceRecorder()
    spmv(matrix, x, recorder=recorder)
    cmp = compare_program(machine, recorder.program,
                          label=f"dense={dense_len}")
    return cmp.bsp_time, cmp.dxbsp_time, cmp.simulated_time


def run(
    machine: Optional[MachineConfig] = None,
    n_rows: int = 16 * 1024,
    n_cols: int = 16 * 1024,
    nnz_per_row: int = 4,
    dense_lens: Optional[Sequence[int]] = None,
    seed: int = DEFAULT_SEED,
) -> Series:
    """Sweep the dense-column length; columns: BSP / (d,x)-BSP /
    simulated whole-program times."""
    machine = machine or j90()
    lens = np.asarray(
        dense_lens if dense_lens is not None
        else np.unique(np.geomspace(1, n_rows, num=9).astype(np.int64)),
        dtype=np.int64,
    )
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n_cols)
    rows = run_grid(_point, [
        dict(machine=machine, n_rows=n_rows, n_cols=n_cols,
             nnz_per_row=nnz_per_row, dense_len=int(dlen), x=x, seed=seed + i)
        for i, dlen in enumerate(lens)
    ])
    bsp, dxbsp, sim = (np.asarray(col) for col in zip(*rows))
    series = Series(
        name=f"fig12_spmv ({machine.name}, {n_rows}x{n_cols}, "
        f"{nnz_per_row} nnz/row)",
        x_label="dense column length",
        x=lens.astype(np.float64),
    )
    series.add("bsp", bsp)
    series.add("dxbsp", dxbsp)
    series.add("simulated", sim)
    return series


def main() -> str:
    """Render and print Figure 12."""
    out = run().format()
    print(out)
    return out


if __name__ == "__main__":
    main()
