"""Constant-stride bank conflicts [CS86, Soh93] — classical contrast.

The paper points at the literature for strided timings and focuses on
irregular patterns; this extension regenerates the classical strided
curve on our machine presets, plus the Section-4 remedy: hashing the bank
map turns every stride into average-case random traffic, at the price of
a bounded module-map overhead on the strides interleaving served
perfectly.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.strides import banks_touched, predict_strided_time
from ..mapping.hashing import linear_hash
from ..simulator.banksim import simulate_scatter
from ..simulator.machine import MachineConfig
from ..workloads.patterns import strided
from .common import DEFAULT_SEED, j90
from .runner import run_grid

from ..analysis.report import Series

__all__ = ["run", "main"]


def _point(machine: MachineConfig, n: int, stride: int, seed: int):
    """One stride: analytic prediction plus both simulated variants.

    The linear-hash map is rebuilt from ``seed`` inside the point so the
    mapping object itself need not be shipped.
    """
    addr = strided(n, stride)
    return (
        banks_touched(stride, machine.n_banks),
        predict_strided_time(machine, n, stride),
        simulate_scatter(machine, addr).time,
        simulate_scatter(machine, addr, linear_hash(seed)).time,
    )


def run(
    machine: Optional[MachineConfig] = None,
    n: int = 32 * 1024,
    strides: Optional[Sequence[int]] = None,
    seed: int = DEFAULT_SEED,
) -> Series:
    """Sweep strides; columns: banks touched, analytic prediction,
    simulated time under interleaving, and simulated time under a random
    (linear-hash) bank map."""
    machine = machine or j90()
    svals = np.asarray(
        strides if strides is not None
        else [1, 2, 3, 4, 8, 16, 64, 128, 512],
        dtype=np.int64,
    )
    rows = run_grid(_point, [
        dict(machine=machine, n=n, stride=int(s), seed=seed) for s in svals
    ])
    touched, pred, sim_il, sim_hash = (
        np.asarray(col, dtype=np.float64) for col in zip(*rows)
    )
    series = Series(
        name=f"fig_strides ({machine.name}, n={n}) [classical contrast]",
        x_label="stride",
        x=svals.astype(np.float64),
    )
    series.add("banks_touched", touched)
    series.add("predicted", pred)
    series.add("interleaved_sim", sim_il)
    series.add("hashed_sim", sim_hash)
    return series


def main() -> str:
    """Render and print the stride sweep."""
    out = run().format()
    print(out)
    return out


if __name__ == "__main__":
    main()
