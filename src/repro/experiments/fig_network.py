"""Network worst case — versions (a), (b), (c).

The paper tested three versions of a worst-case pattern on the J90:
(a) and (b) spread across the network and "are quite close to the
predicted performance"; version (c) concentrates all references in one
subsection of the network and runs "up to a factor of 2.5 off from the
prediction because of congestion at one of the subsections" — a refined
model [ST91] would be needed.

We regenerate all three on a sectioned machine:

* (a) uniform traffic over all banks/sections;
* (b) traffic confined to half the sections;
* (c) traffic confined to one section.

For each: the bank-only (d,x)-BSP prediction, the section-aware
prediction, the simulated time and the (c)-style discrepancy ratio.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..analysis.report import format_table
from ..core.cost import predict_scatter_dxbsp
from ..simulator.banksim import simulate_scatter
from ..simulator.machine import MachineConfig
from ..simulator.network import predict_scatter_sections
from ..workloads.patterns import section_confined, uniform_random
from .common import DEFAULT_N, DEFAULT_SEED, DEFAULT_SPACE, j90
from .runner import run_grid

__all__ = ["HEADERS", "default_machine", "run", "main", "diagnose"]

HEADERS = (
    "version", "n", "bank_pred", "section_pred", "simulated", "sim/bank_pred"
)


def default_machine() -> MachineConfig:
    """J90 with its 4 sections, link bandwidth sized so the *aggregate*
    section bandwidth matches peak processor issue (``n_sections / gap =
    p / g``): uniform traffic is then unaffected, but a pattern confined
    to one section is limited to ``1/n_sections`` of peak — version (c)."""
    base = j90()
    return base.with_(section_gap=base.n_sections * base.g / base.p)


def _point(machine: MachineConfig, label: str, addr: np.ndarray):
    """One pattern version: both predictions plus the simulated time."""
    bank_pred = predict_scatter_dxbsp(machine.params(), addr)
    sect_pred = predict_scatter_sections(machine, addr)
    sim = simulate_scatter(machine, addr).time
    return (label, int(addr.size), bank_pred, sect_pred, sim,
            sim / bank_pred if bank_pred else float("inf"))


def run(
    machine: Optional[MachineConfig] = None,
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
) -> List[Tuple]:
    """Rows for versions (a)/(b)/(c)."""
    machine = machine or default_machine()
    rng_seed = seed
    versions = []
    # (a): uniform over all sections.
    versions.append(("a (uniform)", uniform_random(n, DEFAULT_SPACE, rng_seed)))
    # (b): half the sections (interleaved in issue order so both links are
    # busy from the first cycle).
    half = max(1, machine.n_sections // 2)
    parts = [
        section_confined(machine, n // half, s, seed=rng_seed + s)
        for s in range(half)
    ]
    b_addr = np.concatenate(parts)
    np.random.default_rng(rng_seed + 100).shuffle(b_addr)
    versions.append(("b (half sections)", b_addr))
    # (c): a single section.
    versions.append(
        ("c (one section)", section_confined(machine, n, 0, seed=rng_seed + 7))
    )
    return run_grid(_point, [
        dict(machine=machine, label=label, addr=addr)
        for label, addr in versions
    ])


def diagnose(
    machine: Optional[MachineConfig] = None,
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
) -> str:
    """Telemetry deep-dive on version (c), one confined section: the
    stall breakdown's ``link_wait`` bucket carries the time the
    bank-only prediction cannot see (requests queued at the section
    link, not at any bank)."""
    from .common import diagnose_scatter

    machine = machine or default_machine()
    addr = section_confined(machine, n, 0, seed=seed + 7)
    return diagnose_scatter(machine, addr, label="c (one section)")


def main() -> str:
    """Render and print the versions table."""
    out = format_table(HEADERS, run(), title="network worst case (a)/(b)/(c)")
    print(out)
    return out


if __name__ == "__main__":
    main()
