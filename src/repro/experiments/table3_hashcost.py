"""Table 3 — evaluation cost of the hash families.

The paper reports clock cycles per element to evaluate the linear,
quadratic and cubic multiplicative hashes on one C90 processor.  Our
substitute measures wall-clock nanoseconds per element for the vectorized
NumPy implementations and reports them next to the Horner-form operation
counts; the reproduction target is the *shape* — cost growing linearly
with polynomial degree, h1 < h2 < h3.

This experiment deliberately bypasses :mod:`repro.experiments.runner`:
it measures wall-clock time, which must never be served from the memo
cache, and the three timings share one process so they compete fairly.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from ..analysis.report import format_table
from ..mapping.hashing import cubic_hash, hash_flop_count, linear_hash, quadratic_hash
from ..workloads.patterns import uniform_random
from .common import DEFAULT_SEED

__all__ = ["HEADERS", "run", "main", "time_hash"]

HEADERS = ("hash", "degree", "int ops/elem", "ns/elem", "rel. cost")


def time_hash(mapping, keys: np.ndarray, n_banks: int, repeats: int = 5) -> float:
    """Best-of-``repeats`` evaluation time in ns per element."""
    best = float("inf")
    for _ in range(repeats):
        # Wall-clock IS the measured quantity here (Table 3 reports
        # ns/element of real hash evaluation); this experiment bypasses
        # the memo cache for exactly that reason (module docstring).
        t0 = time.perf_counter()  # reprolint: disable=REPRO102
        mapping(keys, n_banks)
        best = min(best, time.perf_counter() - t0)  # reprolint: disable=REPRO102
    return best / keys.size * 1e9


def run(
    n: int = 1 << 20,
    n_banks: int = 512,
    seed: int = DEFAULT_SEED,
    repeats: int = 5,
) -> List[Tuple]:
    """Measure all three families on the same key vector."""
    keys = uniform_random(n, 1 << 40, seed=seed)
    families = [
        ("h1 (linear)", linear_hash(seed)),
        ("h2 (quadratic)", quadratic_hash(seed)),
        ("h3 (cubic)", cubic_hash(seed)),
    ]
    timings = [
        (label, m.degree, hash_flop_count(m.degree),
         time_hash(m, keys, n_banks, repeats))
        for label, m in families
    ]
    base = timings[0][3] or 1.0
    return [
        (label, deg, ops, ns, ns / base) for label, deg, ops, ns in timings
    ]


def main() -> str:
    """Render and print Table 3."""
    out = format_table(HEADERS, run(), title="Table 3: hash evaluation cost")
    print(out)
    return out


if __name__ == "__main__":
    main()
