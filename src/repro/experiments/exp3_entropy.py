"""Experiment 3 — Thearling–Smith entropy distributions.

The paper: "To verify that the running time can be accurately predicted
for less regular distributions of memory accesses, we constructed an
experiment using the entropy distributions suggested by Thearling and
Smith [TS92]" — random keys repeatedly ANDed together, sweeping from
uniform scatter (round 0) down to everything-hits-zero (contention n).

Keys are reduced modulo an address space and scattered; both models and
the simulator are evaluated per AND-round, with the empirical entropy and
contention reported alongside.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis.predict import compare_scatter
from ..analysis.report import Series
from ..core.contention import empirical_entropy, max_location_contention
from ..simulator.machine import MachineConfig
from ..workloads.entropy import entropy_family, theoretical_entropy_bits
from .common import DEFAULT_N, DEFAULT_SEED, j90
from .runner import run_grid

__all__ = ["run", "main"]


def _point(machine: MachineConfig, keys: np.ndarray):
    """One AND round: model comparison plus distribution statistics.

    The rounds are generated sequentially (each ANDs the previous one),
    so the parent builds the family and ships each round's keys here.
    """
    cmp = compare_scatter(machine, keys)
    return (
        cmp.bsp_time, cmp.dxbsp_time, cmp.simulated_time,
        empirical_entropy(keys), float(max_location_contention(keys)),
    )


def run(
    machine: Optional[MachineConfig] = None,
    n: int = DEFAULT_N,
    bits: int = 24,
    max_rounds: int = 10,
    seed: int = DEFAULT_SEED,
) -> Series:
    """Sweep AND rounds 0..max_rounds; x axis is the round index, columns
    include the resulting empirical entropy and contention so the series
    doubles as the distribution characterization."""
    machine = machine or j90()
    family = entropy_family(n, bits, max_rounds, seed=seed)
    rounds = np.arange(len(family), dtype=np.float64)
    rows = run_grid(_point, [
        dict(machine=machine, keys=keys) for keys in family
    ])
    bsp, dxbsp, sim, ent, cont = (np.asarray(col) for col in zip(*rows))
    ent_theory = np.array(
        [theoretical_entropy_bits(bits, i) for i in range(len(family))]
    )
    series = Series(
        name=f"exp3_entropy ({machine.name}, n={n}, {bits}-bit keys)",
        x_label="AND rounds",
        x=rounds,
    )
    series.add("entropy_bits", ent)
    series.add("entropy_theory", ent_theory)
    series.add("contention", cont)
    series.add("bsp", bsp)
    series.add("dxbsp", dxbsp)
    series.add("simulated", sim)
    return series


def main() -> str:
    """Render and print the Experiment-3 sweep."""
    out = run().format()
    print(out)
    return out


if __name__ == "__main__":
    main()
