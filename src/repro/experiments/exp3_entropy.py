"""Experiment 3 — Thearling–Smith entropy distributions.

The paper: "To verify that the running time can be accurately predicted
for less regular distributions of memory accesses, we constructed an
experiment using the entropy distributions suggested by Thearling and
Smith [TS92]" — random keys repeatedly ANDed together, sweeping from
uniform scatter (round 0) down to everything-hits-zero (contention n).

Keys are reduced modulo an address space and scattered; both models and
the simulator are evaluated per AND-round, with the empirical entropy and
contention reported alongside.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis.predict import compare_scatter
from ..analysis.report import Series
from ..core.contention import empirical_entropy, max_location_contention
from ..simulator.machine import MachineConfig
from ..workloads.entropy import entropy_family, theoretical_entropy_bits
from .common import DEFAULT_N, DEFAULT_SEED, j90

__all__ = ["run", "main"]


def run(
    machine: Optional[MachineConfig] = None,
    n: int = DEFAULT_N,
    bits: int = 24,
    max_rounds: int = 10,
    seed: int = DEFAULT_SEED,
) -> Series:
    """Sweep AND rounds 0..max_rounds; x axis is the round index, columns
    include the resulting empirical entropy and contention so the series
    doubles as the distribution characterization."""
    machine = machine or j90()
    family = entropy_family(n, bits, max_rounds, seed=seed)
    rounds = np.arange(len(family), dtype=np.float64)
    bsp = np.empty(rounds.size)
    dxbsp = np.empty(rounds.size)
    sim = np.empty(rounds.size)
    ent = np.empty(rounds.size)
    ent_theory = np.empty(rounds.size)
    cont = np.empty(rounds.size)
    for i, keys in enumerate(family):
        cmp = compare_scatter(machine, keys)
        bsp[i], dxbsp[i], sim[i] = cmp.bsp_time, cmp.dxbsp_time, cmp.simulated_time
        ent[i] = empirical_entropy(keys)
        ent_theory[i] = theoretical_entropy_bits(bits, i)
        cont[i] = max_location_contention(keys)
    series = Series(
        name=f"exp3_entropy ({machine.name}, n={n}, {bits}-bit keys)",
        x_label="AND rounds",
        x=rounds,
    )
    series.add("entropy_bits", ent)
    series.add("entropy_theory", ent_theory)
    series.add("contention", cont)
    series.add("bsp", bsp)
    series.add("dxbsp", dxbsp)
    series.add("simulated", sim)
    return series


def main() -> str:
    """Render and print the Experiment-3 sweep."""
    out = run().format()
    print(out)
    return out


if __name__ == "__main__":
    main()
