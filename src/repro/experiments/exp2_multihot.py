"""Experiment 2 [reconstructed] — scatter time with multiple hot
locations.

Two sweeps over the multi-hot-spot family:

* fixed hot fraction, varying the *number* of hot locations — with more
  hot locations the same hot traffic spreads, contention per location
  falls as ``f*n/n_hot``, and the time returns to the throughput bound;
* fixed number of hot locations, varying the *fraction* of traffic they
  receive — time rises once ``d * f*n/n_hot`` passes ``g*n/p``.

Both directions test that the (d,x)-BSP tracks the simulator when the
contention is spread rather than concentrated.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.predict import compare_scatter
from ..analysis.report import Series
from ..simulator.machine import MachineConfig
from ..workloads.patterns import multi_hotspot
from .common import DEFAULT_N, DEFAULT_SEED, DEFAULT_SPACE, diagnose_scatter, j90
from .runner import run_grid

__all__ = ["run_vs_nhot", "run_vs_fraction", "main", "diagnose"]


def diagnose(
    machine: Optional[MachineConfig] = None,
    n: int = DEFAULT_N,
    n_hot: int = 16,
    fraction: float = 0.25,
    seed: int = DEFAULT_SEED,
) -> str:
    """Telemetry deep-dive on one multi-hot point: the hot traffic now
    spreads over ``n_hot`` banks, so the busy cycles and queue depth
    split across them instead of serializing on one."""
    machine = machine or j90()
    addr = multi_hotspot(n, n_hot, fraction, DEFAULT_SPACE, seed=seed)
    return diagnose_scatter(
        machine, addr, label=f"multi-hot n_hot={n_hot} f={fraction}"
    )


def _point(
    machine: MachineConfig, n: int, n_hot: int, fraction: float,
    space: int, seed: int,
):
    """One grid point: multi-hot-spot pattern, both sweeps share it."""
    addr = multi_hotspot(n, n_hot, fraction, space, seed=seed)
    cmp = compare_scatter(machine, addr)
    return cmp.bsp_time, cmp.dxbsp_time, cmp.simulated_time


def run_vs_nhot(
    machine: Optional[MachineConfig] = None,
    n: int = DEFAULT_N,
    hot_fraction: float = 0.25,
    n_hots: Optional[Sequence[int]] = None,
    seed: int = DEFAULT_SEED,
) -> Series:
    """Time vs number of hot locations at fixed hot traffic fraction."""
    machine = machine or j90()
    hs = np.asarray(
        n_hots if n_hots is not None
        else np.unique(np.geomspace(1, 4096, num=13).astype(np.int64)),
        dtype=np.int64,
    )
    rows = run_grid(_point, [
        dict(machine=machine, n=n, n_hot=int(h), fraction=hot_fraction,
             space=DEFAULT_SPACE, seed=seed + i)
        for i, h in enumerate(hs)
    ])
    bsp, dxbsp, sim = (np.asarray(col) for col in zip(*rows))
    series = Series(
        name=f"exp2_multihot vs n_hot ({machine.name}, n={n}, f={hot_fraction})",
        x_label="hot locations",
        x=hs.astype(np.float64),
    )
    series.add("bsp", bsp)
    series.add("dxbsp", dxbsp)
    series.add("simulated", sim)
    return series


def run_vs_fraction(
    machine: Optional[MachineConfig] = None,
    n: int = DEFAULT_N,
    n_hot: int = 4,
    fractions: Optional[Sequence[float]] = None,
    seed: int = DEFAULT_SEED,
) -> Series:
    """Time vs hot traffic fraction at a fixed (small) hot set."""
    machine = machine or j90()
    fs = np.asarray(
        fractions if fractions is not None else np.linspace(0.0, 1.0, 11),
        dtype=np.float64,
    )
    rows = run_grid(_point, [
        dict(machine=machine, n=n, n_hot=n_hot, fraction=float(f),
             space=DEFAULT_SPACE, seed=seed + i)
        for i, f in enumerate(fs)
    ])
    bsp, dxbsp, sim = (np.asarray(col) for col in zip(*rows))
    series = Series(
        name=f"exp2_multihot vs fraction ({machine.name}, n={n}, n_hot={n_hot})",
        x_label="hot fraction",
        x=fs,
    )
    series.add("bsp", bsp)
    series.add("dxbsp", dxbsp)
    series.add("simulated", sim)
    return series


def main() -> str:
    """Render and print both Experiment-2 sweeps."""
    out = run_vs_nhot().format() + "\n\n" + run_vs_fraction().format()
    print(out)
    return out


if __name__ == "__main__":
    main()
