"""Figure 1 — the motivating discrepancy.

The paper's opening figure takes "a set of memory access patterns
extracted from a trace of Greiner's algorithm for finding the connected
components of a graph", measures them on an 8-processor Cray J90, and
plots the measured times against BSP and (d,x)-BSP predictions as a
function of contention: the BSP stays flat while reality (and the
(d,x)-BSP) climbs.

We regenerate it end-to-end: run the instrumented connected-components
algorithm on graphs with a planted high-degree vertex (a star of varying
size unioned with random edges), extract the hottest hook-phase scatter
from each trace, and compare the three times per pattern.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..algorithms.connected_components import (
    connected_components,
    random_graph_edges,
    star_edges,
)
from ..analysis.predict import compare_scatter
from ..analysis.report import Series
from ..simulator.machine import MachineConfig
from ..workloads.traces import TraceRecorder
from .common import DEFAULT_SEED, j90
from .runner import run_grid

__all__ = ["extract_hot_pattern", "run", "main"]


def extract_hot_pattern(
    n_vertices: int, star_size: int, n_random_edges: int, seed: int
) -> np.ndarray:
    """Run instrumented CC on a star(+noise) graph and return the
    highest-contention superstep's address pattern."""
    rng = np.random.default_rng(seed)
    star = star_edges(star_size)
    noise = random_graph_edges(n_vertices, n_random_edges, rng)
    recorder = TraceRecorder()
    connected_components(
        n_vertices, np.concatenate([star, noise]), recorder=recorder
    )
    best = None
    best_k = -1
    for step in recorder.program:
        k = step.stats().max_location_contention
        if k > best_k:
            best_k, best = k, step
    assert best is not None
    return best.addresses


def _point(
    machine: MachineConfig, n_vertices: int, star_size: int,
    n_random_edges: int, seed: int,
):
    """One trace pattern: instrumented CC run + model comparison."""
    addr = extract_hot_pattern(n_vertices, star_size, n_random_edges, seed)
    cmp = compare_scatter(machine, addr)
    return cmp.contention, cmp.bsp_time, cmp.dxbsp_time, cmp.simulated_time


def run(
    machine: Optional[MachineConfig] = None,
    n_vertices: int = 32 * 1024,
    star_sizes: Optional[Sequence[int]] = None,
    n_random_edges: int = 32 * 1024,
    seed: int = DEFAULT_SEED,
) -> Series:
    """One point per trace pattern; x is the pattern's realized location
    contention (like the paper's x axis), columns are the three times."""
    machine = machine or j90()
    sizes = list(
        star_sizes if star_sizes is not None
        else [2, 8, 32, 128, 512, 2048, 8192, 32768]
    )
    rows = run_grid(_point, [
        dict(machine=machine, n_vertices=n_vertices,
             star_size=min(s, n_vertices), n_random_edges=n_random_edges,
             seed=seed + i)
        for i, s in enumerate(sizes)
    ])
    ks, bsp, dxbsp, sim = zip(*rows)
    order = np.argsort(ks)
    series = Series(
        name=f"fig1_motivation ({machine.name}, CC-trace patterns)",
        x_label="pattern contention k",
        x=np.asarray(ks, dtype=np.float64)[order],
    )
    series.add("bsp", np.asarray(bsp)[order])
    series.add("dxbsp", np.asarray(dxbsp)[order])
    series.add("simulated", np.asarray(sim)[order])
    return series


def main() -> str:
    """Render and print Figure 1."""
    out = run().format()
    print(out)
    return out


if __name__ == "__main__":
    main()
