"""Table 1 — machines with more memory banks than processors.

The introduction's table motivates the whole model: commercial machines
ship with bank expansion factors far above 1 because banks are slower
than processors.  We regenerate it from the machine presets (the C90 and
J90 bank delays are stated in the paper; other rows are marked
reconstructed in their ``note`` field).

No simulation runs here — the rows are read straight off the presets —
so this experiment does not go through :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..analysis.report import format_table
from ..simulator.machine import TABLE1_MACHINES, MachineConfig

__all__ = ["run", "main", "HEADERS"]

HEADERS = ("machine", "processors", "banks", "expansion x", "bank delay d", "note")


def run(
    machines: Sequence[MachineConfig] = TABLE1_MACHINES,
) -> List[Tuple[str, int, int, float, float, str]]:
    """Rows of the machine table."""
    return [
        (m.name, m.p, m.n_banks, m.x, m.d, m.note)
        for m in machines
    ]


def main() -> str:
    """Render and print Table 1."""
    out = format_table(HEADERS, run(), title="Table 1: bank expansion in real machines")
    print(out)
    return out


if __name__ == "__main__":
    main()
