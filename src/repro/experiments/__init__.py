"""One module per paper table/figure (see the per-experiment index in
DESIGN.md).  Each module exposes ``run(...)`` returning the regenerated
numbers and ``main()`` printing a paper-style table; the benchmark
harness under ``benchmarks/`` wraps these same entry points."""

from . import (
    exp1_hotspot,
    exp2_multihot,
    exp3_entropy,
    fig1_motivation,
    fig10_binary_search,
    fig11_random_perm,
    fig12_spmv,
    fig_connected_components,
    fig_emulation,
    fig_expansion,
    fig_listranking,
    fig_modulemap,
    fig_multiprefix,
    fig_network,
    fig_residuals,
    fig_sortbench,
    fig_strides,
    table1_machines,
    table3_hashcost,
)

__all__ = [
    "table1_machines",
    "fig1_motivation",
    "exp1_hotspot",
    "exp2_multihot",
    "exp3_entropy",
    "fig_expansion",
    "fig_network",
    "table3_hashcost",
    "fig_modulemap",
    "fig_emulation",
    "fig10_binary_search",
    "fig11_random_perm",
    "fig12_spmv",
    "fig_connected_components",
]

__all__ += ["fig_multiprefix", "fig_listranking", "fig_strides",
            "fig_sortbench", "fig_residuals"]

from .manifest import RunManifest, validate_manifest  # noqa: E402

__all__ += ["RunManifest", "validate_manifest"]

#: Experiment id (DESIGN.md) → module, for programmatic discovery.
#: Ids MP/LR (future-work studies named in the paper's conclusion) and
#: ST (classical strided contrast) extend the paper's own artifact set.
REGISTRY = {
    "T1": table1_machines,
    "F1": fig1_motivation,
    "E1": exp1_hotspot,
    "E2": exp2_multihot,
    "E3": exp3_entropy,
    "FX": fig_expansion,
    "FN": fig_network,
    "T3": table3_hashcost,
    "FM": fig_modulemap,
    "TH": fig_emulation,
    "F10": fig10_binary_search,
    "F11": fig11_random_perm,
    "F12": fig12_spmv,
    "FC": fig_connected_components,
    "MP": fig_multiprefix,
    "LR": fig_listranking,
    "ST": fig_strides,
    "SB": fig_sortbench,
    "RE": fig_residuals,
}

__all__.append("REGISTRY")
