"""Module-map contention vs expansion (paper Section 4 figure).

"[The figure compares] the time that includes the effect of multiple
memory locations being mapped to the same bank to the time that excludes
the effect, when using random mapping.  This is given as a function of
expansion and is for a worst-case reference pattern."

The worst-case pattern for module-map contention is ``n`` *distinct*
locations (location contention 1): every slowdown is then attributable to
distinct locations colliding on a bank.  The ratio exceeds 1 at moderate
expansion (balls-in-bins imbalance against a busy memory system) and
decays back toward 1 as banks multiply — high expansion buys the
randomized mapping for free, the paper's argument for the C90's x = 64.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from typing import List

from ..analysis.report import Series
from ..core.params import DXBSPParams
from ..mapping.hashing import RandomMap, linear_hash
from ..mapping.module_map import module_map_ratio
from ..simulator.machine import MachineConfig
from .common import DEFAULT_SEED, j90
from .runner import run_grid

__all__ = ["run", "main"]

_FAMILIES = {"h1": linear_hash, "random": RandomMap}


def _point(
    params: DXBSPParams, x: float, n: int, family: str,
    addresses: List[np.ndarray], map_seeds: List[int],
):
    """One expansion value: mean/max module-map ratio over the trials.

    The trial draws come from one sequential generator shared across the
    whole sweep (matching :func:`repro.mapping.ratio_vs_expansion`), so
    the parent pre-draws them and ships each point its slice.
    """
    factory = _FAMILIES[family]
    p = params.with_(x=float(x))
    ratios = np.array([
        module_map_ratio(p, addr, factory(map_seed))
        for addr, map_seed in zip(addresses, map_seeds)
    ])
    return float(ratios.mean()), float(ratios.max())


def _trial_draws(rng: np.random.Generator, n: int, n_points: int,
                 trials: int):
    """Replicate ``ratio_vs_expansion``'s draw order: per expansion, per
    trial, one distinct-address pattern then one mapping seed."""
    per_point = []
    for _ in range(n_points):
        addresses, map_seeds = [], []
        for _ in range(trials):
            draw = rng.integers(0, np.int64(1) << 60, size=2 * n + 16)
            addresses.append(np.unique(draw)[:n])
            map_seeds.append(int(rng.integers(0, 2**31)))
        per_point.append((addresses, map_seeds))
    return per_point


def run(
    machine: Optional[MachineConfig] = None,
    n: int = 16 * 1024,
    expansions: Optional[Sequence[float]] = None,
    trials: int = 3,
    seed: int = DEFAULT_SEED,
) -> Series:
    """Mean module-map ratio vs expansion for the linear hash family and
    an idealized full-random mapping."""
    machine = machine or j90()
    xs = list(expansions) if expansions is not None else [1, 2, 4, 8, 16, 32, 64, 128]
    base = machine.params()
    points = []
    for family, family_seed in (("h1", seed), ("random", seed + 1)):
        draws = _trial_draws(
            np.random.default_rng(family_seed), n, len(xs), trials
        )
        points.extend(
            dict(params=base, x=float(x), n=n, family=family,
                 addresses=addresses, map_seeds=map_seeds)
            for x, (addresses, map_seeds) in zip(xs, draws)
        )
    rows = run_grid(_point, points)
    hashed, random_map = rows[:len(xs)], rows[len(xs):]
    series = Series(
        name=f"fig_modulemap ({machine.name}, n={n} distinct locations)",
        x_label="expansion x",
        x=np.asarray(xs, dtype=np.float64),
    )
    series.add("ratio_h1", np.array([r[0] for r in hashed]))
    series.add("ratio_random", np.array([r[0] for r in random_map]))
    series.add("ratio_h1_max", np.array([r[1] for r in hashed]))
    return series


def main() -> str:
    """Render and print the module-map ratio sweep."""
    out = run().format()
    print(out)
    return out


if __name__ == "__main__":
    main()
