"""Module-map contention vs expansion (paper Section 4 figure).

"[The figure compares] the time that includes the effect of multiple
memory locations being mapped to the same bank to the time that excludes
the effect, when using random mapping.  This is given as a function of
expansion and is for a worst-case reference pattern."

The worst-case pattern for module-map contention is ``n`` *distinct*
locations (location contention 1): every slowdown is then attributable to
distinct locations colliding on a bank.  The ratio exceeds 1 at moderate
expansion (balls-in-bins imbalance against a busy memory system) and
decays back toward 1 as banks multiply — high expansion buys the
randomized mapping for free, the paper's argument for the C90's x = 64.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.report import Series
from ..mapping.hashing import RandomMap, linear_hash
from ..mapping.module_map import ratio_vs_expansion
from ..simulator.machine import MachineConfig
from .common import DEFAULT_SEED, j90

__all__ = ["run", "main"]


def run(
    machine: Optional[MachineConfig] = None,
    n: int = 16 * 1024,
    expansions: Optional[Sequence[float]] = None,
    trials: int = 3,
    seed: int = DEFAULT_SEED,
) -> Series:
    """Mean module-map ratio vs expansion for the linear hash family and
    an idealized full-random mapping."""
    machine = machine or j90()
    xs = list(expansions) if expansions is not None else [1, 2, 4, 8, 16, 32, 64, 128]
    base = machine.params()
    hashed = ratio_vs_expansion(
        base, n, xs, lambda s: linear_hash(s), trials=trials, seed=seed
    )
    random_map = ratio_vs_expansion(
        base, n, xs, lambda s: RandomMap(s), trials=trials, seed=seed + 1
    )
    series = Series(
        name=f"fig_modulemap ({machine.name}, n={n} distinct locations)",
        x_label="expansion x",
        x=np.asarray(xs, dtype=np.float64),
    )
    series.add("ratio_h1", hashed.mean_ratio)
    series.add("ratio_random", random_map.mean_ratio)
    series.add("ratio_h1_max", hashed.max_ratio)
    return series


def main() -> str:
    """Render and print the module-map ratio sweep."""
    out = run().format()
    print(out)
    return out


if __name__ == "__main__":
    main()
