"""Model residuals — the "good accounting" claim as a statistic.

The paper's abstract claims the framework "is a good predictor of
performance ... providing a good accounting of bank contention and
delay".  Individual figures show it per sweep; this experiment makes it
a population statement: draw many random patterns from every workload
family, compute the signed relative error of both models against the
simulator for each, and report the error distribution per family.

Expected shape: (d,x)-BSP errors within a few percent across *all*
families; BSP errors near zero only for throughput-bound families and
catastrophically negative (under-prediction) for contended ones.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..analysis.predict import compare_scatter
from ..analysis.report import format_table
from ..simulator.machine import MachineConfig
from ..workloads.entropy import anded_keys
from ..workloads.nas import nas_is_keys
from ..workloads.patterns import (
    distinct_random,
    hotspot,
    multi_hotspot,
    uniform_random,
    zipf_pattern,
)
from .common import DEFAULT_SEED, j90
from .runner import run_grid

__all__ = ["HEADERS", "FAMILIES", "run", "main"]

HEADERS = ("family", "trials", "dxbsp err mean", "dxbsp err worst",
           "bsp err mean", "bsp err worst")

#: Pattern family name -> generator(n, space, seed).
FAMILIES: Dict[str, Callable] = {
    "distinct": lambda n, space, s: distinct_random(n, space, seed=s),
    "uniform": lambda n, space, s: uniform_random(n, space, seed=s),
    "nas-is": lambda n, space, s: nas_is_keys(n, bits=20, seed=s),
    "zipf": lambda n, space, s: zipf_pattern(n, space, alpha=1.3, seed=s),
    "ts-and2": lambda n, space, s: anded_keys(n, 20, rounds=2, seed=s),
    "hotspot": lambda n, space, s: hotspot(
        n, int(np.random.default_rng(s).integers(1, n + 1)), space, seed=s
    ),
    "multihot": lambda n, space, s: multi_hotspot(
        n, 8, float(np.random.default_rng(s).random()), space, seed=s
    ),
}


def _point(machine: MachineConfig, family: str, n: int, space: int,
           seed: int):
    """One trial of one family: signed relative error of both models.

    The family is looked up by name inside the point so the lambda
    generators above never need to be pickled.
    """
    addr = FAMILIES[family](n, space, seed)
    cmp = compare_scatter(machine, addr)
    return cmp.dxbsp_error, cmp.bsp_error


def run(
    machine: Optional[MachineConfig] = None,
    n: int = 16 * 1024,
    trials: int = 8,
    seed: int = DEFAULT_SEED,
) -> List[Tuple]:
    """One row of error statistics per pattern family."""
    machine = machine or j90()
    space = 1 << 20
    names = list(FAMILIES)
    errs = run_grid(_point, [
        dict(machine=machine, family=name, n=n, space=space,
             seed=seed + 1000 * t)
        for name in names for t in range(trials)
    ])
    rows = []
    for i, name in enumerate(names):
        fam = errs[i * trials:(i + 1) * trials]
        dx = np.asarray([e[0] for e in fam])
        bsp = np.asarray([e[1] for e in fam])
        rows.append((
            name, trials,
            float(dx.mean()), float(dx[np.argmax(np.abs(dx))]),
            float(bsp.mean()), float(bsp[np.argmax(np.abs(bsp))]),
        ))
    return rows


def main() -> str:
    """Render and print the residuals table."""
    out = format_table(HEADERS, run(),
                       title="model residuals over random patterns "
                             "(signed relative error vs simulation)")
    print(out)
    return out


if __name__ == "__main__":
    main()
