"""Memory-to-bank mappings: interleaving, random maps, the paper's
polynomial universal hash families, module-map contention analysis and the
probabilistic bounds behind them (paper Section 4)."""

from .hashing import (
    HASH_FAMILIES,
    InterleavedMap,
    PolynomialHashMap,
    RandomMap,
    XorFoldMap,
    cubic_hash,
    hash_flop_count,
    linear_hash,
    quadratic_hash,
)
from .layouts import padded, padded_width, row_major, staggered
from .module_map import (
    ExpansionRatioResult,
    ideal_scatter_time,
    module_map_ratio,
    module_map_time,
    ratio_vs_expansion,
)
from .theory import (
    expected_max_load,
    hoeffding_tail,
    max_load_tail,
    max_load_whp,
    raghavan_spencer_tail,
)

__all__ = [
    "InterleavedMap",
    "RandomMap",
    "PolynomialHashMap",
    "XorFoldMap",
    "row_major",
    "staggered",
    "padded",
    "padded_width",
    "linear_hash",
    "quadratic_hash",
    "cubic_hash",
    "hash_flop_count",
    "HASH_FAMILIES",
    "ideal_scatter_time",
    "module_map_time",
    "module_map_ratio",
    "ratio_vs_expansion",
    "ExpansionRatioResult",
    "hoeffding_tail",
    "raghavan_spencer_tail",
    "max_load_tail",
    "max_load_whp",
    "expected_max_load",
]
