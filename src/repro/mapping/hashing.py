"""Memory-to-bank mappings, including the paper's universal hash families.

The paper (Section 4) randomizes the assignment of memory locations to
banks with polynomial multiplicative hashing over ``[0, 2^u)``::

    h^1_a(x)     = ((a x)               mod 2^u) div 2^(u-m)     # linear
    h^2_{a,b}(x) = ((a x + b x^2)       mod 2^u) div 2^(u-m)     # quadratic
    h^3_{...}(x) = ((a x + b x^2 + c x^3) mod 2^u) div 2^(u-m)   # cubic

with odd random coefficients, mapping into ``2^m`` banks.  The linear form
is Knuth's multiplicative scheme, shown 2-universal by Dietzfelbinger et
al. [DHKP93] in the sense of Carter–Wegman [CW79].  Higher degrees trade
evaluation cost (Table 3) for stronger independence and hence better
congestion behaviour on adversarial patterns.

Every mapping here is callable as ``mapping(addresses, n_banks)`` and so
plugs directly into :func:`repro.core.contention.bank_loads`, the cost
predictors and the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np
from numpy.typing import ArrayLike

from .._util import as_addresses, as_rng, is_power_of_two
from ..errors import MappingError

__all__ = [
    "InterleavedMap",
    "RandomMap",
    "PolynomialHashMap",
    "XorFoldMap",
    "linear_hash",
    "quadratic_hash",
    "cubic_hash",
    "hash_flop_count",
    "HASH_FAMILIES",
]

_WORD_BITS = 64
_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class InterleavedMap:
    """Low-order interleaving: ``bank = address mod n_banks``.

    This is the non-randomized hardware layout of the Cray memory system;
    consecutive addresses hit consecutive banks, so unit-stride access is
    perfectly balanced but power-of-two strides are pathological.
    """

    name: str = "interleaved"

    def __call__(self, addresses: ArrayLike, n_banks: int) -> np.ndarray:
        addr = as_addresses(addresses)
        if n_banks < 1:
            raise MappingError(f"n_banks must be >= 1, got {n_banks}")
        return (addr % n_banks).astype(np.int64)


@dataclass(frozen=True)
class RandomMap:
    """A full random function from addresses to banks (the idealized
    mapping the theory analyses).

    Implemented as a seeded 64-bit finalizer (splitmix64) so the mapping is
    a deterministic function of ``(seed, address)`` without materializing a
    table — every distinct address gets an independent-looking bank.
    """

    seed: int = 0
    name: str = "random"

    def __call__(self, addresses: ArrayLike, n_banks: int) -> np.ndarray:
        addr = as_addresses(addresses)
        if n_banks < 1:
            raise MappingError(f"n_banks must be >= 1, got {n_banks}")
        z = addr.astype(np.uint64)
        with np.errstate(over="ignore"):
            z = (z + np.uint64((self.seed * 0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)) & _MASK64
            z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9) & _MASK64
            z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB) & _MASK64
            z = z ^ (z >> np.uint64(31))
        return (z % np.uint64(n_banks)).astype(np.int64)


@dataclass(frozen=True)
class PolynomialHashMap:
    """Degree-``degree`` multiplicative polynomial hash over ``[0, 2^u)``.

    Parameters
    ----------
    coefficients:
        Tuple of ``degree`` odd integers in ``[1, 2^u)``; coefficient ``i``
        multiplies ``x^(i+1)``.
    u:
        Word width of the modulus ``2^u`` (<= 64).
    name:
        Display name, defaults to ``h1``/``h2``/``h3`` by degree.

    Notes
    -----
    The bank count must be a power of two ``2^m`` with ``m <= u``; the bank
    id is the top ``m`` bits of the degree-``degree`` polynomial evaluated
    modulo ``2^u`` (Horner form, all in wrapping uint64 arithmetic — exact
    because ``u <= 64``).
    """

    coefficients: Tuple[int, ...]
    u: int = _WORD_BITS
    name: str = ""

    def __post_init__(self) -> None:
        if not (1 <= self.u <= 64):
            raise MappingError(f"u must be in [1, 64], got {self.u}")
        if len(self.coefficients) < 1:
            raise MappingError("need at least one coefficient")
        for c in self.coefficients:
            if not (1 <= c < (1 << self.u)):
                raise MappingError(f"coefficient {c} outside [1, 2^{self.u})")
            if c % 2 == 0:
                raise MappingError(f"coefficient {c} must be odd")
        if not self.name:
            object.__setattr__(self, "name", f"h{len(self.coefficients)}")

    @property
    def degree(self) -> int:
        """Polynomial degree (1 = linear, 2 = quadratic, 3 = cubic)."""
        return len(self.coefficients)

    def __call__(self, addresses: ArrayLike, n_banks: int) -> np.ndarray:
        addr = as_addresses(addresses)
        if not is_power_of_two(n_banks):
            raise MappingError(
                f"polynomial hashing requires a power-of-two bank count, got {n_banks}"
            )
        m = int(n_banks).bit_length() - 1
        if m > self.u:
            raise MappingError(f"2^{m} banks exceeds hash range 2^{self.u}")
        x = addr.astype(np.uint64)
        mask = _MASK64 if self.u == 64 else np.uint64((1 << self.u) - 1)
        # Evaluate a1*x + a2*x^2 + ... mod 2^u, Horner on ((...)*x) form:
        # poly = x * (a1 + x * (a2 + x * a3))
        with np.errstate(over="ignore"):
            acc = np.zeros_like(x)
            for c in reversed(self.coefficients):
                acc = (acc * x + np.uint64(c)) & mask
            acc = (acc * x) & mask
        if m == 0:
            return np.zeros(addr.shape, dtype=np.int64)
        return (acc >> np.uint64(self.u - m)).astype(np.int64)


@dataclass(frozen=True)
class XorFoldMap:
    """Rau-style pseudo-random interleaving [Rau91]: the bank id is the
    XOR of the address's ``m``-bit fields.

    Much cheaper than a multiplicative hash (shifts and XORs only) and a
    published hardware scheme (the paper cites it among the random-mapping
    literature); it breaks power-of-two strides up to the field width but
    — unlike the universal families — is *not* randomized: an adversary
    knowing the map can still construct collisions.  Requires a
    power-of-two bank count.
    """

    name: str = "xorfold"

    def __call__(self, addresses: ArrayLike, n_banks: int) -> np.ndarray:
        addr = as_addresses(addresses)
        if not is_power_of_two(n_banks):
            raise MappingError(
                f"XOR folding requires a power-of-two bank count, got {n_banks}"
            )
        m = int(n_banks).bit_length() - 1
        if m == 0:
            return np.zeros(addr.shape, dtype=np.int64)
        x = addr.astype(np.uint64)
        out = np.zeros_like(x)
        mask = np.uint64(n_banks - 1)
        for shift in range(0, 64, m):
            out ^= (x >> np.uint64(shift)) & mask
        return out.astype(np.int64)


def _random_odd(rng: np.random.Generator, u: int) -> int:
    """Draw an odd integer uniformly from [1, 2^u)."""
    return int(rng.integers(0, 1 << (u - 1), dtype=np.uint64)) * 2 + 1 if u > 1 else 1


def linear_hash(seed: Any = None, u: int = _WORD_BITS) -> PolynomialHashMap:
    """Draw a random linear multiplicative hash ``h1`` (2-universal)."""
    rng = as_rng(seed)
    return PolynomialHashMap((_random_odd(rng, u),), u=u, name="h1")


def quadratic_hash(seed: Any = None, u: int = _WORD_BITS) -> PolynomialHashMap:
    """Draw a random quadratic hash ``h2``."""
    rng = as_rng(seed)
    return PolynomialHashMap(
        (_random_odd(rng, u), _random_odd(rng, u)), u=u, name="h2"
    )


def cubic_hash(seed: Any = None, u: int = _WORD_BITS) -> PolynomialHashMap:
    """Draw a random cubic hash ``h3``."""
    rng = as_rng(seed)
    return PolynomialHashMap(
        (_random_odd(rng, u), _random_odd(rng, u), _random_odd(rng, u)),
        u=u,
        name="h3",
    )


def hash_flop_count(degree: int) -> int:
    """Integer operations per element to evaluate a degree-``degree``
    polynomial hash in Horner form: ``degree`` multiplies + ``degree - 1``
    adds + 1 shift.  This is the cost model behind Table 3: evaluation cost
    grows linearly in the degree.
    """
    if degree < 1:
        raise MappingError(f"degree must be >= 1, got {degree}")
    return 2 * degree


#: Factories for the three families of Table 3, keyed by display name.
HASH_FAMILIES = {
    "h1": linear_hash,
    "h2": quadratic_hash,
    "h3": cubic_hash,
}
