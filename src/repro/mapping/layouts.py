"""Address-layout helpers for privatized data structures.

The vector-machine folklore the paper's baselines rely on (private
per-processor histograms in [ZB91]-style radix sort) has a trap: under
power-of-two low-order interleaving, the *row-major* layout
``proc * width + slot`` puts every processor's copy of slot ``s`` at
addresses congruent mod ``width`` — one bank, no spreading, privatization
defeated.  These helpers compute the classic fixes:

* ``staggered``: ``slot * p + proc`` — copies of one slot land on ``p``
  consecutive banks;
* ``padded``: row-major with rows padded to an odd width, rotating each
  processor's rows across the banks.

(See ``examples/vm_programming.py`` for the measured effect: 7x on a
skewed histogram.)
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.typing import ArrayLike

from .._util import as_addresses
from ..errors import ParameterError, PatternError

__all__ = ["row_major", "staggered", "padded", "padded_width"]


def _check(
    proc: ArrayLike, slot: ArrayLike, p: int, width: int
) -> Tuple[np.ndarray, np.ndarray]:
    pr = np.asarray(proc, dtype=np.int64)
    sl = as_addresses(slot)
    if pr.shape != sl.shape:
        raise PatternError("proc and slot must have matching shapes")
    if p < 1 or width < 1:
        raise ParameterError(f"need p >= 1 and width >= 1, got {p}, {width}")
    if pr.size and (pr.min() < 0 or pr.max() >= p):
        raise PatternError("proc ids outside [0, p)")
    if sl.size and sl.max() >= width:
        raise PatternError("slots outside [0, width)")
    return pr, sl


def row_major(proc: ArrayLike, slot: ArrayLike, p: int, width: int) -> np.ndarray:
    """``proc * width + slot`` — the natural (and bank-hostile, for
    power-of-two widths) layout.  Region size ``p * width``."""
    pr, sl = _check(proc, slot, p, width)
    return pr * width + sl


def staggered(proc: ArrayLike, slot: ArrayLike, p: int, width: int) -> np.ndarray:
    """``slot * p + proc`` — copies of one slot on ``p`` consecutive
    addresses (hence ``p`` distinct banks under interleaving).  Region
    size ``p * width``."""
    pr, sl = _check(proc, slot, p, width)
    return sl * p + pr


def padded_width(width: int) -> int:
    """Smallest odd width >= ``width`` — padding rows to an odd length
    rotates each row's phase across a power-of-two bank count."""
    if width < 1:
        raise ParameterError(f"width must be >= 1, got {width}")
    return width if width % 2 else width + 1


def padded(proc: ArrayLike, slot: ArrayLike, p: int, width: int) -> np.ndarray:
    """Row-major over rows padded to :func:`padded_width` — keeps each
    processor's row contiguous (good for its own scans) while breaking
    the congruence that pins hot slots to one bank.  Region size
    ``p * padded_width(width)``."""
    pr, sl = _check(proc, slot, p, width)
    return pr * padded_width(width) + sl
