"""Probabilistic tools used in the paper's analyses.

Three ingredients:

* **Hoeffding's inequality** [Hoe63] — tail bound for sums of bounded
  independent variables; used when arguing that random mappings balance
  requests across banks given enough slack.
* **Raghavan–Spencer bound** [Rag88] — multiplicative Chernoff-type tail
  for weighted sums of Bernoulli trials; the key lemma in Theorem 5.2's
  analysis of the QRQW emulation for large expansion.
* **Balls-in-bins maximum load** — expectations and tails for the number
  of requests landing in the most loaded of ``b`` banks under a random
  mapping; drives the module-map contention predictions and the expansion
  experiment.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np
from scipy import stats

from ..errors import ParameterError

__all__ = [
    "hoeffding_tail",
    "raghavan_spencer_tail",
    "max_load_tail",
    "max_load_whp",
    "expected_max_load",
]


def hoeffding_tail(n: int, t: float, spread: float = 1.0) -> float:
    """Hoeffding bound ``P(S - E[S] >= n t) <= exp(-2 n t^2 / spread^2)``
    for a sum ``S`` of ``n`` independent variables each with range
    ``spread``.
    """
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    if spread <= 0:
        raise ParameterError(f"spread must be > 0, got {spread}")
    if t <= 0:
        return 1.0
    return float(math.exp(-2.0 * n * t * t / (spread * spread)))


def raghavan_spencer_tail(
    mu: float, delta: Union[float, np.ndarray]
) -> Union[float, np.ndarray]:
    """Raghavan–Spencer tail for a weighted sum of Bernoulli trials.

    ``P(X > (1 + delta) mu) < (e^delta / (1 + delta)^(1 + delta))^mu``

    for ``X`` a sum of independent weighted Bernoulli variables with mean
    ``mu`` and weights in ``[0, 1]``.  Vectorized over ``delta``.
    """
    if mu <= 0:
        raise ParameterError(f"mu must be > 0, got {mu}")
    delta = np.asarray(delta, dtype=np.float64)
    if (delta <= 0).any():
        raise ParameterError("delta must be > 0")
    # Compute in log space to avoid overflow for large delta * mu.
    log_bound = mu * (delta - (1.0 + delta) * np.log1p(delta))
    out = np.exp(log_bound)
    return float(out) if out.ndim == 0 else out


def max_load_tail(n: int, b: int, m: int) -> float:
    """Union bound on ``P(max bank load >= m)`` for ``n`` balls thrown
    independently and uniformly into ``b`` bins:

    ``P <= b * P(Binomial(n, 1/b) >= m)``.

    Exact binomial tail via SciPy; clipped to [0, 1].
    """
    if n < 0 or b < 1:
        raise ParameterError(f"need n >= 0 and b >= 1, got n={n}, b={b}")
    if m <= 0:
        return 1.0
    if m > n:
        return 0.0
    tail = float(stats.binom.sf(m - 1, n, 1.0 / b))
    return min(1.0, b * tail)


def max_load_whp(n: int, b: int, failure_prob: float = 1e-3) -> int:
    """Smallest ``m`` such that ``P(max load >= m) <= failure_prob`` under
    the union bound of :func:`max_load_tail`.

    This is the "with high probability" bank-contention level used when
    predicting randomized-mapping performance.  Binary search over the
    monotone tail.
    """
    if n == 0:
        return 0
    if not (0 < failure_prob < 1):
        raise ParameterError(f"failure_prob must be in (0,1), got {failure_prob}")
    lo, hi = max(1, -(-n // b)), n + 1  # tail(lo) is ~1 or less; tail(n+1)=0
    while lo < hi:
        mid = (lo + hi) // 2
        if max_load_tail(n, b, mid) <= failure_prob:
            hi = mid
        else:
            lo = mid + 1
    return lo


def expected_max_load(n: int, b: int) -> float:
    """Approximate expected maximum bank load for ``n`` uniform balls in
    ``b`` bins.

    Uses the two classical regimes:

    * heavy loading (``n >= b ln b``): ``n/b + sqrt(2 (n/b) ln b)``;
    * light loading: ``ln b / ln(b ln b / n)`` (up to lower-order terms),
      floored at the heavy-loading value and at ``ceil(n / b)``.

    The approximation is only used for reporting/asymptotic curves; exact
    tails come from :func:`max_load_tail`.
    """
    if n < 0 or b < 1:
        raise ParameterError(f"need n >= 0 and b >= 1, got n={n}, b={b}")
    if n == 0:
        return 0.0
    if b == 1:
        return float(n)
    mean = n / b
    lnb = math.log(b)
    heavy = mean + math.sqrt(2.0 * mean * lnb)
    if n >= b * lnb:
        est = heavy
    else:
        ratio = b * lnb / n
        est = lnb / math.log(ratio) if ratio > math.e else heavy
    return float(max(est, math.ceil(mean), 1.0))
