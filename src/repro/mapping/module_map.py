"""Module-map contention: the cost of distinct locations sharing a bank.

Randomly mapping memory locations to banks removes adversarial layouts but
introduces *module-map contention*: several distinct, concurrently
requested locations can collide on one bank.  The paper quantifies how
this overhead decays with the expansion factor ``x`` (more banks = more
bins = better balance), for a worst-case reference pattern of ``n``
distinct locations.

The headline quantity is the **module-map ratio**::

    ratio = T_with_module_map / T_ideal

where ``T_ideal`` charges each bank only ``max(k, ceil(n / b))`` requests
(location contention plus perfectly balanced residue) and
``T_with_module_map`` charges the actual maximum bank load under the
mapping.  ``ratio -> 1`` as ``x`` grows: expansion buys back the loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

import numpy as np
from numpy.typing import ArrayLike

from .._util import as_addresses, as_rng
from ..core.contention import BankMap, bank_loads, max_location_contention
from ..core.cost import per_processor_load
from ..core.params import DXBSPParams
from ..errors import ParameterError

__all__ = [
    "ideal_scatter_time",
    "module_map_time",
    "module_map_ratio",
    "ratio_vs_expansion",
    "ExpansionRatioResult",
]


def ideal_scatter_time(params: DXBSPParams, n: int, k: int) -> float:
    """(d,x)-BSP time for a scatter of ``n`` requests with location
    contention ``k``, *excluding* module-map effects: each bank is charged
    the unavoidable ``max(k, ceil(n / b))``."""
    if n < 0 or k < 0 or k > max(n, 0):
        raise ParameterError(f"need 0 <= k <= n, got n={n}, k={k}")
    h_p = per_processor_load(n, params.p)
    h_b = max(k, per_processor_load(n, params.n_banks))
    return float(max(params.L, params.g * h_p, params.d * h_b))


def module_map_time(
    params: DXBSPParams, addresses: ArrayLike, bank_map: Optional[BankMap] = None
) -> float:
    """(d,x)-BSP time for the scatter, *including* module-map contention:
    banks are charged their actual load under ``bank_map``."""
    addr = as_addresses(addresses)
    h_p = per_processor_load(addr.size, params.p)
    loads = bank_loads(addr, params.n_banks, bank_map)
    h_b = int(loads.max()) if loads.size else 0
    return float(max(params.L, params.g * h_p, params.d * h_b))


def module_map_ratio(
    params: DXBSPParams, addresses: ArrayLike, bank_map: Optional[BankMap] = None
) -> float:
    """Ratio of the with-module-map time to the ideal time (>= 1)."""
    addr = as_addresses(addresses)
    k = max_location_contention(addr)
    ideal = ideal_scatter_time(params, int(addr.size), k)
    actual = module_map_time(params, addr, bank_map)
    return actual / ideal if ideal > 0 else 1.0


@dataclass(frozen=True)
class ExpansionRatioResult:
    """Result of :func:`ratio_vs_expansion`.

    Attributes
    ----------
    expansions:
        The swept expansion factors.
    mean_ratio / max_ratio:
        Per-expansion mean and max module-map ratio over the random trials.
    """

    expansions: np.ndarray
    mean_ratio: np.ndarray
    max_ratio: np.ndarray

    def rows(self) -> list:
        """(x, mean, max) tuples for table printing."""
        return [
            (float(x), float(m), float(M))
            for x, m, M in zip(self.expansions, self.mean_ratio, self.max_ratio)
        ]


def ratio_vs_expansion(
    base: DXBSPParams,
    n: int,
    expansions: Sequence[float],
    mapping_factory: Callable[[int], BankMap],
    trials: int = 5,
    seed: Any = None,
) -> ExpansionRatioResult:
    """Sweep the module-map ratio over expansion factors.

    The worst-case reference pattern of the paper's Section 4 figure is
    used: ``n`` *distinct* locations (location contention 1), so all
    observed slowdown is module-map contention.

    Parameters
    ----------
    base:
        Machine parameters; only ``x`` is varied.
    n:
        Requests per trial (all-distinct addresses).
    expansions:
        Values of ``x`` to sweep.
    mapping_factory:
        Called as ``mapping_factory(seed_int)`` to draw a fresh random
        mapping per trial (e.g. ``repro.mapping.linear_hash``).
    trials:
        Independent mapping draws per expansion.
    """
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    rng = as_rng(seed)
    # Distinct addresses, randomly spread over a large space so the hash
    # families see generic inputs rather than [0, n).
    xs = np.asarray(list(expansions), dtype=np.float64)
    mean_r = np.empty_like(xs)
    max_r = np.empty_like(xs)
    for i, x in enumerate(xs):
        params = base.with_(x=float(x))
        ratios = np.empty(trials)
        for t in range(trials):
            # Distinct-by-construction: sample with slack and deduplicate.
            draw = rng.integers(0, np.int64(1) << 60, size=2 * n + 16)
            addr = np.unique(draw)[:n]
            mapping = mapping_factory(int(rng.integers(0, 2**31)))
            ratios[t] = module_map_ratio(params, addr, mapping)
        mean_r[i] = ratios.mean()
        max_r[i] = ratios.max()
    return ExpansionRatioResult(xs, mean_r, max_r)
