"""Predicting scatter time from a contention histogram alone.

Sometimes the full address trace is unavailable but its *multiplicity
histogram* is (e.g. column counts of a matrix, key frequencies of a
dataset).  Under a random bank mapping the bank loads depend on the
addresses only through that histogram, so the (d,x)-BSP time can be
predicted without ever materializing a pattern:

* whp upper bound — the Raghavan–Spencer machinery of the emulation
  section (:func:`repro.emulation.step_time_bound`), which needs only
  ``n`` and ``k``;
* expectation — Monte Carlo over the histogram: draw a bank per distinct
  location, take the weighted maximum load (cheap: ``O(distinct)`` per
  trial rather than ``O(n)``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._util import as_rng
from ..core.cost import per_processor_load
from ..core.params import DXBSPParams
from ..errors import ParameterError

__all__ = [
    "expected_max_bank_load_mc",
    "predict_scatter_from_histogram",
]


def _check_counts(counts) -> np.ndarray:
    c = np.asarray(counts, dtype=np.int64)
    if c.ndim != 1:
        raise ParameterError(f"counts must be 1-D, got shape {c.shape}")
    if c.size and c.min() < 1:
        raise ParameterError("multiplicity counts must be >= 1")
    return c


def expected_max_bank_load_mc(
    counts,
    n_banks: int,
    trials: int = 32,
    seed=None,
) -> float:
    """Monte Carlo estimate of ``E[max bank load]`` when the distinct
    locations behind ``counts`` are mapped to ``n_banks`` banks uniformly
    at random.

    ``counts[j]`` is the number of requests to the ``j``-th distinct
    location; the addresses themselves are irrelevant under a random map.
    """
    c = _check_counts(counts)
    if n_banks < 1:
        raise ParameterError(f"n_banks must be >= 1, got {n_banks}")
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    if c.size == 0:
        return 0.0
    rng = as_rng(seed)
    total = 0.0
    for _ in range(trials):
        banks = rng.integers(0, n_banks, size=c.size)
        loads = np.bincount(banks, weights=c, minlength=n_banks)
        total += loads.max()
    return total / trials


def predict_scatter_from_histogram(
    params: DXBSPParams,
    counts,
    trials: int = 32,
    seed=None,
) -> float:
    """Expected (d,x)-BSP scatter time from a multiplicity histogram,
    assuming a random bank map::

        max(L, g*ceil(n/p), d * E[max bank load])

    Agrees with simulating an actual pattern through a random mapping
    (property-tested) without needing the pattern.
    """
    c = _check_counts(counts)
    n = int(c.sum())
    h_p = per_processor_load(n, params.p)
    load = expected_max_bank_load_mc(c, params.n_banks, trials, seed)
    return float(max(params.L, params.g * h_p, params.d * load))
