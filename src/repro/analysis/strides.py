"""Constant-stride access analysis (vector-machine classic).

The paper concentrates on irregular patterns and points to [CS86, Soh93]
for strided timings; this module supplies that missing classical piece so
the library covers both regimes.  Under low-order interleaving, a
constant-stride-``s`` sweep over ``B`` banks touches only
``B / gcd(s, B)`` distinct banks, so

    T_strided(n) = max(L, g * ceil(n/p), d * ceil(n / (B / gcd(s, B))))

— unit stride is perfectly balanced, and any stride sharing a large
factor with the (power-of-two) bank count collapses onto few banks: the
pathology pseudo-random mapping (Section 4) exists to kill.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.cost import per_processor_load
from ..errors import ParameterError
from ..simulator.machine import MachineConfig
from .report import Series

__all__ = [
    "banks_touched",
    "predict_strided_time",
    "effective_bandwidth",
    "stride_sweep",
]


def banks_touched(stride: int, n_banks: int) -> int:
    """Distinct banks hit by an unbounded stride-``stride`` sweep under
    low-order interleaving: ``n_banks / gcd(stride, n_banks)``."""
    if stride < 1 or n_banks < 1:
        raise ParameterError(
            f"need stride >= 1 and n_banks >= 1, got {stride}, {n_banks}"
        )
    return n_banks // math.gcd(stride, n_banks)


def predict_strided_time(machine: MachineConfig, n: int, stride: int) -> float:
    """(d,x)-BSP time for a stride-``stride`` scatter of ``n`` elements
    under the machine's interleaved layout."""
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if n == 0:
        return float(machine.L)
    touched = banks_touched(stride, machine.n_banks)
    h_p = per_processor_load(n, machine.p)
    h_b = per_processor_load(n, touched)  # ceil(n / touched)
    return float(max(machine.L, machine.g * h_p, machine.d * h_b))


def effective_bandwidth(machine: MachineConfig, n: int, stride: int) -> float:
    """Elements per cycle the machine sustains at this stride (the metric
    of Oed & Lange [OL85]): ``n / T_strided``."""
    t = predict_strided_time(machine, n, stride)
    return n / t if t > 0 else 0.0


def stride_sweep(
    machine: MachineConfig, n: int, strides: Sequence[int]
) -> Series:
    """Predicted time and effective bandwidth across strides."""
    svals = np.asarray(list(strides), dtype=np.int64)
    times = np.array(
        [predict_strided_time(machine, n, int(s)) for s in svals]
    )
    bw = np.array(
        [effective_bandwidth(machine, n, int(s)) for s in svals]
    )
    touched = np.array(
        [banks_touched(int(s), machine.n_banks) for s in svals],
        dtype=np.float64,
    )
    series = Series(
        name=f"stride sweep ({machine.name}, n={n})",
        x_label="stride",
        x=svals.astype(np.float64),
    )
    series.add("banks_touched", touched)
    series.add("predicted", times)
    series.add("elements_per_cycle", bw)
    return series
