"""Plain-text visualizations (no plotting dependency).

Terminal-friendly renderings for interactive exploration: a bank-load
heat strip for one :class:`~repro.simulator.stats.SimResult` and a
log-scale sparkline for a :class:`~repro.analysis.report.Series` column.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ParameterError
from ..simulator.stats import SimResult
from .report import Series

__all__ = ["bank_load_strip", "sparkline", "series_panel"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def _levels(values: np.ndarray, vmax: Optional[float] = None) -> str:
    if values.size == 0:
        return ""
    top = float(vmax) if vmax is not None else float(values.max())
    if top <= 0:
        return _BLOCKS[0] * values.size
    scaled = np.clip(values / top, 0.0, 1.0)
    idx = np.minimum((scaled * (len(_BLOCKS) - 1)).round().astype(int),
                     len(_BLOCKS) - 1)
    return "".join(_BLOCKS[i] for i in idx)


def bank_load_strip(result: SimResult, width: int = 64) -> str:
    """One line of block characters showing per-bank loads (banks grouped
    into ``width`` buckets, each showing its maximum load)."""
    if width < 1:
        raise ParameterError(f"width must be >= 1, got {width}")
    loads = result.bank_loads.astype(np.float64)
    if loads.size == 0:
        return ""
    buckets = min(width, loads.size)
    edges = np.linspace(0, loads.size, buckets + 1).astype(int)
    grouped = np.array([
        loads[a:b].max() if b > a else 0.0
        for a, b in zip(edges[:-1], edges[1:])
    ])
    strip = _levels(grouped)
    return (f"[{strip}] max={int(loads.max())} "
            f"mean={loads.mean():.1f} over {loads.size} banks")


def sparkline(values, vmax: Optional[float] = None) -> str:
    """Block-character sparkline of a numeric vector."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ParameterError(f"values must be 1-D, got shape {arr.shape}")
    return _levels(arr, vmax)


def series_panel(series: Series, log: bool = True) -> str:
    """Sparkline panel of every column of a series (log-scaled by
    default, since the paper's quantities span decades)."""
    lines = [series.name]
    width = max((len(name) for name in series.columns), default=0)
    for name, col in series.columns.items():
        vals = np.asarray(col, dtype=np.float64)
        shown = np.log10(np.maximum(vals, 1.0)) if log else vals
        lines.append(f"{name.rjust(width)} |{sparkline(shown)}| "
                     f"{vals.min():.3g}..{vals.max():.3g}")
    return "\n".join(lines)
