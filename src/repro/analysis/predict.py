"""End-to-end prediction pipeline: pattern → {BSP, (d,x)-BSP, simulated}.

This is the glue the experiments use to produce the paper's
predicted-vs-measured comparisons: run a pattern (or a whole instrumented
program) through both analytic models and the simulator, and report the
times side by side with error ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._util import as_addresses
from ..core.contention import BankMap, max_location_contention
from ..core.cost import predict_scatter_bsp, predict_scatter_dxbsp
from ..core.model import Program
from ..simulator.dispatch import simulate_scatter_engine
from ..simulator.machine import MachineConfig
from ..simulator.trace import simulate_program

__all__ = [
    "PredictionComparison",
    "compare_scatter",
    "compare_program",
    "sweep_scatter",
    "relative_error",
    "contention_summary",
]


def relative_error(measured: float, predicted: float) -> float:
    """Signed relative error ``(predicted - measured) / measured``;
    negative = model under-predicts (the BSP's failure mode here)."""
    if measured == 0:
        return 0.0 if predicted == 0 else float("inf")
    return (predicted - measured) / measured


@dataclass(frozen=True)
class PredictionComparison:
    """Times for one pattern under both models and the simulator."""

    label: str
    n: int
    contention: int
    bsp_time: float
    dxbsp_time: float
    simulated_time: float

    @property
    def bsp_error(self) -> float:
        """Signed relative error of the BSP prediction."""
        return relative_error(self.simulated_time, self.bsp_time)

    @property
    def dxbsp_error(self) -> float:
        """Signed relative error of the (d,x)-BSP prediction."""
        return relative_error(self.simulated_time, self.dxbsp_time)

    @property
    def bsp_underprediction(self) -> float:
        """Measured over BSP-predicted (how many times slower reality is
        than the bank-oblivious model says)."""
        return self.simulated_time / self.bsp_time if self.bsp_time else float("inf")

    def row(self) -> tuple:
        """(label, n, k, bsp, dxbsp, simulated) for table assembly."""
        return (
            self.label,
            self.n,
            self.contention,
            self.bsp_time,
            self.dxbsp_time,
            self.simulated_time,
        )


def compare_scatter(
    machine: MachineConfig,
    addresses,
    bank_map: Optional[BankMap] = None,
    label: str = "",
    engine: str = "banksim",
) -> PredictionComparison:
    """Predict and simulate one scatter of ``addresses`` on ``machine``.

    ``engine`` selects which simulator produces the measured side
    (any :data:`repro.simulator.ENGINES` name); the analytic columns are
    engine-independent.  The default, ``"banksim"``, keeps the historic
    behaviour bit-identical.
    """
    addr = as_addresses(addresses)
    params = machine.params()
    return PredictionComparison(
        label=label,
        n=int(addr.size),
        contention=max_location_contention(addr),
        bsp_time=predict_scatter_bsp(params, addr),
        dxbsp_time=predict_scatter_dxbsp(params, addr, bank_map),
        simulated_time=simulate_scatter_engine(
            machine, addr, bank_map, engine=engine
        ).time,
    )


def compare_program(
    machine: MachineConfig,
    program: Program,
    bank_map: Optional[BankMap] = None,
    label: str = "",
) -> PredictionComparison:
    """Predict and simulate a whole instrumented program (superstep sums)."""
    params = machine.params()
    bsp = program.cost_bsp(params).total
    dxbsp = program.cost_dxbsp(params, bank_map).total
    sim = simulate_program(machine, program, bank_map).total_time
    return PredictionComparison(
        label=label,
        n=program.total_requests,
        contention=program.max_location_contention(),
        bsp_time=bsp,
        dxbsp_time=dxbsp,
        simulated_time=sim,
    )


def sweep_scatter(
    machine: MachineConfig,
    patterns: Sequence[Tuple[str, np.ndarray]],
    bank_map: Optional[BankMap] = None,
    engine: str = "banksim",
) -> List[PredictionComparison]:
    """Compare every ``(label, addresses)`` pattern on one machine.

    ``engine`` is forwarded to :func:`compare_scatter` for every row.
    """
    return [
        compare_scatter(machine, addr, bank_map, label=label, engine=engine)
        for label, addr in patterns
    ]


def contention_summary(
    program: Program,
    machine: Optional[MachineConfig] = None,
    bank_map: Optional[BankMap] = None,
) -> List[Tuple]:
    """Per-superstep contention rows for a recorded program.

    Each row: ``(index, label, n, k, h_b, dxbsp_time)`` — the quantities
    the model charges for, per step.  ``h_b`` and the time need a
    ``machine``; they are ``None`` without one.  Pairs with
    :func:`repro.analysis.format_table` for a paper-style phase report.
    """
    rows: List[Tuple] = []
    n_banks = machine.n_banks if machine is not None else None
    params = machine.params() if machine is not None else None
    for i, step in enumerate(program):
        stats = step.stats(n_banks, bank_map)
        time = step.time_dxbsp(params, bank_map) if params is not None else None
        rows.append((
            i, step.label, stats.n, stats.max_location_contention,
            stats.max_bank_load, time,
        ))
    return rows
