"""Prediction pipeline (pattern → model times → simulated time) and
paper-style reporting (plain-text tables and numeric series)."""

from .predict import (
    PredictionComparison,
    compare_program,
    compare_scatter,
    contention_summary,
    relative_error,
    sweep_scatter,
)
from .fit import DelayEstimate, estimate_bank_delay, measure_contention_curve
from .histogram import expected_max_bank_load_mc, predict_scatter_from_histogram
from .report import Series, csv_lines, format_table, telemetry_table
from .statistics import MeanCI, mean_ci, run_until_stable
from .visualize import bank_load_strip, series_panel, sparkline
from .strides import (
    banks_touched,
    effective_bandwidth,
    predict_strided_time,
    stride_sweep,
)

__all__ = [
    "PredictionComparison",
    "compare_scatter",
    "compare_program",
    "sweep_scatter",
    "relative_error",
    "contention_summary",
    "Series",
    "format_table",
    "csv_lines",
    "telemetry_table",
    "banks_touched",
    "predict_strided_time",
    "effective_bandwidth",
    "stride_sweep",
    "expected_max_bank_load_mc",
    "predict_scatter_from_histogram",
    "bank_load_strip",
    "sparkline",
    "series_panel",
    "MeanCI",
    "mean_ci",
    "run_until_stable",
    "DelayEstimate",
    "estimate_bank_delay",
    "measure_contention_curve",
]
