"""Plain-text tables and series in the style of the paper's artifacts.

No plotting dependency: every figure is regenerated as a numeric *series*
(x values plus named y columns) and every table as aligned text rows —
exactly what the benchmark harness prints and EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..errors import ParameterError

__all__ = ["format_table", "Series", "csv_lines", "telemetry_table"]


def _fmt(value) -> str:
    if isinstance(value, (float, np.floating)):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Render rows as an aligned plain-text table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    for r in str_rows:
        if len(r) != len(headers):
            raise ParameterError(
                f"row has {len(r)} cells but {len(headers)} headers"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


@dataclass
class Series:
    """A figure regenerated as numbers: one x axis, named y columns.

    Attributes
    ----------
    name:
        Figure identifier (e.g. ``"fig12_spmv"``).
    x_label:
        Meaning of the x axis.
    x:
        The sweep values.
    columns:
        Mapping column name → y values (same length as ``x``).
    """

    name: str
    x_label: str
    x: np.ndarray
    columns: Dict[str, np.ndarray] = field(default_factory=dict)

    def add(self, label: str, values) -> None:
        """Attach one named y column."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.shape != np.asarray(self.x).shape:
            raise ParameterError(
                f"column {label!r} has shape {arr.shape}, x has "
                f"{np.asarray(self.x).shape}"
            )
        self.columns[label] = arr

    def rows(self) -> List[tuple]:
        """(x, col1, col2, ...) tuples in column-insertion order."""
        cols = list(self.columns.values())
        return [
            tuple([xv] + [c[i] for c in cols])
            for i, xv in enumerate(np.asarray(self.x))
        ]

    def headers(self) -> List[str]:
        """Table headers matching :meth:`rows`."""
        return [self.x_label] + list(self.columns.keys())

    def format(self) -> str:
        """The whole series as an aligned table."""
        return format_table(self.headers(), self.rows(), title=self.name)


def telemetry_table(result, top: int = 8, title: str = "") -> str:
    """Render a :class:`~repro.simulator.SimResult`'s telemetry as the
    *why* behind a prediction error: the hottest banks (load, busy
    cycles, utilization, queue high-water) plus the stall breakdown.

    A pattern that misses the (d,x)-BSP bound shows up here directly —
    one bank at utilization ~1.0 with a deep queue is the serialized
    hot-spot regime; all banks cool with large ``issue_backpressure`` is
    bounded-queue back-pressure the model does not charge for.

    Requires a result produced with ``telemetry=True``.
    """
    tel = getattr(result, "telemetry", None)
    if tel is None:
        raise ParameterError(
            "SimResult carries no telemetry; rerun the simulator with "
            "telemetry=True to collect per-bank counters"
        )
    order = np.argsort(tel.bank_busy)[::-1][:max(1, int(top))]
    rows = [
        (
            int(b),
            int(result.bank_loads[b]),
            float(tel.bank_busy[b]),
            float(tel.bank_utilization[b]),
            int(tel.queue_high_water[b]),
        )
        for b in order
        if result.bank_loads[b] > 0 or tel.bank_busy[b] > 0
    ] or [(0, 0, 0.0, 0.0, 0)]
    lines = [format_table(
        ["bank", "load", "busy", "utilization", "queue high-water"],
        rows,
        title=title or f"hottest banks ({result.machine_name})".strip(),
    )]
    lines.append(
        "stalls: " + "  ".join(
            f"{k}={_fmt(v)}" for k, v in sorted(tel.stall_breakdown.items())
        )
    )
    lines.append(
        f"makespan: {_fmt(tel.makespan)} cycles, "
        f"max queue depth: {tel.max_queue_depth}"
    )
    return "\n".join(lines)


def csv_lines(headers: Sequence[str], rows: Iterable[Sequence]) -> List[str]:
    """Rows as CSV lines (header first); values formatted with repr-level
    precision so the output is machine-reloadable."""
    out = [",".join(headers)]
    for row in rows:
        out.append(",".join(
            f"{c:.12g}" if isinstance(c, (float, np.floating)) else str(c)
            for c in row
        ))
    return out
