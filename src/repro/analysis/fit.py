"""Estimating (d,x)-BSP parameters from measurements.

The paper validates the model with parameters known from hardware
manuals; going the other way is just as useful — given measured scatter
times on an *unknown* machine, recover its effective bank delay and the
throughput floor.  The contention sweep has a known two-regime shape::

    T(k) ~ max(T0, d*k)       T0 = g*n/p  (throughput floor)

so the floor is the median of the flat region and ``d`` is the slope of
``T`` against ``k`` above the knee (least squares through the origin on
the serialized regime).  `estimate_expansion` does the same for the bank
count using all-distinct patterns against a balls-in-bins load model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ParameterError

__all__ = ["DelayEstimate", "estimate_bank_delay", "measure_contention_curve"]


@dataclass(frozen=True)
class DelayEstimate:
    """Result of :func:`estimate_bank_delay`.

    Attributes
    ----------
    d:
        Estimated bank delay (cycles per serialized hot-location access).
    floor:
        Estimated throughput floor ``g*n/p`` in cycles.
    knee:
        Implied crossover contention ``floor / d``.
    n_points_used:
        Sweep points in the serialized regime the slope was fit on.
    """

    d: float
    floor: float
    knee: float
    n_points_used: int


def estimate_bank_delay(
    contentions: Sequence[float],
    times: Sequence[float],
) -> DelayEstimate:
    """Recover the bank delay from a contention sweep.

    Parameters
    ----------
    contentions / times:
        Measured ``(k, T(k))`` pairs from scatters of a fixed size with
        varying hot-location contention (e.g. Experiment 1's sweep, or
        real timings).  Needs points on both sides of the knee.
    """
    k = np.asarray(contentions, dtype=np.float64)
    t = np.asarray(times, dtype=np.float64)
    if k.shape != t.shape or k.ndim != 1:
        raise ParameterError("contentions and times must be matching 1-D")
    if k.size < 4:
        raise ParameterError("need at least 4 sweep points")
    if (k <= 0).any() or (t <= 0).any():
        raise ParameterError("contentions and times must be positive")
    order = np.argsort(k)
    k, t = k[order], t[order]

    # The floor: the flat region's level.  Use the minimum time as its
    # robust proxy (times rise monotonically past the knee).
    floor = float(np.median(t[t <= 1.25 * t.min()]))

    # Serialized regime: points clearly above the floor.
    serialized = t > 1.5 * floor
    if serialized.sum() < 2:
        raise ParameterError(
            "no serialized regime in the sweep (all points near the "
            "throughput floor) — increase the maximum contention"
        )
    ks, ts = k[serialized], t[serialized]
    # Least squares through the origin: T ~ d*k.
    d = float((ks * ts).sum() / (ks * ks).sum())
    if d <= 0:
        raise ParameterError("sweep does not rise with contention")
    return DelayEstimate(
        d=d, floor=floor, knee=floor / d, n_points_used=int(serialized.sum())
    )


def measure_contention_curve(
    machine,
    n: int,
    contentions: Optional[Sequence[int]] = None,
    space: int = 1 << 24,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Produce a ``(k, T)`` sweep by simulation — the "measurement" side
    for :func:`estimate_bank_delay` when no hardware is at hand."""
    from ..simulator.banksim import simulate_scatter
    from ..workloads.patterns import hotspot

    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    ks = np.asarray(
        contentions if contentions is not None
        else np.unique(np.geomspace(1, n, num=13).astype(np.int64)),
        dtype=np.int64,
    )
    times = np.array([
        simulate_scatter(machine, hotspot(n, int(kk), space, seed=seed + i)).time
        for i, kk in enumerate(ks)
    ])
    return ks.astype(np.float64), times
