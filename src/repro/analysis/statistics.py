"""Summary statistics for repeated randomized runs.

Randomized experiments (hash draws, dart throws) should report spread,
not just a point estimate; these helpers compute means with normal-theory
confidence intervals and a relative half-width stopping criterion for
"run until stable" loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List

import numpy as np
from scipy import stats as _stats

from ..errors import ParameterError

__all__ = ["MeanCI", "mean_ci", "run_until_stable"]


@dataclass(frozen=True)
class MeanCI:
    """A mean with its confidence interval.

    Attributes
    ----------
    mean / half_width:
        Point estimate and CI half width (0 for a single sample).
    n:
        Number of samples.
    confidence:
        The confidence level used.
    """

    mean: float
    half_width: float
    n: int
    confidence: float

    @property
    def lo(self) -> float:
        """Lower CI endpoint."""
        return self.mean - self.half_width

    @property
    def hi(self) -> float:
        """Upper CI endpoint."""
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half width over |mean| (inf for a zero mean with spread)."""
        if self.mean == 0:
            return 0.0 if self.half_width == 0 else float("inf")
        return self.half_width / abs(self.mean)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.half_width:.2g} (n={self.n})"


def mean_ci(samples, confidence: float = 0.95) -> MeanCI:
    """Student-t confidence interval for the mean of ``samples``."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ParameterError("samples must be a non-empty 1-D array")
    if not (0 < confidence < 1):
        raise ParameterError(f"confidence must be in (0,1), got {confidence}")
    m = float(arr.mean())
    if arr.size == 1:
        return MeanCI(mean=m, half_width=0.0, n=1, confidence=confidence)
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    t = float(_stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    return MeanCI(mean=m, half_width=t * sem, n=int(arr.size),
                  confidence=confidence)


def run_until_stable(
    sample: Callable[[int], float],
    target_rel_half_width: float = 0.05,
    min_trials: int = 5,
    max_trials: int = 200,
    confidence: float = 0.95,
) -> MeanCI:
    """Call ``sample(trial_index)`` until the CI's relative half width
    drops under ``target_rel_half_width`` (or ``max_trials`` is hit).

    Deterministic sample functions converge at ``min_trials``.
    """
    if min_trials < 2 or max_trials < min_trials:
        raise ParameterError("need 2 <= min_trials <= max_trials")
    if target_rel_half_width <= 0:
        raise ParameterError("target_rel_half_width must be > 0")
    values: List[float] = []
    for i in range(max_trials):
        values.append(float(sample(i)))
        if len(values) >= min_trials:
            ci = mean_ci(values, confidence)
            if ci.relative_half_width <= target_rel_half_width:
                return ci
    return mean_ci(values, confidence)
