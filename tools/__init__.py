"""Developer tooling for the repro repository.

Importable as a package so the linters run as modules from the repo
root: ``python -m tools.reprolint src tests``.
"""
