"""reprolint core: rule registry, suppression handling, file walking,
output rendering.

reprolint is a repo-specific static-analysis pass: every rule encodes an
invariant this reproduction actually depends on (deterministic RNG,
no wall-clock on simulated paths, memo-cache-safe kwargs, engine
signature parity, ...).  It is deliberately small and dependency-free —
pure ``ast`` — so it runs anywhere the test suite runs.

Concepts
--------
:class:`SourceFile`
    One parsed Python file plus its repo-relative path and the
    ``# reprolint: disable=RULE`` suppressions found in its source.
:class:`Rule`
    A check.  Per-file rules implement :meth:`Rule.check`; whole-repo
    rules (e.g. cross-file signature parity) implement
    :meth:`Rule.check_project` instead.
:class:`Finding`
    One violation: rule id, location, message.

Suppressions
------------
A finding is suppressed when the physical line it points at carries a
trailing pragma naming its rule id (or ``all``)::

    t0 = time.perf_counter()  # reprolint: disable=REPRO102 -- wall-clock
                              # is the measurement here, not sim state

A whole file opts out of one rule with a pragma on a line of its own
within the first ten lines::

    # reprolint: disable-file=REPRO103

Suppressions are intentionally loud in the diff: the justification
travels with the pragma.
"""

from __future__ import annotations

import ast
import dataclasses
import fnmatch
import json
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

__all__ = [
    "Finding",
    "SourceFile",
    "Rule",
    "RULES",
    "register",
    "all_rules",
    "load_files",
    "run_lint",
    "render_text",
    "render_json",
]

_PRAGMA = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+?)(?:--|$)")
_PRAGMA_FILE = re.compile(r"^\s*#\s*reprolint:\s*disable-file=([A-Za-z0-9_,\s]+?)(?:--|$)")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """``path:line:col: RULE message`` (clickable in most editors)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict view for the JSON output format."""
        return dataclasses.asdict(self)


class SourceFile:
    """A parsed source file with suppression metadata.

    Parameters
    ----------
    rel:
        Repo-relative posix path; rules scope themselves by matching
        glob patterns against it, so tests can lint in-memory snippets
        under any virtual path.
    text:
        Source code.
    """

    def __init__(self, rel: str, text: str) -> None:
        self.rel = rel.replace("\\", "/")
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=rel)
        self._line_disables: Dict[int, set] = {}
        self._file_disables: set = set()
        for lineno, line in enumerate(self.lines, start=1):
            m = _PRAGMA_FILE.match(line)
            if m and lineno <= 10:
                self._file_disables.update(
                    r.strip() for r in m.group(1).split(",") if r.strip()
                )
                continue
            m = _PRAGMA.search(line)
            if m:
                self._line_disables[lineno] = {
                    r.strip() for r in m.group(1).split(",") if r.strip()
                }

    def suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is disabled for ``line`` (or the file)."""
        if rule in self._file_disables or "all" in self._file_disables:
            return True
        disabled = self._line_disables.get(line)
        return disabled is not None and (rule in disabled or "all" in disabled)


class Rule:
    """Base class for reprolint rules.

    Class attributes
    ----------------
    id:
        Stable identifier (``REPROnnn``), used in pragmas and output.
    name:
        Short kebab-case name for ``--list-rules``.
    description:
        One-line statement of the invariant the rule protects.
    paths:
        Glob patterns (repo-relative) the rule applies to; empty means
        every linted file.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    paths: Tuple[str, ...] = ()

    def applies_to(self, f: SourceFile) -> bool:
        """Whether this rule's path scope covers ``f``."""
        if not self.paths:
            return True
        return any(fnmatch.fnmatch(f.rel, pat) for pat in self.paths)

    def check(self, f: SourceFile) -> Iterator[Finding]:
        """Yield findings for one file (per-file rules override this)."""
        return iter(())

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        """Yield findings needing a whole-repo view (cross-file rules)."""
        return iter(())

    def finding(self, f: SourceFile, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` at ``node``'s location in ``f``."""
        return Finding(
            rule=self.id,
            path=f.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


#: Registered rule classes, in registration (= id) order.
RULES: List[Type[Rule]] = []


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if any(r.id == cls.id for r in RULES):
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES.append(cls)
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    # Import for side effect: the rule classes self-register on import.
    from . import rules as _rules  # noqa: F401

    return [cls() for cls in RULES]


_SKIP_DIRS = {".git", "__pycache__", ".cache", "results", ".pytest_cache"}


def load_files(
    paths: Sequence[str], root: Optional[Path] = None
) -> Tuple[List[SourceFile], List[Finding]]:
    """Collect and parse every ``.py`` file under ``paths``.

    Returns the parsed files plus parse-failure findings (a file that
    does not parse is itself a finding, not a crash).
    """
    root = Path(root) if root is not None else Path.cwd()
    seen = set()
    files: List[SourceFile] = []
    errors: List[Finding] = []
    for raw in paths:
        p = (root / raw).resolve() if not Path(raw).is_absolute() else Path(raw)
        candidates: Iterable[Path]
        if p.is_dir():
            candidates = [
                c for c in sorted(p.rglob("*.py"))
                if not (_SKIP_DIRS & set(c.parts))
            ]
        elif p.is_file():
            candidates = [p]
        else:
            errors.append(Finding(
                rule="REPRO000", path=str(raw), line=1, col=1,
                message=f"path {raw!r} does not exist",
            ))
            continue
        for c in candidates:
            if c in seen:
                continue
            seen.add(c)
            try:
                rel = c.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = c.as_posix()
            try:
                files.append(SourceFile(rel, c.read_text()))
            except (SyntaxError, UnicodeDecodeError) as exc:
                errors.append(Finding(
                    rule="REPRO000", path=rel,
                    line=getattr(exc, "lineno", 1) or 1, col=1,
                    message=f"file does not parse: {exc}",
                ))
    return files, errors


def run_lint(
    files: Sequence[SourceFile],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run ``rules`` over ``files``; returns unsuppressed findings sorted
    by (path, line, col, rule)."""
    active = list(rules) if rules is not None else all_rules()
    if select:
        wanted = set(select)
        active = [r for r in active if r.id in wanted or r.name in wanted]
    if ignore:
        dropped = set(ignore)
        active = [r for r in active if r.id not in dropped
                  and r.name not in dropped]
    by_rel = {f.rel: f for f in files}
    findings: List[Finding] = []
    for rule in active:
        for f in files:
            if rule.applies_to(f):
                findings.extend(rule.check(f))
        findings.extend(rule.check_project(files))
    kept = []
    for fi in findings:
        src = by_rel.get(fi.path)
        if src is not None and src.suppressed(fi.rule, fi.line):
            continue
        kept.append(fi)
    kept.sort(key=lambda fi: (fi.path, fi.line, fi.col, fi.rule))
    return kept


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [fi.format() for fi in findings]
    lines.append(
        f"reprolint: {len(findings)} finding(s)"
        if findings else "reprolint: clean"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable key order)."""
    return json.dumps(
        {"findings": [fi.to_dict() for fi in findings],
         "count": len(findings)},
        indent=2, sort_keys=True,
    ) + "\n"
