"""reprolint — repo-specific static analysis for the (d,x)-BSP repro.

Run from the repo root::

    python -m tools.reprolint src tests

Exit status is nonzero when any finding survives suppressions.  See
:mod:`tools.reprolint.rules` for the rule catalog and DESIGN.md §9 for
the invariants each rule protects.
"""

from .core import (
    Finding,
    Rule,
    SourceFile,
    all_rules,
    load_files,
    render_json,
    render_text,
    run_lint,
)

__all__ = [
    "Finding",
    "Rule",
    "SourceFile",
    "all_rules",
    "load_files",
    "render_json",
    "render_text",
    "run_lint",
    "lint_paths",
]


def lint_paths(paths, root=None, select=None, ignore=None):
    """Lint ``paths`` (files or directories); returns the finding list.

    Parse failures surface as ``REPRO000`` findings rather than raising.
    """
    files, errors = load_files(list(paths), root=root)
    return errors + run_lint(files, select=select, ignore=ignore)
