"""The reprolint rule catalog.

Each rule guards an invariant this reproduction's correctness claims
rest on (DESIGN.md §9 states the full justification):

========  ====================  ==========================================
id        name                  invariant protected
========  ====================  ==========================================
REPRO101  unseeded-rng          every random draw in the package is
                                seeded — results regenerate bit-identically
REPRO102  wall-clock            simulated time never reads the host clock;
                                wall-clock belongs to the bench harness
REPRO103  float-equality        cycle accounting never compares floats for
                                equality against float literals
REPRO104  mutable-default       no mutable default arguments (state leaks
                                across calls and across pool workers)
REPRO105  set-iteration         no iteration over sets (hash-order varies
                                with PYTHONHASHSEED across processes)
REPRO106  unsorted-walk         directory walks are sorted (filesystem
                                order is not deterministic)
REPRO107  pool-closure          nothing unpicklable (lambdas, nested
                                functions) is handed to the process pool
REPRO108  cache-opaque-kwarg    run_grid point kwargs stay inside the
                                cache-key normalizer's canonical types
REPRO109  telemetry-timed-path  the perf_guard-gated benchmark path never
                                constructs telemetry
REPRO110  engine-parity         the public simulate_* signatures of the
                                three engines stay in parity
REPRO111  broad-except          no bare/over-broad except without re-raise
REPRO112  silent-handler        no except handler that only passes
REPRO113  public-docstring      every public function/class in src/repro/
                                documents its contract with a docstring
REPRO114  unbounded-concat      streaming paths never accumulate into an
                                array they concatenate onto (O(n^2) growth
                                breaks the chunk memory bound)
========  ====================  ==========================================

Every rule is suppressible per line with ``# reprolint: disable=ID`` —
the suppression plus its justification is the documented escape hatch.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .core import Finding, Rule, SourceFile, register

__all__ = ["qualified_names", "call_name"]

#: Default path scope for package-determinism rules.
_SRC = ("src/repro/*", "src/repro/**")
#: Simulator + experiment code: the simulated-time domain.
_SIM_EXP = (
    "src/repro/simulator/**", "src/repro/experiments/**",
    "src/repro/simulator/*", "src/repro/experiments/*",
)


def qualified_names(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the qualified module paths they were imported
    as (``np`` -> ``numpy``, ``perf_counter`` -> ``time.perf_counter``)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def call_name(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a call target to a dotted qualified name, or ``None``."""
    if isinstance(node, ast.Name):
        return aliases.get(node.id, node.id)
    if isinstance(node, ast.Attribute):
        base = call_name(node.value, aliases)
        return f"{base}.{node.attr}" if base else None
    return None


def _walk_calls(
    f: SourceFile,
) -> Iterator[Tuple[ast.Call, Optional[str], Dict[str, str]]]:
    aliases = qualified_names(f.tree)
    for node in ast.walk(f.tree):
        if isinstance(node, ast.Call):
            yield node, call_name(node.func, aliases), aliases


@register
class UnseededRngRule(Rule):
    """Flag RNG constructions/draws that are not reproducibly seeded."""

    id = "REPRO101"
    name = "unseeded-rng"
    description = (
        "stdlib `random` draws and legacy `numpy.random` module calls are "
        "process-global and unseeded; `default_rng()`/`RandomState()` "
        "without a seed differ every run — every experiment result must "
        "regenerate bit-identically"
    )
    paths = _SRC

    _STDLIB_FNS = {
        "random", "randint", "randrange", "choice", "choices", "sample",
        "shuffle", "uniform", "gauss", "betavariate", "expovariate",
        "getrandbits", "seed",
    }
    _NUMPY_LEGACY = {
        "rand", "randn", "randint", "random", "random_sample", "choice",
        "shuffle", "permutation", "uniform", "normal", "seed", "bytes",
    }

    def check(self, f: SourceFile) -> Iterator[Finding]:
        for node, qual, _aliases in _walk_calls(f):
            if qual is None:
                continue
            if qual.startswith("random.") \
                    and qual.split(".", 1)[1] in self._STDLIB_FNS:
                yield self.finding(
                    f, node,
                    f"call to process-global `{qual}` — draw from a "
                    "seeded `numpy.random.Generator` (see `repro._util"
                    ".as_rng`) instead",
                )
            elif qual.startswith("numpy.random.") \
                    and qual.rsplit(".", 1)[1] in self._NUMPY_LEGACY:
                yield self.finding(
                    f, node,
                    f"legacy global-state call `{qual}` — use a seeded "
                    "`numpy.random.default_rng(seed)` generator",
                )
            elif qual in ("numpy.random.default_rng",
                          "numpy.random.RandomState"):
                seedless = not node.args and not node.keywords or (
                    len(node.args) == 1
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                if seedless:
                    yield self.finding(
                        f, node,
                        f"`{qual}` without a seed is nondeterministic — "
                        "pass an explicit seed",
                    )


@register
class WallClockRule(Rule):
    """Flag host-clock reads on simulated-time code paths."""

    id = "REPRO102"
    name = "wall-clock"
    description = (
        "simulator/experiment code measures *simulated* cycles; a host "
        "clock read there either leaks nondeterminism into results or "
        "into the memo cache — wall-clock timing belongs to the bench "
        "harness (benchmarks/, tools/perf_guard.py)"
    )
    paths = _SIM_EXP

    _CLOCKS = {
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }

    def check(self, f: SourceFile) -> Iterator[Finding]:
        for node, qual, _aliases in _walk_calls(f):
            if qual in self._CLOCKS:
                yield self.finding(
                    f, node,
                    f"host clock read `{qual}` on a simulated-time path — "
                    "simulator/experiment results must be functions of "
                    "their inputs only",
                )


@register
class FloatEqualityRule(Rule):
    """Flag ==/!= comparisons against float literals or float() casts."""

    id = "REPRO103"
    name = "float-equality"
    description = (
        "cycle accounting mixes exact integer-valued float64s with "
        "derived quantities; equality against a float literal silently "
        "breaks the moment any operand stops being exact — compare "
        "against integers or use an explicit tolerance"
    )
    paths = _SRC + ("tools/*", "tools/**")

    @staticmethod
    def _is_floaty(node: ast.expr, aliases: Dict[str, str]) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.Call):
            return call_name(node.func, aliases) == "float"
        return False

    def check(self, f: SourceFile) -> Iterator[Finding]:
        aliases = qualified_names(f.tree)
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, right in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(self._is_floaty(o, aliases) for o in operands):
                    yield self.finding(
                        f, node,
                        "float equality comparison — use an integer "
                        "comparison or an explicit tolerance "
                        "(`abs(a - b) <= tol`)",
                    )
                    break


@register
class MutableDefaultRule(Rule):
    """Flag mutable default argument values."""

    id = "REPRO104"
    name = "mutable-default"
    description = (
        "a mutable default is shared across every call *and* pickled "
        "into pool workers — state leaks between grid points"
    )
    # Applies everywhere reprolint looks.

    _MUTABLE_CALLS = {
        "list", "dict", "set", "bytearray", "collections.deque",
        "collections.defaultdict", "collections.Counter",
        "collections.OrderedDict",
        "numpy.array", "numpy.zeros", "numpy.ones", "numpy.empty",
        "numpy.arange",
    }

    def _bad(self, node: ast.expr, aliases: Dict[str, str]) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return call_name(node.func, aliases) in self._MUTABLE_CALLS
        return False

    def check(self, f: SourceFile) -> Iterator[Finding]:
        aliases = qualified_names(f.tree)
        for node in ast.walk(f.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = [
                *node.args.defaults,
                *(d for d in node.args.kw_defaults if d is not None),
            ]
            for d in defaults:
                if self._bad(d, aliases):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        f, d,
                        f"mutable default argument in `{label}` — default "
                        "to None and construct inside the function",
                    )


def _iter_targets(tree: ast.AST) -> Iterator[ast.expr]:
    """Every expression something iterates over: for loops and the
    generators of comprehensions."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter


@register
class SetIterationRule(Rule):
    """Flag direct iteration over sets."""

    id = "REPRO105"
    name = "set-iteration"
    description = (
        "set iteration order follows the hash seed, which differs across "
        "the runner's pool workers (PYTHONHASHSEED) — anything "
        "order-sensitive built from it diverges between processes; wrap "
        "in sorted()"
    )
    paths = _SRC

    @staticmethod
    def _is_set_expr(node: ast.expr, aliases: Dict[str, str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return call_name(node.func, aliases) in ("set", "frozenset")
        return False

    def check(self, f: SourceFile) -> Iterator[Finding]:
        aliases = qualified_names(f.tree)
        for target in _iter_targets(f.tree):
            if self._is_set_expr(target, aliases):
                yield self.finding(
                    f, target,
                    "iteration over a set is hash-order-dependent — wrap "
                    "in sorted() (or iterate the original sequence)",
                )


@register
class UnsortedWalkRule(Rule):
    """Flag unsorted directory iteration."""

    id = "REPRO106"
    name = "unsorted-walk"
    description = (
        "glob/listdir order is filesystem-dependent; the code-version "
        "digest and any walk whose order reaches a result must sort"
    )
    paths = _SRC + ("tools/*", "tools/**")

    _WALK_ATTRS = {"glob", "rglob", "iterdir"}
    _WALK_CALLS = {"os.listdir", "os.scandir"}

    def _is_walk(self, node: ast.expr, aliases: Dict[str, str]) -> bool:
        if not isinstance(node, ast.Call):
            return False
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in self._WALK_ATTRS:
            return True
        return call_name(node.func, aliases) in self._WALK_CALLS

    def check(self, f: SourceFile) -> Iterator[Finding]:
        aliases = qualified_names(f.tree)
        for target in _iter_targets(f.tree):
            if self._is_walk(target, aliases):
                yield self.finding(
                    f, target,
                    "unsorted directory walk — wrap in sorted() so the "
                    "visit order is platform-independent",
                )


@register
class PoolClosureRule(Rule):
    """Flag unpicklable callables handed to the process pool."""

    id = "REPRO107"
    name = "pool-closure"
    description = (
        "the experiment runner fans work out over a process pool; "
        "lambdas and nested functions are not picklable by reference "
        "and die in the worker — point functions must be module-level"
    )
    paths = _SRC + ("benchmarks/*", "tools/*", "tools/**")

    _POOL_SINKS = {"run_grid", "run_experiments", "submit", "map_async",
                   "apply_async"}

    def check(self, f: SourceFile) -> Iterator[Finding]:
        nested = set()
        for outer in ast.walk(f.tree):
            if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(outer):
                    if inner is not outer and isinstance(
                            inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        nested.add(inner.name)
        for node, qual, _aliases in _walk_calls(f):
            sink = None
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in self._POOL_SINKS:
                sink = node.func.attr
            elif qual is not None \
                    and qual.rsplit(".", 1)[-1] in self._POOL_SINKS:
                sink = qual.rsplit(".", 1)[-1]
            if sink is None or not node.args:
                continue
            fn_arg = node.args[0]
            if isinstance(fn_arg, ast.Lambda):
                yield self.finding(
                    f, fn_arg,
                    f"lambda passed to pool sink `{sink}` — not picklable "
                    "by reference; use a module-level function",
                )
            elif isinstance(fn_arg, ast.Name) and fn_arg.id in nested:
                yield self.finding(
                    f, fn_arg,
                    f"nested function `{fn_arg.id}` passed to pool sink "
                    f"`{sink}` — not picklable by reference; hoist it to "
                    "module level",
                )


@register
class CacheOpaqueKwargRule(Rule):
    """Flag run_grid point kwargs outside the cache-key normalizer."""

    id = "REPRO108"
    name = "cache-opaque-kwarg"
    description = (
        "the memo cache canonicalizes ndarray/dataclass/dict/list/tuple/"
        "scalar kwargs; sets pickle in hash order and lambdas/generators "
        "by memory identity, so such kwargs poison or shatter the cache "
        "key"
    )
    paths = (
        "src/repro/experiments/*", "src/repro/experiments/**",
        "benchmarks/*",
    )

    _OPAQUE = (ast.Set, ast.SetComp, ast.GeneratorExp, ast.Lambda)

    def _point_values(self, point: ast.expr) -> Iterator[ast.expr]:
        if isinstance(point, ast.Dict):
            yield from (v for v in point.values if v is not None)
        elif isinstance(point, ast.Call) and isinstance(
                point.func, ast.Name) and point.func.id == "dict":
            yield from (kw.value for kw in point.keywords)

    def check(self, f: SourceFile) -> Iterator[Finding]:
        for node, qual, _aliases in _walk_calls(f):
            name = (qual or "").rsplit(".", 1)[-1]
            if name != "run_grid" or len(node.args) < 2:
                continue
            points_arg = node.args[1]
            point_exprs: List[ast.expr] = []
            if isinstance(points_arg, (ast.List, ast.Tuple)):
                point_exprs = list(points_arg.elts)
            elif isinstance(points_arg, (ast.ListComp, ast.GeneratorExp)):
                point_exprs = [points_arg.elt]
            for point in point_exprs:
                for value in self._point_values(point):
                    if isinstance(value, self._OPAQUE):
                        yield self.finding(
                            f, value,
                            "grid-point kwarg of a type the cache-key "
                            "normalizer cannot canonicalize (set/"
                            "generator/lambda) — pass a sorted tuple or "
                            "a module-level object",
                        )


@register
class TelemetryTimedPathRule(Rule):
    """Flag telemetry collection inside the perf-gated benchmarks."""

    id = "REPRO109"
    name = "telemetry-timed-path"
    description = (
        "tools/perf_guard.py gates the telemetry-off hot path; a "
        "benchmark that turns telemetry on (or builds SimTelemetry "
        "itself) would quietly re-baseline the gate to include "
        "accounting overhead"
    )
    paths = ("benchmarks/*",)

    def check(self, f: SourceFile) -> Iterator[Finding]:
        for node, qual, _aliases in _walk_calls(f):
            for kw in node.keywords:
                if kw.arg == "telemetry" and not (
                        isinstance(kw.value, ast.Constant)
                        and kw.value.value in (False, None)):
                    yield self.finding(
                        f, kw.value,
                        "telemetry enabled on a perf_guard-timed path — "
                        "the gated benchmark must keep the hot path "
                        "telemetry-off",
                    )
            if (qual or "").rsplit(".", 1)[-1] == "SimTelemetry":
                yield self.finding(
                    f, node,
                    "SimTelemetry constructed inside a benchmark — "
                    "telemetry is an opt-in diagnostic, not a timed "
                    "workload",
                )


@register
class EngineParityRule(Rule):
    """Cross-file check: the three engines' entry points stay in parity.

    The repo's central property — banksim, tick and event produce
    bit-identical results — is only testable while their public
    signatures agree on the shared parameters.  This rule parses the
    actual ``def`` statements, so drift fails the lint before it can
    fail (or silently skip) the property tests.
    """

    id = "REPRO110"
    name = "engine-parity"
    description = (
        "public simulate_* entry points must share the canonical "
        "parameter sequence (machine, addresses, bank_map, assignment, "
        "telemetry, sanitize) with identical defaults across banksim "
        "and the cycle engines"
    )

    #: Canonical shared parameters, in order, with their default source.
    CANONICAL: Tuple[Tuple[str, Optional[str]], ...] = (
        ("machine", None),
        ("addresses", None),
        ("bank_map", "None"),
        ("assignment", "'round_robin'"),
        ("telemetry", "False"),
        ("sanitize", "None"),
    )
    #: Engine-specific parameters allowed in addition to the canon.
    ALLOWED_EXTRAS = {"superstep_size", "max_cycles", "engine",
                      "chunk_size"}
    #: entry point -> file glob it must live in.
    ENTRY_POINTS = {
        "simulate_scatter": "src/repro/simulator/banksim.py",
        "simulate_gather": "src/repro/simulator/banksim.py",
        "simulate_scatter_blocked": "src/repro/simulator/banksim.py",
        "simulate_scatter_cycle": "src/repro/simulator/cycle.py",
        "simulate_scatter_batch": "src/repro/simulator/cycle_batch.py",
        "simulate_scatter_grid": "src/repro/simulator/cycle_grid.py",
        "simulate_scatter_engine": "src/repro/simulator/dispatch.py",
        "simulate_scatter_stream": "src/repro/simulator/stream.py",
    }

    @staticmethod
    def _signature(node: ast.FunctionDef) -> List[Tuple[str, Optional[str]]]:
        args = node.args
        params = [*args.posonlyargs, *args.args]
        defaults: List[Optional[ast.expr]] = (
            [None] * (len(params) - len(args.defaults)) + list(args.defaults)
        )
        out = [
            (a.arg, ast.unparse(d) if d is not None else None)
            for a, d in zip(params, defaults)
        ]
        out.extend(
            (a.arg, ast.unparse(d) if d is not None else None)
            for a, d in zip(args.kwonlyargs, args.kw_defaults)
        )
        return out

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        found: Dict[str, Tuple[SourceFile, ast.FunctionDef]] = {}
        for f in files:
            if f.rel not in set(self.ENTRY_POINTS.values()):
                continue
            for node in ast.walk(f.tree):
                if isinstance(node, ast.FunctionDef) \
                        and node.name in self.ENTRY_POINTS:
                    found[node.name] = (f, node)
        # Only meaningful when the simulator sources are in the lint run.
        if not found:
            return
        for name, rel in self.ENTRY_POINTS.items():
            if name not in found:
                for f in files:
                    if f.rel == rel:
                        yield Finding(
                            rule=self.id, path=rel, line=1, col=1,
                            message=f"engine entry point `{name}` missing "
                                    f"from {rel} — the three-engine parity "
                                    "surface changed",
                        )
                        break
                continue
            f, node = found[name]
            sig = self._signature(node)
            canon = iter(self.CANONICAL)
            expected = next(canon)
            for param, default in sig:
                if param == expected[0]:
                    if default != expected[1]:
                        yield self.finding(
                            f, node,
                            f"`{name}` parameter `{param}` default "
                            f"{default!r} drifted from the canonical "
                            f"{expected[1]!r} shared by the engines",
                        )
                    expected = next(canon, None)
                    if expected is None:
                        break
                elif param not in self.ALLOWED_EXTRAS:
                    yield self.finding(
                        f, node,
                        f"`{name}` parameter `{param}` is neither the "
                        f"expected canonical parameter `{expected[0]}` "
                        "nor a known engine-specific extra — engine "
                        "signatures drifted out of parity",
                    )
                    expected = None
                    break
            if expected is not None:
                yield self.finding(
                    f, node,
                    f"`{name}` is missing canonical shared parameter "
                    f"`{expected[0]}` — all engines must accept it",
                )


@register
class BroadExceptRule(Rule):
    """Flag bare/over-broad except clauses that do not re-raise."""

    id = "REPRO111"
    name = "broad-except"
    description = (
        "a broad except on the runner's retry paths can swallow "
        "KeyboardInterrupt/cancellation or misclassify a code bug as a "
        "flaky point — catch the narrowest type the retry really handles"
    )
    paths = _SRC + ("tools/*", "tools/**")

    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, node: Optional[ast.expr]) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.Name) and node.id in self._BROAD:
            return True
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(e) for e in node.elts)
        return False

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(n, ast.Raise) for n in ast.walk(handler)
        )

    def check(self, f: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(f.tree):
            if isinstance(node, ast.ExceptHandler) \
                    and self._is_broad(node.type) \
                    and not self._reraises(node):
                label = "bare except" if node.type is None else \
                    f"except {ast.unparse(node.type)}"
                yield self.finding(
                    f, node,
                    f"{label} without re-raise — narrow the exception "
                    "type (or suppress with the justification for why "
                    "this retry path must be total)",
                )


@register
class SilentHandlerRule(Rule):
    """Flag except handlers whose body is only pass/continue."""

    id = "REPRO112"
    name = "silent-handler"
    description = (
        "an except body of just `pass` erases the failure with no "
        "counter, log line or comment pragma explaining why losing it "
        "is safe"
    )
    paths = _SRC

    def check(self, f: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if all(isinstance(stmt, (ast.Pass, ast.Continue))
                   for stmt in node.body):
                yield self.finding(
                    f, node,
                    "exception silently dropped — record it (counter/"
                    "result field) or suppress with the justification",
                )


@register
class PublicDocstringRule(Rule):
    """Flag public package API without a docstring.

    The package doubles as the paper's written-out methodology: the
    generated API reference (``tools/gen_api_docs.py`` -> docs/api.md)
    is assembled from docstrings, so an undocumented public function is
    a hole in the methodology document, not just a style nit.
    """

    id = "REPRO113"
    name = "public-docstring"
    description = (
        "docs/api.md is generated from docstrings; a public function, "
        "class or method without one ships an undocumented contract — "
        "document it (or suppress with the justification for why the "
        "name must stay public yet undocumented)"
    )
    paths = _SRC

    @staticmethod
    def _public(name: str) -> bool:
        return not name.startswith("_")

    def _scan(
        self, f: SourceFile, body: Sequence[ast.stmt], owner: str
    ) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef) and self._public(node.name):
                label = f"{owner}{node.name}"
                if ast.get_docstring(node) is None:
                    yield self.finding(
                        f, node,
                        f"public class `{label}` has no docstring",
                    )
                # Methods of a public class are API surface too; nested
                # helpers inside functions are not.
                yield from self._scan(f, node.body, f"{label}.")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and self._public(node.name) \
                    and ast.get_docstring(node) is None:
                kind = "method" if owner else "function"
                yield self.finding(
                    f, node,
                    f"public {kind} `{owner}{node.name}` has no docstring",
                )

    def check(self, f: SourceFile) -> Iterator[Finding]:
        yield from self._scan(f, f.tree.body, "")


@register
class UnboundedConcatRule(Rule):
    """Flag self-accumulating array concatenation on streaming paths.

    The streaming tier's whole point is a peak-memory bound set by the
    chunk budget, not the trace.  ``x = np.concatenate([x, chunk])``
    (and friends) silently re-grows an unbounded array chunk by chunk —
    O(trace) memory and O(n^2) copying — which is exactly the failure
    mode streaming exists to rule out.  Keep per-chunk arrays bounded:
    fold chunks into fixed-size accumulators, or prune before you
    concatenate (and suppress with the justification for why the
    retained set is bounded).
    """

    id = "REPRO114"
    name = "unbounded-concat"
    description = (
        "streaming-path assignment concatenates an array onto itself "
        "(unbounded accumulation breaks the chunk memory bound); fold "
        "into bounded accumulators instead"
    )
    #: The bounded-memory streaming tier: the incremental simulator and
    #: the serving layer that pumps unbounded NDJSON traces through it.
    paths = (
        "src/repro/simulator/stream.py",
        "src/repro/serving/*",
        "src/repro/serving/**",
    )

    _GROWERS = {
        "numpy.concatenate", "numpy.append", "numpy.hstack",
        "numpy.vstack", "numpy.r_",
    }

    def check(self, f: SourceFile) -> Iterator[Finding]:
        aliases = qualified_names(f.tree)
        for node in ast.walk(f.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign,
                                     ast.AnnAssign)):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            if call_name(value.func, aliases) not in self._GROWERS:
                continue
            if isinstance(node, ast.Assign):
                targets = node.targets
            else:
                targets = [node.target]
            target_srcs = {
                ast.unparse(t) for t in targets
                if isinstance(t, (ast.Name, ast.Attribute))
            }
            if not target_srcs:
                continue
            arg_nodes = list(value.args) + [kw.value for kw in value.keywords]
            for arg in arg_nodes:
                for sub in ast.walk(arg):
                    if isinstance(sub, (ast.Name, ast.Attribute)) \
                            and ast.unparse(sub) in target_srcs:
                        yield self.finding(
                            f, node,
                            f"`{ast.unparse(sub)}` is concatenated onto "
                            "itself on a streaming path — this "
                            "accumulates without bound; fold chunks "
                            "into a bounded accumulator",
                        )
                        break
                else:
                    continue
                break
