"""Command-line entry point: ``python -m tools.reprolint [paths...]``.

Options::

    paths               files/directories to lint (default: src tests)
    --format text|json  output format (default text)
    --select IDS        comma-separated rule ids/names to run exclusively
    --ignore IDS        comma-separated rule ids/names to skip
    --list-rules        print the rule catalog and exit
    --root DIR          repo root for path scoping (default: cwd)

Exit status: 0 clean, 1 findings, 2 usage/parse trouble on the
command line itself.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import all_rules, load_files, render_json, render_text, run_lint


def _split(arg: Optional[str]) -> Optional[List[str]]:
    if not arg:
        return None
    return [part.strip() for part in arg.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="repo-specific static analysis (see DESIGN.md §9)",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files/directories to lint (default: src tests)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids/names to run")
    parser.add_argument("--ignore", default=None,
                        help="comma-separated rule ids/names to skip")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--root", default=None,
                        help="repo root for path scoping (default: cwd)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.paths) if rule.paths else "all files"
            print(f"{rule.id}  {rule.name}  [{scope}]")
            print(f"    {rule.description}")
        return 0

    files, errors = load_files(args.paths, root=args.root)
    findings = errors + run_lint(
        files, select=_split(args.select), ignore=_split(args.ignore)
    )
    if args.format == "json":
        sys.stdout.write(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
