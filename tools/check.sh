#!/bin/sh
# Repo gate: static analysis + strict typing + tier-1 tests.
#
#   sh tools/check.sh
#
# Runs, in order: reprolint (always), ruff and mypy (when installed —
# both are optional in the reproduction image), the tier-1 pytest
# suite, then the opt-in perf-regression gate (which compares the
# telemetry-off bench JSONs for all three cycle engines and the bank
# kernel against their committed baselines, when present).  Exits
# nonzero on the first failure.

set -e
cd "$(dirname "$0")/.."

LINT_PATHS="src tests benchmarks tools"

echo "== reprolint =="
python -m tools.reprolint $LINT_PATHS

echo "== ruff =="
if command -v ruff >/dev/null 2>&1; then
    ruff check $LINT_PATHS
else
    echo "ruff not installed; skipping (config in pyproject.toml)"
fi

echo "== mypy =="
if python -c "import mypy" >/dev/null 2>&1; then
    python -m mypy src/repro/simulator src/repro/mapping \
        src/repro/experiments/runner.py src/repro/experiments/manifest.py
else
    echo "mypy not installed; skipping (config in pyproject.toml)"
fi

echo "== pytest (tier 1) =="
PYTHONPATH=src python -m pytest -x -q

echo "== perf guard =="
if [ -f BENCH_cycle_engine.json ]; then
    PYTHONPATH=src python -m pytest -m perf_guard tests/test_perf_guard.py -q
else
    echo "no BENCH_cycle_engine.json; skipping (run pytest benchmarks/ first)"
fi

echo "check.sh: all gates passed"
