#!/bin/sh
# Repo gate: static analysis + strict typing + tier-1 tests.
#
#   sh tools/check.sh
#
# Runs, in order: reprolint (always), ruff and mypy (when installed —
# both are optional in the reproduction image), the docs-freshness
# check (docs/api.md must match the live public surface), the tier-1
# pytest suite, the examples smoke run (every examples/*.py must
# execute cleanly), the router and streaming-session smoke runs
# through the NDJSON CLI, then the opt-in perf-regression gate (which
# compares the telemetry-off bench JSONs for the cycle engines, the
# fused whole-grid pass, the bank kernel and the serving hot path
# against their committed baselines, when present).  Exits nonzero on
# the first failure.

set -e
cd "$(dirname "$0")/.."

LINT_PATHS="src tests benchmarks tools"

echo "== reprolint =="
python -m tools.reprolint $LINT_PATHS

echo "== ruff =="
if command -v ruff >/dev/null 2>&1; then
    ruff check $LINT_PATHS
else
    echo "ruff not installed; skipping (config in pyproject.toml)"
fi

echo "== mypy =="
if python -c "import mypy" >/dev/null 2>&1; then
    python -m mypy src/repro/simulator src/repro/mapping \
        src/repro/experiments/runner.py src/repro/experiments/manifest.py
else
    echo "mypy not installed; skipping (config in pyproject.toml)"
fi

echo "== docs freshness =="
PYTHONPATH=src python tools/gen_api_docs.py --check

echo "== pytest (tier 1) =="
# The examples smoke tests run as their own step below.
PYTHONPATH=src python -m pytest -x -q --ignore=tests/test_examples.py

echo "== examples smoke =="
PYTHONPATH=src python -m pytest -x -q tests/test_examples.py

echo "== router smoke =="
printf '%s\n' \
    '{"op": "predict", "machine": "j90", "pattern": {"kind": "hotspot", "n": 1024, "k": 16}}' \
    | PYTHONPATH=src python -m repro.serving --workers 2 --flush-ms 1 \
    | grep -q '"status": "ok"'
echo "router smoke: ok"

echo "== streaming smoke =="
printf '%s\n' \
    '{"op": "stream", "action": "open", "stream_id": "smoke", "machine": "j90"}' \
    '{"op": "stream", "action": "chunk", "stream_id": "smoke", "pattern": {"kind": "hotspot", "n": 4096, "k": 512}}' \
    '{"op": "stream", "action": "close", "stream_id": "smoke"}' \
    | PYTHONPATH=src python -m repro.serving --flush-ms 1 \
    | grep -c '"status": "ok"' | grep -qx 3
echo "streaming smoke: ok"

echo "== perf guard =="
if [ -f BENCH_cycle_engine.json ]; then
    PYTHONPATH=src python -m pytest -m perf_guard tests/test_perf_guard.py -q
else
    echo "no BENCH_cycle_engine.json; skipping (run pytest benchmarks/ first)"
fi

echo "check.sh: all gates passed"
