#!/usr/bin/env python
"""Guard against simulator performance regressions.

Compares the freshly generated bench files at the repo root against the
previous accepted runs stored next to them as ``*.prev.json``:

* ``BENCH_cycle_engine.json`` (written by
  ``pytest benchmarks/test_perf_cycle_engine.py``) — gates the event
  and batch cycle engines plus the fused whole-grid pass
  (``grid_fused_seconds``);
* ``BENCH_banksim.json`` (written by
  ``pytest benchmarks/test_perf_banksim.py``) — gates the segmented
  FIFO kernel and the closed-form scatter path;
* ``BENCH_serving.json`` (written by
  ``pytest benchmarks/test_perf_serving.py``) — gates the prediction
  service's cached hot path;
* ``BENCH_stream.json`` (written by
  ``pytest benchmarks/test_perf_stream.py``) — gates the chunked
  streaming simulator's sustained throughput.

Exits nonzero if any gated timing slowed down by more than the allowed
factor (default 2x) on the same workload.

Usage::

    python tools/perf_guard.py             # compare, exit 1 on regression
    python tools/perf_guard.py --update    # accept current runs as baseline
    python tools/perf_guard.py --max-ratio 1.5

Also runnable through pytest as an opt-in marker::

    python -m pytest -m perf_guard tests/test_perf_guard.py

First run (no baseline yet) passes and seeds the baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
from typing import Sequence, Tuple

ROOT = pathlib.Path(__file__).resolve().parents[1]
CURRENT = ROOT / "BENCH_cycle_engine.json"
BASELINE = ROOT / "BENCH_cycle_engine.prev.json"

#: Every gated benchmark: (current file, baseline file, timing keys).
BENCHES: Tuple[Tuple[pathlib.Path, pathlib.Path, Tuple[str, ...]], ...] = (
    (CURRENT, BASELINE,
     ("event_seconds", "batch_seconds", "grid_fused_seconds")),
    (ROOT / "BENCH_banksim.json", ROOT / "BENCH_banksim.prev.json",
     ("kernel_seconds", "banksim_seconds")),
    (ROOT / "BENCH_serving.json", ROOT / "BENCH_serving.prev.json",
     ("serving_seconds", "multi_serving_seconds")),
    (ROOT / "BENCH_stream.json", ROOT / "BENCH_stream.prev.json",
     ("stream_seconds",)),
)

#: Keys that must match for two runs to be comparable.
_WORKLOAD_KEYS = ("benchmark", "machine", "n", "k", "kernel_n", "telemetry")


def compare(
    current: dict,
    baseline: dict,
    max_ratio: float,
    keys: Sequence[str] = ("event_seconds",),
) -> str:
    """Return a human-readable verdict; raise SystemExit(1) on regression."""
    # Telemetry counters are strictly opt-in: the guarded hot path must
    # have been benchmarked with them off, otherwise the 2x gate would
    # quietly start tolerating always-on accounting overhead.
    if current.get("telemetry", "off") != "off":
        raise SystemExit(
            "PERF GUARD: benchmark ran with telemetry "
            f"{current.get('telemetry')!r}; the gated hot path must keep "
            "telemetry off (it is an opt-in diagnostic)"
        )
    for key in _WORKLOAD_KEYS:
        if current.get(key) != baseline.get(key):
            return (f"workload changed ({key}: {baseline.get(key)!r} -> "
                    f"{current.get(key)!r}); skipping comparison")
    verdicts = []
    for key in keys:
        if key not in current:
            # A partial re-run (e.g. only the engine benchmark, not the
            # grid-fusion case) rewrites the file without every gated
            # key; gate what is present instead of crashing.
            verdicts.append(f"current run lacks {key}; skipped")
            continue
        if key not in baseline:
            # A baseline predating this timing (e.g. seeded before the
            # batch engine existed) gates the keys it has; --update
            # brings the new key under guard.
            verdicts.append(f"baseline lacks {key}; skipped")
            continue
        now = float(current[key])
        then = float(baseline[key])
        if then <= 0:
            verdicts.append(f"{key}: baseline has no timing; skipped")
            continue
        ratio = now / then
        verdict = (f"{key}: {then:.3f}s -> {now:.3f}s "
                   f"({ratio:.2f}x, limit {max_ratio:.2f}x)")
        if ratio > max_ratio:
            raise SystemExit(f"PERF REGRESSION: {verdict}")
        verdicts.append(verdict)
    return "ok: " + "; ".join(verdicts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail if any gated timing grew by more than "
                             "this factor (default 2.0)")
    parser.add_argument("--update", action="store_true",
                        help="accept the current runs as the new baselines")
    args = parser.parse_args(argv)

    status = 0
    for current_path, baseline_path, keys in BENCHES:
        if not current_path.is_file():
            print(f"perf_guard: {current_path.name} not found — run "
                  "`pytest benchmarks/` first", file=sys.stderr)
            status = 2
            continue
        if not baseline_path.is_file():
            shutil.copy(current_path, baseline_path)
            print(f"perf_guard: seeded baseline {baseline_path.name} "
                  "from current run")
            continue
        current = json.loads(current_path.read_text())
        baseline = json.loads(baseline_path.read_text())
        print(f"perf_guard [{current_path.name}]:",
              compare(current, baseline, args.max_ratio, keys))
        if args.update:
            shutil.copy(current_path, baseline_path)
            print(f"perf_guard: baseline {baseline_path.name} updated")
    return status


if __name__ == "__main__":
    sys.exit(main())
