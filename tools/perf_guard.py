#!/usr/bin/env python
"""Guard against cycle-engine performance regressions.

Compares the freshly generated ``BENCH_cycle_engine.json`` (written by
``pytest benchmarks/test_perf_cycle_engine.py``) against the previous
accepted run stored next to it as ``BENCH_cycle_engine.prev.json``.
Exits nonzero if the event engine slowed down by more than the allowed
factor (default 2x) on the same workload.

Usage::

    python tools/perf_guard.py             # compare, exit 1 on regression
    python tools/perf_guard.py --update    # accept current run as baseline
    python tools/perf_guard.py --max-ratio 1.5

Also runnable through pytest as an opt-in marker::

    python -m pytest -m perf_guard tests/test_perf_guard.py

First run (no baseline yet) passes and seeds the baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
CURRENT = ROOT / "BENCH_cycle_engine.json"
BASELINE = ROOT / "BENCH_cycle_engine.prev.json"

#: Keys that must match for two runs to be comparable.
_WORKLOAD_KEYS = ("benchmark", "machine", "n", "k", "telemetry")


def compare(current: dict, baseline: dict, max_ratio: float) -> str:
    """Return a human-readable verdict; raise SystemExit(1) on regression."""
    # Telemetry counters are strictly opt-in: the guarded hot path must
    # have been benchmarked with them off, otherwise the 2x gate would
    # quietly start tolerating always-on accounting overhead.
    if current.get("telemetry", "off") != "off":
        raise SystemExit(
            "PERF GUARD: benchmark ran with telemetry "
            f"{current.get('telemetry')!r}; the gated hot path must keep "
            "telemetry off (it is an opt-in diagnostic)"
        )
    for key in _WORKLOAD_KEYS:
        if current.get(key) != baseline.get(key):
            return (f"workload changed ({key}: {baseline.get(key)!r} -> "
                    f"{current.get(key)!r}); skipping comparison")
    now = float(current["event_seconds"])
    then = float(baseline["event_seconds"])
    if then <= 0:
        return "baseline has no timing; skipping comparison"
    ratio = now / then
    verdict = (f"event engine: {then:.3f}s -> {now:.3f}s "
               f"({ratio:.2f}x, limit {max_ratio:.2f}x)")
    if ratio > max_ratio:
        raise SystemExit(f"PERF REGRESSION: {verdict}")
    return f"ok: {verdict}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail if event_seconds grew by more than this "
                             "factor (default 2.0)")
    parser.add_argument("--update", action="store_true",
                        help="accept the current run as the new baseline")
    args = parser.parse_args(argv)

    if not CURRENT.is_file():
        print(f"perf_guard: {CURRENT.name} not found — run "
              "`pytest benchmarks/test_perf_cycle_engine.py` first",
              file=sys.stderr)
        return 2

    if not BASELINE.is_file():
        shutil.copy(CURRENT, BASELINE)
        print(f"perf_guard: seeded baseline {BASELINE.name} from current run")
        return 0

    current = json.loads(CURRENT.read_text())
    baseline = json.loads(BASELINE.read_text())
    print("perf_guard:", compare(current, baseline, args.max_ratio))
    if args.update:
        shutil.copy(CURRENT, BASELINE)
        print(f"perf_guard: baseline {BASELINE.name} updated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
