"""The static-analysis gate, as pytest tests (``-m lint_gate``).

Runs the same checks as ``tools/check.sh``: reprolint must be clean,
and ruff/mypy must pass *when installed* — both are optional in the
reproduction image, so their absence skips rather than fails.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
LINT_PATHS = ["src", "tests", "benchmarks", "tools"]

pytestmark = pytest.mark.lint_gate


def test_reprolint_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", *LINT_PATHS],
        cwd=REPO, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "reprolint: clean" in proc.stdout


def test_ruff_clean():
    if shutil.which("ruff") is None:
        pytest.skip("ruff not installed in this image")
    proc = subprocess.run(
        ["ruff", "check", *LINT_PATHS],
        cwd=REPO, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_mypy_clean():
    try:
        import mypy  # noqa: F401
    except ImportError:
        pytest.skip("mypy not installed in this image")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy",
         "src/repro/simulator", "src/repro/mapping",
         "src/repro/experiments/runner.py",
         "src/repro/experiments/manifest.py"],
        cwd=REPO, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
