"""Edge-case and failure-injection tests across modules."""

import numpy as np
import pytest

from repro.emulation import EmulationResult
from repro.errors import SimulationError
from repro.simulator import simulate_scatter_cycle, toy_machine
from repro.workloads import broadcast


class TestCycleSimulatorGuards:
    def test_max_cycles_exceeded_raises(self):
        m = toy_machine(p=2, x=1, d=6)
        # broadcast of 100 needs ~600 cycles; cap far below that.
        with pytest.raises(SimulationError, match="cycles"):
            simulate_scatter_cycle(m, broadcast(100, 1), max_cycles=50)

    def test_max_cycles_generous_succeeds(self):
        m = toy_machine(p=2, x=1, d=6)
        res = simulate_scatter_cycle(m, broadcast(20, 1), max_cycles=10_000)
        assert res.n == 20


class TestEmulationResultProperties:
    def test_measured_overhead_zero_ideal(self):
        r = EmulationResult(
            simulated_time=10.0, bound_time=20.0, qrqw_time=0,
            qrqw_time_scaled=0.0, n_steps=0, n_ops=0,
        )
        assert r.measured_overhead == 1.0

    def test_bound_tightness_zero_bound(self):
        r = EmulationResult(
            simulated_time=0.0, bound_time=0.0, qrqw_time=0,
            qrqw_time_scaled=0.0, n_steps=0, n_ops=0,
        )
        assert r.bound_tightness == 1.0

    def test_normal_ratios(self):
        r = EmulationResult(
            simulated_time=50.0, bound_time=100.0, qrqw_time=10,
            qrqw_time_scaled=25.0, n_steps=2, n_ops=100,
        )
        assert r.measured_overhead == 2.0
        assert r.bound_tightness == 0.5


class TestReportFormatting:
    def test_fmt_extremes(self):
        from repro.analysis import format_table

        out = format_table(
            ("v",),
            [(1.5e9,), (2.5e-7,), (0.0,), (-3.25,), (42,), ("txt",)],
        )
        assert "1.500e+09" in out
        assert "2.500e-07" in out
        assert "txt" in out

    def test_trailing_zeros_stripped(self):
        from repro.analysis import format_table

        out = format_table(("v",), [(2.0,)])
        assert out.splitlines()[-1] == "2" and "2.000" not in out


class TestNumericalRobustness:
    def test_simulator_large_values(self):
        # Large addresses and counts: no overflow in the lifted cummax.
        m = toy_machine(p=4, x=4, d=100)
        addr = np.full(10_000, (1 << 60) + 5, dtype=np.int64)
        res = __import__("repro.simulator", fromlist=["simulate_scatter"]) \
            .simulate_scatter(m, addr)
        assert res.time >= 100 * 10_000

    def test_fractional_g(self):
        from repro.core import predict_scatter_dxbsp
        from repro.simulator import simulate_scatter

        m = toy_machine(p=4, x=8, d=6, g=1.5)
        addr = np.arange(2000) % 500
        sim = simulate_scatter(m, addr).time
        pred = predict_scatter_dxbsp(m.params(), addr)
        assert sim == pytest.approx(pred, rel=0.3)
