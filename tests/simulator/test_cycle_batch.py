"""Batch engine vs event engine — exact equivalence.

The vectorized batch engine in :mod:`repro.simulator.cycle_batch` must
be bit-identical to the event engine for *every* simulator mode:
unbounded queues, bounded queues with backpressure stalls (where it
falls back to exact scalar stepping between quiescent points),
combining, and the cache-hit (row buffer) extension.  These properties
are the contract that lets the batch engine carry the big sweeps while
the scalar engines stay as executable documentation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulator import (
    simulate_scatter_batch,
    simulate_scatter_cycle,
    toy_machine,
)
from repro.simulator import cycle_batch
from repro.workloads import broadcast, hotspot, uniform_random


def _machines():
    """Strategy for machine configs spanning every simulator mode."""
    return st.builds(
        lambda p, x, d, g, latency, L, cap, comb, hit: toy_machine(
            p=p, x=x, d=d, g=g, latency=latency, L=L,
            queue_capacity=cap, combining=comb,
            cache_hit_delay=min(hit, d) if hit is not None else None,
        ),
        p=st.integers(1, 8),
        x=st.sampled_from([0.5, 1, 2, 4]),
        d=st.sampled_from([1, 2, 6, 14]),
        g=st.sampled_from([1, 2]),
        latency=st.sampled_from([0, 3, 7]),
        L=st.sampled_from([0, 25]),
        cap=st.sampled_from([None, 1, 2, 4, 1000]),
        comb=st.booleans(),
        hit=st.sampled_from([None, 1, 2]),
    ).filter(lambda m: round(m.x * m.p) >= 1)


def _pattern(n, hot, seed):
    k = min(hot, n)
    if k >= 1:
        return hotspot(n, k, 1 << 16, seed=seed)
    return uniform_random(n, 1 << 16, seed=seed)


def _assert_identical(a, b):
    assert a.time == b.time
    assert (a.bank_loads == b.bank_loads).all()
    assert a.max_wait == b.max_wait
    assert a.mean_wait == b.mean_wait
    assert a.stalled_cycles == b.stalled_cycles
    if a.telemetry is None or b.telemetry is None:
        assert a.telemetry is None and b.telemetry is None
    else:
        assert (a.telemetry.bank_busy == b.telemetry.bank_busy).all()
        assert (a.telemetry.queue_high_water
                == b.telemetry.queue_high_water).all()
        assert a.telemetry.stall_breakdown == b.telemetry.stall_breakdown


def _both(machine, addr, **kwargs):
    return (
        simulate_scatter_cycle(machine, addr, engine="batch", **kwargs),
        simulate_scatter_cycle(machine, addr, engine="event", **kwargs),
    )


class TestBatchMatchesEvent:
    """Randomized configs across all modes: the batch engine must
    reproduce the event engine's results field for field."""

    @given(
        machine=_machines(),
        n=st.integers(1, 300),
        hot=st.integers(0, 120),
        seed=st.integers(0, 10_000),
        assignment=st.sampled_from(["round_robin", "block"]),
        telemetry=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_exact_agreement(self, machine, n, hot, seed, assignment,
                             telemetry):
        addr = _pattern(n, hot, seed)
        batch, event = _both(machine, addr, assignment=assignment,
                             telemetry=telemetry)
        _assert_identical(batch, event)

    def test_empty(self):
        m = toy_machine(L=7)
        batch, event = _both(m, [])
        _assert_identical(batch, event)
        assert batch.time == 7

    def test_single_bank(self):
        # Everything serializes through one bank: the segmented kernel
        # degenerates to one segment.
        m = toy_machine(p=1, x=1, d=6)
        batch, event = _both(m, uniform_random(200, 1 << 10, seed=3))
        _assert_identical(batch, event)

    def test_capacity_one(self):
        # The tightest possible queue bound: backpressure binds almost
        # immediately, so nearly the whole run is scalar fallback.
        m = toy_machine(p=4, x=4, d=6, queue_capacity=1)
        batch, event = _both(m, broadcast(200, 5), telemetry=True)
        assert batch.stalled_cycles > 0
        _assert_identical(batch, event)

    def test_backpressure_forces_scalar_fallback(self, monkeypatch):
        # The stall certificate must actually fire here — the result
        # must come through the scalar stepper, not the projection.
        calls = {"run": 0}
        orig = cycle_batch._Scalar.run

        def spy(self, s, acc, t_stall):
            calls["run"] += 1
            return orig(self, s, acc, t_stall)

        monkeypatch.setattr(cycle_batch._Scalar, "run", spy)
        m = toy_machine(p=4, x=2, d=6, queue_capacity=1)
        batch, event = _both(m, broadcast(120, 3))
        assert calls["run"] >= 1
        assert batch.stalled_cycles > 0
        _assert_identical(batch, event)

    def test_quiescence_reprojection_seam(self, monkeypatch):
        # A bursty bounded-queue run that goes scalar, drains to a
        # quiescent cycle, and hands back to the vectorized projection
        # (seeded with bank floors and the issue schedule).  The spy
        # proves the export seam fires; the comparison proves it is
        # exact across it.
        calls = {"export": 0}
        orig = cycle_batch._Scalar.export

        def spy(self, s):
            calls["export"] += 1
            return orig(self, s)

        monkeypatch.setattr(cycle_batch._Scalar, "export", spy)
        rng = np.random.default_rng(11)
        n = 120
        addr = np.concatenate([
            np.zeros(n // 2, dtype=np.int64),
            rng.integers(0, 1 << 12, n - n // 2),
        ])
        m = toy_machine(p=3, x=1, d=2, g=2, latency=0, queue_capacity=2)
        batch, event = _both(m, addr, telemetry=True)
        assert calls["export"] >= 1
        _assert_identical(batch, event)

    def test_unbounded_never_goes_scalar(self, monkeypatch):
        # Without a queue bound there is no stall certificate to trip:
        # one projection must settle the whole superstep.
        def boom(*args, **kwargs):
            raise AssertionError("scalar fallback on an unbounded run")

        monkeypatch.setattr(cycle_batch, "_Scalar", boom)
        m = toy_machine(p=8, x=2, d=6, latency=5)
        batch = simulate_scatter_cycle(m, hotspot(5000, 5000, 1 << 16,
                                                  seed=2), engine="batch")
        event = simulate_scatter_cycle(m, hotspot(5000, 5000, 1 << 16,
                                                  seed=2), engine="event")
        _assert_identical(batch, event)


class TestBatchEntryPoint:
    def test_wrapper_matches_engine_selector(self):
        m = toy_machine(p=4, x=2, d=6, combining=True)
        addr = broadcast(64, 9)
        _assert_identical(
            simulate_scatter_batch(m, addr),
            simulate_scatter_cycle(m, addr, engine="batch"),
        )

    def test_runaway_parity(self):
        # Both engines must reject the same budget the same way.
        m = toy_machine(p=2, x=1, d=6)
        addr = broadcast(500, 4)
        for engine in ("batch", "event"):
            with pytest.raises(SimulationError):
                simulate_scatter_cycle(m, addr, max_cycles=30, engine=engine)

    def test_runaway_bounded_parity(self):
        m = toy_machine(p=4, x=4, d=6, queue_capacity=1)
        addr = broadcast(200, 5)
        for engine in ("batch", "event"):
            with pytest.raises(SimulationError):
                simulate_scatter_cycle(m, addr, max_cycles=50, engine=engine)


class TestBatchOnExperimentGrids:
    """Sanitized smoke grids of the paper's three experiments: the
    tentpole acceptance bar — batch must be bit-identical to event on
    every point, with the conservation sanitizer enabled."""

    def test_exp1_hotspot_grid(self):
        from repro.experiments.common import j90
        m = j90()
        n, space = 1024, 1 << 20
        for k in (1, 4, 32, 256, n):
            addr = hotspot(n, k, space, seed=1995)
            batch, event = _both(m, addr, sanitize=True, telemetry=True)
            _assert_identical(batch, event)

    def test_exp2_multihot_grid(self):
        from repro.experiments.common import j90
        from repro.workloads.patterns import multi_hotspot
        m = j90()
        n, space = 1024, 1 << 20
        for n_hot, fraction in ((1, 0.25), (4, 0.5), (16, 0.9)):
            addr = multi_hotspot(n, n_hot, fraction, space, seed=1995)
            batch, event = _both(m, addr, sanitize=True, telemetry=True)
            _assert_identical(batch, event)

    def test_exp3_entropy_grid(self):
        from repro.experiments.common import j90
        from repro.workloads.entropy import entropy_family
        m = j90()
        for keys in entropy_family(1024, 10, 4, seed=1995):
            batch, event = _both(m, np.asarray(keys), sanitize=True,
                                 telemetry=True)
            _assert_identical(batch, event)
