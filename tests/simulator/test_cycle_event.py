"""Event engine vs reference tick loop — exact equivalence.

The event-driven engine in :mod:`repro.simulator.cycle` must be
bit-identical to the retained per-cycle reference loop for *every*
simulator mode: unbounded queues, bounded queues with stall accounting,
combining, and the cache-hit (row buffer) extension.  These properties
are the contract that lets the tick loop stay as executable
documentation while the event engine does all the real work.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.simulator import simulate_scatter, simulate_scatter_cycle, toy_machine
from repro.workloads import broadcast, hotspot, uniform_random


def _machines(draw_none_capacity=True):
    """Strategy for machine configs spanning every simulator mode."""
    return st.builds(
        lambda p, x, d, g, latency, L, cap, comb, hit: toy_machine(
            p=p, x=x, d=d, g=g, latency=latency, L=L,
            queue_capacity=cap, combining=comb,
            cache_hit_delay=min(hit, d) if hit is not None else None,
        ),
        p=st.integers(1, 8),
        x=st.sampled_from([0.5, 1, 2, 4]),
        d=st.sampled_from([1, 2, 6, 14]),
        g=st.sampled_from([1, 2]),
        latency=st.sampled_from([0, 3, 7]),
        L=st.sampled_from([0, 25]),
        cap=st.sampled_from(
            [None, 1, 2, 4, 1000] if draw_none_capacity else [None]
        ),
        comb=st.booleans(),
        hit=st.sampled_from([None, 1, 2]),
    ).filter(lambda m: round(m.x * m.p) >= 1)


def _pattern(n, hot, seed):
    k = min(hot, n)
    if k >= 1:
        return hotspot(n, k, 1 << 16, seed=seed)
    return uniform_random(n, 1 << 16, seed=seed)


def _assert_identical(a, b):
    assert a.time == b.time
    assert (a.bank_loads == b.bank_loads).all()
    assert a.max_wait == b.max_wait
    assert a.mean_wait == b.mean_wait
    assert a.stalled_cycles == b.stalled_cycles


class TestEventMatchesTick:
    """Randomized configs across all modes: the event engine must
    reproduce the tick loop's results field for field."""

    @given(
        machine=_machines(),
        n=st.integers(1, 300),
        hot=st.integers(0, 120),
        seed=st.integers(0, 10_000),
        assignment=st.sampled_from(["round_robin", "block"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_agreement(self, machine, n, hot, seed, assignment):
        addr = _pattern(n, hot, seed)
        tick = simulate_scatter_cycle(machine, addr, assignment=assignment,
                                      engine="tick")
        event = simulate_scatter_cycle(machine, addr, assignment=assignment,
                                       engine="event")
        _assert_identical(event, tick)

    def test_broadcast_bounded(self):
        # All-hot traffic against capacity-1 queues: the stall-heaviest
        # corner, where the closed-form stall accrual must track the
        # tick loop's per-cycle count exactly.
        m = toy_machine(p=4, x=4, d=6, queue_capacity=1)
        addr = broadcast(200, 5)
        _assert_identical(
            simulate_scatter_cycle(m, addr, engine="event"),
            simulate_scatter_cycle(m, addr, engine="tick"),
        )

    def test_combining_collapses_duplicates(self):
        m = toy_machine(p=4, x=2, d=6, combining=True)
        addr = broadcast(64, 9)
        _assert_identical(
            simulate_scatter_cycle(m, addr, engine="event"),
            simulate_scatter_cycle(m, addr, engine="tick"),
        )

    def test_cache_hit_runs(self):
        m = toy_machine(p=2, x=2, d=6, cache_hit_delay=1)
        addr = broadcast(128, 3)
        _assert_identical(
            simulate_scatter_cycle(m, addr, engine="event"),
            simulate_scatter_cycle(m, addr, engine="tick"),
        )

    def test_empty(self):
        m = toy_machine(L=7)
        assert simulate_scatter_cycle(m, [], engine="event").time == \
            simulate_scatter_cycle(m, [], engine="tick").time == 7


class TestEventMatchesVectorized:
    """With unbounded queues the event engine must also agree with the
    vectorized :func:`simulate_scatter`."""

    @given(
        machine=_machines(draw_none_capacity=False),
        n=st.integers(1, 300),
        hot=st.integers(0, 120),
        seed=st.integers(0, 10_000),
        assignment=st.sampled_from(["round_robin", "block"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_unbounded_agreement(self, machine, n, hot, seed, assignment):
        addr = _pattern(n, hot, seed)
        fast = simulate_scatter(machine, addr, assignment=assignment)
        event = simulate_scatter_cycle(machine, addr, assignment=assignment,
                                       engine="event")
        assert event.time == fast.time
        assert (event.bank_loads == fast.bank_loads).all()


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ParameterError):
            simulate_scatter_cycle(toy_machine(), [1, 2], engine="warp")

    def test_default_is_event(self):
        # The default engine must handle a pattern large enough that the
        # tick loop would be visibly slow — smoke proof it's the event
        # path (completes instantly) and still agrees with banksim.
        m = toy_machine(p=8, x=2, d=6)
        addr = hotspot(20_000, 20_000, 1 << 20, seed=1)
        res = simulate_scatter_cycle(m, addr)
        assert res.time == simulate_scatter(m, addr).time


class TestRunawayDiagnostics:
    def test_bounded_queue_bound_scales_with_capacity(self):
        # A capacity-1 machine on all-hot traffic needs far more cycles
        # than the unbounded bound; satellite fix: the default bound
        # grows with the stall budget instead of aborting spuriously.
        m = toy_machine(p=4, x=4, d=14, queue_capacity=1)
        addr = broadcast(300, 2)
        res = simulate_scatter_cycle(m, addr)  # must not raise
        assert res.stalled_cycles > 0

    def test_runaway_error_reports_stalls(self):
        from repro.errors import SimulationError

        m = toy_machine(p=4, x=4, d=6, queue_capacity=1)
        addr = broadcast(200, 5)
        with pytest.raises(SimulationError) as exc:
            simulate_scatter_cycle(m, addr, max_cycles=50)
        msg = str(exc.value)
        assert "stall" in msg and "queue_capacity" in msg

    def test_both_engines_raise_on_max_cycles(self):
        from repro.errors import SimulationError

        m = toy_machine(p=2, x=1, d=6)
        addr = broadcast(500, 4)
        for engine in ("event", "tick"):
            with pytest.raises(SimulationError):
                simulate_scatter_cycle(m, addr, max_cycles=30, engine=engine)
