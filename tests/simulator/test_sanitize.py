"""Tests for the opt-in runtime sanitizer.

Two properties carry the feature's weight:

1. **Read-only** — ``sanitize=True`` results are bit-identical to
   ``sanitize=False`` across all four engines and all machine
   extensions (combining, bank cache, bounded queues, sections).
2. **Sharp** — a corrupted :class:`SimResult` trips the matching
   invariant with a :class:`SanitizerError` naming it.
"""

import dataclasses

import numpy as np
import pytest

from repro.simulator import (
    SanitizerError,
    SimResult,
    SimTelemetry,
    check_superstep,
    sanitize_enabled,
    set_sanitize,
    simulate_gather,
    simulate_scatter,
    simulate_scatter_blocked,
    simulate_scatter_cycle,
    toy_machine,
)
from repro.workloads import hotspot, uniform_random

SEED = 1995


@pytest.fixture(autouse=True)
def _reset_global_default():
    yield
    set_sanitize(None)


def scatter(machine, addresses, engine, **kwargs):
    if engine == "banksim":
        return simulate_scatter(machine, addresses, **kwargs)
    return simulate_scatter_cycle(machine, addresses, engine=engine, **kwargs)


def assert_same(a: SimResult, b: SimResult) -> None:
    assert a.time == b.time
    assert a.n == b.n
    assert np.array_equal(a.bank_loads, b.bank_loads)
    assert a.max_wait == b.max_wait
    assert a.mean_wait == b.mean_wait
    assert a.stalled_cycles == b.stalled_cycles
    assert a.machine_name == b.machine_name


MACHINES = {
    "plain": toy_machine(),
    "latency": toy_machine(L=40.0, latency=5.0),
    "combining": toy_machine(combining=True),
    "bank_cache": toy_machine(cache_hit_delay=2.0),
}


class TestBitIdentity:
    @pytest.mark.parametrize("engine", ["banksim", "tick", "event", "batch"])
    @pytest.mark.parametrize("name", sorted(MACHINES))
    def test_sanitize_does_not_change_results(self, engine, name):
        machine = MACHINES[name]
        addr = hotspot(512, 64, 1 << 20, seed=SEED)
        plain = scatter(machine, addr, engine)
        checked = scatter(machine, addr, engine, sanitize=True)
        assert_same(plain, checked)
        assert checked.telemetry is None  # observer counters stay internal

    def test_sections_banksim_only(self):
        # The cycle engines reject sectioned machines; the vectorized
        # simulator is the sectioned reference and must stay bit-stable.
        machine = toy_machine(n_sections=4, section_gap=2.0)
        addr = hotspot(512, 64, 1 << 20, seed=SEED)
        assert_same(
            simulate_scatter(machine, addr),
            simulate_scatter(machine, addr, sanitize=True),
        )

    @pytest.mark.parametrize("engine", ["tick", "event", "batch"])
    def test_bounded_queues(self, engine):
        machine = toy_machine(queue_capacity=2)
        addr = hotspot(256, 128, 1 << 20, seed=SEED)
        assert_same(
            scatter(machine, addr, engine),
            scatter(machine, addr, engine, sanitize=True),
        )

    @pytest.mark.parametrize("engine", ["banksim", "tick", "event", "batch"])
    def test_engines_agree_under_sanitize(self, engine):
        addr = uniform_random(1024, 1 << 20, seed=SEED)
        machine = toy_machine()
        assert_same(
            simulate_scatter(machine, addr, sanitize=True),
            scatter(machine, addr, engine, sanitize=True),
        )

    @pytest.mark.parametrize("engine", ["banksim", "tick", "event", "batch"])
    def test_telemetry_unchanged_by_sanitize(self, engine):
        addr = hotspot(512, 64, 1 << 20, seed=SEED)
        machine = toy_machine()
        with_tel = scatter(machine, addr, engine, telemetry=True)
        both = scatter(machine, addr, engine, telemetry=True, sanitize=True)
        assert_same(with_tel, both)
        assert both.telemetry is not None
        assert np.array_equal(
            with_tel.telemetry.bank_busy, both.telemetry.bank_busy
        )
        assert np.array_equal(
            with_tel.telemetry.queue_high_water,
            both.telemetry.queue_high_water,
        )
        assert with_tel.telemetry.stall_breakdown == \
            both.telemetry.stall_breakdown

    def test_empty_batch(self):
        machine = toy_machine(L=7.0)
        for engine in ("banksim", "tick", "event"):
            assert scatter(machine, [], engine, sanitize=True).time == 7.0

    def test_gather_and_blocked(self):
        machine = toy_machine()
        addr = hotspot(512, 32, 1 << 20, seed=SEED)
        assert_same(
            simulate_gather(machine, addr),
            simulate_gather(machine, addr, sanitize=True),
        )
        assert_same(
            simulate_scatter_blocked(machine, addr, 128),
            simulate_scatter_blocked(machine, addr, 128, sanitize=True),
        )


class TestEnablement:
    def test_explicit_override_wins(self):
        set_sanitize(False)
        assert sanitize_enabled(True) is True
        set_sanitize(True)
        assert sanitize_enabled(False) is False

    def test_global_default(self):
        set_sanitize(True)
        assert sanitize_enabled() is True
        set_sanitize(None)

    def test_env_fallback(self, monkeypatch):
        set_sanitize(None)
        for value, expected in [
            ("1", True), ("true", True), ("on", True),
            ("0", False), ("false", False), ("off", False), ("", False),
        ]:
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert sanitize_enabled() is expected
        monkeypatch.delenv("REPRO_SANITIZE")
        assert sanitize_enabled() is False

    def test_global_default_reaches_engines(self):
        machine = toy_machine()
        addr = hotspot(256, 16, 1 << 20, seed=SEED)
        baseline = simulate_scatter(machine, addr)
        set_sanitize(True)
        for engine in ("banksim", "tick", "event"):
            assert_same(baseline, scatter(machine, addr, engine))


def good_result(machine, addr):
    """A genuine banksim result plus the observer counters, as a
    mutation base for the violation tests."""
    res = simulate_scatter(machine, addr, telemetry=True)
    return res, res.telemetry.bank_busy, res.telemetry.queue_high_water


def check(machine, res, h_p, n_survivors, **kwargs):
    check_superstep(
        machine, res, engine="banksim", h_p=h_p,
        n_survivors=n_survivors, **kwargs,
    )


class TestViolations:
    machine = toy_machine()
    addr = hotspot(64, 16, 1 << 20, seed=SEED)
    h_p = 16  # 64 requests over 4 processors

    def test_genuine_result_is_clean(self):
        res, busy, qhw = good_result(self.machine, self.addr)
        check(self.machine, res, self.h_p, res.n,
              bank_busy=busy, queue_high_water=qhw)

    def test_lost_request_trips_conservation(self):
        res, _, _ = good_result(self.machine, self.addr)
        loads = res.bank_loads.copy()
        loads[int(loads.argmax())] -= 1
        bad = dataclasses.replace(res, bank_loads=loads, telemetry=None)
        with pytest.raises(SanitizerError, match="conservation"):
            check(self.machine, bad, self.h_p, res.n)

    def test_negative_load_trips_conservation(self):
        res, _, _ = good_result(self.machine, self.addr)
        loads = res.bank_loads.copy()
        # Force one bank negative while preserving the total, so only
        # the non-negativity check can catch it.
        shift = loads[0] + 1
        loads[0] -= shift
        loads[1] += shift
        bad = dataclasses.replace(res, bank_loads=loads, telemetry=None)
        with pytest.raises(SanitizerError, match="conservation"):
            check(self.machine, bad, self.h_p, res.n)

    def test_wrong_shape_trips_conservation(self):
        res, _, _ = good_result(self.machine, self.addr)
        bad = dataclasses.replace(
            res, bank_loads=res.bank_loads[:-1], telemetry=None
        )
        with pytest.raises(SanitizerError, match="conservation"):
            check(self.machine, bad, self.h_p, res.n)

    def test_overfull_bank_trips_bank_busy(self):
        res, busy, _ = good_result(self.machine, self.addr)
        inflated = busy.copy()
        inflated[int(res.bank_loads.argmax())] += self.machine.d
        bad = dataclasses.replace(res, telemetry=None)
        with pytest.raises(SanitizerError, match="bank-busy"):
            check(self.machine, bad, self.h_p, res.n, bank_busy=inflated)

    def test_underworked_bank_trips_bank_busy(self):
        res, busy, _ = good_result(self.machine, self.addr)
        deflated = busy.copy()
        deflated[int(res.bank_loads.argmax())] -= 1.0
        bad = dataclasses.replace(res, telemetry=None)
        with pytest.raises(SanitizerError, match="bank-busy"):
            check(self.machine, bad, self.h_p, res.n, bank_busy=deflated)

    def test_too_fast_trips_lower_bound(self):
        res, _, _ = good_result(self.machine, self.addr)
        bad = dataclasses.replace(res, time=res.time / 2.0, telemetry=None)
        with pytest.raises(SanitizerError, match="lower-bound"):
            check(self.machine, bad, self.h_p, res.n)

    def test_time_below_overhead_trips_lower_bound(self):
        machine = toy_machine(L=100.0)
        empty = SimResult(
            time=50.0, n=0,
            bank_loads=np.zeros(machine.n_banks, dtype=np.int64),
        )
        with pytest.raises(SanitizerError, match="lower-bound"):
            check(machine, empty, 0, 0)

    def test_wrong_backpressure_trips_stall_accounting(self):
        res, _, _ = good_result(self.machine, self.addr)
        bad_tel = dataclasses.replace(
            res.telemetry,
            stall_breakdown={
                **res.telemetry.stall_breakdown,
                "issue_backpressure":
                    res.telemetry.stall_breakdown.get(
                        "issue_backpressure", 0.0) + 3.0,
            },
        )
        bad = dataclasses.replace(res, telemetry=bad_tel)
        with pytest.raises(SanitizerError, match="stall-accounting"):
            check(self.machine, bad, self.h_p, res.n)

    def test_wrong_makespan_trips_stall_accounting(self):
        res, _, _ = good_result(self.machine, self.addr)
        bad_tel = dataclasses.replace(
            res.telemetry, makespan=res.telemetry.makespan + 1.0
        )
        bad = dataclasses.replace(res, telemetry=bad_tel)
        with pytest.raises(SanitizerError, match="stall-accounting"):
            check(self.machine, bad, self.h_p, res.n)

    def test_phantom_queue_trips_stall_accounting(self):
        # A pure broadcast loads exactly one bank, leaving idle banks
        # whose queue high-water must stay zero.
        addr = np.zeros(8, dtype=np.int64)
        res, _, qhw = good_result(self.machine, addr)
        idle = int(np.argmin(res.bank_loads))
        assert res.bank_loads[idle] == 0
        phantom = qhw.copy()
        phantom[idle] = 3
        bad = dataclasses.replace(res, telemetry=None)
        with pytest.raises(SanitizerError, match="stall-accounting"):
            check(self.machine, bad, 2, res.n,
                  queue_high_water=phantom)


class TestExperimentSmokeGrids:
    """The paper's Experiments 1-3 on reduced grids, fully sanitized:
    the sweep must run clean and produce bit-identical series."""

    @pytest.fixture(autouse=True)
    def _serial_uncached(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        monkeypatch.setenv("REPRO_PARALLEL", "1")

    @staticmethod
    def assert_series_equal(a, b):
        assert np.array_equal(a.x, b.x)
        assert sorted(a.columns) == sorted(b.columns)
        for label, col in a.columns.items():
            assert np.array_equal(col, b.columns[label]), label

    def _run_twice(self, fn, **kwargs):
        plain = fn(**kwargs)
        set_sanitize(True)
        try:
            checked = fn(**kwargs)
        finally:
            set_sanitize(None)
        self.assert_series_equal(plain, checked)

    def test_exp1_hotspot(self):
        from repro.experiments import exp1_hotspot

        self._run_twice(
            exp1_hotspot.run, n=2048, contentions=[1, 16, 256], seed=SEED
        )

    def test_exp2_multihot(self):
        from repro.experiments import exp2_multihot

        self._run_twice(
            exp2_multihot.run_vs_nhot, n=2048, n_hots=[1, 8, 64], seed=SEED
        )

    def test_exp3_entropy(self):
        from repro.experiments import exp3_entropy

        self._run_twice(
            exp3_entropy.run, n=2048, bits=12, max_rounds=3, seed=SEED
        )
