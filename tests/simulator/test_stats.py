"""Tests for SimResult derived statistics."""

import numpy as np
import pytest

from repro.simulator import SimResult


def make(time=100.0, n=50, loads=(25, 25, 0, 0), **kw):
    return SimResult(
        time=time, n=n, bank_loads=np.asarray(loads, dtype=np.int64), **kw
    )


class TestSimResult:
    def test_max_bank_load(self):
        assert make().max_bank_load == 25

    def test_throughput(self):
        assert make().throughput == pytest.approx(0.5)

    def test_throughput_zero_time(self):
        assert make(time=0.0).throughput == 0.0

    def test_balance_perfect(self):
        r = make(loads=(10, 10, 10, 10))
        assert r.bank_utilization == pytest.approx(1.0)

    def test_balance_skewed(self):
        r = make(loads=(40, 0, 0, 0))
        assert r.bank_utilization == pytest.approx(0.25)

    def test_balance_empty(self):
        r = make(n=0, loads=())
        assert r.bank_utilization == 1.0

    def test_slowdown_vs(self):
        assert make(time=150.0).slowdown_vs(100.0) == pytest.approx(1.5)

    def test_slowdown_vs_zero_prediction(self):
        assert make(time=1.0).slowdown_vs(0.0) == float("inf")
        assert make(time=0.0).slowdown_vs(0.0) == 1.0
