"""Tests for the network-section model."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.simulator import (
    predict_scatter_sections,
    section_loads,
    section_of_banks,
    simulate_scatter,
    toy_machine,
)
from repro.workloads import section_confined, uniform_random


def sectioned(p=4, x=8, d=6, n_sections=4, section_gap=1.0):
    return toy_machine(p=p, x=x, d=d).with_(
        n_sections=n_sections, section_gap=section_gap
    )


class TestSectionMapping:
    def test_contiguous_grouping(self):
        m = sectioned()
        banks = np.arange(m.n_banks)
        sections = section_of_banks(m, banks)
        assert sections[0] == 0 and sections[-1] == m.n_sections - 1
        # Each section gets the same number of banks.
        assert (np.bincount(sections) == m.banks_per_section).all()

    def test_out_of_range_banks(self):
        m = sectioned()
        with pytest.raises(ParameterError):
            section_of_banks(m, np.array([m.n_banks]))

    def test_section_loads(self):
        m = sectioned()
        loads = section_loads(m, np.zeros(10, dtype=np.int64))
        assert loads[0] == 10 and loads[1:].sum() == 0


class TestSectionLimitedSimulation:
    def test_confined_pattern_link_bound(self):
        # Plenty of banks per section so the link, not the banks, is the
        # bottleneck for a section-confined pattern.
        m = sectioned(x=32, section_gap=1.0)
        n = 4096
        addr = section_confined(m, n, 0, seed=1)
        res = simulate_scatter(m, addr)
        # One link carrying all n requests at 1/cycle: time >= n.
        assert res.time >= n
        # And without section limits it is much faster.
        free = simulate_scatter(m.with_(section_gap=0.0), addr)
        assert res.time > 2.5 * free.time

    def test_uniform_pattern_unaffected(self):
        m = sectioned(section_gap=1.0)
        addr = uniform_random(4096, 1 << 20, seed=2)
        limited = simulate_scatter(m, addr).time
        free = simulate_scatter(m.with_(section_gap=0.0), addr).time
        # 4 links at 1/cycle carry 4/cycle aggregate = peak issue of p=4.
        assert limited <= 1.5 * free

    def test_sections_disabled_by_gap_zero(self):
        m = sectioned(section_gap=0.0)
        addr = section_confined(m, 1000, 0, seed=3)
        plain = toy_machine(p=4, x=8, d=6)
        assert simulate_scatter(m, addr).time == \
            simulate_scatter(plain, addr).time


class TestSectionPrediction:
    def test_degrades_to_dxbsp_without_sections(self):
        from repro.core import predict_scatter_dxbsp

        m = toy_machine()
        addr = uniform_random(500, 1 << 16, seed=4)
        assert predict_scatter_sections(m, addr) == \
            predict_scatter_dxbsp(m.params(), addr)

    def test_predicts_confined_blowup(self):
        m = sectioned(section_gap=1.0)
        addr = section_confined(m, 4096, 0, seed=5)
        pred = predict_scatter_sections(m, addr)
        assert pred >= 4096  # the link term
        sim = simulate_scatter(m, addr).time
        assert sim == pytest.approx(pred, rel=0.2)

    def test_empty(self):
        m = sectioned()
        assert predict_scatter_sections(m, []) == m.L

    def test_prediction_tracks_simulation_mixed(self):
        m = sectioned(section_gap=2.0)
        rng = np.random.default_rng(6)
        half = section_confined(m, 1000, 1, seed=7)
        noise = uniform_random(1000, 1 << 20, seed=8)
        addr = np.concatenate([half, noise])
        rng.shuffle(addr)
        sim = simulate_scatter(m, addr).time
        pred = predict_scatter_sections(m, addr)
        assert sim == pytest.approx(pred, rel=0.35)
