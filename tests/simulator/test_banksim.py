"""Tests for the vectorized bank simulator, including a pure-Python FIFO
oracle for fifo_service_times."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import predict_scatter_dxbsp
from repro.errors import PatternError, SimulationError
from repro.simulator import (
    RequestBatch,
    fifo_service_times,
    simulate_batch,
    simulate_scatter,
    toy_machine,
)
from repro.workloads import broadcast, distinct_random, hotspot, uniform_random


def fifo_reference(arrivals, servers, gap):
    """Obviously-correct per-server FIFO with one start per `gap` cycles."""
    arrivals = np.asarray(arrivals, dtype=np.float64)
    servers = np.asarray(servers)
    order = sorted(range(arrivals.size),
                   key=lambda i: (servers[i], arrivals[i], i))
    free = {}
    start = np.empty(arrivals.size)
    for i in order:
        s = servers[i]
        start[i] = max(arrivals[i], free.get(s, -np.inf))
        free[s] = start[i] + gap
    return start


class TestFifoServiceTimes:
    def test_single_server_serializes(self):
        start = fifo_service_times(np.zeros(5), np.zeros(5, dtype=int), gap=3)
        assert (np.sort(start) == [0, 3, 6, 9, 12]).all()

    def test_zero_gap_passthrough(self):
        arr = np.array([5.0, 1.0, 3.0])
        start = fifo_service_times(arr, np.zeros(3, dtype=int), gap=0)
        assert (start == arr).all()

    def test_idle_gaps_respected(self):
        # Arrivals far apart: no queueing, start == arrival.
        arr = np.array([0.0, 100.0, 200.0])
        start = fifo_service_times(arr, np.zeros(3, dtype=int), gap=6)
        assert (start == arr).all()

    def test_tie_broken_by_input_order(self):
        start = fifo_service_times(np.zeros(3), np.zeros(3, dtype=int), gap=1)
        assert (start == [0, 1, 2]).all()

    def test_servers_independent(self):
        start = fifo_service_times(
            np.zeros(4), np.array([0, 1, 0, 1]), gap=5
        )
        assert (np.sort(start) == [0, 0, 5, 5]).all()

    def test_empty(self):
        assert fifo_service_times(np.zeros(0), np.zeros(0, dtype=int), 3).size == 0

    def test_negative_gap_rejected(self):
        with pytest.raises(SimulationError):
            fifo_service_times(np.zeros(2), np.zeros(2, dtype=int), -1)

    def test_shape_mismatch(self):
        with pytest.raises(PatternError):
            fifo_service_times(np.zeros(2), np.zeros(3, dtype=int), 1)

    @given(
        n=st.integers(1, 120),
        n_servers=st.integers(1, 8),
        gap=st.sampled_from([1, 2, 6, 14]),
        seed=st.integers(0, 1000),
    )
    def test_matches_reference(self, n, n_servers, gap, seed):
        rng = np.random.default_rng(seed)
        arrivals = rng.integers(0, 50, size=n).astype(np.float64)
        servers = rng.integers(0, n_servers, size=n)
        fast = fifo_service_times(arrivals, servers, gap)
        ref = fifo_reference(arrivals, servers, gap)
        assert np.array_equal(fast, ref)

    @given(
        n=st.integers(1, 100),
        gap=st.sampled_from([1, 3, 7]),
        seed=st.integers(0, 100),
    )
    def test_start_invariants(self, n, gap, seed):
        rng = np.random.default_rng(seed)
        arrivals = rng.integers(0, 30, size=n).astype(np.float64)
        servers = rng.integers(0, 4, size=n)
        start = fifo_service_times(arrivals, servers, gap)
        assert (start >= arrivals).all()
        # Per server: consecutive sorted starts separated by >= gap.
        for s in np.unique(servers):
            mine = np.sort(start[servers == s])
            if mine.size > 1:
                assert (np.diff(mine) >= gap - 1e-9).all()


class TestSimulateScatter:
    def test_empty_pattern_costs_L(self):
        m = toy_machine(L=42)
        assert simulate_scatter(m, []).time == 42

    def test_broadcast_serializes_at_d(self):
        m = toy_machine(p=4, x=4, d=6)
        res = simulate_scatter(m, broadcast(100, 3))
        # All to one bank: d cycles per request, plus pipeline fill.
        assert res.time >= 6 * 100
        assert res.time <= 6 * 100 + 100
        assert res.max_bank_load == 100

    def test_balanced_pattern_near_pipeline_bound(self):
        m = toy_machine(p=4, x=16, d=6)
        addr = distinct_random(8192, 1 << 20, seed=0)
        res = simulate_scatter(m, addr)
        ideal = 8192 / 4
        assert res.time >= ideal
        assert res.time <= 2.2 * ideal  # random imbalance + fill only

    def test_tracks_dxbsp_prediction(self):
        m = toy_machine(p=4, x=4, d=6)
        for k in [1, 64, 512]:
            addr = hotspot(4096, k, 1 << 20, seed=k)
            sim = simulate_scatter(m, addr).time
            pred = predict_scatter_dxbsp(m.params(), addr)
            assert sim == pytest.approx(pred, rel=0.30)
            assert sim >= pred - 1e-9  # prediction is a lower bound here

    def test_latency_shifts_completion(self):
        m = toy_machine()
        addr = uniform_random(500, 1 << 16, seed=1)
        t0 = simulate_scatter(m, addr).time
        t5 = simulate_scatter(m.with_(latency=5), addr).time
        assert t5 == pytest.approx(t0 + 5)

    def test_L_added_once(self):
        m = toy_machine()
        addr = uniform_random(500, 1 << 16, seed=1)
        t0 = simulate_scatter(m, addr).time
        tL = simulate_scatter(m.with_(L=100), addr).time
        assert tL == pytest.approx(t0 + 100)

    def test_bank_loads_sum_to_n(self):
        m = toy_machine()
        res = simulate_scatter(m, uniform_random(1000, 1 << 16, seed=2))
        assert res.bank_loads.sum() == 1000
        assert res.n == 1000

    def test_custom_bank_map_used(self):
        m = toy_machine(p=2, x=2, d=4)
        addr = np.arange(64)
        # Map everything to bank 0: fully serial.
        res = simulate_scatter(m, addr, bank_map=lambda a, b: np.zeros_like(a))
        assert res.time >= 4 * 64

    def test_assignment_modes_close(self):
        m = toy_machine()
        addr = uniform_random(2000, 1 << 16, seed=3)
        t_rr = simulate_scatter(m, addr, assignment="round_robin").time
        t_bl = simulate_scatter(m, addr, assignment="block").time
        assert t_bl == pytest.approx(t_rr, rel=0.2)

    def test_bad_bank_map_rejected(self):
        m = toy_machine()
        with pytest.raises(PatternError):
            simulate_scatter(m, np.arange(10), bank_map=lambda a, b: a + b)

    def test_simulate_batch_bank_alignment_checked(self):
        m = toy_machine()
        batch = RequestBatch.from_addresses(np.arange(8), m)
        with pytest.raises(PatternError):
            simulate_batch(m, batch, np.zeros(4, dtype=np.int64))

    def test_waits_nonnegative(self):
        m = toy_machine()
        res = simulate_scatter(m, hotspot(512, 256, 1 << 16, seed=4))
        assert res.max_wait >= res.mean_wait >= 0

    @given(
        n=st.integers(1, 400),
        k=st.integers(1, 100),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=15)
    def test_lower_bounds_hold(self, n, k, seed):
        k = min(k, n)
        m = toy_machine(p=4, x=4, d=6)
        addr = hotspot(n, k, 1 << 20, seed=seed)
        res = simulate_scatter(m, addr)
        # Fundamental lower bounds of the model.
        assert res.time >= m.d * k        # hot location serializes
        assert res.time >= m.g * (n / m.p)  # pipeline bound
