"""Tests for the `python -m repro.simulator` CLI."""

import pytest

from repro.simulator.__main__ import main


class TestSimulatorCli:
    def test_default_run(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "Cray J90" in out
        assert "dxbsp" in out and "simulated" in out
        assert "banks" in out

    def test_hotspot_numbers(self, capsys):
        main(["--machine", "j90", "--pattern", "hotspot",
              "--n", "65536", "--k", "4096"])
        out = capsys.readouterr().out
        assert "k=4096" in out
        assert "8,192 cycles" in out       # the flat BSP line
        # dxbsp line is d*k-dominated: ~57k cycles (seed-dependent tail)
        dxbsp_line = [l for l in out.splitlines() if l.startswith("dxbsp")][0]
        value = float(dxbsp_line.split()[1].replace(",", ""))
        assert 14 * 4096 <= value <= 14 * 4096 + 3000

    def test_stride_pattern(self, capsys):
        main(["--machine", "toy", "--pattern", "stride",
              "--n", "4096", "--stride", "16"])
        assert "stride" in capsys.readouterr().out

    def test_hash_mapping(self, capsys):
        main(["--machine", "c90", "--pattern", "uniform",
              "--n", "8192", "--hash", "h2"])
        assert "h2" in capsys.readouterr().out

    def test_overrides(self, capsys):
        main(["--machine", "toy", "--d", "3", "--banks", "64",
              "--pattern", "uniform", "--n", "1024"])
        out = capsys.readouterr().out
        assert "banks=64" in out and "d=3" in out

    def test_broadcast(self, capsys):
        main(["--machine", "toy", "--pattern", "broadcast", "--n", "256"])
        assert "k=256" in capsys.readouterr().out

    def test_bad_machine_rejected(self):
        with pytest.raises(SystemExit):
            main(["--machine", "cray-3"])
