"""Tests for the simulator extensions: combining networks [Ran91] and
cached-DRAM banks [HS93] — effects the paper names as outside the
(d,x)-BSP, built here as extensions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError, SimulationError
from repro.simulator import (
    fifo_service_times,
    fifo_service_times_cached,
    simulate_scatter,
    simulate_scatter_cycle,
    toy_machine,
)
from repro.workloads import broadcast, hotspot, uniform_random


class TestCombining:
    def test_broadcast_nearly_free(self):
        m = toy_machine(p=4, x=4, d=6)
        addr = broadcast(1000, 3)
        plain = simulate_scatter(m, addr).time
        combined = simulate_scatter(m.with_(combining=True), addr).time
        assert plain >= 6 * 1000
        # One survivor: issue window + single service.
        assert combined <= 1000 / 4 + 6 + 1

    def test_distinct_pattern_unchanged(self):
        m = toy_machine()
        addr = uniform_random(512, 1 << 30, seed=0)  # ~all distinct
        if np.unique(addr).size == addr.size:
            t0 = simulate_scatter(m, addr).time
            t1 = simulate_scatter(m.with_(combining=True), addr).time
            assert t0 == t1

    def test_never_slower(self):
        m = toy_machine()
        for seed in range(3):
            addr = hotspot(600, 100, 1 << 16, seed=seed)
            t0 = simulate_scatter(m, addr).time
            t1 = simulate_scatter(m.with_(combining=True), addr).time
            assert t1 <= t0

    def test_time_at_least_issue_window(self):
        m = toy_machine(p=4, g=2)
        addr = broadcast(400, 1)
        t = simulate_scatter(m.with_(combining=True), addr).time
        assert t >= (400 / 4 - 1) * 2  # all requests still issue

    def test_bank_loads_reflect_survivors(self):
        m = toy_machine(p=4, x=4)
        res = simulate_scatter(m.with_(combining=True), broadcast(50, 2))
        assert res.bank_loads.sum() == 1
        assert res.n == 50


class TestCachedBanks:
    def test_hot_location_services_at_hit_rate(self):
        m = toy_machine(p=4, x=4, d=6).with_(cache_hit_delay=1)
        addr = broadcast(1000, 3)
        t = simulate_scatter(m, addr).time
        # First access d, rest at hit rate 1.
        assert t == pytest.approx(6 + 999 * 1, abs=30)

    def test_distinct_addresses_unaffected(self):
        base = toy_machine(p=2, x=2, d=5)
        addr = np.arange(200)  # round-robin over banks: no repeats at a bank
        t0 = simulate_scatter(base, addr).time
        t1 = simulate_scatter(base.with_(cache_hit_delay=1), addr).time
        # addresses stride-1 over 4 banks: consecutive requests at a bank
        # are different addresses -> all misses -> identical time.
        assert t0 == t1

    def test_invalid_hit_delay(self):
        with pytest.raises(ParameterError):
            toy_machine(d=6).with_(cache_hit_delay=7)
        with pytest.raises(ParameterError):
            toy_machine(d=6).with_(cache_hit_delay=0)

    def test_never_slower_than_uncached(self):
        base = toy_machine(p=4, x=4, d=6)
        for seed in range(3):
            addr = hotspot(500, 120, 1 << 16, seed=seed)
            t_plain = simulate_scatter(base, addr).time
            t_cache = simulate_scatter(
                base.with_(cache_hit_delay=2), addr
            ).time
            assert t_cache <= t_plain

    def test_fifo_cached_validation(self):
        with pytest.raises(SimulationError):
            fifo_service_times_cached(
                np.zeros(2), np.zeros(2, dtype=int), np.zeros(2, dtype=int),
                miss_cost=2.0, hit_cost=3.0,
            )

    def test_fifo_cached_reduces_to_plain_when_costs_equal(self):
        rng = np.random.default_rng(1)
        arr = rng.integers(0, 40, size=80).astype(np.float64)
        srv = rng.integers(0, 4, size=80)
        adr = rng.integers(0, 10, size=80)
        start_plain = fifo_service_times(arr, srv, 6.0)
        start_cached, cost = fifo_service_times_cached(arr, srv, adr, 6.0, 6.0)
        assert np.array_equal(start_plain, start_cached)
        assert (cost == 6.0).all()


class TestExtensionEquivalence:
    """The cycle-accurate simulator must agree exactly with the
    vectorized one under both extensions."""

    @given(
        n=st.integers(1, 200),
        hot=st.integers(0, 80),
        seed=st.integers(0, 200),
        combining=st.booleans(),
        hit=st.sampled_from([None, 1, 3]),
    )
    @settings(max_examples=30)
    def test_exact_agreement(self, n, hot, seed, combining, hit):
        m = toy_machine(p=4, x=2, d=6).with_(
            combining=combining, cache_hit_delay=hit
        )
        k = min(hot, n)
        addr = (
            hotspot(n, k, 1 << 14, seed=seed)
            if k >= 1
            else uniform_random(n, 1 << 14, seed=seed)
        )
        fast = simulate_scatter(m, addr)
        slow = simulate_scatter_cycle(m, addr)
        assert fast.time == slow.time
        assert (fast.bank_loads == slow.bank_loads).all()

    def test_cycle_requires_integer_hit_delay(self):
        m = toy_machine(d=6).with_(cache_hit_delay=1.5)
        with pytest.raises(ParameterError):
            simulate_scatter_cycle(m, [1, 2])
