"""Differential test: the vectorized cached-FIFO solver vs an explicit
Python reference (the same style of oracle that validates the plain FIFO
path)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import fifo_service_times_cached


def cached_reference(arrivals, servers, addresses, miss, hit):
    order = sorted(range(len(arrivals)),
                   key=lambda i: (servers[i], arrivals[i], i))
    free = {}
    last_addr = {}
    start = np.empty(len(arrivals))
    cost = np.empty(len(arrivals))
    for i in order:
        s = servers[i]
        c = hit if last_addr.get(s) == addresses[i] else miss
        start[i] = max(arrivals[i], free.get(s, -np.inf))
        free[s] = start[i] + c
        cost[i] = c
        last_addr[s] = addresses[i]
    return start, cost


class TestCachedFifoDifferential:
    @given(
        n=st.integers(1, 150),
        n_servers=st.integers(1, 6),
        n_addrs=st.integers(1, 8),
        miss=st.sampled_from([2, 6, 14]),
        hit=st.sampled_from([1, 2]),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=40)
    def test_matches_reference(self, n, n_servers, n_addrs, miss, hit, seed):
        if hit > miss:
            hit = miss
        rng = np.random.default_rng(seed)
        arrivals = rng.integers(0, 40, size=n).astype(np.float64)
        servers = rng.integers(0, n_servers, size=n)
        addresses = rng.integers(0, n_addrs, size=n)
        fast_start, fast_cost = fifo_service_times_cached(
            arrivals, servers, addresses, float(miss), float(hit)
        )
        ref_start, ref_cost = cached_reference(
            arrivals, servers, addresses, float(miss), float(hit)
        )
        assert np.array_equal(fast_start, ref_start)
        assert np.array_equal(fast_cost, ref_cost)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=15)
    def test_invariants(self, seed):
        rng = np.random.default_rng(seed)
        n = 100
        arrivals = rng.integers(0, 20, size=n).astype(np.float64)
        servers = rng.integers(0, 4, size=n)
        addresses = rng.integers(0, 5, size=n)
        start, cost = fifo_service_times_cached(
            arrivals, servers, addresses, 6.0, 2.0
        )
        assert (start >= arrivals).all()
        assert set(np.unique(cost)) <= {2.0, 6.0}
        # Per server, starts separated by at least the predecessor's cost.
        for s in np.unique(servers):
            mine = np.argsort(start[servers == s], kind="stable")
            st_s = np.sort(start[servers == s])
            # consecutive starts separated by >= hit cost at minimum
            if st_s.size > 1:
                assert (np.diff(st_s) >= 2.0 - 1e-9).all()
