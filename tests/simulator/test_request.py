"""Tests for RequestBatch construction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.simulator import RequestBatch, toy_machine


class TestRoundRobin:
    def test_proc_assignment(self):
        m = toy_machine(p=4)
        b = RequestBatch.from_addresses(np.arange(10), m)
        assert (b.proc == np.arange(10) % 4).all()

    def test_issue_times(self):
        m = toy_machine(p=4, g=2)
        b = RequestBatch.from_addresses(np.arange(10), m)
        # processor q's j-th request issues at j*g
        assert (b.issue == (np.arange(10) // 4) * 2).all()

    def test_counts_balanced(self):
        m = toy_machine(p=4)
        b = RequestBatch.from_addresses(np.arange(10), m)
        counts = b.per_processor_counts(4)
        assert counts.sum() == 10
        assert counts.max() - counts.min() <= 1


class TestBlock:
    def test_contiguous_chunks(self):
        m = toy_machine(p=4)
        b = RequestBatch.from_addresses(np.arange(8), m, assignment="block")
        assert (b.proc == [0, 0, 1, 1, 2, 2, 3, 3]).all()
        assert (b.issue == [0, 1, 0, 1, 0, 1, 0, 1]).all()

    def test_uneven(self):
        m = toy_machine(p=4)
        b = RequestBatch.from_addresses(np.arange(10), m, assignment="block")
        counts = b.per_processor_counts(4)
        assert counts.sum() == 10
        assert counts.max() == 3


class TestEdges:
    def test_empty(self):
        m = toy_machine()
        b = RequestBatch.from_addresses([], m)
        assert b.n == 0
        assert (b.per_processor_counts(m.p) == 0).all()

    def test_unknown_assignment(self):
        with pytest.raises(ParameterError):
            RequestBatch.from_addresses([1], toy_machine(), assignment="zigzag")

    @given(n=st.integers(0, 500), p=st.integers(1, 16),
           assignment=st.sampled_from(["round_robin", "block"]))
    def test_every_request_assigned_once(self, n, p, assignment):
        m = toy_machine(p=p)
        b = RequestBatch.from_addresses(np.arange(n), m, assignment=assignment)
        assert b.n == n
        assert b.per_processor_counts(p).sum() == n
        if n:
            assert b.proc.min() >= 0 and b.proc.max() < p
            # issue times within each processor strictly increase by g
            for q in range(p):
                mine = b.issue[b.proc == q]
                if mine.size > 1:
                    assert (np.diff(mine) == m.g).all()
