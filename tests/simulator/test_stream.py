"""Streaming simulator vs the one-shot engines — exact prefix equivalence.

The streaming simulator's contract is that after any sequence of feeds,
its prefix result is bit-identical to running a one-shot engine over
the concatenation of everything fed so far — for any chunking, any
pattern family, with telemetry and sanitize on or off, on unbounded and
bounded-queue machines alike — while holding peak memory to the chunk
budget.
"""

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.simulator import (
    StreamSimulator,
    simulate_scatter,
    simulate_scatter_cycle,
    simulate_scatter_engine,
    simulate_scatter_stream,
    toy_machine,
)
from repro.workloads import broadcast, hotspot, strided, uniform_random


def _machines():
    """Machine configs spanning every streamable simulator mode."""
    return st.builds(
        lambda p, x, d, g, latency, L, cap, hit: toy_machine(
            p=p, x=x, d=d, g=g, latency=latency, L=L,
            queue_capacity=cap,
            cache_hit_delay=min(hit, d) if hit is not None else None,
        ),
        p=st.integers(1, 8),
        x=st.sampled_from([0.5, 1, 2, 4]),
        d=st.sampled_from([1, 2, 6, 14]),
        g=st.sampled_from([1, 2]),
        latency=st.sampled_from([0, 3, 7]),
        L=st.sampled_from([0, 25]),
        cap=st.sampled_from([None, 1, 2, 4, 1000]),
        hit=st.sampled_from([None, 1, 2]),
    ).filter(lambda m: round(m.x * m.p) >= 1)


def _pattern(family, n, seed):
    if family == "uniform":
        return uniform_random(n, 1 << 16, seed=seed)
    if family == "hotspot":
        return hotspot(n, max(1, n // 3), 1 << 16, seed=seed)
    if family == "broadcast":
        return broadcast(n, 5)
    return strided(n, 3, base=seed % 64)


def _chunks(addr, boundaries):
    """Split an address array at the given sorted cut points."""
    cuts = sorted({min(b, addr.size) for b in boundaries})
    out, lo = [], 0
    for cut in cuts:
        out.append(addr[lo:cut])
        lo = cut
    out.append(addr[lo:])
    return out


def _assert_identical(a, b, proc_stalls=True):
    assert a.time == b.time
    assert a.n == b.n
    assert (a.bank_loads == b.bank_loads).all()
    assert a.max_wait == b.max_wait
    assert a.mean_wait == b.mean_wait
    assert a.stalled_cycles == b.stalled_cycles
    if a.telemetry is None or b.telemetry is None:
        assert a.telemetry is None and b.telemetry is None
    else:
        assert (a.telemetry.bank_busy == b.telemetry.bank_busy).all()
        assert (a.telemetry.queue_high_water
                == b.telemetry.queue_high_water).all()
        assert a.telemetry.stall_breakdown == b.telemetry.stall_breakdown
        assert a.telemetry.makespan == b.telemetry.makespan
        if proc_stalls:
            assert (a.telemetry.proc_stalls
                    == b.telemetry.proc_stalls).all()


class TestPrefixBitIdentity:
    """Any chunking of any trace: every prefix matches the one-shot."""

    @given(
        machine=_machines(),
        n=st.integers(1, 200),
        family=st.sampled_from(
            ["uniform", "hotspot", "broadcast", "stride"]
        ),
        seed=st.integers(0, 10_000),
        boundaries=st.lists(st.integers(0, 200), max_size=4),
        telemetry=st.booleans(),
        sanitize=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_chunking_matches_one_shot(self, machine, n, family, seed,
                                           boundaries, telemetry, sanitize):
        addr = _pattern(family, n, seed)
        sim = StreamSimulator(machine, telemetry=telemetry,
                              sanitize=sanitize)
        fed = 0
        for block in _chunks(addr, boundaries):
            update = sim.feed(block)
            fed += block.size
            assert update.n == fed
            assert update.conserved
            expected = simulate_scatter_cycle(
                machine, addr[:fed], engine="event", telemetry=telemetry,
                sanitize=sanitize,
            )
            _assert_identical(update.result, expected)

    @given(
        machine=_machines().filter(lambda m: m.queue_capacity is None),
        n=st.integers(1, 200),
        family=st.sampled_from(
            ["uniform", "hotspot", "broadcast", "stride"]
        ),
        seed=st.integers(0, 10_000),
        max_chunk=st.integers(1, 64),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_banksim_unbounded(self, machine, n, family, seed,
                                       max_chunk):
        # The vectorized simulator does not track processors, so its
        # telemetry has proc_stalls=None; compare everything else.
        addr = _pattern(family, n, seed)
        sim = StreamSimulator(machine, telemetry=True,
                              max_chunk=max_chunk)
        result = sim.feed(addr).result
        expected = simulate_scatter(machine, addr, telemetry=True)
        _assert_identical(result, expected, proc_stalls=False)

    def test_tiny_feeds_pause_and_resume_the_event_world(self):
        # One address per feed on a bounded machine with p=4: every
        # chunk is smaller than one issue round, so the event world
        # pauses at the horizon dozens of times mid-flight.
        machine = toy_machine(p=4, x=1, d=6, latency=3, queue_capacity=1)
        addr = broadcast(60, 7)
        sim = StreamSimulator(machine, telemetry=True)
        for i in range(addr.size):
            update = sim.feed(addr[i:i + 1])
            expected = simulate_scatter_cycle(
                machine, addr[:i + 1], engine="event", telemetry=True,
            )
            _assert_identical(update.result, expected)
        assert update.result.stalled_cycles > 0

    def test_deltas_telescope(self):
        machine = toy_machine(p=4, x=2, d=6, latency=2, L=10)
        addr = hotspot(500, 40, 1 << 16, seed=9)
        sim = StreamSimulator(machine, max_chunk=64)
        delta_time = 0.0
        delta_wait = 0
        for block in _chunks(addr, [100, 101, 350]):
            update = sim.feed(block)
            delta_time += update.delta_time
            delta_wait += update.delta_wait
        assert delta_time == update.result.time - machine.L
        assert delta_wait == round(
            update.result.mean_wait * update.result.n
        )

    def test_empty_feeds_and_empty_stream(self):
        machine = toy_machine(p=4, x=2, d=6, L=7)
        sim = StreamSimulator(machine, telemetry=True)
        update = sim.feed([])
        expected = simulate_scatter_cycle(machine, [], engine="event",
                                          telemetry=True)
        _assert_identical(update.result, expected)
        assert update.result.time == 7.0
        # An empty feed between real ones changes nothing.
        first = sim.feed(uniform_random(50, 1 << 12, seed=1)).result
        again = sim.feed([]).result
        _assert_identical(first, again)


class TestStreamGenerator:
    def test_generator_input_and_final_result(self):
        machine = toy_machine(p=4, x=4, d=6, latency=4)
        addr = uniform_random(1000, 1 << 16, seed=3)

        def blocks():
            for lo in range(0, addr.size, 130):
                yield addr[lo:lo + 130]

        updates = list(simulate_scatter_stream(machine, blocks(),
                                               chunk_size=97))
        assert len(updates) == 8
        assert updates[-1].n == 1000
        _assert_identical(
            updates[-1].result,
            simulate_scatter_cycle(machine, addr, engine="event"),
        )

    def test_array_input_chunked(self):
        machine = toy_machine(p=2, x=2, d=2)
        addr = strided(250, 7)
        updates = list(simulate_scatter_stream(machine, addr,
                                               chunk_size=100))
        assert [u.chunk_n for u in updates] == [100, 100, 50]
        assert updates[-1].result.n == 250

    def test_empty_stream_yields_one_update(self):
        machine = toy_machine(L=5)
        updates = list(simulate_scatter_stream(machine, []))
        assert len(updates) == 1
        assert updates[0].n == 0
        assert updates[0].result.time == 5.0

    def test_dispatch_stream_engine(self):
        machine = toy_machine(p=4, x=2, d=6, queue_capacity=2)
        addr = hotspot(300, 20, 1 << 16, seed=5)
        _assert_identical(
            simulate_scatter_engine(machine, addr, engine="stream",
                                    telemetry=True),
            simulate_scatter_engine(machine, addr, engine="event",
                                    telemetry=True),
        )


class TestMemoryBound:
    def test_peak_memory_bounded_by_chunk_budget(self):
        # A trace 80 chunks long must not cost more than a fixed
        # multiple of one chunk: the simulator may hold the seeds, the
        # accumulators and one chunk (plus kernel temporaries), never
        # the trace.
        machine = toy_machine(p=8, x=4, d=6, latency=4)
        chunk = 8192
        n_chunks = 80
        rng = np.random.default_rng(7)

        def blocks(count):
            for _ in range(count):
                yield rng.integers(0, 1 << 20, chunk)

        def peak(count):
            sim = StreamSimulator(machine, max_chunk=chunk)
            stream = blocks(count)
            sim.feed(next(stream))  # warm up allocator pools
            tracemalloc.start()
            try:
                for block in stream:
                    sim.feed(block)
                return tracemalloc.get_traced_memory()[1]
            finally:
                tracemalloc.stop()

        peak_long = peak(n_chunks)
        trace_bytes = n_chunks * chunk * 8
        assert peak_long < trace_bytes / 4  # nowhere near the trace
        # A fixed multiple of one chunk covers the kernel's sort/cummax
        # temporaries (~a dozen chunk-sized arrays), not the trace.
        assert peak_long < 24 * chunk * 8
        # ... and flat in the trace length, not merely below it.
        assert peak_long < 1.5 * peak(10) + 64 * 1024


class TestRefusals:
    def test_refuses_combining(self):
        with pytest.raises(ParameterError, match="combining"):
            StreamSimulator(toy_machine(combining=True))

    def test_refuses_block_assignment(self):
        with pytest.raises(ParameterError, match="round_robin"):
            StreamSimulator(toy_machine(), assignment="block")

    def test_refuses_sections(self):
        machine = toy_machine(n_sections=4, section_gap=2.0)
        with pytest.raises(ParameterError, match="section"):
            StreamSimulator(machine)

    def test_refuses_fractional_times(self):
        with pytest.raises(ParameterError, match="integer"):
            StreamSimulator(toy_machine(d=2.5))

    def test_refuses_bad_chunk(self):
        with pytest.raises(ParameterError, match="max_chunk"):
            StreamSimulator(toy_machine(), max_chunk=0)

    def test_generator_defers_validation_to_first_next(self):
        gen = simulate_scatter_stream(toy_machine(combining=True), [0, 1])
        with pytest.raises(ParameterError, match="combining"):
            next(gen)


class TestDigestAndCheckpoint:
    def test_digest_is_chunking_invariant(self):
        machine = toy_machine(p=4, x=2, d=6)
        addr = uniform_random(10_000, 1 << 16, seed=11)
        a = StreamSimulator(machine)
        b = StreamSimulator(machine)
        a.feed(addr)
        for block in _chunks(addr, [1, 7000, 8192, 9000]):
            b.feed(block)
        assert a.prefix_digest == b.prefix_digest
        c = StreamSimulator(machine)
        c.feed(addr[:-1])
        assert c.prefix_digest != a.prefix_digest

    @pytest.fixture()
    def _isolated_cache(self, tmp_path, monkeypatch):
        from repro.experiments import runner
        saved = dict(runner._config)
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        runner._config.update(
            {"parallel": None, "cache": None, "cache_dir": tmp_path / "c"}
        )
        yield
        runner._config.clear()
        runner._config.update(saved)

    @pytest.mark.parametrize("cap,hit", [(None, None), (2, 1)])
    def test_checkpoint_roundtrip_bit_identical(self, _isolated_cache,
                                                cap, hit):
        machine = toy_machine(p=4, x=2, d=6, latency=3,
                              queue_capacity=cap, cache_hit_delay=hit)
        addr = hotspot(400, 30, 1 << 16, seed=13)
        sim = StreamSimulator(machine, telemetry=True, max_chunk=64)
        sim.feed(addr[:250])
        digest = sim.save_checkpoint()
        assert digest == sim.prefix_digest

        resumed = StreamSimulator(machine, telemetry=True, max_chunk=64)
        assert resumed.resume_from_checkpoint(digest, 250)
        assert resumed.n == 250
        update = resumed.feed(addr[250:])
        _assert_identical(
            update.result,
            simulate_scatter_cycle(machine, addr, engine="event",
                                   telemetry=True),
        )
        fresh = StreamSimulator(machine, telemetry=True, max_chunk=64)
        fresh.feed(addr)
        assert resumed.prefix_digest == fresh.prefix_digest

    def test_resume_misses_on_unknown_prefix(self, _isolated_cache):
        machine = toy_machine()
        sim = StreamSimulator(machine)
        assert not sim.resume_from_checkpoint("0" * 64, 10)

    def test_resume_requires_matching_config(self, _isolated_cache):
        machine = toy_machine(p=4, x=2, d=6)
        sim = StreamSimulator(machine, telemetry=True)
        sim.feed(uniform_random(100, 1 << 12, seed=2))
        digest = sim.save_checkpoint()
        # A simulator with different telemetry hashes a different key:
        # the probe simply misses (no cross-config state smuggling).
        other = StreamSimulator(machine, telemetry=False)
        assert not other.resume_from_checkpoint(digest, 100)

    def test_checkpoint_disabled_cache_returns_none(self, _isolated_cache,
                                                    monkeypatch):
        from repro.experiments import runner
        runner._config["cache"] = False
        sim = StreamSimulator(toy_machine())
        sim.feed([1, 2, 3])
        assert sim.save_checkpoint() is None
