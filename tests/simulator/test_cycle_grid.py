"""Grid engine vs per-point engines — exact per-point equivalence.

The fused grid pass in :mod:`repro.simulator.cycle_grid` stacks a whole
parameter sweep into one batched kernel call; its contract is that each
returned result is **bit-identical** to simulating that row alone with
``engine="batch"`` (equivalently ``"event"``).  These tests drive the
contract across mixed machines, mixed patterns, ragged and empty rows,
telemetry/sanitize on and off, and grids where bounded-queue
back-pressure forces *some* points (and only those) through the
per-point event-engine fallback.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError, SimulationError
from repro.simulator import (
    fifo_service_times,
    fifo_service_times_cached,
    simulate_scatter_cycle,
    simulate_scatter_grid,
    toy_machine,
)
from repro.simulator import cycle_grid
from repro.workloads import broadcast, hotspot, uniform_random
from repro.workloads.patterns import multi_hotspot


def _machines():
    """Strategy spanning every simulator mode the grid must fuse."""
    return st.builds(
        lambda p, x, d, latency, cap, comb, hit: toy_machine(
            p=p, x=x, d=d, latency=latency,
            queue_capacity=cap, combining=comb,
            cache_hit_delay=min(hit, d) if hit is not None else None,
        ),
        p=st.integers(1, 8),
        x=st.sampled_from([0.5, 1, 2, 4]),
        d=st.sampled_from([1, 2, 6, 14]),
        latency=st.sampled_from([0, 3, 7]),
        cap=st.sampled_from([None, 1, 4, 1000]),
        comb=st.booleans(),
        hit=st.sampled_from([None, 1, 2]),
    ).filter(lambda m: round(m.x * m.p) >= 1)


def _pattern(kind, n, seed):
    """Four distinct address patterns, selected per grid row."""
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if kind == "hotspot":
        return hotspot(n, max(1, n // 3), 1 << 16, seed=seed)
    if kind == "uniform":
        return uniform_random(n, 1 << 16, seed=seed)
    if kind == "broadcast":
        return broadcast(n, seed % 7)
    return multi_hotspot(n, min(n, 1 + seed % 4), 0.5, 1 << 16, seed=seed)


_PATTERNS = ("hotspot", "uniform", "broadcast", "multi_hotspot")


def _assert_identical(a, b):
    assert a.time == b.time
    assert (a.bank_loads == b.bank_loads).all()
    assert a.max_wait == b.max_wait
    assert a.mean_wait == b.mean_wait
    assert a.stalled_cycles == b.stalled_cycles
    if a.telemetry is None or b.telemetry is None:
        assert a.telemetry is None and b.telemetry is None
    else:
        assert (a.telemetry.bank_busy == b.telemetry.bank_busy).all()
        assert (a.telemetry.queue_high_water
                == b.telemetry.queue_high_water).all()
        assert a.telemetry.stall_breakdown == b.telemetry.stall_breakdown


def _assert_grid_matches_per_point(machines, patterns, **kwargs):
    fused = simulate_scatter_grid(machines, patterns, **kwargs)
    assert len(fused) == len(patterns)
    for got, m, addr in zip(fused, machines, patterns):
        for engine in ("batch", "event"):
            alone = simulate_scatter_cycle(m, addr, engine=engine, **kwargs)
            _assert_identical(got, alone)


class TestGridMatchesPerPoint:
    """Randomized mixed grids: every fused row must reproduce its
    stand-alone batch and event engine results field for field."""

    @given(
        rows=st.lists(
            st.tuples(
                _machines(),
                st.sampled_from(_PATTERNS),
                st.integers(0, 120),
                st.integers(0, 10_000),
            ),
            min_size=1, max_size=5,
        ),
        telemetry=st.booleans(),
        sanitize=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_agreement(self, rows, telemetry, sanitize):
        machines = [m for m, _, _, _ in rows]
        patterns = [_pattern(kind, n, seed) for _, kind, n, seed in rows]
        _assert_grid_matches_per_point(
            machines, patterns, telemetry=telemetry, sanitize=sanitize,
        )

    def test_all_patterns_all_machines_rectangular(self):
        # The fully fusable shape: one machine, equal-length rows, every
        # pattern kind — a single (rows, n) kernel call end to end.
        machines = [
            toy_machine(p=4, x=2, d=6, latency=3),
            toy_machine(p=2, x=1, d=2, combining=True),
            toy_machine(p=8, x=4, d=14, cache_hit_delay=1),
        ]
        for machine in machines:
            patterns = [
                _pattern(kind, 96, seed)
                for seed, kind in enumerate(_PATTERNS)
            ]
            _assert_grid_matches_per_point(
                [machine] * len(patterns), patterns, telemetry=True,
            )

    def test_ndarray_grid_matches_sequence_form(self):
        m = toy_machine(p=4, x=2, d=6)
        grid = np.stack([hotspot(64, 8, 1 << 12, seed=s) for s in range(5)])
        _assert_identical(
            simulate_scatter_grid(m, grid)[2],
            simulate_scatter_grid(m, list(grid))[2],
        )

    def test_empty_grid_and_empty_rows(self):
        m = toy_machine(L=7)
        assert simulate_scatter_grid(m, []) == []
        patterns = [np.zeros(0, dtype=np.int64), broadcast(32, 3)]
        _assert_grid_matches_per_point([m, m], patterns, telemetry=True)

    def test_mixed_cached_and_uncached_rows(self):
        # One fused group mixing cache-modeled and plain machines: the
        # cached kernel must reduce exactly to the plain one on the
        # hit == miss == d rows.
        machines = [
            toy_machine(p=4, x=2, d=6, cache_hit_delay=1),
            toy_machine(p=4, x=2, d=6),
        ]
        patterns = [hotspot(80, 10, 1 << 12, seed=s) for s in range(2)]
        _assert_grid_matches_per_point(machines, patterns, telemetry=True)


class TestStallFallbackScoping:
    """Bounded-queue back-pressure must demote *only* the stalling rows
    to the per-point event engine — never the whole grid."""

    def test_partial_fallback(self, monkeypatch):
        fell_back = []
        orig = cycle_grid._row_fallback

        def spy(machine, addresses, *args, **kwargs):
            fell_back.append(machine)
            return orig(machine, addresses, *args, **kwargs)

        monkeypatch.setattr(cycle_grid, "_row_fallback", spy)
        stalling = toy_machine(p=4, x=4, d=6, queue_capacity=1)
        free = toy_machine(p=4, x=4, d=6)
        machines = [stalling, free, stalling]
        patterns = [broadcast(200, 5), broadcast(200, 5),
                    uniform_random(200, 1 << 16, seed=1)]
        fused = simulate_scatter_grid(machines, patterns, telemetry=True)
        # Row 0 saturates its capacity-1 queues and must fall back; row
        # 1 runs the same pattern unbounded and must stay fused.
        assert fused[0].stalled_cycles > 0
        assert any(m is stalling for m in fell_back)
        assert all(m is not free for m in fell_back)
        for got, m, addr in zip(fused, machines, patterns):
            _assert_identical(
                got, simulate_scatter_cycle(m, addr, engine="event",
                                            telemetry=True))

    def test_certified_bounded_rows_stay_fused(self, monkeypatch):
        # A bounded machine whose queues never fill: the certificate
        # holds, so no row may leave the projection.
        def boom(*args, **kwargs):
            raise AssertionError("fallback on a certified row")

        monkeypatch.setattr(cycle_grid, "_row_fallback", boom)
        m = toy_machine(p=8, x=1, d=2, queue_capacity=1000)
        patterns = [uniform_random(64, 1 << 16, seed=s) for s in range(3)]
        fused = simulate_scatter_grid(m, patterns)
        for got, addr in zip(fused, patterns):
            _assert_identical(
                got, simulate_scatter_cycle(m, addr, engine="batch"))


class TestGridParameters:
    def test_per_row_max_cycles_runaway_parity(self):
        # The same budget must abort the grid exactly as it aborts the
        # stand-alone engines.
        m = toy_machine(p=2, x=1, d=6)
        addr = broadcast(500, 4)
        with pytest.raises(SimulationError):
            simulate_scatter_grid(m, [addr], max_cycles=30)
        ok = uniform_random(16, 1 << 16, seed=0)
        out = simulate_scatter_grid(m, [ok, addr],
                                    max_cycles=[None, 100_000])
        _assert_identical(
            out[1], simulate_scatter_cycle(m, addr, engine="event"))

    def test_per_row_length_mismatch(self):
        m = toy_machine()
        with pytest.raises(ParameterError, match="one per grid row"):
            simulate_scatter_grid([m, m, m], [broadcast(8, 0)] * 2)

    def test_rejects_non_grid_addresses(self):
        m = toy_machine()
        with pytest.raises(ParameterError, match="2-D address grid"):
            simulate_scatter_grid(m, broadcast(8, 0))  # 1-D array
        with pytest.raises(ParameterError, match="2-D address grid"):
            simulate_scatter_grid(m, 42)


class TestBatchedKernels:
    """The (rows, n) leading-axis form of the FIFO kernels must equal
    row-by-row 1-D calls bit for bit — the foundation the grid engine
    stands on."""

    @given(
        rows=st.integers(1, 6),
        n=st.integers(1, 80),
        n_srv=st.integers(1, 9),
        gap=st.sampled_from([1.0, 2.0, 6.0]),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_plain_kernel_batched(self, rows, n, n_srv, gap, seed):
        rng = np.random.default_rng(seed)
        arrivals = rng.integers(0, 50, (rows, n)).astype(np.float64)
        servers = rng.integers(0, n_srv, (rows, n))
        per_row_gap = rng.choice([gap, gap + 1.0], rows)
        batched = fifo_service_times(arrivals, servers, per_row_gap)
        assert batched.shape == (rows, n)
        for r in range(rows):
            single = fifo_service_times(
                arrivals[r], servers[r], float(per_row_gap[r]))
            assert (batched[r] == single).all()

    @given(
        rows=st.integers(1, 6),
        n=st.integers(1, 80),
        n_srv=st.integers(1, 9),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_cached_kernel_batched(self, rows, n, n_srv, seed):
        rng = np.random.default_rng(seed)
        arrivals = rng.integers(0, 50, (rows, n)).astype(np.float64)
        servers = rng.integers(0, n_srv, (rows, n))
        addresses = rng.integers(0, 8, (rows, n))
        miss = rng.choice([6.0, 14.0], rows)
        hit = rng.choice([1.0, 2.0], rows)
        b_start, b_cost = fifo_service_times_cached(
            arrivals, servers, addresses, miss, hit)
        assert b_start.shape == b_cost.shape == (rows, n)
        for r in range(rows):
            start, cost = fifo_service_times_cached(
                arrivals[r], servers[r], addresses[r],
                float(miss[r]), float(hit[r]))
            assert (b_start[r] == start).all()
            assert (b_cost[r] == cost).all()

    def test_cached_hit_equals_miss_reduces_to_plain(self):
        rng = np.random.default_rng(7)
        arrivals = rng.integers(0, 30, (3, 50)).astype(np.float64)
        servers = rng.integers(0, 4, (3, 50))
        addresses = rng.integers(0, 8, (3, 50))
        start, cost = fifo_service_times_cached(
            arrivals, servers, addresses, 6.0, 6.0)
        assert (start == fifo_service_times(arrivals, servers, 6.0)).all()
        assert (cost == 6.0).all()
