"""Tests for MachineConfig and presets."""

import pytest

from repro.core import DXBSPParams
from repro.errors import ParameterError
from repro.simulator import (
    CRAY_C90,
    CRAY_J90,
    TABLE1_MACHINES,
    MachineConfig,
    toy_machine,
)


class TestMachineConfig:
    def test_expansion(self):
        m = MachineConfig(name="m", p=4, n_banks=32, d=6)
        assert m.x == 8.0

    def test_params_roundtrip(self):
        m = MachineConfig(name="m", p=4, n_banks=32, d=6, g=2, L=10)
        p = m.params()
        assert isinstance(p, DXBSPParams)
        assert (p.p, p.d, p.g, p.L, p.n_banks) == (4, 6, 2, 10, 32)
        m2 = MachineConfig.from_params(p, name="m")
        assert (m2.p, m2.n_banks, m2.d) == (m.p, m.n_banks, m.d)

    def test_from_params_overrides(self):
        p = DXBSPParams(p=4, d=6, x=4)
        m = MachineConfig.from_params(p, n_sections=4)
        assert m.n_sections == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(p=0, n_banks=4, d=6),
            dict(p=4, n_banks=0, d=6),
            dict(p=4, n_banks=4, d=0),
            dict(p=4, n_banks=4, d=6, g=0),
            dict(p=4, n_banks=4, d=6, L=-1),
            dict(p=4, n_banks=4, d=6, n_sections=0),
            dict(p=4, n_banks=4, d=6, n_sections=8),
            dict(p=4, n_banks=4, d=6, section_gap=-1),
            dict(p=4, n_banks=4, d=6, queue_capacity=0),
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ParameterError):
            MachineConfig(name="bad", **kwargs)

    def test_banks_per_section(self):
        m = MachineConfig(name="m", p=4, n_banks=32, d=6, n_sections=4)
        assert m.banks_per_section == 8

    def test_banks_per_section_indivisible(self):
        m = MachineConfig(name="m", p=4, n_banks=30, d=6, n_sections=4)
        with pytest.raises(ParameterError):
            _ = m.banks_per_section

    def test_with_(self):
        m = toy_machine().with_(d=99)
        assert m.d == 99


class TestPresets:
    def test_c90_facts(self):
        # The paper states these outright: d=6 (SRAM), high expansion.
        assert CRAY_C90.d == 6.0
        assert CRAY_C90.x == 64.0

    def test_j90_facts(self):
        # d=14 (DRAM), 8-processor experimental system, 4 network sections.
        assert CRAY_J90.d == 14.0
        assert CRAY_J90.p == 8
        assert CRAY_J90.n_sections == 4

    def test_table1_all_expanded(self):
        # The table's whole point: every machine has more banks than procs.
        for m in TABLE1_MACHINES:
            assert m.x >= 2.0, m.name

    def test_reconstructed_entries_marked(self):
        notes = {m.name: m.note for m in TABLE1_MACHINES}
        assert "[reconstructed]" not in notes["Cray C90"]
        assert "[reconstructed]" not in notes["Cray J90"]
        assert all(
            "[reconstructed]" in notes[n]
            for n in notes if n not in ("Cray C90", "Cray J90")
        )

    def test_toy_machine_shape(self):
        m = toy_machine(p=2, x=3, d=5)
        assert (m.p, m.n_banks, m.d) == (2, 6, 5)
