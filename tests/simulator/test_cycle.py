"""Tests for the cycle-accurate simulator, including exact equivalence
with the vectorized simulator under unbounded queues (the key validation
of the segmented-cummax fast path)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.simulator import simulate_scatter, simulate_scatter_cycle, toy_machine
from repro.workloads import broadcast, hotspot, uniform_random


class TestBasics:
    def test_empty(self):
        m = toy_machine(L=9)
        assert simulate_scatter_cycle(m, []).time == 9

    def test_single_request(self):
        m = toy_machine(d=6)
        res = simulate_scatter_cycle(m, [3])
        assert res.time == 6  # starts at cycle 0, occupies the bank d cycles

    def test_broadcast(self):
        m = toy_machine(p=2, x=2, d=4)
        res = simulate_scatter_cycle(m, broadcast(20, 1))
        assert res.time >= 4 * 20
        assert res.stalled_cycles == 0  # unbounded queues never stall

    def test_requires_integer_params(self):
        m = toy_machine(d=6.5)
        with pytest.raises(ParameterError):
            simulate_scatter_cycle(m, [1, 2])

    def test_requires_positive_d(self):
        with pytest.raises(ParameterError):
            simulate_scatter_cycle(toy_machine(d=0.5), [1])

    def test_bank_loads(self):
        m = toy_machine(p=2, x=2)
        res = simulate_scatter_cycle(m, np.arange(16))
        assert res.bank_loads.sum() == 16


class TestEquivalenceWithVectorized:
    """With unbounded queues the two simulators must agree exactly —
    this property validates the segmented-cummax vectorization against
    the explicit event loop."""

    @given(
        n=st.integers(1, 250),
        p=st.integers(1, 8),
        x=st.sampled_from([0.5, 1, 2, 4]),
        d=st.sampled_from([1, 2, 6, 14]),
        g=st.sampled_from([1, 2]),
        latency=st.sampled_from([0, 3]),
        hot=st.integers(0, 100),
        seed=st.integers(0, 1000),
        assignment=st.sampled_from(["round_robin", "block"]),
    )
    @settings(max_examples=40)
    def test_exact_agreement(self, n, p, x, d, g, latency, hot, seed, assignment):
        if round(x * p) < 1:
            return
        m = toy_machine(p=p, x=x, d=d, g=g, latency=latency)
        k = min(hot, n)
        addr = (
            hotspot(n, k, 1 << 16, seed=seed)
            if k >= 1
            else uniform_random(n, 1 << 16, seed=seed)
        )
        fast = simulate_scatter(m, addr, assignment=assignment)
        slow = simulate_scatter_cycle(m, addr, assignment=assignment)
        assert fast.time == slow.time
        assert (fast.bank_loads == slow.bank_loads).all()

    def test_agreement_with_L(self):
        m = toy_machine(L=50)
        addr = uniform_random(300, 1 << 16, seed=9)
        assert simulate_scatter(m, addr).time == \
            simulate_scatter_cycle(m, addr).time


class TestBoundedQueues:
    def test_capacity_causes_stalls(self):
        m = toy_machine(p=4, x=4, d=6, queue_capacity=1)
        addr = broadcast(64, 5)
        res = simulate_scatter_cycle(m, addr)
        assert res.stalled_cycles > 0

    def test_bounded_never_faster(self):
        m = toy_machine(p=4, x=4, d=6)
        addr = hotspot(256, 64, 1 << 16, seed=3)
        unbounded = simulate_scatter_cycle(m, addr).time
        bounded = simulate_scatter_cycle(
            m.with_(queue_capacity=2), addr
        ).time
        assert bounded >= unbounded

    def test_capacity_one_still_completes(self):
        m = toy_machine(p=2, x=1, d=3, queue_capacity=1)
        addr = uniform_random(100, 1 << 10, seed=4)
        res = simulate_scatter_cycle(m, addr)
        assert res.n == 100
        assert res.bank_loads.sum() == 100

    def test_large_capacity_equals_unbounded(self):
        m = toy_machine(p=4, x=2, d=6)
        addr = hotspot(200, 50, 1 << 16, seed=5)
        t_unb = simulate_scatter_cycle(m, addr).time
        t_cap = simulate_scatter_cycle(
            m.with_(queue_capacity=10_000), addr
        ).time
        assert t_cap == t_unb

    def test_backpressure_ablation_gap_is_modest(self):
        # The model ignores back-pressure; quantify what that gives away
        # on a hot pattern with tight queues (DESIGN.md ablation 1).
        m = toy_machine(p=4, x=4, d=6)
        addr = hotspot(512, 128, 1 << 16, seed=6)
        unbounded = simulate_scatter_cycle(m, addr).time
        tight = simulate_scatter_cycle(m.with_(queue_capacity=4), addr).time
        assert tight / unbounded < 3.0
