"""Telemetry counters: banksim vs all three cycle engines, opt-in
contract, edge cases, and the swapped-argument guard."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.simulator import (
    SimTelemetry,
    simulate_gather,
    simulate_scatter,
    simulate_scatter_cycle,
    toy_machine,
)
from repro.simulator.banksim import simulate_scatter_blocked


def _addrs(n, seed=0, space=1 << 10):
    return np.random.default_rng(seed).integers(0, space, size=n)


def _all_engines(machine, addr):
    return (
        simulate_scatter(machine, addr, telemetry=True),
        simulate_scatter_cycle(machine, addr, engine="tick", telemetry=True),
        simulate_scatter_cycle(machine, addr, engine="event", telemetry=True),
        simulate_scatter_cycle(machine, addr, engine="batch", telemetry=True),
    )


class TestOptIn:
    def test_default_off_everywhere(self):
        m = toy_machine()
        addr = _addrs(60)
        assert simulate_scatter(m, addr).telemetry is None
        assert simulate_gather(m, addr).telemetry is None
        assert simulate_scatter_blocked(m, addr, 16).telemetry is None
        for engine in ("tick", "event", "batch"):
            assert simulate_scatter_cycle(
                m, addr, engine=engine
            ).telemetry is None

    def test_opt_in_returns_telemetry(self):
        m = toy_machine()
        res = simulate_scatter(m, _addrs(60), telemetry=True)
        assert isinstance(res.telemetry, SimTelemetry)


class TestEngineParity:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("n", [7, 64, 300])
    def test_banksim_matches_every_engine(self, n, seed):
        m = toy_machine()
        addr = _addrs(n, seed)
        results = _all_engines(m, addr)
        base = results[0].telemetry
        for res in results:
            t = res.telemetry
            np.testing.assert_array_equal(t.bank_busy, base.bank_busy)
            np.testing.assert_array_equal(
                t.queue_high_water, base.queue_high_water
            )
            assert t.stall_breakdown == base.stall_breakdown
            assert t.makespan == base.makespan
            # The makespan is the result time minus the superstep L.
            assert res.time == t.makespan + m.L

    def test_hotspot_serializes_one_bank(self):
        m = toy_machine()
        n = 50
        addr = np.zeros(n, dtype=np.int64)  # every request to bank 0
        for res in _all_engines(m, addr):
            t = res.telemetry
            assert t.bank_busy[0] == n * m.d
            assert t.bank_busy[1:].sum() == 0
            assert t.queue_high_water.max() == t.queue_high_water[0]
            assert t.max_queue_depth >= 1

    def test_busy_cycles_conserve_work(self):
        # Every request occupies exactly one bank for d cycles.
        m = toy_machine()
        addr = _addrs(200, seed=3)
        for res in _all_engines(m, addr):
            assert res.telemetry.bank_busy.sum() == addr.size * m.d

    @pytest.mark.parametrize("capacity", [1, 2, 4])
    def test_bounded_queue_engines_agree(self, capacity):
        m = toy_machine(queue_capacity=capacity)
        addr = np.concatenate([np.zeros(40, dtype=np.int64), _addrs(80, 5)])
        tick = simulate_scatter_cycle(m, addr, engine="tick", telemetry=True)
        tt = tick.telemetry
        for engine in ("event", "batch"):
            other = simulate_scatter_cycle(m, addr, engine=engine,
                                           telemetry=True)
            te = other.telemetry
            np.testing.assert_array_equal(tt.bank_busy, te.bank_busy)
            np.testing.assert_array_equal(tt.queue_high_water,
                                          te.queue_high_water)
            np.testing.assert_array_equal(tt.proc_stalls, te.proc_stalls)
            assert tt.stall_breakdown == te.stall_breakdown
            assert tt.makespan == te.makespan
        # The stall bucket mirrors the headline stalled_cycles counter
        # and the per-processor counts sum to it.
        assert tt.stall_breakdown["issue_backpressure"] == \
            tick.stalled_cycles == tt.proc_stalls.sum()
        assert tt.total_stalled == sum(tt.stall_breakdown.values())

    def test_bounded_queue_high_water_respects_capacity(self):
        m = toy_machine(queue_capacity=2)
        addr = np.zeros(30, dtype=np.int64)
        res = simulate_scatter_cycle(m, addr, telemetry=True)
        # The capacity check runs at issue time, before that cycle's
        # in-flight requests land, so all p processors can slip one past
        # a not-yet-full queue: the overshoot is bounded by p.
        assert res.telemetry.queue_high_water.max() <= m.queue_capacity + m.p
        assert res.telemetry.stall_breakdown["issue_backpressure"] > 0


class TestEdgeCases:
    @pytest.mark.parametrize("n", [0, 1])
    def test_tiny_inputs_all_paths(self, n):
        m = toy_machine()
        addr = np.zeros(n, dtype=np.int64)
        for res in _all_engines(m, addr):
            t = res.telemetry
            assert t.bank_busy.shape == (m.n_banks,)
            assert t.bank_busy.sum() == n * m.d
            assert t.queue_high_water.max(initial=0) == (1 if n else 0)
            assert t.total_stalled == 0
            assert res.time == t.makespan + m.L

    @pytest.mark.parametrize("n", [0, 1])
    def test_tiny_inputs_without_telemetry(self, n):
        m = toy_machine()
        addr = np.zeros(n, dtype=np.int64)
        times = {simulate_scatter(m, addr).time}
        for engine in ("tick", "event", "batch"):
            times.add(simulate_scatter_cycle(m, addr, engine=engine).time)
        assert len(times) == 1  # all paths agree

    def test_utilization_property(self):
        m = toy_machine()
        res = simulate_scatter(m, np.zeros(40, dtype=np.int64),
                               telemetry=True)
        util = res.telemetry.bank_utilization
        assert util[0] == pytest.approx(1.0)  # fully serialized hot bank
        assert util[1:].max(initial=0.0) == 0.0

    def test_empty_makespan_zero(self):
        m = toy_machine(L=5.0)
        res = simulate_scatter(m, np.zeros(0, dtype=np.int64),
                               telemetry=True)
        assert res.telemetry.makespan == 0.0
        assert res.time == m.L


class TestBlockedAndSections:
    def test_blocked_aggregates_supersteps(self):
        m = toy_machine()
        addr = _addrs(200, seed=9)
        res = simulate_scatter_blocked(m, addr, 64, telemetry=True)
        t = res.telemetry
        assert t.bank_busy.sum() == addr.size * m.d
        n_steps = -(-addr.size // 64)
        assert res.time == t.makespan + n_steps * m.L

    def test_section_confinement_shows_link_wait(self):
        from repro.experiments.fig_network import default_machine
        from repro.workloads.patterns import section_confined

        m = default_machine()
        addr = section_confined(m, 400, 0, seed=1)
        res = simulate_scatter(m, addr, telemetry=True)
        t = res.telemetry
        assert t.stall_breakdown["link_wait"] > 0
        uniform = simulate_scatter(m, _addrs(400, 2, 1 << 20), telemetry=True)
        assert uniform.telemetry.stall_breakdown["link_wait"] < \
            t.stall_breakdown["link_wait"]


class TestArgumentGuard:
    def test_swapped_args_scatter(self):
        m = toy_machine()
        addr = _addrs(10)
        with pytest.raises(TypeError, match="MachineConfig.*swapped"):
            simulate_scatter(addr, m)

    def test_swapped_args_gather(self):
        m = toy_machine()
        with pytest.raises(TypeError, match="simulate_gather"):
            simulate_gather(_addrs(10), m)

    def test_swapped_args_cycle(self):
        m = toy_machine()
        with pytest.raises(TypeError, match="simulate_scatter_cycle"):
            simulate_scatter_cycle(_addrs(10), m)

    def test_swapped_args_blocked(self):
        m = toy_machine()
        with pytest.raises(TypeError, match="MachineConfig"):
            simulate_scatter_blocked(_addrs(10), m, 4)

    def test_wrong_type_without_swap_hint(self):
        with pytest.raises(TypeError) as exc:
            simulate_scatter(None, _addrs(10))
        assert "swapped" not in str(exc.value)


class TestTelemetryTable:
    def test_requires_telemetry(self):
        from repro.analysis import telemetry_table

        res = simulate_scatter(toy_machine(), _addrs(20))
        with pytest.raises(ParameterError, match="telemetry"):
            telemetry_table(res)

    def test_renders_hot_banks(self):
        from repro.analysis import telemetry_table

        res = simulate_scatter(toy_machine(), np.zeros(30, dtype=np.int64),
                               telemetry=True)
        out = telemetry_table(res, top=4)
        assert "utilization" in out
        assert "makespan" in out
        assert "bank_wait" in out
