"""Tests for whole-program simulation."""

import numpy as np
import pytest

from repro.core import Program, Superstep
from repro.simulator import simulate_program, simulate_scatter, toy_machine
from repro.workloads import uniform_random


def make_program():
    return Program([
        Superstep(addresses=uniform_random(500, 1 << 16, seed=1), label="a"),
        Superstep(addresses=uniform_random(300, 1 << 16, seed=2), label="b",
                  local_work=25),
        Superstep(addresses=uniform_random(200, 1 << 16, seed=3), label="a"),
    ])


class TestSimulateProgram:
    def test_total_is_sum_of_steps(self, toy):
        prog = make_program()
        res = simulate_program(toy, prog)
        per_step = sum(
            simulate_scatter(toy, s.addresses).time for s in prog
        )
        assert res.total_time == pytest.approx(per_step + 25)

    def test_total_requests(self, toy):
        assert simulate_program(toy, make_program()).total_requests == 1000

    def test_time_by_label(self, toy):
        res = simulate_program(toy, make_program())
        by = res.time_by_label()
        assert set(by) == {"a", "b"}
        assert by["a"] + by["b"] == pytest.approx(res.total_time - 25)

    def test_empty_program(self, toy):
        res = simulate_program(toy, Program())
        assert res.total_time == 0.0
        assert res.total_requests == 0

    def test_L_charged_per_superstep(self):
        m = toy_machine(L=10)
        prog = make_program()
        res = simulate_program(m, prog)
        res0 = simulate_program(m.with_(L=0), prog)
        assert res.total_time == pytest.approx(res0.total_time + 10 * len(prog))

    def test_step_results_align_with_labels(self, toy):
        res = simulate_program(toy, make_program())
        assert res.step_labels == ("a", "b", "a")
        assert len(res.step_results) == 3
