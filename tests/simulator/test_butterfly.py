"""Tests for the Omega/butterfly network model."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.simulator import (
    omega_ports,
    simulate_scatter,
    simulate_scatter_butterfly,
    toy_machine,
)
from repro.workloads import broadcast, uniform_random


def bitrev(v, bits):
    out = np.zeros_like(v)
    for i in range(bits):
        out |= ((v >> i) & 1) << (bits - 1 - i)
    return out


class TestOmegaPorts:
    def test_last_stage_is_destination(self):
        # After the final stage the port equals the destination bank.
        n_banks = 16
        src = np.arange(16)
        dst = np.arange(16)[::-1].copy()
        ports = omega_ports(src, dst, n_banks, stage=3)
        assert (ports == dst).all()

    def test_ports_in_range(self):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 64, size=100)
        dst = rng.integers(0, 64, size=100)
        for stage in range(6):
            p = omega_ports(src, dst, 64, stage)
            assert p.min() >= 0 and p.max() < 64

    def test_invalid(self):
        with pytest.raises(ParameterError):
            omega_ports(np.arange(4), np.arange(4), 12, 0)
        with pytest.raises(ParameterError):
            omega_ports(np.arange(4), np.arange(4), 16, 9)


class TestButterflySimulation:
    def test_transparent_matches_plain(self):
        m = toy_machine(p=8, x=8, d=6)
        addr = uniform_random(4096, 1 << 20, seed=1)
        bf = simulate_scatter_butterfly(
            m, addr, link_gap=0.0, switch_latency=0.0
        )
        plain = simulate_scatter(m, addr)
        assert bf.time == plain.time
        assert (bf.bank_loads == plain.bank_loads).all()

    def test_switch_latency_shifts_only(self):
        m = toy_machine(p=8, x=8, d=6)
        addr = uniform_random(2048, 1 << 20, seed=2)
        t0 = simulate_scatter_butterfly(m, addr, link_gap=0.0,
                                        switch_latency=0.0).time
        t1 = simulate_scatter_butterfly(m, addr, link_gap=0.0,
                                        switch_latency=2.0).time
        n_stages = 6  # 64 banks
        assert t1 == pytest.approx(t0 + 2.0 * n_stages)

    def test_uniform_traffic_mildly_affected(self):
        m = toy_machine(p=8, x=8, d=6)
        addr = uniform_random(8192, 1 << 20, seed=3)
        plain = simulate_scatter(m, addr).time
        bf = simulate_scatter_butterfly(m, addr).time
        assert bf < 1.3 * plain

    def test_bit_reversal_congestion(self):
        # The classic multistage worst case: a bank-balanced permutation
        # pattern that concentrates on internal links — invisible to the
        # bank-only model, heavily penalized by the butterfly.
        m = toy_machine(p=64, x=1, d=1)
        n = 64 * 128
        proc_of = np.arange(n) % 64
        addr = bitrev(proc_of, 6).astype(np.int64)
        plain = simulate_scatter(m, addr).time
        bf = simulate_scatter_butterfly(m, addr).time
        assert bf > 5 * plain
        # Identity traffic through the same network is near-free.
        ident = simulate_scatter_butterfly(
            m, proc_of.astype(np.int64)
        ).time
        assert ident < 1.5 * plain

    def test_hot_bank_still_dominates(self):
        # Location contention is not hidden by the network model.
        m = toy_machine(p=8, x=8, d=6)
        res = simulate_scatter_butterfly(m, broadcast(512, 3))
        assert res.time >= 6 * 512

    def test_empty(self):
        m = toy_machine(p=4, x=4, L=5)
        assert simulate_scatter_butterfly(m, []).time == 5

    def test_requires_power_of_two_banks(self):
        m = toy_machine(p=3, x=4)  # 12 banks
        with pytest.raises(ParameterError):
            simulate_scatter_butterfly(m, [1, 2])

    def test_requires_p_le_banks(self):
        m = toy_machine(p=8, x=0.5)  # 4 banks
        with pytest.raises(ParameterError):
            simulate_scatter_butterfly(m, [1, 2])

    def test_negative_gap_rejected(self):
        m = toy_machine(p=4, x=4)
        with pytest.raises(ParameterError):
            simulate_scatter_butterfly(m, [1], link_gap=-1.0)
