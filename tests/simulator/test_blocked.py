"""Tests for gather aliasing and blocked (supersteped) scatters."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.simulator import (
    simulate_gather,
    simulate_scatter,
    simulate_scatter_blocked,
    toy_machine,
)
from repro.workloads import hotspot, uniform_random


class TestGatherAlias:
    def test_identical_to_scatter(self, toy):
        addr = hotspot(1000, 100, 1 << 16, seed=0)
        assert simulate_gather(toy, addr).time == \
            simulate_scatter(toy, addr).time


class TestBlockedScatter:
    def test_single_block_equals_plain(self, toy):
        addr = uniform_random(1000, 1 << 16, seed=1)
        blocked = simulate_scatter_blocked(toy, addr, superstep_size=10_000)
        plain = simulate_scatter(toy, addr)
        assert blocked.time == plain.time
        assert (blocked.bank_loads == plain.bank_loads).all()

    def test_time_is_sum_of_chunks(self, toy):
        addr = uniform_random(1000, 1 << 16, seed=2)
        blocked = simulate_scatter_blocked(toy, addr, superstep_size=250)
        chunks = sum(
            simulate_scatter(toy, addr[i:i + 250]).time
            for i in range(0, 1000, 250)
        )
        assert blocked.time == pytest.approx(chunks)

    def test_L_per_superstep(self):
        m = toy_machine(L=50)
        addr = uniform_random(1000, 1 << 16, seed=3)
        t = simulate_scatter_blocked(m, addr, superstep_size=250).time
        t0 = simulate_scatter_blocked(m.with_(L=0), addr, 250).time
        assert t == pytest.approx(t0 + 4 * 50)

    def test_blocking_never_faster(self, toy):
        # Barriers lose overlap: blocked time >= unblocked.
        addr = hotspot(2000, 300, 1 << 16, seed=4)
        blocked = simulate_scatter_blocked(toy, addr, superstep_size=100)
        plain = simulate_scatter(toy, addr)
        assert blocked.time >= plain.time

    def test_loads_conserved(self, toy):
        addr = uniform_random(777, 1 << 16, seed=5)
        blocked = simulate_scatter_blocked(toy, addr, superstep_size=100)
        assert blocked.bank_loads.sum() == 777
        assert blocked.n == 777

    def test_empty(self):
        m = toy_machine(L=7)
        assert simulate_scatter_blocked(m, [], 100).time == 7

    def test_invalid_superstep_size(self, toy):
        with pytest.raises(ParameterError):
            simulate_scatter_blocked(toy, [1], 0)
