"""Tests for repro._util helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import (
    as_addresses,
    as_rng,
    check_nonnegative,
    check_positive,
    is_power_of_two,
    next_power_of_two,
)
from repro.errors import ParameterError, PatternError


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = as_rng(7).integers(0, 1 << 30, size=10)
        b = as_rng(7).integers(0, 1 << 30, size=10)
        assert (a == b).all()

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g


class TestAsAddresses:
    def test_basic_coercion(self):
        out = as_addresses([1, 2, 3])
        assert out.dtype == np.int64
        assert (out == [1, 2, 3]).all()

    def test_preserves_int32(self):
        out = as_addresses(np.array([5, 6], dtype=np.int32))
        assert out.dtype == np.int64

    def test_integral_floats_accepted(self):
        out = as_addresses(np.array([1.0, 2.0]))
        assert out.dtype == np.int64 and (out == [1, 2]).all()

    def test_fractional_floats_rejected(self):
        with pytest.raises(PatternError):
            as_addresses(np.array([1.5]))

    def test_negative_rejected(self):
        with pytest.raises(PatternError):
            as_addresses([-1])

    def test_2d_rejected(self):
        with pytest.raises(PatternError):
            as_addresses(np.zeros((2, 2), dtype=np.int64))

    def test_empty_allowed_by_default(self):
        assert as_addresses([]).size == 0

    def test_empty_rejected_when_disallowed(self):
        with pytest.raises(PatternError):
            as_addresses([], allow_empty=False)


class TestChecks:
    def test_check_positive_passes(self):
        check_positive("x", 0.1)

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ParameterError):
            check_positive("x", bad)

    def test_check_nonnegative_passes_zero(self):
        check_nonnegative("x", 0)

    def test_check_nonnegative_rejects(self):
        with pytest.raises(ParameterError):
            check_nonnegative("x", -1e-9)


class TestPowersOfTwo:
    @pytest.mark.parametrize("n,expect", [(1, True), (2, True), (1024, True),
                                          (0, False), (3, False), (-4, False)])
    def test_is_power_of_two(self, n, expect):
        assert is_power_of_two(n) is expect

    @pytest.mark.parametrize("n,expect", [(0, 1), (1, 1), (2, 2), (3, 4),
                                          (1023, 1024), (1024, 1024)])
    def test_next_power_of_two(self, n, expect):
        assert next_power_of_two(n) == expect

    @given(st.integers(min_value=1, max_value=1 << 40))
    def test_next_power_of_two_properties(self, n):
        p = next_power_of_two(n)
        assert is_power_of_two(p)
        assert p >= n
        assert p < 2 * n or n == 1
