"""Referential integrity between code and documentation.

DESIGN.md promises a per-experiment index and bench targets;
EXPERIMENTS.md records outcomes; README.md lists examples.  These tests
keep those promises synchronized with the code so documentation rot
fails CI rather than misleading readers.
"""

import pathlib
import re

import pytest

from repro.experiments import REGISTRY

ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestDesignMd:
    def test_every_registry_id_in_design_index(self):
        design = read("DESIGN.md")
        for key in REGISTRY:
            assert re.search(rf"^\|\s*{key}\s*\|", design, re.M), \
                f"experiment {key} missing from DESIGN.md index"

    def test_bench_targets_exist(self):
        design = read("DESIGN.md")
        for target in re.findall(r"`benchmarks/(test_\w+\.py)`", design):
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_module_references_exist(self):
        design = read("DESIGN.md")
        # `experiments.<name>` references must be real modules.
        for mod in set(re.findall(r"`experiments\.(\w+)`", design)):
            assert any(
                m.__name__.endswith(mod) for m in REGISTRY.values()
            ), f"DESIGN.md references unknown experiments.{mod}"


class TestExperimentsMd:
    def test_every_registry_id_has_a_section(self):
        experiments = read("EXPERIMENTS.md")
        for key in REGISTRY:
            assert re.search(rf"^##+ .*\b{key}\b", experiments, re.M), \
                f"experiment {key} has no section in EXPERIMENTS.md"

    def test_referenced_results_are_generated_names(self):
        experiments = read("EXPERIMENTS.md")
        names = set(re.findall(r"`(\w+)\.txt`", experiments))
        assert names, "EXPERIMENTS.md should reference result files"
        # Each referenced result name must be produced by some bench
        # (search the bench sources for the save_result key).
        bench_src = "".join(
            p.read_text() for p in (ROOT / "benchmarks").glob("test_*.py")
        )
        for name in names:
            assert f'"{name}"' in bench_src, \
                f"EXPERIMENTS.md references {name}.txt, no bench saves it"


class TestReadmeMd:
    def test_example_rows_exist(self):
        readme = read("README.md")
        for rel in re.findall(r"`examples/(\w+\.py)`", readme):
            assert (ROOT / "examples" / rel).exists(), rel

    def test_examples_dir_fully_listed(self):
        readme = read("README.md")
        for path in (ROOT / "examples").glob("*.py"):
            assert path.name in readme, \
                f"examples/{path.name} not mentioned in README.md"

    def test_docs_exist(self):
        for doc in ("docs/model.md", "docs/simulator.md",
                    "docs/algorithms.md", "docs/api.md"):
            assert (ROOT / doc).exists(), doc


class TestApiMd:
    def test_api_docs_not_stale(self):
        # docs/api.md must match the current public surface exactly;
        # regenerate with `python tools/gen_api_docs.py`.
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "gen_api_docs", ROOT / "tools" / "gen_api_docs.py"
        )
        gen = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(gen)
        assert (ROOT / "docs" / "api.md").read_text() == gen.render(), \
            "docs/api.md is stale — run `python tools/gen_api_docs.py`"
