"""Cross-module property-based tests: invariants that must hold between
the model, the mappings, the simulators and the algorithms for *any*
input hypothesis can draw."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms import (
    multiprefix,
    qrqw_random_permutation,
    radix_sort,
    segmented_sum,
    spmv,
)
from repro.algorithms.spmv import random_csr
from repro.core import (
    PatternStats,
    max_bank_load,
    max_location_contention,
    predict_scatter_bsp,
    predict_scatter_dxbsp,
)
from repro.mapping import InterleavedMap, RandomMap, linear_hash
from repro.simulator import simulate_scatter, toy_machine
from repro.workloads import TraceRecorder

addresses = hnp.arrays(
    dtype=np.int64, shape=st.integers(1, 400),
    elements=st.integers(0, 5000),
)

machines = st.builds(
    toy_machine,
    p=st.integers(1, 8),
    x=st.sampled_from([1, 2, 4, 8]),
    d=st.sampled_from([1.0, 2.0, 6.0, 14.0]),
    g=st.sampled_from([1.0, 2.0]),
)


class TestModelOrdering:
    @given(addresses, machines)
    @settings(max_examples=40)
    def test_bsp_never_exceeds_dxbsp(self, addr, machine):
        # The domination holds in the paper's regime: banks no faster
        # than processors (d >= g).
        assume(machine.d >= machine.g)
        params = machine.params()
        assert predict_scatter_bsp(params, addr) <= \
            predict_scatter_dxbsp(params, addr) + 1e-9

    @given(addresses, machines)
    @settings(max_examples=40)
    def test_prediction_lower_bounds_simulation(self, addr, machine):
        # Lower-bound property also needs d >= g: with banks faster than
        # the issue rate the g*ceil(n/p) term overstates the tail.
        assume(machine.d >= machine.g)
        pred = predict_scatter_dxbsp(machine.params(), addr)
        sim = simulate_scatter(machine, addr).time
        assert sim >= pred - 1e-9

    @given(addresses, machines)
    @settings(max_examples=30)
    def test_simulation_upper_envelope(self, addr, machine):
        # Completion can exceed the analytic max() only by overlap slack:
        # the sum of terms (plus one service) is always an upper bound.
        sim = simulate_scatter(machine, addr).time
        n = addr.size
        h_b = max_bank_load(addr, machine.n_banks)
        upper = machine.L + machine.g * (-(-n // machine.p)) \
            + machine.d * h_b + machine.d
        assert sim <= upper + 1e-9

    @given(addresses, machines, st.integers(0, 2**31 - 1))
    @settings(max_examples=30)
    def test_simulation_monotone_in_d(self, addr, machine, seed):
        slower = machine.with_(d=machine.d * 2)
        t1 = simulate_scatter(machine, addr).time
        t2 = simulate_scatter(slower, addr).time
        assert t2 >= t1 - 1e-9


class TestMappingInvariants:
    @given(addresses, st.sampled_from([1, 2, 8, 64]),
           st.integers(0, 1000))
    @settings(max_examples=40)
    def test_all_mappings_preserve_request_count(self, addr, banks, seed):
        for mapping in (InterleavedMap(), RandomMap(seed),
                        linear_hash(seed)):
            loads = np.bincount(mapping(addr, banks), minlength=banks)
            assert loads.sum() == addr.size

    @given(addresses, st.integers(0, 1000))
    @settings(max_examples=40)
    def test_hash_respects_location_contention_floor(self, addr, seed):
        # No mapping can push the max bank load below the location
        # contention: same location -> same bank, always.
        for mapping in (RandomMap(seed), linear_hash(seed)):
            assert max_bank_load(addr, 64, mapping) >= \
                max_location_contention(addr)

    @given(addresses, st.integers(0, 100))
    @settings(max_examples=30)
    def test_mapping_determinism(self, addr, seed):
        m1 = linear_hash(seed)
        assert np.array_equal(m1(addr, 32), m1(addr, 32))


class TestTraceInvariants:
    @given(st.integers(1, 500), st.integers(0, 100))
    @settings(max_examples=20)
    def test_dart_trace_contention_matches_stats(self, n, seed):
        rec = TraceRecorder()
        _, stats = qrqw_random_permutation(n, seed=seed, recorder=rec)
        throws = [s for s in rec.program if "throw" in s.label]
        assert len(throws) == stats.rounds
        for step, expected in zip(throws, stats.per_round_contention):
            assert step.stats().max_location_contention == expected

    @given(st.integers(1, 50), st.integers(1, 50), st.integers(0, 5),
           st.integers(0, 100))
    @settings(max_examples=20)
    def test_spmv_trace_request_conservation(self, rows, cols, nnz, seed):
        matrix = random_csr(rows, cols, nnz, seed=seed)
        rec = TraceRecorder()
        spmv(matrix, np.zeros(cols), recorder=rec)
        assert rec.program.total_requests == 4 * matrix.nnz + rows

    @given(hnp.arrays(np.int64, st.integers(0, 300),
                      elements=st.integers(0, 1 << 30)),
           st.integers(0, 50))
    @settings(max_examples=20)
    def test_radix_trace_steps_scale_with_passes(self, keys, seed):
        rec = TraceRecorder()
        _, _, stats = radix_sort(keys, recorder=rec)
        assert len(rec.program) == 4 * stats.n_passes


class TestAlgorithmOracles:
    @given(st.data())
    @settings(max_examples=25)
    def test_multiprefix_totals_partition_sum(self, data):
        n = data.draw(st.integers(0, 200))
        n_keys = data.draw(st.integers(1, 8))
        keys = data.draw(hnp.arrays(np.int64, n,
                                    elements=st.integers(0, n_keys - 1)))
        values = data.draw(hnp.arrays(np.int64, n,
                                      elements=st.integers(0, 50)))
        prefix, totals = multiprefix(keys, values, n_keys)
        assert totals.sum() == values.sum()
        # prefix of the last occurrence of k + its value == totals[k]
        for k in range(n_keys):
            where = np.flatnonzero(keys == k)
            if where.size:
                last = where[-1]
                assert prefix[last] + values[last] == totals[k]

    @given(st.data())
    @settings(max_examples=25)
    def test_segmented_sum_equals_bincount(self, data):
        n = data.draw(st.integers(0, 300))
        nseg = data.draw(st.integers(1, 10))
        seg = data.draw(hnp.arrays(np.int64, n,
                                   elements=st.integers(0, nseg - 1)))
        vals = data.draw(hnp.arrays(np.float64, n,
                                    elements=st.floats(-10, 10)))
        out = segmented_sum(vals, seg, nseg)
        ref = np.bincount(seg, weights=vals, minlength=nseg)
        assert np.allclose(out, ref)


class TestStatsInvariants:
    @given(addresses, machines)
    @settings(max_examples=30)
    def test_pattern_stats_vs_simulator_loads(self, addr, machine):
        stats = PatternStats.from_addresses(addr, machine.n_banks)
        res = simulate_scatter(machine, addr)
        assert res.max_bank_load == stats.max_bank_load
        assert res.bank_loads.sum() == stats.n
