"""Tests for the Thearling–Smith entropy family."""

import numpy as np
import pytest

from repro.core import empirical_entropy, max_location_contention
from repro.errors import ParameterError
from repro.workloads import (
    anded_keys,
    bit_probability,
    entropy_family,
    theoretical_entropy_bits,
)


class TestAndedKeys:
    def test_round_zero_uniform(self):
        keys = anded_keys(10_000, 16, 0, seed=0)
        assert keys.min() >= 0 and keys.max() < (1 << 16)
        # near-uniform: high empirical entropy
        assert empirical_entropy(keys) > 12

    def test_keys_shrink_with_rounds(self):
        k0 = anded_keys(5000, 32, 0, seed=1)
        k5 = anded_keys(5000, 32, 5, seed=1)
        assert k5.mean() < k0.mean()

    def test_many_rounds_all_zero(self):
        keys = anded_keys(2000, 8, 30, seed=2)
        assert (keys == 0).all()

    def test_bit_density_tracks_theory(self):
        for rounds in [0, 1, 2, 3]:
            keys = anded_keys(50_000, 32, rounds, seed=3)
            density = np.mean([(keys >> b) & 1 for b in range(32)])
            assert density == pytest.approx(bit_probability(rounds), rel=0.15)

    def test_invalid(self):
        with pytest.raises(ParameterError):
            anded_keys(10, 0, 1)
        with pytest.raises(ParameterError):
            anded_keys(10, 63, 1)
        with pytest.raises(ParameterError):
            anded_keys(10, 8, -1)
        with pytest.raises(ParameterError):
            anded_keys(-1, 8, 0)


class TestEntropyFamily:
    def test_length(self):
        fam = entropy_family(1000, 16, 4, seed=0)
        assert len(fam) == 5

    def test_entropy_monotone_decreasing(self):
        fam = entropy_family(20_000, 20, 6, seed=1)
        ents = [empirical_entropy(k) for k in fam]
        assert all(a >= b - 0.1 for a, b in zip(ents, ents[1:]))

    def test_contention_monotone_increasing(self):
        fam = entropy_family(20_000, 20, 6, seed=2)
        conts = [max_location_contention(k) for k in fam]
        assert conts[-1] > conts[0]

    def test_invalid(self):
        with pytest.raises(ParameterError):
            entropy_family(10, 8, -1)


class TestTheory:
    def test_bit_probability_squares(self):
        assert bit_probability(0) == 0.5
        assert bit_probability(1) == 0.25
        assert bit_probability(2) == pytest.approx(1 / 16)
        assert bit_probability(3) == pytest.approx(1 / 256)
        assert bit_probability(20) == 0.0

    def test_theoretical_entropy_decreasing(self):
        vals = [theoretical_entropy_bits(32, r) for r in range(8)]
        assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_round_zero_full_entropy(self):
        assert theoretical_entropy_bits(32, 0) == pytest.approx(32.0)

    def test_invalid(self):
        with pytest.raises(ParameterError):
            bit_probability(-1)
