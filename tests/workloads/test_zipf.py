"""Tests for the Zipf-skewed pattern generator."""

import numpy as np
import pytest

from repro.core import max_location_contention, normalized_entropy
from repro.errors import ParameterError
from repro.workloads import uniform_random, zipf_pattern


class TestZipfPattern:
    def test_range(self):
        addr = zipf_pattern(10_000, 1 << 12, seed=0)
        assert addr.min() >= 0 and addr.max() < (1 << 12)

    def test_skewed_vs_uniform(self):
        n, space = 50_000, 1 << 16
        z = zipf_pattern(n, space, alpha=1.2, seed=1)
        u = uniform_random(n, space, seed=1)
        assert max_location_contention(z) > 5 * max_location_contention(u)
        assert normalized_entropy(z) < normalized_entropy(u)

    def test_alpha_controls_skew(self):
        n, space = 50_000, 1 << 16
        mild = zipf_pattern(n, space, alpha=1.1, seed=2)
        harsh = zipf_pattern(n, space, alpha=2.5, seed=2)
        assert max_location_contention(harsh) > max_location_contention(mild)

    def test_heavy_tail_not_single_hotspot(self):
        # Many moderately popular locations, not just one: the 10th most
        # popular location must still see real traffic.
        addr = zipf_pattern(50_000, 1 << 16, alpha=1.2, seed=3)
        _, counts = np.unique(addr, return_counts=True)
        top = np.sort(counts)[::-1]
        assert top[9] > top[0] / 50

    def test_scrambled_not_low_addresses(self):
        # The affine scramble must keep hot locations off a fixed prefix.
        hot_spots = []
        for seed in range(6):
            addr = zipf_pattern(20_000, 1 << 16, seed=seed)
            vals, counts = np.unique(addr, return_counts=True)
            hot_spots.append(int(vals[np.argmax(counts)]))
        assert len(set(hot_spots)) > 2

    def test_deterministic(self):
        a = zipf_pattern(100, 1000, seed=9)
        b = zipf_pattern(100, 1000, seed=9)
        assert (a == b).all()

    def test_empty(self):
        assert zipf_pattern(0, 10).size == 0

    @pytest.mark.parametrize("kwargs", [
        dict(n=-1, space=10),
        dict(n=10, space=0),
        dict(n=10, space=10, alpha=1.0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            zipf_pattern(**kwargs)
