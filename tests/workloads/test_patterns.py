"""Tests for the synthetic pattern generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import max_location_contention
from repro.errors import ParameterError
from repro.simulator import toy_machine
from repro.workloads import (
    broadcast,
    distinct_random,
    hotspot,
    multi_hotspot,
    section_confined,
    strided,
    uniform_random,
)


class TestUniformRandom:
    def test_range(self):
        addr = uniform_random(1000, 64, seed=0)
        assert addr.min() >= 0 and addr.max() < 64

    def test_deterministic(self):
        assert (uniform_random(100, 1 << 20, seed=5)
                == uniform_random(100, 1 << 20, seed=5)).all()

    def test_empty(self):
        assert uniform_random(0, 10, seed=0).size == 0

    def test_invalid(self):
        with pytest.raises(ParameterError):
            uniform_random(-1, 10)
        with pytest.raises(ParameterError):
            uniform_random(1, 0)


class TestDistinctRandom:
    @given(n=st.integers(0, 500), factor=st.sampled_from([1, 2, 100]))
    @settings(max_examples=20)
    def test_all_distinct(self, n, factor):
        addr = distinct_random(n, max(n, 1) * factor, seed=0)
        assert np.unique(addr).size == n

    def test_dense_space(self):
        addr = distinct_random(100, 100, seed=1)
        assert (np.sort(addr) == np.arange(100)).all()

    def test_sparse_space(self):
        addr = distinct_random(100, 1 << 40, seed=2)
        assert np.unique(addr).size == 100

    def test_space_too_small(self):
        with pytest.raises(ParameterError):
            distinct_random(10, 5)

    def test_shuffled(self):
        addr = distinct_random(1000, 1000, seed=3)
        assert (addr != np.arange(1000)).any()


class TestHotspot:
    @given(n=st.integers(1, 400), k_frac=st.floats(0, 1),
           seed=st.integers(0, 100))
    @settings(max_examples=25)
    def test_exact_contention(self, n, k_frac, seed):
        k = max(1, int(k_frac * n))
        addr = hotspot(n, k, 1 << 20, seed=seed)
        assert addr.size == n
        assert max_location_contention(addr) == k

    def test_hot_address_respected(self):
        addr = hotspot(100, 50, 1 << 10, seed=0, hot_address=77)
        values, counts = np.unique(addr, return_counts=True)
        assert counts.max() == 50
        assert values[np.argmax(counts)] == 77

    def test_k_zero(self):
        addr = hotspot(50, 0, 1 << 10, seed=0)
        assert max_location_contention(addr) == 1

    def test_background_avoids_hot_address(self):
        addr = hotspot(200, 3, 1 << 10, seed=1, hot_address=5)
        assert (addr == 5).sum() == 3

    @pytest.mark.parametrize("kwargs", [
        dict(n=10, k=11, space=100),
        dict(n=10, k=-1, space=100),
        dict(n=10, k=5, space=10),
        dict(n=10, k=5, space=100, hot_address=100),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            hotspot(kwargs.pop("n"), kwargs.pop("k"), kwargs.pop("space"),
                    **kwargs)


class TestMultiHotspot:
    def test_hot_fraction_respected(self):
        addr = multi_hotspot(10_000, 4, 0.5, 1 << 24, seed=0)
        _, counts = np.unique(addr, return_counts=True)
        hot_total = np.sort(counts)[-4:].sum()
        assert hot_total >= 0.45 * 10_000

    def test_zero_fraction_is_uniform(self):
        addr = multi_hotspot(1000, 4, 0.0, 1 << 24, seed=1)
        assert max_location_contention(addr) <= 4

    def test_full_fraction(self):
        addr = multi_hotspot(1000, 2, 1.0, 1 << 24, seed=2)
        assert np.unique(addr).size <= 2

    def test_invalid(self):
        with pytest.raises(ParameterError):
            multi_hotspot(10, 0, 0.5, 100)
        with pytest.raises(ParameterError):
            multi_hotspot(10, 1, 1.5, 100)


class TestBroadcastStrided:
    def test_broadcast(self):
        addr = broadcast(10, 3)
        assert (addr == 3).all()
        assert max_location_contention(addr) == 10

    def test_strided(self):
        addr = strided(5, 4, base=2)
        assert (addr == [2, 6, 10, 14, 18]).all()

    def test_strided_contention_free(self):
        assert max_location_contention(strided(100, 3)) == 1

    def test_invalid(self):
        with pytest.raises(ParameterError):
            broadcast(-1)
        with pytest.raises(ParameterError):
            strided(5, 0)


class TestSectionConfined:
    def test_banks_in_section(self):
        m = toy_machine(p=4, x=8).with_(n_sections=4)
        addr = section_confined(m, 500, 2, seed=0)
        banks = addr % m.n_banks
        bps = m.banks_per_section
        assert (banks // bps == 2).all()

    def test_spreads_within_section(self):
        m = toy_machine(p=4, x=8).with_(n_sections=4)
        addr = section_confined(m, 2000, 0, seed=1)
        banks = np.unique(addr % m.n_banks)
        assert banks.size == m.banks_per_section

    def test_invalid_section(self):
        m = toy_machine().with_(n_sections=2)
        with pytest.raises(ParameterError):
            section_confined(m, 10, 2)
