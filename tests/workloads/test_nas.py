"""Tests for the NAS IS key generator."""

import numpy as np
import pytest

from repro.core import empirical_entropy, max_location_contention
from repro.errors import ParameterError
from repro.workloads import nas_is_keys, nas_is_peak_density, uniform_random


class TestNasKeys:
    def test_range(self):
        keys = nas_is_keys(10_000, bits=12, seed=0)
        assert keys.min() >= 0 and keys.max() < (1 << 12)

    def test_bell_shape(self):
        keys = nas_is_keys(100_000, bits=10, seed=1)
        counts = np.bincount(keys, minlength=1 << 10)
        center = counts[400:624].mean()
        tails = (counts[:100].mean() + counts[-100:].mean()) / 2
        assert center > 5 * tails

    def test_mode_near_center(self):
        keys = nas_is_keys(200_000, bits=10, seed=2)
        mode = np.bincount(keys).argmax()
        assert abs(int(mode) - 512) < 50

    def test_peak_density_formula(self):
        bits = 10
        keys = nas_is_keys(500_000, bits=bits, seed=3)
        peak = np.bincount(keys).max() / keys.size
        assert peak == pytest.approx(nas_is_peak_density(bits), rel=0.2)

    def test_contention_between_uniform_and_hotspot(self):
        n = 50_000
        nas = nas_is_keys(n, bits=12, seed=4)
        uni = uniform_random(n, 1 << 12, seed=4)
        k_nas = max_location_contention(nas)
        k_uni = max_location_contention(uni)
        assert k_uni < k_nas < n
        assert 0 < empirical_entropy(nas) < empirical_entropy(uni)

    def test_deterministic(self):
        assert (nas_is_keys(100, seed=9) == nas_is_keys(100, seed=9)).all()

    def test_empty(self):
        assert nas_is_keys(0).size == 0

    @pytest.mark.parametrize("kwargs", [
        dict(n=-1), dict(n=1, bits=1), dict(n=1, bits=61),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            nas_is_keys(**kwargs)

    def test_peak_density_invalid(self):
        with pytest.raises(ParameterError):
            nas_is_peak_density(bits=1)
