"""Tests for trace serialization."""

import numpy as np
import pytest

from repro.core import Program, Superstep
from repro.errors import PatternError
from repro.simulator import simulate_program, toy_machine
from repro.workloads import (
    TraceRecorder,
    load_program,
    save_program,
    uniform_random,
)
from repro.algorithms import spmv, random_csr


def sample_program():
    return Program([
        Superstep(addresses=uniform_random(500, 1 << 16, seed=1),
                  kind="scatter", label="a", local_work=3.0),
        Superstep(addresses=np.zeros(0, dtype=np.int64), kind="read",
                  label="empty"),
        Superstep(addresses=np.full(10, 7), kind="gather", label="b"),
    ])


class TestRoundTrip:
    def test_structure_preserved(self, tmp_path):
        prog = sample_program()
        path = tmp_path / "trace.npz"
        save_program(prog, path)
        loaded = load_program(path)
        assert len(loaded) == len(prog)
        for a, b in zip(prog, loaded):
            assert np.array_equal(a.addresses, b.addresses)
            assert a.kind == b.kind
            assert a.label == b.label
            assert a.local_work == b.local_work

    def test_simulation_identical_after_roundtrip(self, tmp_path):
        machine = toy_machine()
        prog = sample_program()
        path = tmp_path / "trace.npz"
        save_program(prog, path)
        loaded = load_program(path)
        assert simulate_program(machine, prog).total_time == \
            simulate_program(machine, loaded).total_time

    def test_algorithm_trace_roundtrip(self, tmp_path):
        matrix = random_csr(64, 64, 3, seed=2)
        rec = TraceRecorder()
        spmv(matrix, np.zeros(64), recorder=rec)
        path = tmp_path / "spmv.npz"
        save_program(rec.program, path)
        loaded = load_program(path)
        assert loaded.total_requests == rec.program.total_requests
        assert [s.label for s in loaded] == [s.label for s in rec.program]

    def test_empty_program(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_program(Program(), path)
        assert len(load_program(path)) == 0


class TestErrors:
    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(PatternError, match="_meta"):
            load_program(path)

    def test_missing_step(self, tmp_path):
        import json

        path = tmp_path / "bad.npz"
        meta = {"version": 1, "steps": [
            {"kind": "read", "label": "", "local_work": 0.0}
        ]}
        np.savez(path, _meta=np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        ))
        with pytest.raises(PatternError, match="step_0"):
            load_program(path)

    def test_version_mismatch(self, tmp_path):
        import json

        path = tmp_path / "v99.npz"
        meta = {"version": 99, "steps": []}
        np.savez(path, _meta=np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        ))
        with pytest.raises(PatternError, match="version"):
            load_program(path)
