"""Tests for trace capture."""

import numpy as np

from repro.workloads import TraceRecorder, maybe_record


class TestTraceRecorder:
    def test_record_basic(self):
        rec = TraceRecorder()
        rec.record(np.array([1, 2, 3]), kind="scatter", label="x")
        assert len(rec.program) == 1
        assert rec.program[0].label == "x"
        assert rec.program[0].kind == "scatter"

    def test_phase_prefixes_labels(self):
        rec = TraceRecorder()
        with rec.phase("hook"):
            rec.record(np.array([1]), label="write")
        assert rec.program[0].label == "hook/write"

    def test_phases_nest(self):
        rec = TraceRecorder()
        with rec.phase("outer"):
            with rec.phase("inner"):
                rec.record(np.array([1]))
        assert rec.program[0].label == "outer/inner"

    def test_phase_restored_after_exit(self):
        rec = TraceRecorder()
        with rec.phase("a"):
            pass
        assert rec.current_phase == ""
        rec.record(np.array([1]), label="free")
        assert rec.program[0].label == "free"

    def test_phase_restored_on_exception(self):
        rec = TraceRecorder()
        try:
            with rec.phase("a"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert rec.current_phase == ""

    def test_label_without_phase(self):
        rec = TraceRecorder()
        rec.record(np.array([1]))
        assert rec.program[0].label == ""

    def test_local_work_forwarded(self):
        rec = TraceRecorder()
        rec.record(np.array([1]), local_work=9.0)
        assert rec.program[0].local_work == 9.0


class TestMaybeRecord:
    def test_none_is_noop(self):
        maybe_record(None, np.array([1, 2]))  # must not raise

    def test_forwards(self):
        rec = TraceRecorder()
        maybe_record(rec, np.array([1, 2]), kind="gather", label="g")
        assert len(rec.program) == 1
        assert rec.program[0].kind == "gather"
