"""Tests for the BSP / (d,x)-BSP parameter sets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import BSPParams, DXBSPParams, expansion_sweep
from repro.errors import ParameterError


class TestBSPParams:
    def test_defaults(self):
        p = BSPParams(p=8)
        assert p.g == 1.0 and p.L == 0.0

    @pytest.mark.parametrize("bad_p", [0, -1, 2.5])
    def test_invalid_p(self, bad_p):
        with pytest.raises(ParameterError):
            BSPParams(p=bad_p)

    def test_invalid_g(self):
        with pytest.raises(ParameterError):
            BSPParams(p=4, g=0)

    def test_negative_L(self):
        with pytest.raises(ParameterError):
            BSPParams(p=4, L=-1)

    def test_with_(self):
        p = BSPParams(p=4).with_(g=2.0)
        assert p.g == 2.0 and p.p == 4

    def test_frozen(self):
        p = BSPParams(p=4)
        with pytest.raises(Exception):
            p.p = 8  # type: ignore[misc]


class TestDXBSPParams:
    def test_n_banks(self):
        assert DXBSPParams(p=8, d=14, x=64).n_banks == 512

    def test_fractional_expansion(self):
        assert DXBSPParams(p=8, d=6, x=0.5).n_banks == 4

    def test_expansion_below_one_bank_rejected(self):
        with pytest.raises(ParameterError):
            DXBSPParams(p=2, d=6, x=0.1)

    @pytest.mark.parametrize("field,value", [("d", 0), ("x", 0), ("g", -1)])
    def test_invalid_fields(self, field, value):
        kwargs = dict(p=4, d=6.0, x=4.0)
        kwargs[field] = value
        with pytest.raises(ParameterError):
            DXBSPParams(**kwargs)

    def test_balanced_expansion(self):
        p = DXBSPParams(p=4, d=14, x=4, g=2)
        assert p.balanced_expansion == 7.0

    def test_bandwidth_ratio(self):
        p = DXBSPParams(p=4, d=6, x=6, g=1)
        assert p.bandwidth_ratio == pytest.approx(1.0)

    def test_to_bsp_roundtrip(self):
        dx = DXBSPParams(p=4, d=6, x=4, g=2, L=10)
        bsp = dx.to_bsp()
        assert bsp == BSPParams(p=4, g=2, L=10)
        assert DXBSPParams.from_bsp(bsp, d=6, x=4) == dx

    def test_expansion_sweep(self):
        base = DXBSPParams(p=4, d=6, x=1)
        swept = list(expansion_sweep(base, [1, 2, 4]))
        assert [s.n_banks for s in swept] == [4, 8, 16]
        assert all(s.d == 6 for s in swept)

    @given(
        p=st.integers(1, 128),
        d=st.floats(0.5, 100),
        x=st.floats(0.5, 256),
    )
    def test_n_banks_consistent(self, p, d, x):
        try:
            params = DXBSPParams(p=p, d=d, x=x)
        except ParameterError:
            assert round(x * p) < 1
            return
        assert params.n_banks == round(x * p)
        assert params.n_banks >= 1
