"""Tests for Program concatenation/filtering and contention summaries."""

import numpy as np
import pytest

from repro.analysis import contention_summary, format_table
from repro.core import Program, Superstep
from repro.simulator import toy_machine
from repro.workloads import uniform_random


def prog(labels_and_sizes):
    return Program([
        Superstep(addresses=uniform_random(n, 1 << 16, seed=i), label=lbl)
        for i, (lbl, n) in enumerate(labels_and_sizes)
    ])


class TestProgramAlgebra:
    def test_concat(self):
        a = prog([("x", 10)])
        b = prog([("y", 20), ("z", 5)])
        c = a + b
        assert len(c) == 3
        assert [s.label for s in c] == ["x", "y", "z"]
        assert c.total_requests == 35
        # originals untouched
        assert len(a) == 1 and len(b) == 2

    def test_concat_type_error(self):
        assert Program().__add__(42) is NotImplemented

    def test_filter(self):
        p = prog([("hook", 10), ("scan", 20), ("hook", 5)])
        hooks = p.filter(lambda s: s.label == "hook")
        assert len(hooks) == 2
        assert hooks.total_requests == 15

    def test_by_label(self):
        p = prog([("round0/hook", 10), ("round0/scan", 20),
                  ("round1/hook", 5)])
        assert len(p.by_label("hook")) == 2
        assert len(p.by_label("round0")) == 2
        assert len(p.by_label("nothing")) == 0

    def test_phase_isolation_costing(self, toy):
        # The idiom: isolate a phase and cost it separately.
        p = prog([("hook", 100), ("scan", 300)])
        params = toy.params()
        total = p.cost_dxbsp(params).total
        parts = (p.by_label("hook").cost_dxbsp(params).total
                 + p.by_label("scan").cost_dxbsp(params).total)
        assert parts == pytest.approx(total)


class TestContentionSummary:
    def test_rows_without_machine(self):
        p = prog([("a", 10), ("b", 20)])
        rows = contention_summary(p)
        assert len(rows) == 2
        idx, label, n, k, h_b, t = rows[0]
        assert (idx, label, n) == (0, "a", 10)
        assert h_b is None and t is None

    def test_rows_with_machine(self, toy):
        p = prog([("a", 64)])
        rows = contention_summary(p, toy)
        _, _, n, k, h_b, t = rows[0]
        assert n == 64
        assert h_b >= k >= 1
        assert t >= 64 / toy.p

    def test_formats_as_table(self, toy):
        p = prog([("a", 16), ("b", 8)])
        out = format_table(
            ("step", "label", "n", "k", "h_b", "dxbsp"),
            contention_summary(p, toy),
        )
        assert "a" in out and "b" in out

    def test_empty_program(self):
        assert contention_summary(Program()) == []
