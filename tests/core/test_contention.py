"""Tests for contention statistics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    PatternStats,
    bank_loads,
    contention_histogram,
    empirical_entropy,
    location_contention,
    max_bank_load,
    max_location_contention,
    normalized_entropy,
)
from repro.errors import ParameterError, PatternError

addresses = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(0, 300),
    elements=st.integers(0, 1000),
)


class TestLocationContention:
    def test_empty(self):
        locs, counts = location_contention([])
        assert locs.size == 0 and counts.size == 0
        assert max_location_contention([]) == 0

    def test_all_distinct(self):
        assert max_location_contention([3, 1, 2]) == 1

    def test_hotspot(self):
        assert max_location_contention([5, 5, 5, 1, 2]) == 3

    def test_counts_sum_to_n(self):
        _, counts = location_contention([1, 1, 2, 3, 3, 3])
        assert counts.sum() == 6

    @given(addresses)
    def test_counts_invariants(self, addr):
        locs, counts = location_contention(addr)
        assert counts.sum() == addr.size
        assert locs.size == np.unique(addr).size
        if addr.size:
            assert counts.min() >= 1
            assert max_location_contention(addr) == counts.max()


class TestBankLoads:
    def test_interleaved_default(self):
        loads = bank_loads([0, 4, 8, 1], n_banks=4)
        assert (loads == [3, 1, 0, 0]).all()

    def test_loads_sum(self):
        loads = bank_loads(np.arange(100), n_banks=7)
        assert loads.sum() == 100

    def test_empty(self):
        assert (bank_loads([], 5) == 0).all()

    def test_custom_map(self):
        loads = bank_loads([10, 20, 30], 4, bank_map=lambda a, b: np.zeros_like(a))
        assert loads[0] == 3

    def test_invalid_n_banks(self):
        with pytest.raises(ParameterError):
            bank_loads([1], 0)

    def test_bad_map_shape(self):
        with pytest.raises(PatternError):
            bank_loads([1, 2], 4, bank_map=lambda a, b: np.zeros(1, dtype=np.int64))

    def test_bad_map_range(self):
        with pytest.raises(PatternError):
            bank_loads([1, 2], 4, bank_map=lambda a, b: a + 100)

    @given(addresses, st.integers(1, 64))
    def test_max_bank_load_at_least_contention(self, addr, b):
        # Requests to one location necessarily share a bank.
        assert max_bank_load(addr, b) >= max_location_contention(addr)


class TestHistogramAndEntropy:
    def test_histogram(self):
        values, freq = contention_histogram([1, 1, 2, 3, 3, 3])
        assert (values == [1, 2, 3]).all()
        assert (freq == [1, 1, 1]).all()

    def test_histogram_empty(self):
        v, f = contention_histogram([])
        assert v.size == 0 and f.size == 0

    def test_uniform_entropy(self):
        assert empirical_entropy(np.arange(256)) == pytest.approx(8.0)

    def test_single_location_entropy(self):
        assert empirical_entropy([7] * 100) == 0.0

    def test_normalized_extremes(self):
        assert normalized_entropy(np.arange(1024)) == pytest.approx(1.0)
        assert normalized_entropy([0] * 1024) == 0.0
        assert normalized_entropy([]) == 1.0

    @given(addresses)
    def test_entropy_bounds(self, addr):
        h = empirical_entropy(addr)
        assert h >= 0.0
        if addr.size:
            assert h <= np.log2(addr.size) + 1e-9


class TestPatternStats:
    def test_empty(self):
        s = PatternStats.from_addresses([])
        assert s.n == 0 and s.n_distinct == 0 and s.max_location_contention == 0

    def test_basic(self):
        s = PatternStats.from_addresses([1, 1, 1, 2], n_banks=4)
        assert s.n == 4
        assert s.n_distinct == 2
        assert s.max_location_contention == 3
        assert s.mean_location_contention == 2.0
        assert s.max_bank_load == 3
        assert s.n_banks == 4

    def test_without_banks(self):
        s = PatternStats.from_addresses([1, 2, 3])
        assert s.max_bank_load is None and s.n_banks is None

    @given(addresses)
    def test_consistency(self, addr):
        s = PatternStats.from_addresses(addr, n_banks=8)
        assert s.max_location_contention == max_location_contention(addr)
        assert s.max_bank_load == max_bank_load(addr, 8)
        if s.n:
            assert 1 <= s.max_location_contention <= s.n
            assert s.mean_location_contention * s.n_distinct == pytest.approx(s.n)
