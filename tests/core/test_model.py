"""Tests for Superstep / Program accounting."""

import numpy as np
import pytest

from repro.core import DXBSPParams, Program, Superstep
from repro.errors import PatternError

PARAMS = DXBSPParams(p=4, d=6, x=4, g=1, L=0)


class TestSuperstep:
    def test_basic(self):
        s = Superstep(addresses=np.array([1, 2, 3]), kind="scatter", label="x")
        assert s.n == 3

    def test_invalid_kind(self):
        with pytest.raises(PatternError):
            Superstep(addresses=np.array([1]), kind="frobnicate")

    def test_negative_local_work(self):
        with pytest.raises(PatternError):
            Superstep(addresses=np.array([1]), local_work=-1)

    def test_stats(self):
        s = Superstep(addresses=np.array([1, 1, 2]))
        st = s.stats(n_banks=4)
        assert st.max_location_contention == 2
        assert st.max_bank_load == 2

    def test_times(self):
        s = Superstep(addresses=np.full(100, 7), local_work=50)
        assert s.time_dxbsp(PARAMS) == 600 + 50
        assert s.time_bsp(PARAMS) == 100 + 50

    def test_addresses_validated(self):
        with pytest.raises(PatternError):
            Superstep(addresses=np.array([-1]))


class TestProgram:
    def _program(self):
        return Program([
            Superstep(addresses=np.arange(100), label="a"),
            Superstep(addresses=np.full(10, 3), label="b"),
            Superstep(addresses=np.arange(50), label="a"),
        ])

    def test_len_iter_index(self):
        p = self._program()
        assert len(p) == 3
        assert [s.label for s in p] == ["a", "b", "a"]
        assert p[1].label == "b"

    def test_total_requests(self):
        assert self._program().total_requests == 160

    def test_append_type_checked(self):
        p = Program()
        with pytest.raises(PatternError):
            p.append("not a superstep")  # type: ignore[arg-type]
        with pytest.raises(PatternError):
            Program(["nope"])  # type: ignore[list-item]

    def test_extend(self):
        p = Program()
        p.extend(self._program())
        assert len(p) == 3

    def test_cost_breakdown_total(self):
        p = self._program()
        cb = p.cost_dxbsp(PARAMS)
        assert cb.total == pytest.approx(sum(
            s.time_dxbsp(PARAMS) for s in p
        ))
        assert len(cb.step_times) == 3

    def test_cost_by_label(self):
        cb = self._program().cost_dxbsp(PARAMS)
        by = cb.by_label()
        assert set(by) == {"a", "b"}
        assert by["a"] + by["b"] == pytest.approx(cb.total)

    def test_bsp_cost_not_above_dxbsp(self):
        p = self._program()
        assert p.cost_bsp(PARAMS).total <= p.cost_dxbsp(PARAMS).total

    def test_program_contention(self):
        assert self._program().max_location_contention() == 10

    def test_empty_program(self):
        p = Program()
        assert p.total_requests == 0
        assert p.cost_dxbsp(PARAMS).total == 0.0
        assert p.max_location_contention() == 0
