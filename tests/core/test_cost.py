"""Tests for the superstep cost laws."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    BSPParams,
    DXBSPParams,
    bsp_superstep_time,
    crossover_contention,
    dxbsp_superstep_time,
    per_processor_load,
    predict_scatter_bsp,
    predict_scatter_dxbsp,
)
from repro.errors import ParameterError
from repro.workloads import broadcast, distinct_random, hotspot

PARAMS = DXBSPParams(p=4, d=6, x=4, g=1, L=0)


class TestPerProcessorLoad:
    @pytest.mark.parametrize("n,p,expect", [(0, 4, 0), (1, 4, 1), (4, 4, 1),
                                            (5, 4, 2), (100, 7, 15)])
    def test_values(self, n, p, expect):
        assert per_processor_load(n, p) == expect

    def test_invalid(self):
        with pytest.raises(ParameterError):
            per_processor_load(-1, 4)
        with pytest.raises(ParameterError):
            per_processor_load(4, 0)


class TestSuperstepLaws:
    def test_dxbsp_law(self):
        p = DXBSPParams(p=4, d=6, x=4, g=2, L=100)
        assert dxbsp_superstep_time(p, 10, 3) == 100          # L dominates
        assert dxbsp_superstep_time(p, 100, 3) == 200         # g*h_p
        assert dxbsp_superstep_time(p, 10, 50) == 300         # d*h_b

    def test_bsp_law(self):
        p = BSPParams(p=4, g=2, L=5)
        assert bsp_superstep_time(p, 10, 3) == 20
        assert bsp_superstep_time(p, 1, 30) == 60
        assert bsp_superstep_time(p, 1, 1) == 5

    def test_broadcasting(self):
        h = np.array([1, 10, 100])
        out = dxbsp_superstep_time(PARAMS, h, 1)
        assert out.shape == (3,)
        assert (out == np.maximum(h, 6)).all()

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            dxbsp_superstep_time(PARAMS, -1, 0)
        with pytest.raises(ParameterError):
            bsp_superstep_time(PARAMS, 0, -1)

    @given(
        h_p=st.integers(0, 10_000),
        h_b=st.integers(0, 10_000),
    )
    def test_dxbsp_dominates_bsp(self, h_p, h_b):
        # With d >= g and h_b >= k the (d,x)-BSP time is never below the
        # BSP time for the same pattern (k <= h_b).
        k = h_b
        assert dxbsp_superstep_time(PARAMS, h_p, h_b) >= \
            bsp_superstep_time(PARAMS, h_p, k)

    @given(h_p=st.integers(0, 1000), h_b=st.integers(0, 1000),
           extra=st.integers(0, 100))
    def test_monotone_in_loads(self, h_p, h_b, extra):
        base = dxbsp_superstep_time(PARAMS, h_p, h_b)
        assert dxbsp_superstep_time(PARAMS, h_p + extra, h_b) >= base
        assert dxbsp_superstep_time(PARAMS, h_p, h_b + extra) >= base


class TestScatterPredictions:
    def test_distinct_pattern_throughput_bound(self):
        addr = distinct_random(4096, 1 << 20, seed=0)
        t = predict_scatter_dxbsp(PARAMS, addr)
        # All-distinct random pattern: time close to the pipeline bound
        # but never below it.
        assert t >= 4096 / 4
        assert t <= 6 * 4096  # sanity ceiling

    def test_broadcast_pattern(self):
        addr = broadcast(1000, 42)
        assert predict_scatter_dxbsp(PARAMS, addr) == 6 * 1000
        assert predict_scatter_bsp(PARAMS, addr) == 1000

    def test_hotspot_knee(self):
        n = 4096
        k_star = crossover_contention(PARAMS, n)
        below = hotspot(n, max(1, int(k_star // 4)), 1 << 20, seed=1)
        above = hotspot(n, int(k_star * 8), 1 << 20, seed=1)
        t_below = predict_scatter_dxbsp(PARAMS, below)
        t_above = predict_scatter_dxbsp(PARAMS, above)
        assert t_above > 2 * t_below

    def test_bsp_underpredicts_hot(self):
        addr = hotspot(4096, 2048, 1 << 20, seed=2)
        bsp = predict_scatter_bsp(PARAMS, addr)
        dxbsp = predict_scatter_dxbsp(PARAMS, addr)
        # Factor approaching d/g on hot patterns.
        assert dxbsp / bsp > PARAMS.d / PARAMS.g * 0.5

    def test_empty_pattern(self):
        p = PARAMS.with_(L=7)
        assert predict_scatter_dxbsp(p, []) == 7
        assert predict_scatter_bsp(p, []) == 7


class TestCrossover:
    def test_formula(self):
        p = DXBSPParams(p=8, d=14, x=64, g=1)
        assert crossover_contention(p, 65536) == pytest.approx(65536 / (8 * 14))

    def test_invalid_n(self):
        with pytest.raises(ParameterError):
            crossover_contention(PARAMS, -1)

    @given(n=st.integers(0, 1 << 20))
    def test_scaling(self, n):
        # Doubling d halves the knee.
        k1 = crossover_contention(PARAMS, n)
        k2 = crossover_contention(PARAMS.with_(d=12), n)
        assert k2 == pytest.approx(k1 / 2)
