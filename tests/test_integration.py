"""End-to-end integration tests: whole pipelines across subsystem
boundaries, asserting the paper's headline claims at test scale."""

import numpy as np
import pytest

from repro.algorithms import (
    build_implicit_tree,
    connected_components,
    dense_column_csr,
    erew_binary_search,
    qrqw_binary_search,
    qrqw_random_permutation,
    spmv,
    star_edges,
)
from repro.analysis import compare_program, compare_scatter
from repro.core import crossover_contention, predict_scatter_dxbsp
from repro.emulation import QRQWPram, emulate_qrqw, step_time_bound
from repro.mapping import linear_hash
from repro.simulator import (
    CRAY_C90,
    CRAY_J90,
    simulate_program,
    simulate_scatter,
    toy_machine,
)
from repro.workloads import TraceRecorder, hotspot, uniform_random


class TestHeadlineClaim:
    """The paper's core claim: the (d,x)-BSP predicts irregular scatter
    performance where the BSP fails, on both studied machines."""

    @pytest.mark.parametrize("machine", [CRAY_J90, CRAY_C90],
                             ids=["J90", "C90"])
    def test_full_contention_sweep(self, machine):
        n = 16 * 1024
        knee = crossover_contention(machine.params(), n)
        for k in [1, int(knee / 2), int(knee * 4), n]:
            k = max(1, min(k, n))
            cmp = compare_scatter(machine, hotspot(n, k, 1 << 24, seed=k))
            assert abs(cmp.dxbsp_error) < 0.3, (machine.name, k)
        hot = compare_scatter(machine, hotspot(n, n, 1 << 24, seed=0))
        assert hot.bsp_underprediction > machine.d / machine.g * 0.8

    def test_c90_j90_qualitatively_similar(self):
        # "cray C90 results are qualitatively similar": same shape,
        # different slope d.
        n = 8192
        addr = hotspot(n, n, 1 << 24, seed=1)
        tj = simulate_scatter(CRAY_J90, addr).time
        tc = simulate_scatter(CRAY_C90, addr).time
        assert tj / tc == pytest.approx(14 / 6, rel=0.15)


class TestAlgorithmToModelPipeline:
    """Instrumented algorithm -> trace -> analytic cost AND simulation,
    crossing algorithms / workloads / core / simulator."""

    def test_spmv_whole_pipeline(self):
        machine = toy_machine(p=8, x=16, d=14)
        matrix = dense_column_csr(2048, 2048, 4, dense_len=1024, seed=2)
        x = np.random.default_rng(2).standard_normal(2048)
        rec = TraceRecorder()
        y = spmv(matrix, x, recorder=rec)
        assert np.allclose(y, matrix.to_dense() @ x)  # result correct
        cmp = compare_program(machine, rec.program)
        assert cmp.contention >= 1024        # the dense column shows up
        assert abs(cmp.dxbsp_error) < 0.25   # and is predicted

    def test_search_agreement_and_cost_ordering(self):
        machine = toy_machine(p=8, x=16, d=14)
        rng = np.random.default_rng(3)
        keys = np.sort(rng.integers(0, 1 << 20, size=4096, dtype=np.int64))
        tree = build_implicit_tree(keys)
        queries = rng.integers(0, 1 << 20, size=2048, dtype=np.int64)
        rec_q, rec_e = TraceRecorder(), TraceRecorder()
        rq = qrqw_binary_search(tree, queries, seed=4, recorder=rec_q)
        re_ = erew_binary_search(keys, queries, recorder=rec_e)
        assert np.array_equal(rq, re_)
        tq = simulate_program(machine, rec_q.program).total_time
        te = simulate_program(machine, rec_e.program).total_time
        assert tq < te  # QRQW wins at this slack (Figure-10 regime)

    def test_cc_trace_feeds_emulation_bound(self):
        # CC trace steps, replayed as QRQW steps, stay under the
        # Theorem-5 bound when emulated via hashing.
        machine = toy_machine(p=8, x=32, d=6)
        rec = TraceRecorder()
        connected_components(512, star_edges(512, center=511), recorder=rec)
        pram = QRQWPram(p=8, memory_size=1 << 20)
        for step in rec.program:
            if step.n:
                pram.write(step.addresses, np.zeros(step.n, dtype=np.int64))
        res = emulate_qrqw(machine, pram, seed=5)
        assert res.bound_tightness <= 1.05

    def test_permutation_trace_hashed_vs_interleaved(self):
        # Crossing mapping x algorithms: hashing can't beat interleaving
        # on this trace (its sequential pack-scans are interleave-optimal)
        # and the module-map overhead it adds is bounded — exactly the
        # Section-4 trade-off.
        machine = toy_machine(p=8, x=16, d=14)
        rec = TraceRecorder()
        qrqw_random_permutation(8192, seed=6, recorder=rec)
        t_interleave = simulate_program(machine, rec.program).total_time
        t_hashed = simulate_program(
            machine, rec.program, bank_map=linear_hash(7)
        ).total_time
        assert t_interleave <= t_hashed <= 1.6 * t_interleave


class TestModelSimulatorContract:
    """The analytic model is a tight lower bound on the simulator for
    default dealing — the contract everything else relies on."""

    @pytest.mark.parametrize("seed", range(4))
    def test_prediction_bounds_simulation(self, seed):
        machine = toy_machine(p=4, x=4, d=6)
        rng = np.random.default_rng(seed)
        n = int(rng.integers(100, 5000))
        k = int(rng.integers(1, n + 1))
        addr = hotspot(n, k, 1 << 22, seed=seed)
        pred = predict_scatter_dxbsp(machine.params(), addr)
        sim = simulate_scatter(machine, addr).time
        assert pred - 1e-9 <= sim <= pred * 1.35 + machine.d + machine.g * machine.p

    def test_step_bound_covers_hashed_simulation(self):
        machine = toy_machine(p=8, x=8, d=14)
        params = machine.params()
        for k in [1, 32, 1024]:
            addr = hotspot(8192, k, 1 << 22, seed=k)
            sim = simulate_scatter(machine, addr, linear_hash(k)).time
            bound = step_time_bound(params, 8192, k)
            assert sim <= bound * 1.05, k
